//! Criterion microbenchmarks of the reproduction's performance-critical
//! kernels: the analog integrator, the FR-FCFS controller, the destruction
//! sweep scheduler, PUF evaluation, Jaccard computation, and the NIST
//! suite's heaviest tests.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn circuit_activate(c: &mut Criterion) {
    use codic_circuit::{CircuitParams, CircuitSim};
    let schedule = *codic_core::library::activation().schedule();
    c.bench_function("circuit/activate_run", |b| {
        b.iter(|| {
            let mut sim = CircuitSim::new(CircuitParams::default());
            sim.set_cell_bit(true);
            black_box(sim.run(black_box(&schedule)).outcome())
        })
    });
}

fn circuit_sigsa_resolve(c: &mut Criterion) {
    use codic_circuit::montecarlo::{sigsa_schedule, MC_DT_NS};
    use codic_circuit::{CircuitParams, CircuitSim};
    let schedule = sigsa_schedule();
    c.bench_function("circuit/sigsa_resolve_bit", |b| {
        b.iter(|| {
            let mut sim = CircuitSim::new(CircuitParams::default());
            sim.set_cell_voltage(0.75);
            black_box(sim.resolve_bit(black_box(&schedule), MC_DT_NS))
        })
    });
}

fn controller_row_hits(c: &mut Criterion) {
    use codic_dram::{DramGeometry, MemRequest, MemoryController, ReqKind, TimingParams};
    c.bench_function("dram/controller_1k_reads", |b| {
        b.iter(|| {
            let mut mc =
                MemoryController::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11());
            mc.set_refresh_enabled(false);
            let mut issued = 0u64;
            while issued < 1000 {
                while issued < 1000 && mc.push(MemRequest::new(issued * 64, ReqKind::Read)).is_ok()
                {
                    issued += 1;
                }
                mc.tick();
            }
            black_box(mc.run_to_idle())
        })
    });
}

fn destruction_sweep(c: &mut Criterion) {
    use codic_coldboot::latency::destruction_time_ms;
    use codic_coldboot::DestructionMechanism;
    c.bench_function("coldboot/codic_sweep_256mb", |b| {
        b.iter(|| {
            black_box(destruction_time_ms(
                DestructionMechanism::Codic,
                black_box(256),
            ))
        })
    });
}

fn puf_evaluation(c: &mut Criterion) {
    use codic_puf::mechanisms::{CodicSigPuf, Environment, PufMechanism};
    use codic_puf::population::paper_population;
    use codic_puf::Challenge;
    let pop = paper_population(1);
    let chip = pop[0].chips[0].clone();
    c.bench_function("puf/codic_sig_8kb_eval", |b| {
        let mut nonce = 0;
        b.iter(|| {
            nonce += 1;
            black_box(CodicSigPuf.evaluate(
                &chip,
                &Challenge::segment(0),
                &Environment::nominal(),
                nonce,
            ))
        })
    });
}

fn jaccard(c: &mut Criterion) {
    use codic_puf::Response;
    let a = Response::new((0..500u32).map(|i| i * 131).collect());
    let b_resp = Response::new((0..500u32).map(|i| i * 137).collect());
    c.bench_function("puf/jaccard_500", |b| {
        b.iter(|| black_box(a.jaccard(black_box(&b_resp))))
    });
}

fn nist_heavy(c: &mut Criterion) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(1);
    let bits: Vec<u8> = (0..100_000).map(|_| rng.gen_range(0..2) as u8).collect();
    c.bench_function("nist/linear_complexity_100k", |b| {
        b.iter(|| black_box(codic_nist::linear_complexity::test(black_box(&bits))))
    });
    c.bench_function("nist/serial_100k", |b| {
        b.iter(|| black_box(codic_nist::serial::test(black_box(&bits))))
    });
    c.bench_function("nist/dft_100k", |b| {
        b.iter(|| black_box(codic_nist::dft::test(black_box(&bits))))
    });
}

criterion_group!(
    benches,
    circuit_activate,
    circuit_sigsa_resolve,
    controller_row_hits,
    destruction_sweep,
    puf_evaluation,
    jaccard,
    nist_heavy
);
criterion_main!(benches);
