//! Criterion benchmark of the Monte Carlo engines on the paper's Table 11
//! workload: the 100,000-trial CODIC-sigsa sweep.
//!
//! - `mc/sigsa_100k_scalar` — the original baseline: one freshly allocated
//!   `CircuitSim` per trial, signals re-queried every 25 ps step.
//! - `mc/sigsa_100k_batched` — `CircuitSimBatch`, forced to one thread.
//! - `mc/sigsa_100k` — the headline: batched + rayon chunk parallelism.
//!
//! All three paths draw identical per-trial variation and produce
//! identical flip counts. Set `MC_TRIALS` to scale the workload down for
//! quick runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use codic_bench::with_threads;
use codic_circuit::montecarlo::SigsaExperiment;

fn trials() -> u32 {
    std::env::var("MC_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

fn experiment() -> SigsaExperiment {
    SigsaExperiment {
        trials: trials(),
        ..SigsaExperiment::default()
    }
}

fn mc_scalar(c: &mut Criterion) {
    let exp = experiment();
    c.sample_size(10)
        .bench_function("mc/sigsa_100k_scalar", |b| {
            b.iter(|| black_box(exp.run_scalar().flips))
        });
}

fn mc_batched_single_thread(c: &mut Criterion) {
    let exp = experiment();
    c.sample_size(10)
        .bench_function("mc/sigsa_100k_batched", |b| {
            b.iter(|| with_threads(Some(1), || black_box(exp.run().flips)))
        });
}

fn mc_batched_parallel(c: &mut Criterion) {
    let exp = experiment();
    c.sample_size(10)
        .bench_function("mc/sigsa_100k", |b| b.iter(|| black_box(exp.run().flips)));
}

criterion_group!(
    benches,
    mc_scalar,
    mc_batched_single_thread,
    mc_batched_parallel
);
criterion_main!(benches);
