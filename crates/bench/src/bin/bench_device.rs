//! Measures batched `DevicePool` throughput on the two row-granular
//! serving workloads — secure-deallocation zeroing and cold-boot
//! full-module destruction — and prints a JSON summary, the source of the
//! repository's `BENCH_device.json`.
//!
//! Two rates are reported per workload:
//!
//! - `host_rows_per_s`: rows processed per second of wall-clock host time
//!   (simulator throughput; scales with cores via the sharded pool);
//! - `dram_rows_per_s`: rows per second of *simulated DRAM time* (device
//!   throughput; scales with shards because each shard is an independent
//!   channel with its own tFAW window).
//!
//! Capacity models differ per workload (see `DevicePool` docs): the
//! secdealloc batch serves one 64 MB module through N channel shards
//! (`--rows` is clamped to the module's row count), while the cold-boot
//! sweep destroys one full module *per* shard (N modules total).
//!
//! Usage: `cargo run --release --bin bench_device [-- --rows N --shards S --reps R]`

use std::time::Instant;

use codic_coldboot::DestructionMechanism;
use codic_core::device::DeviceConfig;
use codic_core::ops::{CodicOp, InDramMechanism, RowRegion};
use codic_core::pool::DevicePool;
use codic_dram::{DramGeometry, TimingParams};
use codic_secdealloc::ZeroingMechanism;

fn arg(flag: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

struct Measured {
    host_s: f64,
    dram_ns: f64,
    rows: u64,
    energy_nj: f64,
}

fn time<R>(reps: u64, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        out = f();
    }
    (t0.elapsed().as_secs_f64() / reps as f64, out)
}

/// Secure-deallocation serving: a batch of typed zeroing ops (one per
/// freed row) distributed over the pool.
fn secdealloc_batch(config: &DeviceConfig, shards: usize, rows: u64, reps: u64) -> Measured {
    let plan = InDramMechanism::plan(&ZeroingMechanism::Codic, RowRegion::new(0, rows));
    let (host_s, outcome) = time(reps, || {
        let mut pool = DevicePool::new(shards, config);
        pool.execute_all(&plan).expect("zeroing is in range")
    });
    Measured {
        host_s,
        dram_ns: outcome.finish_ns(),
        rows: outcome.ops() as u64,
        energy_nj: outcome.energy_nj(),
    }
}

/// Cold-boot destruction: every shard sweeps its own module slice with
/// the event-driven fast path.
fn coldboot_sweep(config: &DeviceConfig, shards: usize, reps: u64) -> Measured {
    let proto: CodicOp = DestructionMechanism::Codic
        .op_for_row(0)
        .expect("CODIC destruction is in-DRAM");
    let timing = config.timing;
    let (host_s, reports) = time(reps, || {
        let mut pool = DevicePool::new(shards, config);
        pool.sweep_all_rows(proto).expect("sweep is authorized")
    });
    let rows: u64 = reports.iter().map(|r| r.rows).sum();
    let dram_ns = reports
        .iter()
        .map(|r| timing.ns(r.finish_cycle))
        .fold(0.0, f64::max);
    Measured {
        host_s,
        dram_ns,
        rows,
        energy_nj: reports.iter().map(|r| r.energy_nj).sum(),
    }
}

fn print_entry(name: &str, shards: usize, m: &Measured, last: bool) {
    println!("    {{");
    println!("      \"workload\": \"{name}\",");
    println!("      \"shards\": {shards},");
    println!("      \"rows\": {},", m.rows);
    println!("      \"host_s\": {:.4},", m.host_s);
    println!("      \"dram_ms\": {:.4},", m.dram_ns * 1e-6);
    println!(
        "      \"host_rows_per_s\": {:.0},",
        m.rows as f64 / m.host_s
    );
    println!(
        "      \"dram_rows_per_s\": {:.0},",
        m.rows as f64 / (m.dram_ns * 1e-9)
    );
    println!("      \"energy_mj\": {:.4}", m.energy_nj * 1e-6);
    println!("    }}{}", if last { "" } else { "," });
}

fn main() {
    let geometry = DramGeometry::module_mib(64);
    // The batch serves one module-sized address space; rows beyond it
    // would (correctly) be rejected by the safe-range policy.
    let rows = arg("--rows").unwrap_or(8192).min(geometry.total_rows());
    let max_shards = arg("--shards").unwrap_or(4).max(1) as usize;
    let reps = arg("--reps").unwrap_or(3);
    let config = DeviceConfig::new(geometry, TimingParams::ddr3_1600_11()).with_refresh(false);

    println!("{{");
    println!("  \"bench\": \"device_pool_throughput\",");
    println!("  \"module_mib\": 64,");
    println!("  \"rows_per_batch\": {rows},");
    println!("  \"reps\": {reps},");
    println!("  \"threads_available\": {},", rayon::current_num_threads());
    println!("  \"results\": [");
    let sec1 = secdealloc_batch(&config, 1, rows, reps);
    print_entry("secdealloc_zeroing", 1, &sec1, false);
    let secn = secdealloc_batch(&config, max_shards, rows, reps);
    print_entry("secdealloc_zeroing", max_shards, &secn, false);
    let cb1 = coldboot_sweep(&config, 1, reps);
    print_entry("coldboot_destruction", 1, &cb1, false);
    let cbn = coldboot_sweep(&config, max_shards, reps);
    print_entry("coldboot_destruction", max_shards, &cbn, true);
    println!("  ],");
    println!(
        "  \"dram_speedup_secdealloc\": {:.2},",
        (sec1.dram_ns / sec1.rows as f64) / (secn.dram_ns / secn.rows as f64)
    );
    println!(
        "  \"host_speedup_coldboot\": {:.2}",
        (cb1.host_s / cb1.rows as f64) / (cbn.host_s / cbn.rows as f64)
    );
    println!("}}");
}
