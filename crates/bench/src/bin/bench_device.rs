//! Measures batched `DevicePool` throughput on the two row-granular
//! serving workloads — secure-deallocation zeroing and cold-boot
//! full-module destruction — and prints a JSON summary, the source of the
//! repository's `BENCH_device.json`.
//!
//! Two rates are reported per workload:
//!
//! - `host_rows_per_s`: rows processed per second of wall-clock host time
//!   (simulator throughput; scales with cores via the sharded pool);
//! - `dram_rows_per_s`: rows per second of *simulated DRAM time* (device
//!   throughput; scales with shards because each shard is an independent
//!   channel with its own tFAW window).
//!
//! Capacity models differ per workload (see `DevicePool` docs): the
//! secdealloc batch serves one 64 MB module through N channel shards
//! (`--rows` is clamped to the module's row count), while the cold-boot
//! sweep destroys one full module *per* shard (N modules total).
//!
//! A third comparison pits the **event engine against the tick engine**
//! on the idle-heavy full-module destruction sweeps: the identical
//! streaming workload is driven once cycle-by-cycle
//! (`MemoryController::tick`) and once event-to-event
//! (`MemoryController::step_event`), asserting bit-identical DRAM time
//! and reporting the wall-clock speedup (`events_vs_cycles`).
//!
//! Usage: `cargo run --release --bin bench_device [-- --rows N --shards S --reps R]`
//!
//! `--quick` runs only the engine cross-check on a downscaled sweep and
//! exits non-zero if the two engines disagree — the CI smoke step.

use std::time::Instant;

use codic_coldboot::DestructionMechanism;
use codic_core::device::DeviceConfig;
use codic_core::ops::{CodicOp, InDramMechanism, RowRegion};
use codic_core::pool::DevicePool;
use codic_dram::request::RowOpKind;
use codic_dram::{DramGeometry, MemRequest, MemoryController, ReqKind, TimingParams};
use codic_power::accounting;
use codic_secdealloc::ZeroingMechanism;

fn arg(flag: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

struct Measured {
    host_s: f64,
    dram_ns: f64,
    rows: u64,
    energy_nj: f64,
}

fn time<R>(reps: u64, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        out = f();
    }
    (t0.elapsed().as_secs_f64() / reps as f64, out)
}

/// Secure-deallocation serving: a batch of typed zeroing ops (one per
/// freed row) distributed over the pool.
fn secdealloc_batch(config: &DeviceConfig, shards: usize, rows: u64, reps: u64) -> Measured {
    let plan = InDramMechanism::plan(&ZeroingMechanism::Codic, RowRegion::new(0, rows));
    let (host_s, outcome) = time(reps, || {
        let mut pool = DevicePool::new(shards, config);
        pool.execute_all(&plan).expect("zeroing is in range")
    });
    Measured {
        host_s,
        dram_ns: outcome.finish_ns(),
        rows: outcome.ops() as u64,
        energy_nj: outcome.energy_nj(),
    }
}

/// Cold-boot destruction: every shard sweeps its own module slice with
/// the event-driven fast path.
fn coldboot_sweep(config: &DeviceConfig, shards: usize, reps: u64) -> Measured {
    let proto: CodicOp = DestructionMechanism::Codic
        .op_for_row(0)
        .expect("CODIC destruction is in-DRAM");
    let timing = config.timing;
    let (host_s, reports) = time(reps, || {
        let mut pool = DevicePool::new(shards, config);
        pool.sweep_all_rows(proto).expect("sweep is authorized")
    });
    let rows: u64 = reports.iter().map(|r| r.rows).sum();
    let dram_ns = reports
        .iter()
        .map(|r| timing.ns(r.finish_cycle))
        .fold(0.0, f64::max);
    Measured {
        host_s,
        dram_ns,
        rows,
        energy_nj: reports.iter().map(|r| r.energy_nj).sum(),
    }
}

/// Streams `rows` row operations of `kind` through one controller —
/// consecutive rows rotating over the banks, queue refilled as slots free
/// — driven either cycle-by-cycle or event-to-event. Returns the cycle
/// the last row finished.
fn stream_sweep(kind: RowOpKind, rows: u64, timing: &TimingParams, event_driven: bool) -> u64 {
    let mut mc = MemoryController::new(DramGeometry::module_mib(64), *timing);
    mc.set_refresh_enabled(false);
    let busy = accounting::row_op_busy_cycles(kind, timing);
    let mut pushed = 0u64;
    while pushed < rows {
        let req = MemRequest::new(
            pushed * DramGeometry::ROW_BYTES,
            ReqKind::RowOp {
                op: kind,
                busy_cycles: busy,
            },
        );
        if mc.push(req).is_ok() {
            pushed += 1;
        } else if event_driven {
            mc.step_event();
        } else {
            // The reference driver: schedules unconditionally every
            // cycle, exactly the pre-event-engine tick.
            mc.tick_reference();
        }
    }
    if event_driven {
        mc.run_to_idle()
    } else {
        while !mc.is_idle() {
            mc.tick_reference();
        }
        mc.take_completions()
            .iter()
            .map(|c| c.finish_cycle)
            .max()
            .unwrap_or(0)
    }
}

struct EngineComparison {
    kind: RowOpKind,
    rows: u64,
    finish_cycle: u64,
    tick_s: f64,
    event_s: f64,
}

/// Runs the identical sweep workload on both engines, asserting
/// bit-identical DRAM time.
fn compare_engines(
    kind: RowOpKind,
    rows: u64,
    reps: u64,
    timing: &TimingParams,
) -> EngineComparison {
    let (tick_s, tick_finish) = time(reps, || stream_sweep(kind, rows, timing, false));
    let (event_s, event_finish) = time(reps, || stream_sweep(kind, rows, timing, true));
    assert_eq!(
        tick_finish, event_finish,
        "event engine diverged from tick engine on the {kind:?} sweep"
    );
    EngineComparison {
        kind,
        rows,
        finish_cycle: event_finish,
        tick_s,
        event_s,
    }
}

fn print_engine_entry(c: &EngineComparison, timing: &TimingParams, last: bool) {
    println!("    {{");
    println!("      \"workload\": \"engine_sweep_{:?}\",", c.kind);
    println!("      \"rows\": {},", c.rows);
    println!(
        "      \"dram_ms\": {:.4},",
        timing.ns(c.finish_cycle) * 1e-6
    );
    println!("      \"tick_engine_host_s\": {:.4},", c.tick_s);
    println!("      \"event_engine_host_s\": {:.4},", c.event_s);
    println!(
        "      \"events_vs_cycles_speedup\": {:.2}",
        c.tick_s / c.event_s
    );
    println!("    }}{}", if last { "" } else { "," });
}

fn print_entry(name: &str, shards: usize, m: &Measured, last: bool) {
    println!("    {{");
    println!("      \"workload\": \"{name}\",");
    println!("      \"shards\": {shards},");
    println!("      \"rows\": {},", m.rows);
    println!("      \"host_s\": {:.4},", m.host_s);
    println!("      \"dram_ms\": {:.4},", m.dram_ns * 1e-6);
    println!(
        "      \"host_rows_per_s\": {:.0},",
        m.rows as f64 / m.host_s
    );
    println!(
        "      \"dram_rows_per_s\": {:.0},",
        m.rows as f64 / (m.dram_ns * 1e-9)
    );
    println!("      \"energy_mj\": {:.4}", m.energy_nj * 1e-6);
    println!("    }}{}", if last { "" } else { "," });
}

fn main() {
    let geometry = DramGeometry::module_mib(64);
    let timing = TimingParams::ddr3_1600_11();
    if has_flag("--quick") {
        // CI smoke: the event engine must report the same DRAM time as
        // the tick engine on the sweep workload (compare_engines asserts,
        // so a divergence exits non-zero).
        let rows = arg("--rows").unwrap_or(1024).min(geometry.total_rows());
        let codic = compare_engines(RowOpKind::Codic, rows, 1, &timing);
        let lisa = compare_engines(RowOpKind::LisaClone, rows, 1, &timing);
        println!("{{");
        println!("  \"bench\": \"device_engine_smoke\",");
        println!("  \"results\": [");
        print_engine_entry(&codic, &timing, false);
        print_engine_entry(&lisa, &timing, true);
        println!("  ]");
        println!("}}");
        return;
    }
    // The batch serves one module-sized address space; rows beyond it
    // would (correctly) be rejected by the safe-range policy.
    let rows = arg("--rows").unwrap_or(8192).min(geometry.total_rows());
    let max_shards = arg("--shards").unwrap_or(4).max(1) as usize;
    let reps = arg("--reps").unwrap_or(3);
    let config = DeviceConfig::new(geometry, timing).with_refresh(false);

    println!("{{");
    println!("  \"bench\": \"device_pool_throughput\",");
    println!("  \"module_mib\": 64,");
    println!("  \"rows_per_batch\": {rows},");
    println!("  \"reps\": {reps},");
    println!("  \"threads_available\": {},", rayon::current_num_threads());
    println!("  \"results\": [");
    let sec1 = secdealloc_batch(&config, 1, rows, reps);
    print_entry("secdealloc_zeroing", 1, &sec1, false);
    let secn = secdealloc_batch(&config, max_shards, rows, reps);
    print_entry("secdealloc_zeroing", max_shards, &secn, false);
    let cb1 = coldboot_sweep(&config, 1, reps);
    print_entry("coldboot_destruction", 1, &cb1, false);
    let cbn = coldboot_sweep(&config, max_shards, reps);
    print_entry("coldboot_destruction", max_shards, &cbn, false);
    // Event-vs-tick engine comparison on the idle-heavy destruction
    // sweeps (LISA-clone is the idle-heaviest: the longest per-row bank
    // occupancy and a double-activation rank window).
    let codic = compare_engines(RowOpKind::Codic, rows, reps, &timing);
    print_engine_entry(&codic, &timing, false);
    let lisa = compare_engines(RowOpKind::LisaClone, rows, reps, &timing);
    print_engine_entry(&lisa, &timing, true);
    println!("  ],");
    println!(
        "  \"dram_speedup_secdealloc\": {:.2},",
        (sec1.dram_ns / sec1.rows as f64) / (secn.dram_ns / secn.rows as f64)
    );
    println!(
        "  \"host_speedup_coldboot\": {:.2},",
        (cb1.host_s / cb1.rows as f64) / (cbn.host_s / cbn.rows as f64)
    );
    println!(
        "  \"events_vs_cycles_speedup\": {:.2}",
        lisa.tick_s / lisa.event_s
    );
    println!("}}");
}
