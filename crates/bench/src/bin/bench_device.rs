//! Measures batched `DevicePool` throughput on the two row-granular
//! serving workloads — secure-deallocation zeroing and cold-boot
//! full-module destruction — and prints a JSON summary, the source of the
//! repository's `BENCH_device.json`.
//!
//! Two rates are reported per workload:
//!
//! - `host_rows_per_s`: rows processed per second of wall-clock host time
//!   (simulator throughput; scales with cores via the sharded pool);
//! - `dram_rows_per_s`: rows per second of *simulated DRAM time* (device
//!   throughput; scales with shards because each shard is an independent
//!   channel with its own tFAW window).
//!
//! Capacity models differ per workload (see `DevicePool` docs): the
//! secdealloc batch serves one 64 MB module through N channel shards
//! (`--rows` is clamped to the module's row count), while the cold-boot
//! sweep destroys one full module *per* shard (N modules total).
//!
//! A third comparison pits the **event engine against the tick engine**
//! on the idle-heavy full-module destruction sweeps: the identical
//! streaming workload is driven once cycle-by-cycle
//! (`MemoryController::tick`) and once event-to-event
//! (`MemoryController::step_event`), asserting bit-identical DRAM time
//! and reporting the wall-clock speedup (`events_vs_cycles`).
//!
//! A fourth — the **queue-depth scaling workload** — streams a mixed
//! Read/Write/RowOp batch at outstanding depths 64 → 8192 through three
//! paths serving the identical request stream: the pre-refactor O(n)
//! scheduler preserved in [`codic_bench::legacy`] (the measurement
//! baseline), the live indexed scheduler at the raw controller level,
//! and the full `CodicDevice` async path (`submit_async` + arena-backed
//! futures). Legacy and live must agree bit-for-bit on DRAM time and
//! command statistics; the report carries their host-throughput ratio
//! (`sched_speedup`).
//!
//! A fifth — **trace-replay serving** — plays a generated mixed
//! secdealloc/coldboot trace over a real Unix socket against an
//! in-process `codic_server::ReplayServer` (framed batches in, typed
//! completions out) and reports the client-observed serving rate; the
//! first session is verified bit-identical against the in-process
//! reference replay. Four variants serve the identical trace: the
//! default batched v3 `Events` transport at 1 and N shards, the
//! unbatched v2 transport (one frame per completion), and the
//! worker-pipelined engine (one thread per shard behind SPSC rings) —
//! all pinned to one session checksum, so the speedups compare
//! identical streams.
//!
//! A sixth — **bulk-bitwise compute serving** — replays the
//! deterministic SIMD workload (planned vector AND/OR/XOR/ADD over
//! vertically bit-sliced lanes) inside a compute region at the top of
//! the module, with the first session's row fingerprints verified
//! against the in-process reference — the measured stream is
//! value-checked, not just cycle-checked.
//!
//! Usage: `cargo run --release --bin bench_device [-- --rows N --shards S --reps R]`
//!
//! `--quick` runs only the engine cross-checks — the sweep tick-vs-event
//! comparison, the queue-depth workload's tick-vs-event and
//! legacy-vs-live identity checks, the batched-vs-unbatched and
//! workers-vs-inline transport checksum identity, and one value-verified
//! bulk-bitwise serving session — and exits non-zero on any divergence;
//! the CI smoke step.

use std::time::Instant;

use codic_bench::legacy::LegacyController;
use codic_coldboot::DestructionMechanism;
use codic_core::device::{CodicDevice, DeviceConfig};
use codic_core::executor::block_on;
use codic_core::ops::{CodicOp, InDramMechanism, RowRegion, VariantId};
use codic_core::pool::DevicePool;
use codic_dram::request::{QueueFull, ReqId, RowOpKind};
use codic_dram::{DramGeometry, MemRequest, MemStats, MemoryController, ReqKind, TimingParams};
use codic_power::accounting;
use codic_secdealloc::ZeroingMechanism;
use codic_server::client::{replay, verify_against_reference};
use codic_server::proto::SessionParams;
use codic_server::server::{ReplayServer, ServerConfig};
use codic_server::trace::{generate_bulk_bitwise, generate_mixed};

fn arg(flag: &str) -> Option<u64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

struct Measured {
    host_s: f64,
    dram_ns: f64,
    rows: u64,
    energy_nj: f64,
}

fn time<R>(reps: u64, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut out = f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        out = f();
    }
    (t0.elapsed().as_secs_f64() / reps as f64, out)
}

/// Secure-deallocation serving: a batch of typed zeroing ops (one per
/// freed row) distributed over the pool.
fn secdealloc_batch(config: &DeviceConfig, shards: usize, rows: u64, reps: u64) -> Measured {
    let plan = InDramMechanism::plan(&ZeroingMechanism::Codic, RowRegion::new(0, rows));
    let (host_s, outcome) = time(reps, || {
        let mut pool = DevicePool::new(shards, config);
        pool.execute_all(&plan).expect("zeroing is in range")
    });
    Measured {
        host_s,
        dram_ns: outcome.finish_ns(),
        rows: outcome.ops() as u64,
        energy_nj: outcome.energy_nj(),
    }
}

/// Cold-boot destruction: every shard sweeps its own module slice with
/// the event-driven fast path.
fn coldboot_sweep(config: &DeviceConfig, shards: usize, reps: u64) -> Measured {
    let proto: CodicOp = DestructionMechanism::Codic
        .op_for_row(0)
        .expect("CODIC destruction is in-DRAM");
    let timing = config.timing;
    let (host_s, reports) = time(reps, || {
        let mut pool = DevicePool::new(shards, config);
        pool.sweep_all_rows(proto).expect("sweep is authorized")
    });
    let rows: u64 = reports.iter().map(|r| r.rows).sum();
    let dram_ns = reports
        .iter()
        .map(|r| timing.ns(r.finish_cycle))
        .fold(0.0, f64::max);
    Measured {
        host_s,
        dram_ns,
        rows,
        energy_nj: reports.iter().map(|r| r.energy_nj).sum(),
    }
}

/// Trace-replay serving: a generated mixed secdealloc/coldboot trace
/// played over a real Unix socket against an in-process `ReplayServer`,
/// measuring the **client-observed** host throughput through the full
/// framed transport (Hello/Batch/Completion/Summary). The first session
/// is additionally verified bit-identical against the in-process
/// reference replay, so the measured path is the checked path.
///
/// `version` picks the wire transport (3 = batched `Events` frames, 2 =
/// one frame per completion) and `workers` the engine (pipelined shard
/// workers vs inline pool); the session checksum is returned so the
/// caller can pin all variants to one identical stream.
fn replay_serving(
    shards: usize,
    ops_count: u64,
    reps: u64,
    timing: &TimingParams,
    version: u16,
    workers: bool,
) -> (Measured, u64) {
    let socket = std::env::temp_dir().join(format!(
        "codic-bench-{}-{}-v{}{}.sock",
        std::process::id(),
        shards,
        version,
        if workers { "-w" } else { "" }
    ));
    let config = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    let server = ReplayServer::bind(&socket, config).expect("bind bench socket");
    // One warm-up session (inside `time`) plus `reps` measured ones.
    let sessions = reps as usize + 1;
    let serving = std::thread::spawn(move || server.serve_connections(sessions).expect("serve"));
    let ops = generate_mixed(ops_count as usize, 8192, 42);
    let batch = 1024;
    let hello = SessionParams {
        shards: shards as u16,
        version,
        ..SessionParams::defaults()
    };
    let mut first = true;
    let (host_s, report) = time(reps, || {
        let report = replay(&socket, &hello, &ops, batch).expect("bench session");
        if first {
            verify_against_reference(&report, &ops, batch).expect("served stream diverged");
            first = false;
        }
        report
    });
    serving.join().expect("server thread");
    let measured = Measured {
        host_s,
        dram_ns: timing.ns(report.summary.max_finish_cycle),
        rows: report.summary.ops,
        energy_nj: report.summary.total_energy_nj,
    };
    (measured, report.checksum)
}

/// Shared-fleet multi-tenant serving: `tenants` concurrent threads each
/// lease one single-shard slot of one [`FleetHandle`](codic_core::fleet::FleetHandle) and replay a
/// private mixed trace through the deficit-round-robin scheduler,
/// batch by batch. Reports aggregate host rows/s across all tenants
/// and the p99 per-batch admission-to-drain latency — the fairness
/// number a co-tenant actually feels. Every tenant's event count is
/// asserted against its accepted ops (exactly-once delivery under
/// contention); the bit-identity of each stream to a private pool is
/// pinned separately by the fleet test battery.
fn shared_fleet_serving(tenants: usize, ops_per_tenant: u64, reps: u64) -> (Measured, f64) {
    use codic_core::fleet::{FleetConfig, FleetHandle};
    let geometry = DramGeometry::module_mib(64);
    let timing = TimingParams::ddr3_1600_11();
    let device = DeviceConfig::new(geometry, timing).with_refresh(false);
    let batch = 1024usize;
    let quota = 1024usize;
    let traces: Vec<Vec<CodicOp>> = (0..tenants as u64)
        .map(|t| generate_mixed(ops_per_tenant as usize, 8192, 42 + t))
        .collect();
    let mut all_latencies: Vec<f64> = Vec::new();
    let mut total_rows = 0u64;
    let mut total_energy = 0.0f64;
    let mut dram_ns = 0.0f64;
    let (host_s, ()) = time(reps, || {
        let fleet =
            FleetHandle::new(FleetConfig::new(tenants, 1, device.clone()).with_quota(quota));
        total_rows = 0;
        total_energy = 0.0;
        dram_ns = 0.0;
        all_latencies.clear();
        let per_tenant = std::thread::scope(|scope| {
            let handles: Vec<_> = traces
                .iter()
                .map(|ops| {
                    let fleet = fleet.clone();
                    scope.spawn(move || {
                        let id = fleet.acquire_with(1, quota).expect("slot free");
                        let mut latencies = Vec::with_capacity(ops.len() / batch + 1);
                        let mut events = 0usize;
                        let mut accepted = 0u64;
                        let mut energy = 0.0f64;
                        for chunk in ops.chunks(batch) {
                            let t0 = Instant::now();
                            let (receipt, drained) =
                                fleet.submit(id, chunk).expect("fleet admission");
                            latencies.push(t0.elapsed().as_secs_f64());
                            accepted += u64::from(receipt.accepted);
                            events += drained.len();
                            energy += drained
                                .iter()
                                .map(|e| e.completion.cost.energy_nj)
                                .sum::<f64>();
                        }
                        let (now, tail) = fleet.flush(id);
                        events += tail.len();
                        energy += tail
                            .iter()
                            .map(|e| e.completion.cost.energy_nj)
                            .sum::<f64>();
                        assert_eq!(
                            events as u64, accepted,
                            "a fleet tenant lost or duplicated events under contention"
                        );
                        fleet.release(id);
                        (accepted, energy, now, latencies)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("tenant thread"))
                .collect::<Vec<_>>()
        });
        for (rows, energy, now, latencies) in per_tenant {
            total_rows += rows;
            total_energy += energy;
            dram_ns = dram_ns.max(timing.ns(now));
            all_latencies.extend(latencies);
        }
    });
    all_latencies.sort_by(f64::total_cmp);
    let p99 = all_latencies[(all_latencies.len() - 1).min(all_latencies.len() * 99 / 100)];
    (
        Measured {
            host_s,
            dram_ns,
            rows: total_rows,
            energy_nj: total_energy,
        },
        p99,
    )
}

fn print_fleet_entry(tenants: usize, m: &Measured, p99_s: f64, last: bool) {
    println!("    {{");
    println!("      \"workload\": \"shared_fleet\",");
    println!("      \"tenants\": {tenants},");
    println!("      \"shards_per_tenant\": 1,");
    println!("      \"rows\": {},", m.rows);
    println!("      \"host_s\": {:.4},", m.host_s);
    println!(
        "      \"host_rows_per_s\": {:.0},",
        m.rows as f64 / m.host_s
    );
    println!("      \"p99_batch_ms\": {:.3},", p99_s * 1e3);
    println!("      \"energy_mj\": {:.4}", m.energy_nj * 1e-6);
    println!("    }}{}", if last { "" } else { "," });
}

/// The `--fleet-only` CI smoke and the full run's fleet sweep: tenants
/// 1 → 16 on one shared fleet, one shard each.
fn fleet_sweep(ops_per_tenant: u64, reps: u64) -> Vec<(usize, Measured, f64)> {
    [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|tenants| {
            let (m, p99) = shared_fleet_serving(tenants, ops_per_tenant, reps);
            (tenants, m, p99)
        })
        .collect()
}

/// Bulk-bitwise compute serving: the deterministic SIMD workload
/// (planned vector AND/OR/XOR/ADD over 8-bit lanes) replayed inside a
/// 64-row compute region at the top of the module, fingerprint-carrying
/// completions and all. The first session is verified bit-identical —
/// including every row fingerprint, i.e. computed *values* — against
/// the in-process reference replay.
fn bulk_bitwise_serving(
    shards: usize,
    rounds: usize,
    reps: u64,
    timing: &TimingParams,
) -> Measured {
    const COMPUTE_ROWS: u64 = 64;
    let geometry = DramGeometry::module_mib(64);
    let base = (geometry.total_rows() - COMPUTE_ROWS) * DramGeometry::ROW_BYTES;
    let ops = generate_bulk_bitwise(rounds, base, 8, 42);
    let socket = std::env::temp_dir().join(format!(
        "codic-bench-bitwise-{}-{}.sock",
        std::process::id(),
        shards
    ));
    let server = ReplayServer::bind(&socket, ServerConfig::default()).expect("bind bench socket");
    let sessions = reps as usize + 1;
    let serving = std::thread::spawn(move || server.serve_connections(sessions).expect("serve"));
    let batch = 1024;
    let hello = SessionParams {
        shards: shards as u16,
        compute_rows: COMPUTE_ROWS as u32,
        ..SessionParams::defaults()
    };
    let mut first = true;
    let (host_s, report) = time(reps, || {
        let report = replay(&socket, &hello, &ops, batch).expect("bitwise bench session");
        if first {
            verify_against_reference(&report, &ops, batch).expect("served values diverged");
            first = false;
        }
        report
    });
    serving.join().expect("server thread");
    Measured {
        host_s,
        dram_ns: timing.ns(report.summary.max_finish_cycle),
        rows: report.summary.ops,
        energy_nj: report.summary.total_energy_nj,
    }
}

/// Streams `rows` row operations of `kind` through one controller —
/// consecutive rows rotating over the banks, queue refilled as slots free
/// — driven either cycle-by-cycle or event-to-event. Returns the cycle
/// the last row finished.
fn stream_sweep(kind: RowOpKind, rows: u64, timing: &TimingParams, event_driven: bool) -> u64 {
    let mut mc = MemoryController::new(DramGeometry::module_mib(64), *timing);
    mc.set_refresh_enabled(false);
    let busy = accounting::row_op_busy_cycles(kind, timing);
    let mut pushed = 0u64;
    while pushed < rows {
        let req = MemRequest::new(
            pushed * DramGeometry::ROW_BYTES,
            ReqKind::RowOp {
                op: kind,
                busy_cycles: busy,
            },
        );
        if mc.push(req).is_ok() {
            pushed += 1;
        } else if event_driven {
            mc.step_event();
        } else {
            // The reference driver: schedules unconditionally every
            // cycle, exactly the pre-event-engine tick.
            mc.tick_reference();
        }
    }
    if event_driven {
        mc.run_to_idle()
    } else {
        while !mc.is_idle() {
            mc.tick_reference();
        }
        mc.take_completions()
            .iter()
            .map(|c| c.finish_cycle)
            .max()
            .unwrap_or(0)
    }
}

/// The common driving surface of the live and the legacy scheduler, so
/// the queue-depth workload runs byte-for-byte the same loop on both.
trait SchedulerUnderTest {
    fn push(&mut self, request: MemRequest) -> Result<ReqId, QueueFull>;
    fn step_event(&mut self) -> bool;
    fn tick_reference(&mut self);
    fn run_to_idle(&mut self) -> u64;
    fn is_idle(&self) -> bool;
    fn stats(&self) -> &MemStats;
    fn set_refresh_enabled(&mut self, enabled: bool);
    fn take_completions(&mut self) -> Vec<codic_dram::controller::Completion>;
    fn can_accept(&self, kind: ReqKind) -> bool;
}

macro_rules! impl_scheduler_under_test {
    ($ty:ty) => {
        impl SchedulerUnderTest for $ty {
            fn push(&mut self, request: MemRequest) -> Result<ReqId, QueueFull> {
                <$ty>::push(self, request)
            }
            fn step_event(&mut self) -> bool {
                <$ty>::step_event(self)
            }
            fn tick_reference(&mut self) {
                <$ty>::tick_reference(self)
            }
            fn run_to_idle(&mut self) -> u64 {
                <$ty>::run_to_idle(self)
            }
            fn is_idle(&self) -> bool {
                <$ty>::is_idle(self)
            }
            fn stats(&self) -> &MemStats {
                <$ty>::stats(self)
            }
            fn set_refresh_enabled(&mut self, enabled: bool) {
                <$ty>::set_refresh_enabled(self, enabled)
            }
            fn take_completions(&mut self) -> Vec<codic_dram::controller::Completion> {
                <$ty>::take_completions(self)
            }
            fn can_accept(&self, kind: ReqKind) -> bool {
                <$ty>::can_accept(self, kind)
            }
        }
    };
}

impl_scheduler_under_test!(MemoryController);
impl_scheduler_under_test!(LegacyController);

/// The mixed queue-depth service stream: one DetZero CODIC command, one
/// read, one write, and one two-activation RowClone per group of four,
/// rows rotating over the module so every bank and both row-op
/// activation weights stay exercised. A single CODIC variant keeps MRS
/// barriers out of the steady state.
fn mixed_ops(outstanding: u64, geometry: &DramGeometry) -> Vec<CodicOp> {
    let rows = geometry.total_rows();
    (0..outstanding)
        .map(|i| {
            let row_addr = (i % rows) * DramGeometry::ROW_BYTES;
            match i % 4 {
                0 => CodicOp::command(VariantId::DetZero, row_addr),
                1 => CodicOp::read(row_addr + 64),
                2 => CodicOp::write(row_addr + 128),
                _ => CodicOp::RowCloneZero { row_addr },
            }
        })
        .collect()
}

/// Lowers the typed stream to raw controller requests (identical
/// addresses and busy cycles on every path).
fn mixed_requests(ops: &[CodicOp], timing: &TimingParams) -> Vec<MemRequest> {
    ops.iter()
        .map(|op| {
            let kind = match op.row_op_kind() {
                Some(kind) => ReqKind::RowOp {
                    op: kind,
                    busy_cycles: accounting::row_op_busy_cycles(kind, timing),
                },
                None => {
                    if matches!(op, CodicOp::Read { .. }) {
                        ReqKind::Read
                    } else {
                        ReqKind::Write
                    }
                }
            };
            MemRequest::new(op.row_addr(), kind)
        })
        .collect()
}

/// Streams `requests` through `scheduler` with the 64-deep queues
/// refilled as slots free, event-driven or via the reference tick loop;
/// returns the cycle the last request finished.
fn drive_stream<S: SchedulerUnderTest>(
    scheduler: &mut S,
    requests: &[MemRequest],
    event_driven: bool,
) -> u64 {
    scheduler.set_refresh_enabled(false);
    for &request in requests {
        // Poll capacity rather than counting bounced pushes: the retry
        // frequency differs between the tick and event drivers, and a
        // bounced push shows up in the (driver-dependent)
        // `queue_rejections` statistic the identity checks compare.
        while !scheduler.can_accept(request.kind) {
            if event_driven {
                scheduler.step_event();
            } else {
                scheduler.tick_reference();
            }
        }
        scheduler.push(request).expect("capacity was just checked");
    }
    if event_driven {
        scheduler.run_to_idle();
    } else {
        while !scheduler.is_idle() {
            scheduler.tick_reference();
        }
    }
    // Derive the finish cycle from the completions themselves, so both
    // driving modes report the identical quantity.
    scheduler
        .take_completions()
        .iter()
        .map(|c| c.finish_cycle)
        .max()
        .unwrap_or(0)
}

struct DepthMeasured {
    outstanding: u64,
    finish_cycle: u64,
    commands: u64,
    legacy_s: f64,
    live_mc_s: f64,
    device_s: f64,
    energy_nj: f64,
}

/// Runs the queue-depth workload at one outstanding depth on all three
/// paths, asserting the legacy and live schedulers agree bit-for-bit.
fn queue_depth_at(
    outstanding: u64,
    reps: u64,
    geometry: DramGeometry,
    timing: &TimingParams,
) -> DepthMeasured {
    let ops = mixed_ops(outstanding, &geometry);
    let requests = mixed_requests(&ops, timing);

    let (legacy_s, (legacy_finish, legacy_stats)) = time(reps, || {
        let mut mc = LegacyController::new(geometry, *timing);
        let finish = drive_stream(&mut mc, &requests, true);
        (finish, *SchedulerUnderTest::stats(&mc))
    });
    let (live_mc_s, (live_finish, live_stats)) = time(reps, || {
        let mut mc = MemoryController::new(geometry, *timing);
        let finish = drive_stream(&mut mc, &requests, true);
        (finish, *SchedulerUnderTest::stats(&mc))
    });
    assert_eq!(
        legacy_finish, live_finish,
        "indexed scheduler diverged from the legacy scheduler at depth {outstanding}"
    );
    assert_eq!(
        legacy_stats, live_stats,
        "indexed scheduler's command counts diverged at depth {outstanding}"
    );

    let config = DeviceConfig::new(geometry, *timing).with_refresh(false);
    let (device_s, (device_finish, energy_nj)) = time(reps, || {
        let mut device = CodicDevice::new(config.clone());
        let futures: Vec<_> = ops
            .iter()
            .map(|&op| device.submit_async(op).expect("stream is authorized"))
            .collect();
        device.run_to_idle();
        let mut finish = 0u64;
        let mut energy = 0.0f64;
        for future in futures {
            let completion = block_on(future);
            finish = finish.max(completion.finish_cycle);
            energy += completion.cost.energy_nj;
        }
        (finish, energy)
    });
    assert_eq!(
        device_finish, live_finish,
        "device async path diverged from the raw scheduler at depth {outstanding}"
    );

    DepthMeasured {
        outstanding,
        finish_cycle: live_finish,
        commands: live_stats.total_commands(),
        legacy_s,
        live_mc_s,
        device_s,
        energy_nj,
    }
}

/// The `--quick` identity checks on the queue-depth workload: the live
/// scheduler's tick and event drivers must agree, and the legacy
/// scheduler must agree with the live one — all three bit-identical.
fn queue_depth_smoke(outstanding: u64, geometry: DramGeometry, timing: &TimingParams) -> u64 {
    let ops = mixed_ops(outstanding, &geometry);
    let requests = mixed_requests(&ops, timing);
    let run = |event_driven: bool| {
        let mut mc = MemoryController::new(geometry, *timing);
        let finish = drive_stream(&mut mc, &requests, event_driven);
        (finish, *SchedulerUnderTest::stats(&mc))
    };
    let (tick_finish, tick_stats) = run(false);
    let (event_finish, event_stats) = run(true);
    assert_eq!(
        (tick_finish, tick_stats),
        (event_finish, event_stats),
        "tick and event engines diverged on the depth-{outstanding} mixed workload"
    );
    let mut legacy = LegacyController::new(geometry, *timing);
    let legacy_finish = drive_stream(&mut legacy, &requests, true);
    assert_eq!(
        (legacy_finish, *SchedulerUnderTest::stats(&legacy)),
        (event_finish, event_stats),
        "legacy and indexed schedulers diverged on the depth-{outstanding} mixed workload"
    );
    event_finish
}

fn print_depth_entry(m: &DepthMeasured, timing: &TimingParams, last: bool) {
    println!("    {{");
    println!("      \"workload\": \"queue_depth_mixed\",");
    println!("      \"outstanding\": {},", m.outstanding);
    println!("      \"commands\": {},", m.commands);
    println!(
        "      \"dram_ms\": {:.4},",
        timing.ns(m.finish_cycle) * 1e-6
    );
    println!("      \"legacy_sched_host_s\": {:.4},", m.legacy_s);
    println!("      \"indexed_sched_host_s\": {:.4},", m.live_mc_s);
    println!("      \"device_async_host_s\": {:.4},", m.device_s);
    println!(
        "      \"legacy_host_rows_per_s\": {:.0},",
        m.outstanding as f64 / m.legacy_s
    );
    println!(
        "      \"indexed_host_rows_per_s\": {:.0},",
        m.outstanding as f64 / m.live_mc_s
    );
    println!(
        "      \"device_async_host_rows_per_s\": {:.0},",
        m.outstanding as f64 / m.device_s
    );
    println!("      \"sched_speedup\": {:.2},", m.legacy_s / m.live_mc_s);
    println!("      \"energy_mj\": {:.4}", m.energy_nj * 1e-6);
    println!("    }}{}", if last { "" } else { "," });
}

struct EngineComparison {
    kind: RowOpKind,
    rows: u64,
    finish_cycle: u64,
    tick_s: f64,
    event_s: f64,
}

/// Runs the identical sweep workload on both engines, asserting
/// bit-identical DRAM time.
fn compare_engines(
    kind: RowOpKind,
    rows: u64,
    reps: u64,
    timing: &TimingParams,
) -> EngineComparison {
    let (tick_s, tick_finish) = time(reps, || stream_sweep(kind, rows, timing, false));
    let (event_s, event_finish) = time(reps, || stream_sweep(kind, rows, timing, true));
    assert_eq!(
        tick_finish, event_finish,
        "event engine diverged from tick engine on the {kind:?} sweep"
    );
    EngineComparison {
        kind,
        rows,
        finish_cycle: event_finish,
        tick_s,
        event_s,
    }
}

fn print_engine_entry(c: &EngineComparison, timing: &TimingParams, last: bool) {
    println!("    {{");
    println!("      \"workload\": \"engine_sweep_{:?}\",", c.kind);
    println!("      \"rows\": {},", c.rows);
    println!(
        "      \"dram_ms\": {:.4},",
        timing.ns(c.finish_cycle) * 1e-6
    );
    println!("      \"tick_engine_host_s\": {:.4},", c.tick_s);
    println!("      \"event_engine_host_s\": {:.4},", c.event_s);
    println!(
        "      \"events_vs_cycles_speedup\": {:.2}",
        c.tick_s / c.event_s
    );
    println!("    }}{}", if last { "" } else { "," });
}

fn print_entry(name: &str, shards: usize, m: &Measured, last: bool) {
    println!("    {{");
    println!("      \"workload\": \"{name}\",");
    println!("      \"shards\": {shards},");
    println!("      \"rows\": {},", m.rows);
    println!("      \"host_s\": {:.4},", m.host_s);
    println!("      \"dram_ms\": {:.4},", m.dram_ns * 1e-6);
    println!(
        "      \"host_rows_per_s\": {:.0},",
        m.rows as f64 / m.host_s
    );
    println!(
        "      \"dram_rows_per_s\": {:.0},",
        m.rows as f64 / (m.dram_ns * 1e-9)
    );
    println!("      \"energy_mj\": {:.4}", m.energy_nj * 1e-6);
    println!("    }}{}", if last { "" } else { "," });
}

fn main() {
    let geometry = DramGeometry::module_mib(64);
    let timing = TimingParams::ddr3_1600_11();
    if has_flag("--quick") {
        // CI smoke: the event engine must report the same DRAM time as
        // the tick engine on the sweep workload (compare_engines asserts,
        // so a divergence exits non-zero), and the queue-depth mixed
        // workload must be bit-identical across tick vs event drivers
        // and legacy vs indexed schedulers (queue_depth_smoke asserts).
        let rows = arg("--rows").unwrap_or(1024).min(geometry.total_rows());
        let codic = compare_engines(RowOpKind::Codic, rows, 1, &timing);
        let lisa = compare_engines(RowOpKind::LisaClone, rows, 1, &timing);
        let depth = arg("--outstanding").unwrap_or(512);
        let depth_finish = queue_depth_smoke(depth, geometry, &timing);
        // One bulk-bitwise compute session over the socket transport,
        // value-verified against the scalar-backed reference replay
        // (bulk_bitwise_serving asserts, so a divergence exits non-zero).
        let bitwise = bulk_bitwise_serving(1, 1, 1, &timing);
        // Transport identity: the same trace served over the batched v3
        // Events transport, the unbatched v2 transport, and the
        // worker-pipelined engine must land on one session checksum —
        // the wire framing and the threading change throughput only.
        let (_, batched) = replay_serving(2, 2048, 1, &timing, 3, false);
        let (_, unbatched) = replay_serving(2, 2048, 1, &timing, 2, false);
        let (_, pipelined) = replay_serving(2, 2048, 1, &timing, 3, true);
        assert_eq!(
            batched, unbatched,
            "batched v3 and unbatched v2 transports diverged"
        );
        assert_eq!(
            batched, pipelined,
            "worker-pipelined serving diverged from the inline engine"
        );
        println!("{{");
        println!("  \"bench\": \"device_engine_smoke\",");
        println!("  \"results\": [");
        print_engine_entry(&codic, &timing, false);
        print_engine_entry(&lisa, &timing, true);
        println!("  ],");
        println!("  \"queue_depth_smoke\": {{");
        println!("    \"outstanding\": {depth},");
        println!("    \"finish_cycle\": {depth_finish},");
        println!("    \"identical\": [\"tick_vs_event\", \"legacy_vs_indexed\"]");
        println!("  }},");
        println!("  \"transport_smoke\": {{");
        println!("    \"checksum\": \"{batched:#018x}\",");
        println!("    \"identical\": [\"batched_vs_unbatched\", \"workers_vs_inline\"]");
        println!("  }},");
        println!("  \"bulk_bitwise_smoke\": {{");
        println!("    \"ops\": {},", bitwise.rows);
        println!("    \"dram_ms\": {:.4},", bitwise.dram_ns * 1e-6);
        println!("    \"value_verified\": true");
        println!("  }}");
        println!("}}");
        return;
    }
    if has_flag("--fleet-only") {
        // CI smoke: the DRR scheduler under real thread contention,
        // tenants 1 → 16 on one shared single-shard-per-slot fleet.
        // Exactly-once delivery is asserted inside the workload.
        let reps = arg("--reps").unwrap_or(1);
        let ops = arg("--fleet-ops").unwrap_or(4096);
        let sweep = fleet_sweep(ops, reps);
        println!("{{");
        println!("  \"bench\": \"shared_fleet_smoke\",");
        println!("  \"ops_per_tenant\": {ops},");
        println!("  \"results\": [");
        for (i, (tenants, m, p99)) in sweep.iter().enumerate() {
            print_fleet_entry(*tenants, m, *p99, i + 1 == sweep.len());
        }
        println!("  ]");
        println!("}}");
        return;
    }
    // The batch serves one module-sized address space; rows beyond it
    // would (correctly) be rejected by the safe-range policy.
    let rows = arg("--rows").unwrap_or(8192).min(geometry.total_rows());
    let max_shards = arg("--shards").unwrap_or(4).max(1) as usize;
    let reps = arg("--reps").unwrap_or(3);
    let config = DeviceConfig::new(geometry, timing).with_refresh(false);

    println!("{{");
    println!("  \"bench\": \"device_pool_throughput\",");
    println!("  \"module_mib\": 64,");
    println!("  \"rows_per_batch\": {rows},");
    println!("  \"reps\": {reps},");
    println!("  \"threads_available\": {},", rayon::current_num_threads());
    println!("  \"results\": [");
    let sec1 = secdealloc_batch(&config, 1, rows, reps);
    print_entry("secdealloc_zeroing", 1, &sec1, false);
    let secn = secdealloc_batch(&config, max_shards, rows, reps);
    print_entry("secdealloc_zeroing", max_shards, &secn, false);
    let cb1 = coldboot_sweep(&config, 1, reps);
    print_entry("coldboot_destruction", 1, &cb1, false);
    let cbn = coldboot_sweep(&config, max_shards, reps);
    print_entry("coldboot_destruction", max_shards, &cbn, false);
    // Event-vs-tick engine comparison on the idle-heavy destruction
    // sweeps (LISA-clone is the idle-heaviest: the longest per-row bank
    // occupancy and a double-activation rank window).
    let codic = compare_engines(RowOpKind::Codic, rows, reps, &timing);
    print_engine_entry(&codic, &timing, false);
    let lisa = compare_engines(RowOpKind::LisaClone, rows, reps, &timing);
    print_engine_entry(&lisa, &timing, false);
    // Queue-depth scaling: the same mixed stream through the legacy
    // scheduler, the indexed scheduler, and the device async path.
    let depths = [64u64, 512, 2048, 8192];
    let depth_results: Vec<DepthMeasured> = depths
        .iter()
        .map(|&d| queue_depth_at(d, reps, geometry, &timing))
        .collect();
    for m in &depth_results {
        print_depth_entry(m, &timing, false);
    }
    // Trace-replay serving over the Unix-socket transport (identity-
    // verified against the in-process reference on the first session).
    // Four variants over one trace: the default batched v3 transport at
    // 1 and N shards, the unbatched v2 transport, and the
    // worker-pipelined engine — every variant must land on the same
    // session checksum (the transport and the threading change
    // throughput only, never the stream).
    let serve_ops = 8 * rows;
    let (serve1, _) = replay_serving(1, serve_ops, reps, &timing, 3, false);
    print_entry("replay_serving", 1, &serve1, false);
    let (serven, serven_sum) = replay_serving(max_shards, serve_ops, reps, &timing, 3, false);
    print_entry("replay_serving", max_shards, &serven, false);
    let (unbatched, unbatched_sum) = replay_serving(max_shards, serve_ops, reps, &timing, 2, false);
    print_entry("replay_serving_unbatched", max_shards, &unbatched, false);
    let (workers, workers_sum) = replay_serving(max_shards, serve_ops, reps, &timing, 3, true);
    print_entry("replay_serving_workers", max_shards, &workers, false);
    assert_eq!(
        serven_sum, unbatched_sum,
        "batched v3 and unbatched v2 transports diverged"
    );
    assert_eq!(
        serven_sum, workers_sum,
        "worker-pipelined serving diverged from the inline engine"
    );
    // Shared-fleet multi-tenant serving: tenants 1 → 16 on one fleet,
    // one shard per slot, each tenant a thread replaying its own trace
    // through the deficit-round-robin scheduler.
    let fleet = fleet_sweep(2 * rows, reps);
    for (tenants, m, p99) in &fleet {
        print_fleet_entry(*tenants, m, *p99, false);
    }
    // Bulk-bitwise compute serving: the SIMD workload over the socket,
    // value-verified via row fingerprints on the first session.
    let bitwise1 = bulk_bitwise_serving(1, 4, reps, &timing);
    print_entry("bulk_bitwise", 1, &bitwise1, false);
    let bitwisen = bulk_bitwise_serving(max_shards, 4, reps, &timing);
    print_entry("bulk_bitwise", max_shards, &bitwisen, true);
    println!("  ],");
    println!(
        "  \"dram_speedup_secdealloc\": {:.2},",
        (sec1.dram_ns / sec1.rows as f64) / (secn.dram_ns / secn.rows as f64)
    );
    println!(
        "  \"host_speedup_coldboot\": {:.2},",
        (cb1.host_s / cb1.rows as f64) / (cbn.host_s / cbn.rows as f64)
    );
    println!(
        "  \"events_vs_cycles_speedup\": {:.2},",
        lisa.tick_s / lisa.event_s
    );
    let deepest = depth_results.last().expect("at least one depth");
    println!(
        "  \"sched_speedup_depth8192\": {:.2},",
        deepest.legacy_s / deepest.live_mc_s
    );
    println!(
        "  \"serve_speedup_depth8192\": {:.2},",
        deepest.legacy_s / deepest.device_s
    );
    println!(
        "  \"replay_serving_rows_per_s\": {:.0},",
        serven.rows as f64 / serven.host_s
    );
    println!(
        "  \"replay_serving_unbatched_rows_per_s\": {:.0},",
        unbatched.rows as f64 / unbatched.host_s
    );
    println!(
        "  \"replay_serving_workers_rows_per_s\": {:.0},",
        workers.rows as f64 / workers.host_s
    );
    println!(
        "  \"batched_transport_speedup\": {:.2},",
        (unbatched.host_s / unbatched.rows as f64) / (serven.host_s / serven.rows as f64)
    );
    let (tenants, busiest, busiest_p99) = fleet.last().expect("fleet sweep ran");
    println!(
        "  \"shared_fleet_rows_per_s_{tenants}_tenants\": {:.0},",
        busiest.rows as f64 / busiest.host_s
    );
    println!(
        "  \"shared_fleet_p99_batch_ms_{tenants}_tenants\": {:.3},",
        busiest_p99 * 1e3
    );
    println!(
        "  \"bulk_bitwise_rows_per_s\": {:.0}",
        bitwisen.rows as f64 / bitwisen.host_s
    );
    println!("}}");
}
