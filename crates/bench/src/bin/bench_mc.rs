//! Times the scalar, batched, and batched+parallel Monte Carlo engines on
//! the Table 11 CODIC-sigsa sweep and prints a JSON summary — the source
//! of the repository's `BENCH_mc.json`.
//!
//! Usage: `cargo run --release --bin bench_mc [-- --trials N --reps R]`

use std::time::Instant;

use codic_bench::with_threads;
use codic_circuit::montecarlo::SigsaExperiment;

fn arg(flag: &str) -> Option<u32> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn time(reps: u32, mut f: impl FnMut() -> u32) -> (f64, u32) {
    let mut flips = f(); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        flips = f();
    }
    (t0.elapsed().as_secs_f64() / f64::from(reps), flips)
}

fn main() {
    let trials = arg("--trials").unwrap_or(100_000);
    let reps = arg("--reps").unwrap_or(3);
    let exp = SigsaExperiment {
        trials,
        ..SigsaExperiment::default()
    };

    let (scalar_s, scalar_flips) = time(reps, || exp.run_scalar().flips);
    let (batched_s, batched_flips) = time(reps, || with_threads(Some(1), || exp.run().flips));
    let (parallel_s, parallel_flips) = time(reps, || exp.run().flips);
    assert_eq!(scalar_flips, batched_flips, "engines must agree");
    assert_eq!(scalar_flips, parallel_flips, "engines must agree");

    println!("{{");
    println!("  \"workload\": \"sigsa_montecarlo\",");
    println!("  \"trials\": {trials},");
    println!("  \"reps\": {reps},");
    println!("  \"threads_available\": {},", rayon::current_num_threads());
    println!("  \"flips\": {scalar_flips},");
    println!("  \"scalar_s\": {scalar_s:.4},");
    println!("  \"batched_1thread_s\": {batched_s:.4},");
    println!("  \"batched_parallel_s\": {parallel_s:.4},");
    println!("  \"speedup_batched\": {:.2},", scalar_s / batched_s);
    println!(
        "  \"speedup_batched_parallel\": {:.2}",
        scalar_s / parallel_s
    );
    println!("}}");
}
