//! Regenerates Figure 10 (Appendix C): the CODIC-sigsa waveform, plus a
//! quick batched Monte Carlo summary of the flip rate the waveform's
//! mechanism produces under nominal process variation.
use codic_circuit::montecarlo::SigsaExperiment;
use codic_circuit::{CircuitParams, CircuitSim, CircuitSimBatch};

fn main() {
    println!("Figure 10: CODIC-sigsa (resolution by SA process variation)\n");
    let mut sim = CircuitSim::new(CircuitParams::default());
    sim.set_cell_voltage(CircuitParams::default().v_precharge());
    let v = codic_core::library::codic_sigsa();
    let wave = sim.run(v.schedule());
    print!("{}", wave.ascii_chart(72));
    println!(
        "outcome with nominal (positive) imbalance: {}",
        wave.outcome()
    );

    // The offset-steered counter-case, resolved on the batched engine.
    let mut batch = CircuitSimBatch::uniform(CircuitParams::default(), 2);
    batch.set_sa_offsets(&[CircuitParams::default().sa_offset, -4e-3]);
    batch.set_cell_voltage_all(CircuitParams::default().v_precharge());
    let bits = batch.resolve_bits(v.schedule(), codic_circuit::montecarlo::MC_DT_NS);
    println!(
        "outcome with negative offset draw:         resolves {}",
        match bits[1] {
            Some(true) => "one",
            Some(false) => "zero",
            None => "nothing (metastable)",
        }
    );

    let stats = SigsaExperiment {
        trials: 20_000,
        ..SigsaExperiment::default()
    }
    .run();
    println!(
        "\nBatched Monte Carlo (20k trials, 4% PV, 30 C): {:.3}% of SAs flip to zero (paper: 0.02%)",
        stats.flip_pct()
    );
}
