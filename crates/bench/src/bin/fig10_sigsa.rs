//! Regenerates Figure 10 (Appendix C): the CODIC-sigsa waveform.
use codic_circuit::{CircuitParams, CircuitSim};
fn main() {
    println!("Figure 10: CODIC-sigsa (resolution by SA process variation)\n");
    let mut sim = CircuitSim::new(CircuitParams::default());
    sim.set_cell_voltage(CircuitParams::default().v_precharge());
    let v = codic_core::library::codic_sigsa();
    let wave = sim.run(v.schedule());
    print!("{}", wave.ascii_chart(72));
    println!("outcome with nominal (positive) imbalance: {}", wave.outcome());
    let mut sim = CircuitSim::new(CircuitParams::default());
    sim.set_sa_offset(-4e-3);
    sim.set_cell_voltage(CircuitParams::default().v_precharge());
    let wave = sim.run(v.schedule());
    println!("outcome with negative offset draw:         {}", wave.outcome());
}
