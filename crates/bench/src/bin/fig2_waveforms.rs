//! Regenerates Figure 2b: precharge and activate internal-signal waveforms.
use codic_circuit::{CircuitParams, CircuitSim};
fn main() {
    let mut sim = CircuitSim::new(CircuitParams::default());
    sim.set_cell_bit(true);
    println!("Figure 2b (right): activate command, cell storing 1\n");
    let act = codic_core::library::activation();
    let wave = sim.run(act.schedule());
    print!("{}", wave.ascii_chart(72));
    println!("outcome: {}\n", wave.outcome());
    println!("Figure 2b (left): precharge command after the activation\n");
    let pre = codic_core::library::precharge();
    let wave = sim.run(pre.schedule());
    print!("{}", wave.ascii_chart(72));
    println!("outcome: {}", wave.outcome());
}
