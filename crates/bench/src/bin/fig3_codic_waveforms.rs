//! Regenerates Figure 3: CODIC-sig (a) and CODIC-det (b) waveforms.
use codic_circuit::{CircuitParams, CircuitSim};
fn main() {
    for (label, variant, bit) in [
        (
            "Figure 3a: CODIC-sig (cell starts at 1)",
            codic_core::library::codic_sig(),
            true,
        ),
        (
            "Figure 3b: CODIC-det generating zero (cell starts at 1)",
            codic_core::library::codic_det_zero(),
            true,
        ),
    ] {
        println!("{label}\n");
        let mut sim = CircuitSim::new(CircuitParams::default());
        sim.set_cell_bit(bit);
        let wave = sim.run(variant.schedule());
        print!("{}", wave.ascii_chart(72));
        println!("outcome: {}\n", wave.outcome());
    }
}
