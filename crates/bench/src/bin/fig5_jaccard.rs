//! Regenerates Figure 5: intra-/inter-Jaccard distributions for the DRAM
//! Latency PUF, PreLatPUF, and CODIC-sig PUF on DDR3 and DDR3L chips.
//! Pass --auth to also report the naive authentication FRR/FAR (6.1.1).
use codic_puf::chip::VoltageClass;
use codic_puf::jaccard::{distributions, JaccardDistributions};
use codic_puf::mechanisms::{CodicSigPuf, Environment, LatencyPuf, PreLatPuf, PufMechanism};
use codic_puf::population::paper_population;

fn report(name: &str, d: &JaccardDistributions) {
    println!(
        "  {name:18} intra mean {:.3}, inter mean {:.3}",
        d.intra_mean(),
        d.inter_mean()
    );
    let hist = JaccardDistributions::histogram(&d.intra, 10);
    let bars: Vec<String> = hist.iter().map(|p| format!("{p:4.0}")).collect();
    println!("    intra hist (0..1, %): {}", bars.join(" "));
    let hist = JaccardDistributions::histogram(&d.inter, 10);
    let bars: Vec<String> = hist.iter().map(|p| format!("{p:4.0}")).collect();
    println!("    inter hist (0..1, %): {}", bars.join(" "));
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let pairs = if quick { 100 } else { 1000 };
    let pop = paper_population(0xC0D1C);
    let env = Environment::nominal();
    let mechanisms: Vec<(&str, Box<dyn PufMechanism>)> = vec![
        ("DRAM Latency PUF", Box::new(LatencyPuf::default())),
        ("PreLatPUF", Box::new(PreLatPuf)),
        ("CODIC-sig PUF", Box::new(CodicSigPuf)),
    ];
    println!("Figure 5: Jaccard indices ({pairs} pairs per distribution)");
    for (class, label) in [
        (VoltageClass::Ddr3, "DDR3 (64 chips)"),
        (VoltageClass::Ddr3l, "DDR3L (72 chips)"),
    ] {
        println!("{label}:");
        for (i, (name, m)) in mechanisms.iter().enumerate() {
            let d = distributions(&pop, class, m.as_ref(), &env, pairs, 40 + i as u64);
            report(name, &d);
        }
    }
    if std::env::args().any(|a| a == "--auth") {
        let rates = codic_puf::auth::measure_rates(&pop, &CodicSigPuf, &env, 500, 77);
        println!(
            "\nNaive CODIC-sig authentication: FRR {:.2}% (paper 0.64%), FAR {:.2}% (paper 0.00%)",
            rates.frr * 100.0,
            rates.far * 100.0
        );
    }
}
