//! Regenerates Figure 6: intra-Jaccard vs temperature delta.
use codic_puf::jaccard::intra_vs_temperature;
use codic_puf::mechanisms::{CodicSigPuf, LatencyPuf, PreLatPuf, PufMechanism};
use codic_puf::population::paper_population;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let pairs = if quick { 30 } else { 200 };
    let pop = paper_population(0xC0D1C);
    let mechanisms: Vec<(&str, Box<dyn PufMechanism>)> = vec![
        ("DRAM Latency PUF", Box::new(LatencyPuf::default())),
        ("PreLatPUF", Box::new(PreLatPuf)),
        ("CODIC-sig PUF", Box::new(CodicSigPuf)),
    ];
    println!("Figure 6: Intra-Jaccard vs temperature delta from 30 C ({pairs} pairs)");
    println!("| Mechanism | dT=0 | dT=15 | dT=25 | dT=55 |");
    println!("|---|---|---|---|---|");
    for (i, (name, m)) in mechanisms.iter().enumerate() {
        let mut cells = vec![name.to_string()];
        for (j, dt) in [0.0, 15.0, 25.0, 55.0].iter().enumerate() {
            let xs = intra_vs_temperature(&pop, m.as_ref(), *dt, pairs, 7 * (i as u64) + j as u64);
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            cells.push(format!("{mean:.3}"));
        }
        println!("| {} |", cells.join(" | "));
    }
    println!("\nPaper: CODIC-sig and PreLatPUF stay near 1; the latency PUF degrades sharply.");
}
