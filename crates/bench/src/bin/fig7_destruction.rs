//! Regenerates Figure 7: time to destroy all DRAM data, per mechanism and
//! module size; pass --energy for the 6.2 energy comparison.
use codic_bench::human_ms;
use codic_coldboot::energy::energy_ratios_vs_codic;
use codic_coldboot::latency::{destruction_time_ms, FIGURE7_SIZES_MIB};
use codic_coldboot::mechanism::DestructionMechanism;
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: Vec<u64> = if quick {
        vec![64, 256, 1024]
    } else {
        FIGURE7_SIZES_MIB.to_vec()
    };
    println!("Figure 7: DRAM module data destruction time");
    print!("| Mechanism |");
    for s in &sizes {
        if *s >= 1024 {
            print!(" {} GB |", s / 1024)
        } else {
            print!(" {s} MB |")
        }
    }
    println!();
    for m in DestructionMechanism::ALL {
        print!("| {} |", m.name());
        for &s in &sizes {
            print!(" {} |", human_ms(destruction_time_ms(m, s)));
        }
        println!();
    }
    println!("\nPaper @64MB: TCG 34 ms, LISA 150 us, RowClone 120 us, CODIC 60 us.");
    if std::env::args().any(|a| a == "--energy") {
        let cap = if quick { 1024 } else { 8192 };
        println!(
            "\nEnergy vs CODIC at {} GB (paper: TCG 41.7x, LISA 2.5x, RowClone 1.7x):",
            cap / 1024
        );
        for (m, r) in energy_ratios_vs_codic(cap) {
            println!("  {:12} {r:.1}x", m.name());
        }
    }
}
