//! Regenerates Figure 8: single-core secure-deallocation speedup and
//! energy savings over the software baseline.
use codic_secdealloc::mechanism::ZeroingMechanism;
use codic_secdealloc::sim::single_core_comparison;
use codic_secdealloc::workload::Benchmark;
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bursts = if quick { 30 } else { 120 };
    println!("Figure 8: Single-core speedup / energy savings vs software zeroing");
    println!("| Benchmark | LISA-clone | RowClone | CODIC |");
    println!("|---|---|---|---|");
    let mut energies = Vec::new();
    for b in Benchmark::ALL {
        let c = single_core_comparison(b, bursts, 7);
        let cells: Vec<String> = ZeroingMechanism::HARDWARE
            .iter()
            .map(|&m| {
                format!(
                    "{:+.1}% / {:+.1}%",
                    (c.speedup(m) - 1.0) * 100.0,
                    c.energy_savings(m) * 100.0
                )
            })
            .collect();
        println!("| {} | {} |", b.name(), cells.join(" | "));
        energies.push((b.name(), c.energy_savings(ZeroingMechanism::Codic)));
    }
    println!("\nPaper: speedups up to 21% and energy savings up to 34% (malloc, CODIC).");
}
