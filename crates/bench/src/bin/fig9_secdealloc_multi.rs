//! Regenerates Figure 9: 4-core mix speedup / energy savings (Table 9
//! mixes plus the 50-mix average).
use codic_secdealloc::mechanism::ZeroingMechanism;
use codic_secdealloc::mixes::{fifty_mixes, representative_mixes};
use codic_secdealloc::sim::mix_comparison;
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bursts = if quick { 15 } else { 40 };
    println!("Figure 9: 4-core speedup / energy savings vs software zeroing");
    println!("| Mix | LISA-clone | RowClone | CODIC |");
    println!("|---|---|---|---|");
    for mix in representative_mixes() {
        let c = mix_comparison(mix.intensive, bursts, 11);
        let cells: Vec<String> = ZeroingMechanism::HARDWARE
            .iter()
            .map(|&m| {
                format!(
                    "{:+.1}% / {:+.1}%",
                    (c.speedup(m) - 1.0) * 100.0,
                    c.energy_savings(m) * 100.0
                )
            })
            .collect();
        println!("| {} | {} |", mix.name, cells.join(" | "));
    }
    let mixes = fifty_mixes(0xC0D1C);
    let sample = if quick { &mixes[..8] } else { &mixes[..] };
    let mut sums = [0.0f64; 3];
    for (i, m) in sample.iter().enumerate() {
        let c = mix_comparison(*m, bursts, 100 + i as u64);
        for (j, &mech) in ZeroingMechanism::HARDWARE.iter().enumerate() {
            sums[j] += c.speedup(mech) - 1.0;
        }
    }
    let cells: Vec<String> = sums
        .iter()
        .map(|s| format!("{:+.1}%", 100.0 * s / sample.len() as f64))
        .collect();
    println!(
        "| AVG{} (speedup only) | {} |",
        sample.len(),
        cells.join(" | ")
    );
}
