//! Runs every experiment binary in sequence (quick mode), regenerating all
//! tables and figures of the paper.
use std::process::Command;
fn main() {
    let bins = [
        "tab1_variants",
        "tab2_latency_energy",
        "fig2_waveforms",
        "fig3_codic_waveforms",
        "fig10_sigsa",
        "tab11_sigsa_montecarlo",
        "tab12_chips",
        "fig5_jaccard",
        "fig6_temperature",
        "tab4_eval_time",
        "tab10_nist",
        "fig7_destruction",
        "tab6_overhead",
        "fig8_secdealloc",
        "fig9_secdealloc_multi",
    ];
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in bins {
        println!("\n================ {bin} ================");
        let status = Command::new(dir.join(bin))
            .args(["--quick", "--auth", "--energy"])
            .status()
            .expect("spawn experiment binary");
        assert!(status.success(), "{bin} failed");
    }
}
