//! Regenerates Table 10: the NIST SP 800-22 suite over Von Neumann-whitened
//! CODIC-sig response streams (6.1.3 / Appendix B). Pass --quick for a
//! 200 kbit stream instead of the paper's 2 Mbit (250 KB).
use codic_nist::suite::run_suite;
use codic_puf::bitstream::whitened_stream;
use codic_puf::mechanisms::{CodicSigPuf, Environment};
use codic_puf::population::paper_population;
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bits = if quick { 200_000 } else { 2_000_000 };
    let pop = paper_population(0xC0D1C);
    eprintln!("building {bits}-bit whitened CODIC-sig stream...");
    let stream = whitened_stream(&pop, &CodicSigPuf, &Environment::nominal(), bits);
    let results = run_suite(&stream);
    println!("Table 10: NIST statistical test suite on CODIC-sig values ({bits} bits)");
    println!("| NIST Test | p-value | Result |");
    println!("|---|---|---|");
    for r in &results.rows {
        let verdict = if r.p_value.is_nan() {
            "N/A"
        } else if r.passed() {
            "PASS"
        } else {
            "FAIL"
        };
        println!("| {} | {:.3} | {verdict} |", r.name, r.p_value);
    }
    println!(
        "\n{} of {} applicable tests pass (paper: all 15 pass).",
        results
            .rows
            .iter()
            .filter(|r| r.p_value.is_finite() && r.passed())
            .count(),
        results.applicable()
    );
}
