//! Regenerates Table 11: CODIC-sigsa bit flips vs process variation and
//! temperature (100k Monte Carlo circuit simulations per cell, as in the
//! paper; pass --quick for 20k).
use codic_circuit::montecarlo::SigsaExperiment;
use codic_circuit::variation::ProcessVariation;
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trials = if quick { 20_000 } else { 100_000 };
    println!("Table 11: CODIC-sigsa bit flips (trials per cell: {trials})");
    println!("| PV (30 C) | flips % (paper) |");
    for (pv, paper) in [(2.0, "0.00"), (3.0, "0.00"), (4.0, "0.02"), (5.0, "0.19")] {
        let stats = SigsaExperiment {
            variation: ProcessVariation::from_pct(pv),
            temperature_c: 30.0,
            trials,
            seed: 0xC0D1C,
        }
        .run();
        println!("| {pv}% | {:.2}% ({paper}) |", stats.flip_pct());
    }
    println!("| Temp (4% PV) | flips % (paper) |");
    for (t, paper) in [(30.0, "0.02"), (60.0, "0.19"), (70.0, "0.21"), (85.0, "0.15")] {
        let stats = SigsaExperiment {
            variation: ProcessVariation::from_pct(4.0),
            temperature_c: t,
            trials,
            seed: 0xC0D1C,
        }
        .run();
        println!("| {t} C | {:.2}% ({paper}) |", stats.flip_pct());
    }
}
