//! Regenerates Table 11: CODIC-sigsa bit flips vs process variation and
//! temperature (100k Monte Carlo circuit simulations per cell, as in the
//! paper; pass --quick for 20k).
//!
//! Runs on the batched, parallel engine (`CircuitSimBatch` chunks spread
//! across rayon threads); pass --scalar to use the original
//! one-simulator-per-trial baseline instead. Both paths draw identical
//! per-trial variation, so their tables match exactly.
use std::time::Instant;

use codic_circuit::montecarlo::{BitFlipStats, SigsaExperiment};
use codic_circuit::variation::ProcessVariation;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scalar = std::env::args().any(|a| a == "--scalar");
    let trials = if quick { 20_000 } else { 100_000 };
    let run = |exp: SigsaExperiment| -> BitFlipStats {
        if scalar {
            exp.run_scalar()
        } else {
            exp.run()
        }
    };
    let engine = if scalar {
        "scalar baseline"
    } else {
        "batched + parallel"
    };
    let t0 = Instant::now();
    println!("Table 11: CODIC-sigsa bit flips (trials per cell: {trials}, engine: {engine})");
    println!("| PV (30 C) | flips % (paper) |");
    for (pv, paper) in [(2.0, "0.00"), (3.0, "0.00"), (4.0, "0.02"), (5.0, "0.19")] {
        let stats = run(SigsaExperiment {
            variation: ProcessVariation::from_pct(pv),
            temperature_c: 30.0,
            trials,
            seed: 0xC0D1C,
        });
        println!("| {pv}% | {:.2}% ({paper}) |", stats.flip_pct());
    }
    println!("| Temp (4% PV) | flips % (paper) |");
    for (t, paper) in [
        (30.0, "0.02"),
        (60.0, "0.19"),
        (70.0, "0.21"),
        (85.0, "0.15"),
    ] {
        let stats = run(SigsaExperiment {
            variation: ProcessVariation::from_pct(4.0),
            temperature_c: t,
            trials,
            seed: 0xC0D1C,
        });
        println!("| {t} C | {:.2}% ({paper}) |", stats.flip_pct());
    }
    println!(
        "(8 configurations x {trials} trials in {:.2} s, RAYON_NUM_THREADS={})",
        t0.elapsed().as_secs_f64(),
        rayon::current_num_threads()
    );
}
