//! Regenerates Tables 3 and 12: the 136-chip evaluated population.
use codic_puf::population::{all_chips, paper_population};
fn main() {
    let pop = paper_population(0xC0D1C);
    println!("Table 12: Characteristics of the 15 evaluated DDR3 modules");
    println!("| Module | Vendor | Chips | Ranks | Gb/chip | MT/s | Voltage |");
    println!("|---|---|---|---|---|---|---|");
    for m in &pop {
        println!(
            "| {} | {:?} | {} | {} | {} | {} | {:?} |",
            m.name,
            m.vendor,
            m.chips.len(),
            m.ranks,
            m.chip_gbit,
            m.freq_mts,
            m.voltage
        );
    }
    println!("total chips: {}", all_chips(&pop).len());
}
