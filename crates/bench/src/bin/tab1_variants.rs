//! Regenerates Table 1: the in-DRAM signal timings of activation,
//! precharge, and the CODIC variants, with each variant's functional class
//! verified through the batched circuit simulator.
use codic_circuit::CircuitParams;
use codic_core::classify::classify_all;

fn main() {
    println!("Table 1: In-DRAM signals of activation, precharge, and CODIC variants");
    println!("| Command | Signals [assert, deassert] (ns) | Simulated class |");
    let variants = codic_core::library::table1();
    let classes = classify_all(&variants, &CircuitParams::default());
    for (v, class) in variants.iter().zip(&classes) {
        println!("{v} -> {class}");
    }
    println!("\nVariant space (paper 4.1.3):");
    println!(
        "  valid pulses per signal n = {}",
        codic_core::variant_space::pulses_per_signal()
    );
    println!(
        "  total variants n^4       = {}",
        codic_core::variant_space::total_variants()
    );
}
