//! Regenerates Table 1: the in-DRAM signal timings of activation,
//! precharge, and the CODIC variants.
fn main() {
    println!("Table 1: In-DRAM signals of activation, precharge, and CODIC variants");
    println!("| Command | Signals [assert, deassert] (ns) |");
    for v in codic_core::library::table1() {
        println!("{v}");
    }
    println!("\nVariant space (paper 4.1.3):");
    println!("  valid pulses per signal n = {}", codic_core::variant_space::pulses_per_signal());
    println!("  total variants n^4       = {}", codic_core::variant_space::total_variants());
}
