//! Regenerates Table 2: latency and energy of five CODIC command variants.
use codic_dram::TimingParams;
use codic_power::EnergyModel;
fn main() {
    let timing = TimingParams::ddr3_1600_11();
    let energy = EnergyModel::paper_default();
    println!("Table 2: Latency and energy of five CODIC command variants");
    println!("| Primitive | Latency (ns) | Energy (nJ) |");
    println!("|---|---|---|");
    for r in codic_core::latency::table2(&timing, &energy) {
        println!(
            "| {} | {:.0} | {:.1} |",
            r.primitive, r.latency_ns, r.energy_nj
        );
    }
    println!("\nPaper: 35/13/35/13/35 ns and 17.3/17.2/17.2/17.2/17.2 nJ.");
}
