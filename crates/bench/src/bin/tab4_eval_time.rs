//! Regenerates Table 4: PUF evaluation time on 8 KB segments.
use codic_dram::TimingParams;
use codic_puf::eval_time;
fn main() {
    let t = TimingParams::ddr3_1600_11();
    let seg = 8192;
    println!("Table 4: Evaluation time, 8 KB segments (paper values in parentheses)");
    println!(
        "  DRAM Latency PUF:        {:6.2} ms (88.2)",
        eval_time::latency_puf_ms(seg, &t)
    );
    println!(
        "  PreLatPUF w/ filter:     {:6.2} ms (7.95)   w/o: {:5.2} ms (1.59)",
        eval_time::prelat_ms(seg, &t, true),
        eval_time::prelat_ms(seg, &t, false)
    );
    println!(
        "  CODIC-sig PUF w/ filter: {:6.2} ms (4.41)   w/o: {:5.2} ms (0.88)",
        eval_time::codic_sig_ms(seg, &t, true),
        eval_time::codic_sig_ms(seg, &t, false)
    );
}
