//! Regenerates Table 6: overhead of CODIC self-destruction vs ChaCha-8 and
//! AES-128 memory encryption.
fn main() {
    println!("Table 6: Overhead vs two cold-boot prevention ciphers");
    println!("| Mechanism | Runtime perf | Runtime power | CPU area | DRAM area |");
    println!("|---|---|---|---|---|");
    for p in codic_coldboot::ciphers::table6() {
        println!(
            "| {} | ~{:.0}% | ~{:.0}% | ~{:.1}% | ~{:.1}% |",
            p.name, p.runtime_perf_pct, p.runtime_power_pct, p.processor_area_pct, p.dram_area_pct
        );
    }
}
