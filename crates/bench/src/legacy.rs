//! Frozen snapshot of the pre-index memory-controller scheduler, kept
//! **temporarily** as the measurement baseline for the queue-depth
//! benchmark in `bench_device` and as the oracle for the
//! legacy-equivalence property tests.
//!
//! [`LegacyController`] is a byte-for-byte copy of
//! `codic_dram::controller::MemoryController` as it stood before the
//! O(1)-per-command refactor: three global `VecDeque` queues scanned in
//! full by `find_ready`/`advance_oldest`, `next_event_cycle` re-deriving
//! its horizon from a per-request scan, and mid-queue `VecDeque::remove`
//! on issue. It shares every public building block with the live
//! controller (`Bank`, `Rank`, `AddressMapper`, `TimingParams`,
//! `MemStats`, `Completion`), so any divergence between the two is a
//! scheduler divergence, not a model divergence.
//!
//! Delete this module once the refactor has survived a release cycle; the
//! equivalence proptests and the pinned unit expectations in `codic_dram`
//! then carry the invariant alone.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use codic_dram::address::{AddressMapper, DramAddress};
use codic_dram::bank::Bank;
use codic_dram::controller::Completion;
use codic_dram::geometry::DramGeometry;
use codic_dram::rank::Rank;
use codic_dram::request::{MemRequest, QueueFull, ReqId, ReqKind};
use codic_dram::stats::MemStats;
use codic_dram::timing::TimingParams;

/// Capacity of each of the read and write queues (Table 5).
pub const QUEUE_DEPTH: usize = 64;

/// Write-queue occupancy that starts a write drain.
const DRAIN_HIGH: usize = 48;

/// Write-queue occupancy that ends a write drain.
const DRAIN_LOW: usize = 16;

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: ReqId,
    addr: DramAddress,
    kind: ReqKind,
}

/// The pre-refactor cycle-level DDR3 memory controller (O(n) scans per
/// command). See the module docs for why it is preserved.
#[derive(Debug)]
pub struct LegacyController {
    mapper: AddressMapper,
    timing: TimingParams,
    banks: Vec<Bank>,
    ranks: Vec<Rank>,
    read_q: VecDeque<Pending>,
    write_q: VecDeque<Pending>,
    rowop_q: VecDeque<Pending>,
    in_flight: BinaryHeap<Reverse<(u64, u64)>>,
    completed: Vec<Completion>,
    last_finish: u64,
    now: u64,
    data_bus_free: u64,
    write_drain: bool,
    refresh_enabled: bool,
    refresh_pending: bool,
    next_refresh: u64,
    next_id: u64,
    stats: MemStats,
}

impl LegacyController {
    /// Creates a controller for a module of the given geometry and timing.
    #[must_use]
    pub fn new(geometry: DramGeometry, timing: TimingParams) -> Self {
        let total_banks = geometry.total_banks() as usize;
        LegacyController {
            mapper: AddressMapper::new(geometry),
            timing,
            banks: vec![Bank::new(); total_banks],
            ranks: (0..geometry.ranks).map(|_| Rank::new()).collect(),
            read_q: VecDeque::with_capacity(QUEUE_DEPTH),
            write_q: VecDeque::with_capacity(QUEUE_DEPTH),
            rowop_q: VecDeque::with_capacity(QUEUE_DEPTH),
            in_flight: BinaryHeap::new(),
            completed: Vec::new(),
            last_finish: 0,
            now: 0,
            data_bus_free: 0,
            write_drain: false,
            refresh_enabled: true,
            refresh_pending: false,
            next_refresh: u64::from(timing.t_refi),
            next_id: 0,
            stats: MemStats::default(),
        }
    }

    /// The current memory cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The timing parameters in use.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Accumulated command statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Enables or disables the refresh engine (enabled by default).
    pub fn set_refresh_enabled(&mut self, enabled: bool) {
        self.refresh_enabled = enabled;
    }

    /// Whether a request of `kind` can currently be accepted.
    #[must_use]
    pub fn can_accept(&self, kind: ReqKind) -> bool {
        match kind {
            ReqKind::Read => self.read_q.len() < QUEUE_DEPTH,
            ReqKind::Write => self.write_q.len() < QUEUE_DEPTH,
            ReqKind::RowOp { .. } => self.rowop_q.len() < QUEUE_DEPTH,
        }
    }

    /// Enqueues a request.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] (with the request) if the target queue is at
    /// capacity; the caller should retry after ticking.
    pub fn push(&mut self, request: MemRequest) -> Result<ReqId, QueueFull> {
        if !self.can_accept(request.kind) {
            self.stats.queue_rejections += 1;
            return Err(QueueFull { request });
        }
        let id = ReqId(self.next_id);
        self.next_id += 1;
        let pending = Pending {
            id,
            addr: self.mapper.decode(request.addr),
            kind: request.kind,
        };
        match request.kind {
            ReqKind::Read => self.read_q.push_back(pending),
            ReqKind::Write => self.write_q.push_back(pending),
            ReqKind::RowOp { .. } => self.rowop_q.push_back(pending),
        }
        Ok(id)
    }

    /// True when no request is queued or in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty()
            && self.write_q.is_empty()
            && self.rowop_q.is_empty()
            && self.in_flight.is_empty()
    }

    /// Removes and returns all completions that have finished by now.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completed)
    }

    /// Advances one memory cycle, issuing at most one command.
    pub fn tick(&mut self) {
        self.advance_to(self.now + 1);
    }

    /// Advances one memory cycle with no consultation of
    /// [`LegacyController::next_event_cycle`] — the pre-event-engine
    /// `tick` body.
    pub fn tick_reference(&mut self) {
        self.step_cycle();
        self.now += 1;
    }

    /// The earliest cycle `>= now()` at which the controller may act, or
    /// `u64::MAX` when no future cycle can ever be actionable. Derived by
    /// re-scanning every queued request — the O(n) horizon the refactor
    /// replaces.
    #[must_use]
    pub fn next_event_cycle(&self) -> u64 {
        let mut e = u64::MAX;
        if let Some(&Reverse((cycle, _))) = self.in_flight.peek() {
            e = e.min(cycle);
        }
        if self.refresh_enabled && !self.refresh_pending {
            e = e.min(self.next_refresh);
        }
        if self.refresh_pending {
            match self.banks.iter().find(|b| b.open_row().is_some()) {
                Some(bank) => e = e.min(bank.next_pre_at()),
                None => {
                    let all_ready = self.banks.iter().map(Bank::next_act_at).max().unwrap_or(0);
                    e = e.min(all_ready);
                }
            }
        } else {
            let mut gate_buf = [[0u64; 2]; 8];
            let memo_ranks = self.ranks.len().min(gate_buf.len());
            for (slot, rank) in gate_buf.iter_mut().zip(&self.ranks) {
                *slot = self.act_gates_of(rank);
            }
            for queue in [&self.read_q, &self.write_q, &self.rowop_q] {
                for p in queue {
                    e = e.min(self.request_candidate(p, &gate_buf[..memo_ranks]));
                    if e <= self.now {
                        return self.now;
                    }
                }
            }
        }
        e.max(self.now)
    }

    /// The rank's activation gates for 1 and 2 activations.
    fn act_gates_of(&self, rank: &Rank) -> [u64; 2] {
        [
            rank.earliest_activate(0, 1, &self.timing),
            rank.earliest_activate(0, 2, &self.timing),
        ]
    }

    /// The earliest cycle at which a pending request could be issued a
    /// command, given current bank/rank/bus state.
    fn request_candidate(&self, p: &Pending, act_gates: &[[u64; 2]]) -> u64 {
        let bank = &self.banks[self.bank_index(&p.addr)];
        let gates = &act_gates
            .get(p.addr.rank as usize)
            .copied()
            .unwrap_or_else(|| self.act_gates_of(&self.ranks[p.addr.rank as usize]));
        match p.kind {
            ReqKind::Read => match bank.open_row() {
                Some(row) if row == p.addr.row => bank.next_rd_at().max(
                    self.data_bus_free
                        .saturating_sub(u64::from(self.timing.t_cl)),
                ),
                Some(_) => bank.next_pre_at(),
                None => bank.next_act_at().max(gates[0]),
            },
            ReqKind::Write => match bank.open_row() {
                Some(row) if row == p.addr.row => bank.next_wr_at().max(
                    self.data_bus_free
                        .saturating_sub(u64::from(self.timing.t_cwl)),
                ),
                Some(_) => bank.next_pre_at(),
                None => bank.next_act_at().max(gates[0]),
            },
            ReqKind::RowOp { op, .. } => match bank.open_row() {
                Some(_) => bank.next_pre_at(),
                None => bank
                    .next_act_at()
                    .max(gates[usize::from(op.activations().clamp(1, 2)) - 1]),
            },
        }
    }

    /// Advances the clock to exactly `target`, processing every
    /// actionable cycle in `[now, target)`.
    pub fn advance_to(&mut self, target: u64) {
        while self.now < target {
            let event = self.next_event_cycle().min(target);
            if event > self.now {
                self.now = event;
                if self.now >= target {
                    break;
                }
            }
            self.step_cycle();
            self.now += 1;
        }
    }

    /// One tick's worth of work at the current cycle.
    fn step_cycle(&mut self) {
        self.retire_in_flight();
        if self.refresh_enabled && !self.refresh_pending && self.now >= self.next_refresh {
            self.refresh_pending = true;
        }
        if self.refresh_pending {
            let _ = self.service_refresh();
        } else {
            self.update_drain_mode();
            self.schedule();
        }
    }

    /// Jumps the clock to the next event and processes that one cycle.
    pub fn step_event(&mut self) -> bool {
        let event = self.next_event_cycle();
        if event == u64::MAX {
            return false;
        }
        self.now = self.now.max(event);
        self.step_cycle();
        self.now += 1;
        true
    }

    /// Runs until idle, returning the cycle at which the last request
    /// completed (or the current cycle when already idle).
    pub fn run_to_idle(&mut self) -> u64 {
        let last = self.now;
        while !self.is_idle() && self.step_event() {}
        last.max(self.last_finish)
    }

    fn retire_in_flight(&mut self) {
        while let Some(&Reverse((cycle, id))) = self.in_flight.peek() {
            if cycle > self.now {
                break;
            }
            self.in_flight.pop();
            self.last_finish = self.last_finish.max(cycle);
            self.completed.push(Completion {
                id: ReqId(id),
                finish_cycle: cycle,
            });
        }
    }

    fn update_drain_mode(&mut self) {
        if self.write_q.len() >= DRAIN_HIGH {
            self.write_drain = true;
        } else if self.write_q.len() <= DRAIN_LOW {
            self.write_drain = false;
        }
    }

    /// Attempts to make refresh progress; returns true if a command was
    /// issued this cycle.
    fn service_refresh(&mut self) -> bool {
        for i in 0..self.banks.len() {
            if self.banks[i].open_row().is_some() {
                if self.banks[i].can_precharge(self.now) {
                    self.banks[i].precharge(self.now, &self.timing);
                    self.stats.precharges += 1;
                    return true;
                }
                return false;
            }
        }
        if self.banks.iter().all(|b| b.can_activate(self.now)) {
            let until = self.now + u64::from(self.timing.t_rfc);
            for b in &mut self.banks {
                b.block_until(until);
            }
            self.stats.refreshes += self.ranks.len() as u64;
            self.refresh_pending = false;
            self.next_refresh += u64::from(self.timing.t_refi);
            return true;
        }
        false
    }

    // The branches differ in short-circuit order (write-drain priority),
    // which clippy's structural comparison does not see.
    #[allow(clippy::if_same_then_else)]
    fn schedule(&mut self) {
        let serve_writes_first = self.write_drain || self.read_q.is_empty();
        let issued = if serve_writes_first {
            self.try_queue(Queue::Write)
                || self.try_queue(Queue::Read)
                || self.try_queue(Queue::RowOp)
        } else {
            self.try_queue(Queue::Read)
                || self.try_queue(Queue::Write)
                || self.try_queue(Queue::RowOp)
        };
        let _ = issued;
    }

    fn try_queue(&mut self, which: Queue) -> bool {
        if let Some(idx) = self.find_ready(which) {
            self.issue_column(which, idx);
            return true;
        }
        self.advance_oldest(which)
    }

    fn queue(&self, which: Queue) -> &VecDeque<Pending> {
        match which {
            Queue::Read => &self.read_q,
            Queue::Write => &self.write_q,
            Queue::RowOp => &self.rowop_q,
        }
    }

    fn find_ready(&self, which: Queue) -> Option<usize> {
        let q = self.queue(which);
        for (i, p) in q.iter().enumerate() {
            let bank = &self.banks[self.bank_index(&p.addr)];
            match p.kind {
                ReqKind::Read => {
                    if bank.can_read(p.addr.row, self.now) && self.column_bus_ok(true) {
                        return Some(i);
                    }
                }
                ReqKind::Write => {
                    if bank.can_write(p.addr.row, self.now) && self.column_bus_ok(false) {
                        return Some(i);
                    }
                }
                ReqKind::RowOp { op, .. } => {
                    let rank = &self.ranks[p.addr.rank as usize];
                    if bank.can_row_op(self.now)
                        && rank.can_activate(self.now, op.activations(), &self.timing)
                    {
                        return Some(i);
                    }
                }
            }
        }
        None
    }

    fn column_bus_ok(&self, is_read: bool) -> bool {
        let start = self.now
            + u64::from(if is_read {
                self.timing.t_cl
            } else {
                self.timing.t_cwl
            });
        start >= self.data_bus_free
    }

    fn issue_column(&mut self, which: Queue, idx: usize) {
        let p = match which {
            Queue::Read => self.read_q.remove(idx),
            Queue::Write => self.write_q.remove(idx),
            Queue::RowOp => self.rowop_q.remove(idx),
        }
        .expect("index returned by find_ready is valid");
        let bank_idx = self.bank_index(&p.addr);
        match p.kind {
            ReqKind::Read => {
                let done = self.banks[bank_idx].read(self.now, &self.timing);
                self.data_bus_free = done;
                self.stats.reads += 1;
                self.stats.row_hits += 1;
                self.in_flight.push(Reverse((done, p.id.0)));
            }
            ReqKind::Write => {
                let done = self.banks[bank_idx].write(self.now, &self.timing);
                self.data_bus_free = done;
                self.stats.writes += 1;
                self.stats.row_hits += 1;
                self.in_flight.push(Reverse((done, p.id.0)));
            }
            ReqKind::RowOp { op, busy_cycles } => {
                self.banks[bank_idx].row_op(self.now, busy_cycles);
                self.ranks[p.addr.rank as usize].record_activate(
                    self.now,
                    op.activations(),
                    &self.timing,
                );
                self.stats.row_ops += 1;
                self.stats.row_op_activations += u64::from(op.activations());
                self.in_flight
                    .push(Reverse((self.now + u64::from(busy_cycles), p.id.0)));
            }
        }
    }

    fn advance_oldest(&mut self, which: Queue) -> bool {
        let mut touched_banks = Vec::new();
        let q_len = self.queue(which).len();
        for i in 0..q_len {
            let p = self.queue(which)[i];
            let bank_idx = self.bank_index(&p.addr);
            if touched_banks.contains(&bank_idx) {
                continue;
            }
            touched_banks.push(bank_idx);
            let is_rowop = matches!(p.kind, ReqKind::RowOp { .. });
            match self.banks[bank_idx].open_row() {
                Some(row)
                    if (is_rowop || row != p.addr.row)
                        && self.banks[bank_idx].can_precharge(self.now) =>
                {
                    self.banks[bank_idx].precharge(self.now, &self.timing);
                    self.stats.precharges += 1;
                    if !is_rowop {
                        self.stats.row_misses += 1;
                    }
                    return true;
                }
                Some(_) => {}
                None if !is_rowop => {
                    let rank = &self.ranks[p.addr.rank as usize];
                    if self.banks[bank_idx].can_activate(self.now)
                        && rank.can_activate(self.now, 1, &self.timing)
                    {
                        self.banks[bank_idx].activate(p.addr.row, self.now, &self.timing);
                        self.ranks[p.addr.rank as usize].record_activate(self.now, 1, &self.timing);
                        self.stats.activates += 1;
                        return true;
                    }
                }
                None => {}
            }
        }
        false
    }

    fn bank_index(&self, addr: &DramAddress) -> usize {
        addr.bank_id(self.mapper.geometry()) as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Queue {
    Read,
    Write,
    RowOp,
}
