//! Experiment harness for the CODIC reproduction: the binaries in
//! `src/bin/` regenerate every table and figure of the paper's evaluation,
//! and `benches/` holds Criterion microbenchmarks of the performance-
//! critical kernels. The [`legacy`] module preserves the pre-refactor
//! scheduler as the queue-depth benchmark's measurement baseline.

pub mod legacy;

/// Prints a Markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Runs `f` with `RAYON_NUM_THREADS` forced to `n` (or unset for `None`),
/// restoring the previous value afterwards. The vendored rayon shim reads
/// the variable at call time, so this reliably pins the worker count of
/// everything `f` runs — used by the engine-comparison benchmarks.
pub fn with_threads<R>(n: Option<u32>, f: impl FnOnce() -> R) -> R {
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    match n {
        Some(n) => std::env::set_var("RAYON_NUM_THREADS", n.to_string()),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let out = f();
    match saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

/// Formats a milliseconds value the way Figure 7 labels its bars
/// (µs / ms / s with sensible precision).
#[must_use]
pub fn human_ms(ms: f64) -> String {
    if ms < 1.0 {
        format!("{:.0} us", ms * 1000.0)
    } else if ms < 1000.0 {
        format!("{ms:.1} ms")
    } else {
        format!("{:.2} s", ms / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_ms_selects_units() {
        assert_eq!(human_ms(0.06), "60 us");
        assert_eq!(human_ms(34.0), "34.0 ms");
        assert_eq!(human_ms(34_800.0), "34.80 s");
    }

    #[test]
    fn row_formats_markdown() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }
}
