//! Property tests pinning the indexed scheduler to the preserved
//! pre-refactor scheduler.
//!
//! [`LegacyController`] is the byte-for-byte snapshot of the
//! O(n)-scan-per-command controller the slab/per-bank-chain refactor
//! replaced. Random request streams — including streams far deeper than
//! the 64-entry queues, with write-drain pressure and refresh — must
//! produce **bit-identical** completions, command statistics, and final
//! clocks on both schedulers. Any divergence here is a scheduling-policy
//! change, which the refactor promises never to make.

use codic_bench::legacy::LegacyController;
use codic_dram::controller::Completion;
use codic_dram::geometry::DramGeometry;
use codic_dram::request::{MemRequest, ReqKind, RowOpKind};
use codic_dram::timing::TimingParams;
use codic_dram::{MemStats, MemoryController};
use codic_power::accounting;
use codic_power::{EnergyModel, IddValues};
use proptest::prelude::*;

/// Decodes one generated tuple into a request over a 64 MB module.
fn arbitrary_request(selector: u8, row_seed: u64, line: u8, timing: &TimingParams) -> MemRequest {
    let row = row_seed % 2048;
    let addr = row * DramGeometry::ROW_BYTES + u64::from(line % 128) * 64;
    let kind = match selector % 6 {
        0 | 1 => ReqKind::Read,
        2 | 3 => ReqKind::Write,
        s => {
            let op = if s == 4 {
                RowOpKind::Codic
            } else {
                RowOpKind::RowClone
            };
            ReqKind::RowOp {
                op,
                busy_cycles: accounting::row_op_busy_cycles(op, timing),
            }
        }
    };
    MemRequest::new(addr, kind)
}

/// Streams `requests` event-driven with capacity polling (identical on
/// both controllers) and returns (completions, stats, final clock).
macro_rules! drive {
    ($controller:expr, $requests:expr, $refresh:expr) => {{
        let mut mc = $controller;
        mc.set_refresh_enabled($refresh);
        for &request in $requests {
            while !mc.can_accept(request.kind) {
                mc.step_event();
            }
            mc.push(request).expect("capacity was just checked");
        }
        mc.run_to_idle();
        let completions: Vec<Completion> = mc.take_completions();
        let stats: MemStats = *mc.stats();
        (completions, stats, mc.now())
    }};
}

fn geometry() -> DramGeometry {
    DramGeometry::module_mib(64)
}

/// A two-rank module: exercises the indexed scheduler's bank→rank
/// derivation (`rank_of_bank`, per-rank activation-gate memo) against
/// the legacy scheduler's direct per-request rank reads — a single-rank
/// geometry cannot distinguish them.
fn two_rank_geometry() -> DramGeometry {
    DramGeometry {
        ranks: 2,
        ..DramGeometry::module_mib(64)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Short random mixed streams, on one- and two-rank modules: legacy
    /// and indexed schedulers agree on every completion, statistic, and
    /// the final clock.
    #[test]
    fn indexed_scheduler_matches_legacy_on_random_streams(
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u8>()), 1..96),
        refresh in any::<bool>(),
        two_ranks in any::<bool>(),
    ) {
        let timing = TimingParams::ddr3_1600_11();
        let g = if two_ranks { two_rank_geometry() } else { geometry() };
        let requests: Vec<MemRequest> = raw
            .iter()
            .map(|&(s, r, l)| arbitrary_request(s, r, l, &timing))
            .collect();
        let legacy = drive!(LegacyController::new(g, timing), &requests, refresh);
        let indexed = drive!(MemoryController::new(g, timing), &requests, refresh);
        prop_assert_eq!(&legacy.0, &indexed.0, "completion streams diverge");
        prop_assert_eq!(legacy.1, indexed.1, "command statistics diverge");
        prop_assert_eq!(legacy.2, indexed.2, "final clocks diverge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Streams ≥1024 deep (the queue-depth workload's regime, with
    /// sustained refills and write-drain pressure): still bit-identical.
    #[test]
    fn indexed_scheduler_matches_legacy_on_deep_streams(
        pattern in proptest::collection::vec(
            (any::<u8>(), any::<u64>(), any::<u8>()), 8..24),
        refresh in any::<bool>(),
    ) {
        let timing = TimingParams::ddr3_1600_11();
        let requests: Vec<MemRequest> = (0..1024 + pattern.len())
            .map(|i| {
                let (s, r, l) = pattern[i % pattern.len()];
                // Stride the rows so the stream walks banks and rows.
                arbitrary_request(s, r.wrapping_add(i as u64 * 7), l, &timing)
            })
            .collect();
        prop_assert!(requests.len() >= 1024);
        let legacy = drive!(LegacyController::new(geometry(), timing), &requests, refresh);
        let indexed = drive!(MemoryController::new(geometry(), timing), &requests, refresh);
        prop_assert_eq!(&legacy.0, &indexed.0, "completion streams diverge");
        prop_assert_eq!(legacy.1, indexed.1, "command statistics diverge");
        prop_assert_eq!(legacy.2, indexed.2, "final clocks diverge");
    }
}

/// The energy model charges identical numbers for identical statistics,
/// so stats equality above implies energy equality; this pin makes that
/// explicit for the depth-8192 acceptance workload.
#[test]
fn deep_queue_energy_is_identical_across_schedulers() {
    let timing = TimingParams::ddr3_1600_11();
    let requests: Vec<MemRequest> = (0..2048u64)
        .map(|i| arbitrary_request((i % 6) as u8, i * 3, (i % 61) as u8, &timing))
        .collect();
    let legacy = drive!(LegacyController::new(geometry(), timing), &requests, false);
    let indexed = drive!(MemoryController::new(geometry(), timing), &requests, false);
    assert_eq!(legacy.1, indexed.1);
    let energy = EnergyModel::new(IddValues::ddr3_1600(), timing, geometry().devices_per_rank);
    let charge = |stats: &MemStats| {
        stats.activates as f64 * energy.act_pre_nj()
            + stats.row_op_activations as f64 * energy.act_pre_nj()
            + stats.reads as f64 * energy.read_burst_nj()
            + stats.writes as f64 * energy.write_burst_nj()
    };
    assert_eq!(charge(&legacy.1).to_bits(), charge(&indexed.1).to_bits());
}
