//! The batched simulation engine: integrates many process-variation draws
//! of the same circuit in lockstep.
//!
//! [`CircuitSim`](crate::CircuitSim) simulates one cell/bitline/sense-amp
//! slice at a time; Monte Carlo sweeps (the paper's 100,000-trial Table 11
//! runs) call it once per trial, re-resolving the four control signals at
//! every 25 ps step and allocating a fresh simulator per draw. This module
//! removes both costs:
//!
//! - [`SignalTable`] resolves a [`SignalSchedule`] *once* into runs of
//!   integration steps with a constant (wl, EQ, sense_p, sense_n) mask —
//!   a schedule changes level at most eight times, so the per-step signal
//!   queries collapse into at most nine segments;
//! - [`CircuitSimBatch`] holds the node voltages of N trials in
//!   struct-of-arrays form and advances all trials through each segment
//!   with the signal mask lifted to const generics, so the inner loop over
//!   trials is branch-free and auto-vectorizable.
//!
//! The per-trial arithmetic is *identical* to the scalar integrator — the
//! same operations in the same order on the same values — so a batch
//! produces exactly the outcomes of N scalar [`CircuitSim::resolve_bit`](crate::sim::CircuitSim::resolve_bit)
//! runs (`tests/batch_equivalence.rs` proves this property), and results
//! never depend on the batch size or thread count.

use crate::components::effective_overdrive;
use crate::ptm::CircuitParams;
use crate::signal::{Signal, SignalSchedule};
use crate::sim::{CircuitState, SETTLE_MARGIN_NS};
use crate::variation::VariationDraw;

/// A run of consecutive integration steps sharing one signal mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMask {
    /// Number of consecutive steps with this mask.
    pub steps: u32,
    /// Wordline asserted.
    pub wl: bool,
    /// Equalize asserted.
    pub eq: bool,
    /// `sense_p` asserted.
    pub sp: bool,
    /// `sense_n` asserted.
    pub sn: bool,
}

/// A [`SignalSchedule`] precompiled for a fixed duration and step size:
/// per-step assertion masks compressed into constant-mask segments.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalTable {
    segments: Vec<SegmentMask>,
    steps: usize,
    dt_ns: f64,
}

impl SignalTable {
    /// Resolves `schedule` at every step of a `duration_ns` run with step
    /// `dt_ns` (step `k` is queried at `t = k·dt_ns`, exactly like the
    /// scalar integrator) and compresses the result into segments.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns` or `duration_ns` is not strictly positive.
    #[must_use]
    pub fn compile(schedule: &SignalSchedule, duration_ns: f64, dt_ns: f64) -> Self {
        assert!(dt_ns > 0.0, "integration step must be positive");
        assert!(duration_ns > 0.0, "duration must be positive");
        let steps = (duration_ns / dt_ns).ceil() as usize;
        let mut segments: Vec<SegmentMask> = Vec::with_capacity(9);
        for step in 0..steps {
            let t_ns = step as f64 * dt_ns;
            let mask = SegmentMask {
                steps: 1,
                wl: schedule.is_asserted(Signal::Wordline, t_ns),
                eq: schedule.is_asserted(Signal::Equalize, t_ns),
                sp: schedule.is_asserted(Signal::SenseP, t_ns),
                sn: schedule.is_asserted(Signal::SenseN, t_ns),
            };
            match segments.last_mut() {
                Some(last)
                    if (last.wl, last.eq, last.sp, last.sn)
                        == (mask.wl, mask.eq, mask.sp, mask.sn) =>
                {
                    last.steps += 1;
                }
                _ => segments.push(mask),
            }
        }
        SignalTable {
            segments,
            steps,
            dt_ns,
        }
    }

    /// Total number of integration steps covered.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The integration step the table was compiled for, in nanoseconds.
    #[must_use]
    pub fn dt_ns(&self) -> f64 {
        self.dt_ns
    }

    /// The constant-mask segments in time order.
    #[must_use]
    pub fn segments(&self) -> &[SegmentMask] {
        &self.segments
    }
}

/// Dispatches a batch step method on the four signal levels of a segment,
/// lifting them to const generics so each segment body is branch-free.
macro_rules! dispatch_mask {
    ($self:ident . $method:ident, $seg:expr, ( $($arg:expr),* )) => {{
        let seg = $seg;
        match (seg.wl, seg.eq, seg.sp, seg.sn) {
            (false, false, false, false) => $self.$method::<false, false, false, false>($($arg),*),
            (false, false, false, true) => $self.$method::<false, false, false, true>($($arg),*),
            (false, false, true, false) => $self.$method::<false, false, true, false>($($arg),*),
            (false, false, true, true) => $self.$method::<false, false, true, true>($($arg),*),
            (false, true, false, false) => $self.$method::<false, true, false, false>($($arg),*),
            (false, true, false, true) => $self.$method::<false, true, false, true>($($arg),*),
            (false, true, true, false) => $self.$method::<false, true, true, false>($($arg),*),
            (false, true, true, true) => $self.$method::<false, true, true, true>($($arg),*),
            (true, false, false, false) => $self.$method::<true, false, false, false>($($arg),*),
            (true, false, false, true) => $self.$method::<true, false, false, true>($($arg),*),
            (true, false, true, false) => $self.$method::<true, false, true, false>($($arg),*),
            (true, false, true, true) => $self.$method::<true, false, true, true>($($arg),*),
            (true, true, false, false) => $self.$method::<true, true, false, false>($($arg),*),
            (true, true, false, true) => $self.$method::<true, true, false, true>($($arg),*),
            (true, true, true, false) => $self.$method::<true, true, true, false>($($arg),*),
            (true, true, true, true) => $self.$method::<true, true, true, true>($($arg),*),
        }
    }};
}

/// N cell/bitline/sense-amplifier slices integrated in lockstep.
///
/// All trials share the base [`CircuitParams`]; the quantities process
/// variation perturbs — sense-amplifier offset, cell capacitance, bitline
/// capacitance — are per-trial arrays. Construct with
/// [`CircuitSimBatch::new`] from per-trial [`VariationDraw`]s (or
/// [`CircuitSimBatch::uniform`] for identical trials), seed the cell
/// state, then resolve or integrate.
#[derive(Debug, Clone)]
pub struct CircuitSimBatch {
    // Shared electrical parameters.
    vdd: f64,
    v_pre: f64,
    g_access: f64,
    g_equalize: f64,
    g_tail: f64,
    g_leak: f64,
    gm_n: f64,
    gm_p: f64,
    vth_n: f64,
    vth_p: f64,
    // Per-trial state (struct of arrays).
    v_bitline: Vec<f64>,
    v_bitline_bar: Vec<f64>,
    v_cell: Vec<f64>,
    sa_offset: Vec<f64>,
    c_cell: Vec<f64>,
    c_bitline: Vec<f64>,
}

impl CircuitSimBatch {
    /// Creates a batch of `draws.len()` trials: trial `i` simulates
    /// `draws[i].apply(base)`. Every trial starts precharged with the cell
    /// at 0 V, like [`CircuitSim::new`](crate::CircuitSim::new).
    #[must_use]
    pub fn new(base: CircuitParams, draws: &[VariationDraw]) -> Self {
        let n = draws.len();
        let v_pre = base.v_precharge();
        CircuitSimBatch {
            vdd: base.vdd,
            v_pre,
            g_access: base.g_access,
            g_equalize: base.g_equalize,
            g_tail: base.g_sa_tail,
            g_leak: base.g_leak,
            gm_n: base.transistors.gm_n,
            gm_p: base.transistors.gm_p,
            vth_n: base.transistors.vth_n,
            vth_p: base.transistors.vth_p,
            v_bitline: vec![v_pre; n],
            v_bitline_bar: vec![v_pre; n],
            v_cell: vec![0.0; n],
            sa_offset: draws.iter().map(|d| base.sa_offset + d.sa_offset).collect(),
            c_cell: draws
                .iter()
                .map(|d| base.c_cell * d.c_cell_factor)
                .collect(),
            c_bitline: draws
                .iter()
                .map(|d| base.c_bitline * d.c_bitline_factor)
                .collect(),
        }
    }

    /// A batch of `n` identical trials of the nominal `base` circuit.
    #[must_use]
    pub fn uniform(base: CircuitParams, n: usize) -> Self {
        CircuitSimBatch::new(base, &vec![VariationDraw::nominal(); n])
    }

    /// Number of trials in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.v_bitline.len()
    }

    /// Whether the batch holds no trials.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.v_bitline.is_empty()
    }

    /// The supply voltage shared by all trials.
    #[must_use]
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Sets every trial's cell capacitor to `volts`.
    pub fn set_cell_voltage_all(&mut self, volts: f64) {
        self.v_cell.fill(volts);
    }

    /// Sets per-trial cell voltages.
    ///
    /// # Panics
    ///
    /// Panics if `volts.len()` differs from the batch size.
    pub fn set_cell_voltages(&mut self, volts: &[f64]) {
        assert_eq!(volts.len(), self.len(), "one cell voltage per trial");
        self.v_cell.copy_from_slice(volts);
    }

    /// Stores a full one (`Vdd`) or zero (0 V) per trial.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the batch size.
    pub fn set_cell_bits(&mut self, bits: &[bool]) {
        assert_eq!(bits.len(), self.len(), "one cell bit per trial");
        for (v, &bit) in self.v_cell.iter_mut().zip(bits) {
            *v = if bit { self.vdd } else { 0.0 };
        }
    }

    /// Overrides the per-trial sense-amplifier offsets (replacing, not
    /// adding to, the draw-derived offsets), mirroring
    /// [`CircuitSim::set_sa_offset`](crate::CircuitSim::set_sa_offset).
    ///
    /// # Panics
    ///
    /// Panics if `offsets.len()` differs from the batch size.
    pub fn set_sa_offsets(&mut self, offsets: &[f64]) {
        assert_eq!(offsets.len(), self.len(), "one offset per trial");
        self.sa_offset.copy_from_slice(offsets);
    }

    /// Resets every trial's bitlines to the precharged state without
    /// touching the cells.
    pub fn precharge_bitlines(&mut self) {
        self.v_bitline.fill(self.v_pre);
        self.v_bitline_bar.fill(self.v_pre);
    }

    /// The current node voltages of trial `i`.
    #[must_use]
    pub fn state(&self, i: usize) -> CircuitState {
        CircuitState {
            v_bitline: self.v_bitline[i],
            v_bitline_bar: self.v_bitline_bar[i],
            v_cell: self.v_cell[i],
        }
    }

    /// Batched equivalent of
    /// [`CircuitSim::resolve_bit`](crate::sim::CircuitSim::resolve_bit):
    /// runs `schedule` over the CODIC
    /// window plus settle margin and returns, per trial, the bit the sense
    /// amplifier resolves the true bitline to — `Some(bit)` as soon as the
    /// differential exceeds `Vdd/2`, or the terminal sign (`None` if the
    /// amplifier never resolves).
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns` is not strictly positive.
    pub fn resolve_bits(&mut self, schedule: &SignalSchedule, dt_ns: f64) -> Vec<Option<bool>> {
        let duration_ns = f64::from(crate::signal::WINDOW_NS) + SETTLE_MARGIN_NS;
        let table = SignalTable::compile(schedule, duration_ns, dt_ns);
        self.resolve_bits_with_table(&table)
    }

    /// [`CircuitSimBatch::resolve_bits`] with a precompiled table, so a
    /// sweep over many batches compiles the schedule once.
    pub fn resolve_bits_with_table(&mut self, table: &SignalTable) -> Vec<Option<bool>> {
        let dt_s = table.dt_ns() * 1e-9;
        let threshold = 0.5 * self.vdd;
        let n = self.len();
        let mut out = vec![None; n];
        // Trials still integrating; resolved trials freeze, exactly like the
        // scalar fast path which returns at the resolving step.
        let mut active: Vec<u32> = (0..n as u32).collect();
        'segments: for seg in table.segments() {
            for _ in 0..seg.steps {
                if active.is_empty() {
                    break 'segments;
                }
                dispatch_mask!(
                    self.step_resolve,
                    seg,
                    (dt_s, threshold, &mut active, &mut out)
                );
            }
        }
        for &t in &active {
            let t = t as usize;
            let diff = self.v_bitline[t] - self.v_bitline_bar[t];
            out[t] = if diff.abs() > 1e-9 {
                Some(diff > 0.0)
            } else {
                None
            };
        }
        out
    }

    /// Integrates all trials through the full table without early exit and
    /// returns the terminal node voltages — the batched equivalent of
    /// running [`CircuitSim::run_for`](crate::CircuitSim::run_for) per
    /// trial and taking the final sample.
    pub fn run_terminal(
        &mut self,
        schedule: &SignalSchedule,
        duration_ns: f64,
        dt_ns: f64,
    ) -> Vec<CircuitState> {
        let table = SignalTable::compile(schedule, duration_ns, dt_ns);
        self.run_terminal_with_table(&table)
    }

    /// [`CircuitSimBatch::run_terminal`] with a precompiled table.
    pub fn run_terminal_with_table(&mut self, table: &SignalTable) -> Vec<CircuitState> {
        let dt_s = table.dt_ns() * 1e-9;
        for seg in table.segments() {
            for _ in 0..seg.steps {
                dispatch_mask!(self.step_all, seg, (dt_s));
            }
        }
        (0..self.len()).map(|i| self.state(i)).collect()
    }

    /// Advances trial `t` by one step. The arithmetic mirrors the scalar
    /// integrator operation for operation so results are bit-identical.
    #[inline(always)]
    fn advance_trial<const WL: bool, const EQ: bool, const SP: bool, const SN: bool>(
        &mut self,
        t: usize,
        dt_s: f64,
    ) {
        let v_bl = self.v_bitline[t];
        let v_blb = self.v_bitline_bar[t];
        let v_cell = self.v_cell[t];

        let i_access = if WL {
            self.g_access * (v_cell - v_bl)
        } else {
            0.0
        };

        let (i_pre_bl, i_pre_blb) = if EQ {
            let i_eq = self.g_equalize * (v_blb - v_bl);
            (
                self.g_equalize * (self.v_pre - v_bl) + i_eq,
                self.g_equalize * (self.v_pre - v_blb) - i_eq,
            )
        } else {
            (0.0, 0.0)
        };

        let v_bl_gate = v_bl + self.sa_offset[t];
        let mut i_sa_bl = 0.0;
        let mut i_sa_blb = 0.0;
        if SN {
            let g_dn_bl = self.gm_n * effective_overdrive(v_blb - self.vth_n) + self.g_tail;
            let g_dn_blb = self.gm_n * effective_overdrive(v_bl_gate - self.vth_n) + self.g_tail;
            i_sa_bl -= g_dn_bl * v_bl.max(0.0);
            i_sa_blb -= g_dn_blb * v_blb.max(0.0);
        }
        if SP {
            let g_up_bl =
                self.gm_p * effective_overdrive((self.vdd - v_blb) - self.vth_p) + self.g_tail;
            let g_up_blb =
                self.gm_p * effective_overdrive((self.vdd - v_bl_gate) - self.vth_p) + self.g_tail;
            i_sa_bl += g_up_bl * (self.vdd - v_bl).max(0.0);
            i_sa_blb += g_up_blb * (self.vdd - v_blb).max(0.0);
        }

        let i_leak = self.g_leak * (self.v_pre - v_cell);

        let dv_bl = (i_access + i_pre_bl + i_sa_bl) / self.c_bitline[t] * dt_s;
        let dv_blb = (i_pre_blb + i_sa_blb) / self.c_bitline[t] * dt_s;
        let dv_cell = (-i_access + i_leak) / self.c_cell[t] * dt_s;

        let lo = -0.02;
        let hi = self.vdd + 0.02;
        self.v_bitline[t] = (v_bl + dv_bl).clamp(lo, hi);
        self.v_bitline_bar[t] = (v_blb + dv_blb).clamp(lo, hi);
        self.v_cell[t] = (v_cell + dv_cell).clamp(lo, hi);
    }

    /// One step over all trials (no resolution tracking).
    fn step_all<const WL: bool, const EQ: bool, const SP: bool, const SN: bool>(
        &mut self,
        dt_s: f64,
    ) {
        for t in 0..self.len() {
            self.advance_trial::<WL, EQ, SP, SN>(t, dt_s);
        }
    }

    /// One step over the active trials, retiring any that resolve.
    fn step_resolve<const WL: bool, const EQ: bool, const SP: bool, const SN: bool>(
        &mut self,
        dt_s: f64,
        threshold: f64,
        active: &mut Vec<u32>,
        out: &mut [Option<bool>],
    ) {
        let mut i = 0;
        while i < active.len() {
            let t = active[i] as usize;
            self.advance_trial::<WL, EQ, SP, SN>(t, dt_s);
            let diff = self.v_bitline[t] - self.v_bitline_bar[t];
            if diff.abs() > threshold {
                out[t] = Some(diff > 0.0);
                active.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedules;
    use crate::sim::{CircuitSim, DEFAULT_DT_NS};

    #[test]
    fn signal_table_has_few_segments_and_matches_is_asserted() {
        let schedule = schedules::activate();
        let table = SignalTable::compile(&schedule, 30.0, 0.025);
        assert!(
            table.segments().len() <= 9,
            "{} segments",
            table.segments().len()
        );
        assert_eq!(
            table
                .segments()
                .iter()
                .map(|s| u64::from(s.steps))
                .sum::<u64>(),
            table.steps() as u64
        );
        // Expand the table and cross-check every step against the schedule.
        let mut step = 0usize;
        for seg in table.segments() {
            for _ in 0..seg.steps {
                let t_ns = step as f64 * table.dt_ns();
                assert_eq!(seg.wl, schedule.is_asserted(Signal::Wordline, t_ns));
                assert_eq!(seg.eq, schedule.is_asserted(Signal::Equalize, t_ns));
                assert_eq!(seg.sp, schedule.is_asserted(Signal::SenseP, t_ns));
                assert_eq!(seg.sn, schedule.is_asserted(Signal::SenseN, t_ns));
                step += 1;
            }
        }
        assert_eq!(step, table.steps());
    }

    #[test]
    fn empty_schedule_compiles_to_one_idle_segment() {
        let table = SignalTable::compile(&SignalSchedule::default(), 30.0, 0.025);
        assert_eq!(table.segments().len(), 1);
        let seg = table.segments()[0];
        assert!(!seg.wl && !seg.eq && !seg.sp && !seg.sn);
    }

    #[test]
    fn batch_resolve_matches_scalar_for_activate() {
        let schedule = schedules::activate();
        let base = CircuitParams::default();
        for bit in [false, true] {
            let mut batch = CircuitSimBatch::uniform(base, 3);
            batch.set_cell_bits(&[bit, bit, bit]);
            let got = batch.resolve_bits(&schedule, DEFAULT_DT_NS);
            let mut sim = CircuitSim::new(base);
            sim.set_cell_bit(bit);
            let want = sim.resolve_bit(&schedule, DEFAULT_DT_NS);
            assert_eq!(got, vec![want; 3]);
        }
    }

    #[test]
    fn batch_terminal_state_matches_scalar_run() {
        let schedule = schedules::codic_sig();
        let base = CircuitParams::default();
        let mut batch = CircuitSimBatch::uniform(base, 2);
        batch.set_cell_bits(&[false, true]);
        let states = batch.run_terminal(&schedule, 30.0, 0.025);
        for (i, bit) in [false, true].into_iter().enumerate() {
            let mut sim = CircuitSim::new(base);
            sim.set_cell_bit(bit);
            let wave = sim.run_for(&schedule, 30.0, 0.025);
            let f = wave.final_sample();
            assert_eq!(states[i].v_bitline.to_bits(), f.v_bitline.to_bits());
            assert_eq!(states[i].v_bitline_bar.to_bits(), f.v_bitline_bar.to_bits());
            assert_eq!(states[i].v_cell.to_bits(), f.v_cell.to_bits());
        }
    }

    #[test]
    fn per_trial_offsets_steer_resolution() {
        let base = CircuitParams::default();
        let mut batch = CircuitSimBatch::uniform(base, 2);
        batch.set_sa_offsets(&[6.0e-3, -6.0e-3]);
        batch.set_cell_voltage_all(base.v_precharge());
        let bits = batch.resolve_bits(&schedules::codic_sigsa(), 0.025);
        assert_eq!(bits, vec![Some(true), Some(false)]);
    }

    #[test]
    fn uniform_batch_state_accessors_work() {
        let base = CircuitParams::default();
        let mut batch = CircuitSimBatch::uniform(base, 4);
        assert_eq!(batch.len(), 4);
        assert!(!batch.is_empty());
        assert_eq!(batch.vdd(), base.vdd);
        batch.set_cell_voltage_all(0.3);
        assert_eq!(batch.state(2).v_cell, 0.3);
        batch.precharge_bitlines();
        assert_eq!(batch.state(0).v_bitline, base.v_precharge());
    }
}
