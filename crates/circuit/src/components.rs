//! Electrical component models composed by [`CircuitSim`](crate::CircuitSim).
//!
//! Each component exposes the current it injects into the circuit nodes as a
//! pure function of the node voltages and its control signal. The simulator
//! sums these currents and integrates the node capacitances.

use crate::ptm::TransistorParams;

/// Subthreshold slope parameter in volts for the smooth conduction model.
///
/// MOSFET conduction does not cut off abruptly at the threshold voltage;
/// below threshold the current decays exponentially. We model the effective
/// gate overdrive with a softplus: `od_eff = n·ln(1 + exp((vgs - vth)/n))`.
/// This matters for CODIC-det: during the single-ended sensing phase both
/// bitlines must keep collapsing toward the rail even after the cross-coupled
/// gates fall below threshold (paper Figure 3b).
pub const SUBTHRESHOLD_SLOPE: f64 = 0.06;

/// Effective overdrive of a MOSFET including the subthreshold tail.
#[must_use]
pub fn effective_overdrive(vgs_minus_vth: f64) -> f64 {
    let n = SUBTHRESHOLD_SLOPE;
    let x = vgs_minus_vth / n;
    if x > 30.0 {
        vgs_minus_vth
    } else if x < -30.0 {
        0.0
    } else {
        n * x.exp().ln_1p()
    }
}

/// The access transistor connecting the cell capacitor to the bitline,
/// gated by `wl`.
///
/// Modelled as an ideal switch with finite on-conductance: the paper's
/// charge-sharing phase is an RC equalization between `C_cell` and `C_bl`
/// through this conductance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessTransistor {
    /// On conductance in siemens.
    pub g_on: f64,
}

impl AccessTransistor {
    /// Current flowing *from the cell into the bitline* in amperes.
    /// Zero when `wl` is deasserted.
    #[must_use]
    pub fn current(&self, wl_asserted: bool, v_cell: f64, v_bitline: f64) -> f64 {
        if wl_asserted {
            self.g_on * (v_cell - v_bitline)
        } else {
            0.0
        }
    }
}

/// The precharge unit: two precharge devices driving each bitline to
/// `Vdd/2` plus an equalize device shorting the bitline pair, all gated by
/// `EQ` (paper Figure 2a, "Precharge Unit").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrechargeUnit {
    /// Conductance of each precharge device in siemens.
    pub g_precharge: f64,
    /// Conductance of the equalize device in siemens.
    pub g_equalize: f64,
    /// Precharge reference voltage (`Vdd/2`) in volts.
    pub v_ref: f64,
}

impl PrechargeUnit {
    /// Currents injected into `(bitline, bitline_bar)` in amperes.
    /// Zero when `EQ` is deasserted.
    #[must_use]
    pub fn currents(&self, eq_asserted: bool, v_bl: f64, v_blb: f64) -> (f64, f64) {
        if !eq_asserted {
            return (0.0, 0.0);
        }
        let i_eq = self.g_equalize * (v_blb - v_bl);
        let i_bl = self.g_precharge * (self.v_ref - v_bl) + i_eq;
        let i_blb = self.g_precharge * (self.v_ref - v_blb) - i_eq;
        (i_bl, i_blb)
    }
}

/// The cross-coupled sense amplifier (paper Figure 2a).
///
/// Two NMOS devices (enabled by `sense_n`) pull each bitline toward ground
/// with a strength set by the *other* bitline's voltage; two PMOS devices
/// (enabled by `sense_p`) pull each bitline toward `Vdd` likewise. Each
/// device is modelled as a voltage-controlled conductance
/// `g = gm · effective_overdrive(vgs - vth)` to its rail, where
/// [`effective_overdrive`] includes the subthreshold tail.
///
/// The input-referred `offset` is added to the true bitline voltage wherever
/// it drives a transistor *gate*, which is the standard way of modelling
/// threshold mismatch in latch-type sense amplifiers.
///
/// In addition to the cross-coupled pairs, each enable provides a weak
/// common-mode *tail path* (`g_tail`): when `sense_n` grounds the NMOS
/// common-source node, both bitlines leak toward ground through the latch
/// devices even after the cross-coupled gates fall below threshold, and
/// symmetrically for `sense_p` toward `Vdd`. This is what lets a
/// single-ended enable collapse both bitlines to the rail — the paper's
/// Figure 3b shows `sense_n` alone "deviating the bitline voltage towards
/// zero" all the way to 0 V, which pure cross-coupled conduction cannot do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseAmplifier {
    /// Transistor parameters (thresholds, transconductances).
    pub transistors: TransistorParams,
    /// Supply rail in volts.
    pub vdd: f64,
    /// Input-referred offset in volts; positive biases toward resolving the
    /// true bitline to one.
    pub offset: f64,
    /// Common-mode tail conductance in siemens per enabled half.
    pub g_tail: f64,
}

impl SenseAmplifier {
    /// Currents injected into `(bitline, bitline_bar)` in amperes given the
    /// two enable signals.
    #[must_use]
    pub fn currents(
        &self,
        sense_n_asserted: bool,
        sense_p_asserted: bool,
        v_bl: f64,
        v_blb: f64,
    ) -> (f64, f64) {
        let t = &self.transistors;
        // The offset is referred to the true bitline's gate connections: the
        // devices whose gates are driven by `bl` see `v_bl + offset`.
        let v_bl_gate = v_bl + self.offset;
        let mut i_bl = 0.0;
        let mut i_blb = 0.0;
        if sense_n_asserted {
            // NMOS gated by blb discharges bl; NMOS gated by bl discharges blb.
            let g_dn_bl = t.gm_n * effective_overdrive(v_blb - t.vth_n) + self.g_tail;
            let g_dn_blb = t.gm_n * effective_overdrive(v_bl_gate - t.vth_n) + self.g_tail;
            i_bl -= g_dn_bl * v_bl.max(0.0);
            i_blb -= g_dn_blb * v_blb.max(0.0);
        }
        if sense_p_asserted {
            // PMOS gated by blb charges bl; PMOS gated by bl charges blb.
            let g_up_bl = t.gm_p * effective_overdrive((self.vdd - v_blb) - t.vth_p) + self.g_tail;
            let g_up_blb =
                t.gm_p * effective_overdrive((self.vdd - v_bl_gate) - t.vth_p) + self.g_tail;
            i_bl += g_up_bl * (self.vdd - v_bl).max(0.0);
            i_blb += g_up_blb * (self.vdd - v_blb).max(0.0);
        }
        (i_bl, i_blb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sa(offset: f64) -> SenseAmplifier {
        SenseAmplifier {
            transistors: TransistorParams::default(),
            vdd: 1.5,
            offset,
            g_tail: 0.0,
        }
    }

    fn sa_with_tail(offset: f64) -> SenseAmplifier {
        SenseAmplifier {
            g_tail: 2.5e-5,
            ..sa(offset)
        }
    }

    #[test]
    fn tail_path_discharges_both_sides_below_threshold() {
        // Even with both gates far below threshold, an enabled sense_n must
        // keep pulling both bitlines to ground (paper Figure 3b).
        let (i_bl, i_blb) = sa_with_tail(0.0).currents(true, false, 0.2, 0.1);
        assert!(i_bl < -1e-9);
        assert!(i_blb < -1e-9);
    }

    #[test]
    fn effective_overdrive_is_monotonic_and_smooth() {
        let mut prev = effective_overdrive(-1.0);
        let mut x = -1.0;
        while x < 1.0 {
            let v = effective_overdrive(x);
            assert!(v >= prev);
            prev = v;
            x += 0.01;
        }
        // Deep subthreshold is negligible, strong inversion is linear.
        assert!(effective_overdrive(-0.5) < 1e-4);
        assert!((effective_overdrive(0.8) - 0.8).abs() < 1e-3);
    }

    #[test]
    fn access_transistor_is_off_when_wl_low() {
        let at = AccessTransistor { g_on: 2e-5 };
        assert_eq!(at.current(false, 1.5, 0.75), 0.0);
        assert!(at.current(true, 1.5, 0.75) > 0.0);
        assert!(at.current(true, 0.0, 0.75) < 0.0);
    }

    #[test]
    fn precharge_pulls_both_bitlines_to_reference() {
        let pu = PrechargeUnit {
            g_precharge: 5e-5,
            g_equalize: 5e-5,
            v_ref: 0.75,
        };
        let (i_bl, i_blb) = pu.currents(true, 1.5, 0.0);
        assert!(i_bl < 0.0, "high bitline must discharge");
        assert!(i_blb > 0.0, "low bitline must charge");
        assert_eq!(pu.currents(false, 1.5, 0.0), (0.0, 0.0));
    }

    #[test]
    fn equalize_current_is_antisymmetric() {
        let pu = PrechargeUnit {
            g_precharge: 0.0,
            g_equalize: 5e-5,
            v_ref: 0.75,
        };
        let (i_bl, i_blb) = pu.currents(true, 1.0, 0.5);
        assert!((i_bl + i_blb).abs() < 1e-18);
    }

    #[test]
    fn sense_n_discharges_the_lower_side_faster() {
        // bl slightly above blb: the NMOS gated by bl (discharging blb) has
        // more overdrive, so blb must discharge faster -> bl wins.
        let (i_bl, i_blb) = sa(0.0).currents(true, false, 0.80, 0.70);
        assert!(i_bl < 0.0 && i_blb < 0.0);
        assert!(i_blb < i_bl, "lower side must be pulled down harder");
    }

    #[test]
    fn sense_p_charges_the_higher_side_faster_near_balance() {
        // Near Vdd/2 the gate overdrive difference dominates the
        // drain-to-rail difference, so the higher side receives more net
        // pull-up per volt of gate difference.
        let (i_bl, i_blb) = sa(0.0).currents(false, true, 0.76, 0.74);
        assert!(i_bl > 0.0 && i_blb > 0.0);
        assert!(i_bl > i_blb, "higher side must be pulled up harder");
    }

    #[test]
    fn positive_offset_biases_toward_one_from_balance() {
        // With perfectly equal bitlines, a positive offset makes the device
        // discharging blb stronger, so blb falls first and bl resolves high.
        let (i_bl, i_blb) = sa(5e-3).currents(true, true, 0.75, 0.75);
        assert!(i_blb < i_bl);
    }

    #[test]
    fn amplifier_idle_when_disabled() {
        assert_eq!(sa(5e-3).currents(false, false, 0.8, 0.7), (0.0, 0.0));
    }

    #[test]
    fn nmos_conduction_is_negligible_deep_below_threshold() {
        let (i_bl, i_blb) = sa(0.0).currents(true, false, 0.05, 0.05);
        assert!(i_bl.abs() < 1e-8);
        assert!(i_blb.abs() < 1e-8);
    }
}
