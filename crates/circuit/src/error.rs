use std::error::Error;
use std::fmt;

use crate::signal::WINDOW_NS;

/// Error returned when constructing an invalid [`SignalPulse`] or
/// [`SignalSchedule`].
///
/// [`SignalPulse`]: crate::SignalPulse
/// [`SignalSchedule`]: crate::SignalSchedule
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleError {
    /// The assert or deassert time lies outside CODIC's programmable window
    /// (`0..WINDOW_NS` nanoseconds).
    OutOfWindow {
        /// The offending time step in nanoseconds.
        time_ns: u8,
    },
    /// The pulse would deassert at or before the time it asserts.
    EmptyPulse {
        /// Assert time in nanoseconds.
        assert_ns: u8,
        /// Deassert time in nanoseconds.
        deassert_ns: u8,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ScheduleError::OutOfWindow { time_ns } => write!(
                f,
                "signal edge at {time_ns} ns lies outside the {WINDOW_NS} ns CODIC window"
            ),
            ScheduleError::EmptyPulse {
                assert_ns,
                deassert_ns,
            } => write!(
                f,
                "pulse deasserts at {deassert_ns} ns, not after its assert time {assert_ns} ns"
            ),
        }
    }
}

impl Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_window() {
        let message = ScheduleError::OutOfWindow { time_ns: 30 }.to_string();
        assert!(message.contains("30 ns"));
        assert!(message.contains("25 ns"));
    }

    #[test]
    fn display_empty_pulse() {
        let message = ScheduleError::EmptyPulse {
            assert_ns: 7,
            deassert_ns: 7,
        }
        .to_string();
        assert!(message.contains('7'));
    }
}
