//! Behavioural analog simulator for a DRAM cell / bitline / sense-amplifier
//! slice, substituting for the SPICE + 22 nm PTM setup used by the CODIC
//! paper (Orosa et al., ISCA 2021).
//!
//! The simulator models the circuit of the paper's Figure 2a:
//!
//! ```text
//!            wl                     EQ            sense_p / sense_n
//!             │                      │                    │
//!   cell ──[access]── bitline ──[precharge unit]──[sense amplifier]
//!                      bitline-bar ──┘                    │
//! ```
//!
//! Four internal control signals — [`Signal::Wordline`], [`Signal::Equalize`],
//! [`Signal::SenseP`], [`Signal::SenseN`] — are driven by a
//! [`SignalSchedule`]: per-signal assert/deassert times inside CODIC's 25 ns
//! window at 1 ns steps. The simulator integrates the resulting node voltages
//! (bitline, bitline-bar, cell capacitor) with a forward-Euler method and
//! captures a [`Waveform`], from which a [`SenseOutcome`] is classified.
//!
//! Process variation (sense-amplifier input offset, capacitance mismatch) is
//! modelled by [`variation::VariationDraw`], and the Monte Carlo harness in
//! [`montecarlo`] reproduces the paper's Table 11 (CODIC-sigsa bit-flip rates
//! versus process variation and temperature).
//!
//! # Example
//!
//! Reproduce the paper's Figure 2b: a regular activate command restoring a
//! cell that stores a one:
//!
//! ```
//! use codic_circuit::{CircuitParams, CircuitSim, SignalSchedule, Signal, SenseOutcome};
//!
//! # fn main() -> Result<(), codic_circuit::ScheduleError> {
//! let schedule = SignalSchedule::builder()
//!     .pulse(Signal::Wordline, 5, 22)?
//!     .pulse(Signal::SenseP, 7, 22)?
//!     .pulse(Signal::SenseN, 7, 22)?
//!     .build();
//! let params = CircuitParams::default();
//! let mut sim = CircuitSim::new(params);
//! sim.set_cell_bit(true);
//! let wave = sim.run(&schedule);
//! assert_eq!(wave.outcome(), SenseOutcome::RestoredOne);
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod components;
mod error;
pub mod montecarlo;
pub mod outcome;
pub mod ptm;
pub mod schedules;
pub mod signal;
pub mod sim;
pub mod variation;
pub mod waveform;

pub use batch::{CircuitSimBatch, SegmentMask, SignalTable};
pub use error::ScheduleError;
pub use outcome::SenseOutcome;
pub use ptm::{CircuitParams, TransistorParams};
pub use signal::{ScheduleBuilder, Signal, SignalPulse, SignalSchedule, WINDOW_NS};
pub use sim::{CircuitSim, CircuitState};
pub use variation::{ProcessVariation, VariationDraw};
pub use waveform::{Sample, Waveform};
