//! Monte Carlo harness reproducing the paper's Table 11: the percentage of
//! sense amplifiers whose CODIC-sigsa output flips (generates a zero) under
//! process variation and temperature.
//!
//! The paper runs 100,000 SPICE simulations per configuration; this harness
//! does the same with [`CircuitSim`], drawing a fresh
//! [`VariationDraw`](crate::VariationDraw) per trial.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::ptm::CircuitParams;
use crate::signal::{Signal, SignalSchedule};
use crate::sim::CircuitSim;
use crate::variation::{nominal_imbalance_at, ProcessVariation};

/// Integration step used for Monte Carlo trials, in nanoseconds. Coarser
/// than the default for speed; `sim::tests` verifies outcomes match.
pub const MC_DT_NS: f64 = 0.025;

/// The CODIC-sigsa schedule from the paper's Appendix C: both sense-amp
/// enables at 3 ns (before any charge sharing can occur), wordline at 5 ns
/// so the resolved value is written back into the cell.
#[must_use]
pub fn sigsa_schedule() -> SignalSchedule {
    SignalSchedule::builder()
        .pulse(Signal::SenseP, 3, 22)
        .expect("static timing is valid")
        .pulse(Signal::SenseN, 3, 22)
        .expect("static timing is valid")
        .pulse(Signal::Wordline, 5, 22)
        .expect("static timing is valid")
        .build()
}

/// One Table 11 configuration: a process-variation level, a temperature,
/// a trial count, and an RNG seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigsaExperiment {
    /// Transistor process-variation level.
    pub variation: ProcessVariation,
    /// Operating temperature in °C.
    pub temperature_c: f64,
    /// Number of Monte Carlo trials (the paper uses 100,000).
    pub trials: u32,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for SigsaExperiment {
    fn default() -> Self {
        SigsaExperiment {
            variation: ProcessVariation::default(),
            temperature_c: 30.0,
            trials: 100_000,
            seed: 0x51654,
        }
    }
}

/// Result of a [`SigsaExperiment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlipStats {
    /// Trials run.
    pub trials: u32,
    /// Trials whose sense amplifier resolved to zero (a "bit flip", since
    /// the nominal design always generates ones — Appendix C).
    pub flips: u32,
}

impl BitFlipStats {
    /// Flip rate in percent.
    #[must_use]
    pub fn flip_pct(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            100.0 * f64::from(self.flips) / f64::from(self.trials)
        }
    }
}

impl SigsaExperiment {
    /// Runs the Monte Carlo experiment with the built-in
    /// [`sigsa_schedule`].
    #[must_use]
    pub fn run(&self) -> BitFlipStats {
        self.run_with_schedule(&sigsa_schedule())
    }

    /// Runs the Monte Carlo experiment with a caller-provided schedule.
    #[must_use]
    pub fn run_with_schedule(&self, schedule: &SignalSchedule) -> BitFlipStats {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let base = CircuitParams {
            sa_offset: nominal_imbalance_at(self.temperature_c),
            ..CircuitParams::default()
        }
        .at_temperature(self.temperature_c);
        let mut flips = 0;
        for _ in 0..self.trials {
            let draw = self.variation.draw(&mut rng);
            let params = draw.apply(base);
            let mut sim = CircuitSim::new(params);
            // CODIC-sigsa operates on a precharged slice; the cell's stored
            // value is irrelevant because the wordline rises only after the
            // amplifier has resolved. Use Vdd/2 as a neutral starting point.
            sim.set_cell_voltage(params.v_precharge());
            let resolved_one = sim.resolve_bit(schedule, MC_DT_NS).unwrap_or(true);
            if !resolved_one {
                flips += 1;
            }
        }
        BitFlipStats {
            trials: self.trials,
            flips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment(pv_pct: f64, temp: f64, trials: u32) -> BitFlipStats {
        SigsaExperiment {
            variation: ProcessVariation::from_pct(pv_pct),
            temperature_c: temp,
            trials,
            seed: 0xC0D1C,
        }
        .run()
    }

    #[test]
    fn no_variation_means_no_flips() {
        let stats = experiment(0.0, 30.0, 200);
        assert_eq!(stats.flips, 0);
    }

    #[test]
    fn small_variation_produces_no_flips() {
        // Table 11: 2 % and 3 % variation -> 0.00 % flips.
        assert_eq!(experiment(2.0, 30.0, 5_000).flips, 0);
        assert_eq!(experiment(3.0, 30.0, 5_000).flips, 0);
    }

    #[test]
    fn four_pct_variation_flip_rate_is_near_table_11() {
        // Table 11: 4 % variation at 30 °C -> 0.02 %. With 50k trials the
        // 95 % band around 0.02 % is roughly [0.01 %, 0.04 %].
        let stats = experiment(4.0, 30.0, 50_000);
        let pct = stats.flip_pct();
        assert!(pct > 0.0 && pct < 0.08, "flip rate = {pct}%");
    }

    #[test]
    fn five_pct_variation_flip_rate_is_near_table_11() {
        // Table 11: 5 % variation -> 0.19 %.
        let stats = experiment(5.0, 30.0, 50_000);
        let pct = stats.flip_pct();
        assert!(pct > 0.10 && pct < 0.30, "flip rate = {pct}%");
    }

    #[test]
    fn temperature_raises_then_lowers_flip_rate() {
        // Table 11 temperature row at 4 % PV: 0.02, 0.19, 0.21, 0.15 (%).
        let t30 = experiment(4.0, 30.0, 40_000).flip_pct();
        let t60 = experiment(4.0, 60.0, 40_000).flip_pct();
        let t85 = experiment(4.0, 85.0, 40_000).flip_pct();
        assert!(t60 > t30 * 2.0, "t30 = {t30}%, t60 = {t60}%");
        assert!(t85 < t60 * 1.5 && t85 > t30, "t60 = {t60}%, t85 = {t85}%");
    }

    #[test]
    fn flip_pct_handles_zero_trials() {
        let stats = BitFlipStats { trials: 0, flips: 0 };
        assert_eq!(stats.flip_pct(), 0.0);
    }

    #[test]
    fn experiment_is_reproducible() {
        let a = experiment(5.0, 30.0, 10_000);
        let b = experiment(5.0, 30.0, 10_000);
        assert_eq!(a, b);
    }
}
