//! Monte Carlo harness reproducing the paper's Table 11: the percentage of
//! sense amplifiers whose CODIC-sigsa output flips (generates a zero) under
//! process variation and temperature.
//!
//! The paper runs 100,000 SPICE simulations per configuration; this harness
//! does the same with the batched engine: trials are drawn with **per-trial
//! deterministic seeding** (each trial's RNG derives from `seed` and the
//! trial index), packed into fixed-size chunks, and integrated in lockstep
//! by [`CircuitSimBatch`] with the chunks spread across rayon worker
//! threads. Because the seeding is positional and the chunk size is fixed,
//! the result is bit-identical for every thread count and chunk placement.
//!
//! [`SigsaExperiment::run_scalar`] keeps the original one-`CircuitSim`-per-
//! trial path as the benchmark baseline and as the reference the batched
//! engine is property-tested against.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::batch::{CircuitSimBatch, SignalTable};
use crate::ptm::CircuitParams;
use crate::schedules;
use crate::signal::{SignalSchedule, WINDOW_NS};
use crate::sim::{CircuitSim, SETTLE_MARGIN_NS};
use crate::variation::{nominal_imbalance_at, ProcessVariation, VariationDraw};

/// Integration step used for Monte Carlo trials, in nanoseconds. Coarser
/// than the default for speed; `sim::tests` verifies outcomes match.
pub const MC_DT_NS: f64 = 0.025;

/// Trials integrated per [`CircuitSimBatch`] chunk. Fixed (rather than
/// derived from the thread count) so results are independent of
/// parallelism; 256 trials of 6 lanes each stay comfortably in L2.
pub const MC_CHUNK_TRIALS: u32 = 256;

/// The CODIC-sigsa schedule from the paper's Appendix C: both sense-amp
/// enables at 3 ns (before any charge sharing can occur), wordline at 5 ns
/// so the resolved value is written back into the cell.
///
/// Delegates to the canonical [`schedules::codic_sigsa`].
#[must_use]
pub fn sigsa_schedule() -> SignalSchedule {
    schedules::codic_sigsa()
}

/// The RNG for one Monte Carlo trial, derived from the experiment seed and
/// the trial index. Positional seeding is what makes the sweep independent
/// of execution order: any chunking or thread schedule draws the same
/// variation for trial `i`.
#[must_use]
pub fn trial_rng(seed: u64, trial: u32) -> SmallRng {
    // Golden-ratio stride separates adjacent trial seeds; seed_from_u64
    // then expands each through splitmix64 into an independent stream.
    SmallRng::seed_from_u64(
        seed.wrapping_add((u64::from(trial) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    )
}

/// One Table 11 configuration: a process-variation level, a temperature,
/// a trial count, and an RNG seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigsaExperiment {
    /// Transistor process-variation level.
    pub variation: ProcessVariation,
    /// Operating temperature in °C.
    pub temperature_c: f64,
    /// Number of Monte Carlo trials (the paper uses 100,000).
    pub trials: u32,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for SigsaExperiment {
    fn default() -> Self {
        SigsaExperiment {
            variation: ProcessVariation::default(),
            temperature_c: 30.0,
            trials: 100_000,
            seed: 0x51654,
        }
    }
}

/// Result of a [`SigsaExperiment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFlipStats {
    /// Trials run.
    pub trials: u32,
    /// Trials whose sense amplifier resolved to zero (a "bit flip", since
    /// the nominal design always generates ones — Appendix C).
    pub flips: u32,
}

impl BitFlipStats {
    /// Flip rate in percent.
    #[must_use]
    pub fn flip_pct(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            100.0 * f64::from(self.flips) / f64::from(self.trials)
        }
    }
}

impl SigsaExperiment {
    /// The per-instance base parameters before variation is applied.
    #[must_use]
    fn base_params(&self) -> CircuitParams {
        CircuitParams {
            sa_offset: nominal_imbalance_at(self.temperature_c),
            ..CircuitParams::default()
        }
        .at_temperature(self.temperature_c)
    }

    /// The variation draw of trial `trial` (independent of execution
    /// order; see [`trial_rng`]).
    #[must_use]
    pub fn trial_draw(&self, trial: u32) -> VariationDraw {
        self.variation.draw(&mut trial_rng(self.seed, trial))
    }

    /// Runs the Monte Carlo experiment with the built-in
    /// [`sigsa_schedule`] on the batched, parallel engine.
    #[must_use]
    pub fn run(&self) -> BitFlipStats {
        self.run_with_schedule(&sigsa_schedule())
    }

    /// Runs the Monte Carlo experiment with a caller-provided schedule on
    /// the batched, parallel engine. Results are bit-identical for every
    /// `RAYON_NUM_THREADS` value.
    #[must_use]
    pub fn run_with_schedule(&self, schedule: &SignalSchedule) -> BitFlipStats {
        let base = self.base_params();
        let duration_ns = f64::from(WINDOW_NS) + SETTLE_MARGIN_NS;
        let table = SignalTable::compile(schedule, duration_ns, MC_DT_NS);
        let starts: Vec<u32> = (0..self.trials).step_by(MC_CHUNK_TRIALS as usize).collect();
        let flips: u32 = starts
            .into_par_iter()
            .map(|start| {
                let len = MC_CHUNK_TRIALS.min(self.trials - start);
                let draws: Vec<VariationDraw> =
                    (start..start + len).map(|t| self.trial_draw(t)).collect();
                let mut batch = CircuitSimBatch::new(base, &draws);
                // CODIC-sigsa operates on a precharged slice; the cell's
                // stored value is irrelevant because the wordline rises only
                // after the amplifier has resolved. Use Vdd/2 as a neutral
                // starting point.
                batch.set_cell_voltage_all(base.v_precharge());
                batch
                    .resolve_bits_with_table(&table)
                    .into_iter()
                    .filter(|resolved| !resolved.unwrap_or(true))
                    .count() as u32
            })
            .sum();
        BitFlipStats {
            trials: self.trials,
            flips,
        }
    }

    /// The original scalar path — one freshly allocated [`CircuitSim`] per
    /// trial, signals re-queried every step — kept as the benchmark
    /// baseline. Uses the same per-trial seeding, so its result equals
    /// [`SigsaExperiment::run`] exactly.
    #[must_use]
    pub fn run_scalar(&self) -> BitFlipStats {
        self.run_scalar_with_schedule(&sigsa_schedule())
    }

    /// Scalar baseline counterpart of [`SigsaExperiment::run_with_schedule`].
    #[must_use]
    pub fn run_scalar_with_schedule(&self, schedule: &SignalSchedule) -> BitFlipStats {
        let base = self.base_params();
        let mut flips = 0;
        for trial in 0..self.trials {
            let params = self.trial_draw(trial).apply(base);
            let mut sim = CircuitSim::new(params);
            sim.set_cell_voltage(params.v_precharge());
            let resolved_one = sim.resolve_bit(schedule, MC_DT_NS).unwrap_or(true);
            if !resolved_one {
                flips += 1;
            }
        }
        BitFlipStats {
            trials: self.trials,
            flips,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment(pv_pct: f64, temp: f64, trials: u32) -> BitFlipStats {
        SigsaExperiment {
            variation: ProcessVariation::from_pct(pv_pct),
            temperature_c: temp,
            trials,
            seed: 0xC0D1C,
        }
        .run()
    }

    #[test]
    fn no_variation_means_no_flips() {
        let stats = experiment(0.0, 30.0, 200);
        assert_eq!(stats.flips, 0);
    }

    #[test]
    fn small_variation_produces_no_flips() {
        // Table 11: 2 % and 3 % variation -> 0.00 % flips.
        assert_eq!(experiment(2.0, 30.0, 5_000).flips, 0);
        assert_eq!(experiment(3.0, 30.0, 5_000).flips, 0);
    }

    #[test]
    fn four_pct_variation_flip_rate_is_near_table_11() {
        // Table 11: 4 % variation at 30 °C -> 0.02 %. With 50k trials the
        // 95 % band around 0.02 % is roughly [0.01 %, 0.04 %].
        let stats = experiment(4.0, 30.0, 50_000);
        let pct = stats.flip_pct();
        assert!(pct > 0.0 && pct < 0.08, "flip rate = {pct}%");
    }

    #[test]
    fn five_pct_variation_flip_rate_is_near_table_11() {
        // Table 11: 5 % variation -> 0.19 %.
        let stats = experiment(5.0, 30.0, 50_000);
        let pct = stats.flip_pct();
        assert!(pct > 0.10 && pct < 0.30, "flip rate = {pct}%");
    }

    #[test]
    fn temperature_raises_then_lowers_flip_rate() {
        // Table 11 temperature row at 4 % PV: 0.02, 0.19, 0.21, 0.15 (%).
        let t30 = experiment(4.0, 30.0, 40_000).flip_pct();
        let t60 = experiment(4.0, 60.0, 40_000).flip_pct();
        let t85 = experiment(4.0, 85.0, 40_000).flip_pct();
        assert!(t60 > t30 * 2.0, "t30 = {t30}%, t60 = {t60}%");
        assert!(t85 < t60 * 1.5 && t85 > t30, "t60 = {t60}%, t85 = {t85}%");
    }

    #[test]
    fn flip_pct_handles_zero_trials() {
        let stats = BitFlipStats {
            trials: 0,
            flips: 0,
        };
        assert_eq!(stats.flip_pct(), 0.0);
        assert_eq!(experiment(4.0, 30.0, 0).flips, 0);
    }

    #[test]
    fn experiment_is_reproducible() {
        let a = experiment(5.0, 30.0, 10_000);
        let b = experiment(5.0, 30.0, 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn batched_equals_scalar_baseline() {
        let exp = SigsaExperiment {
            variation: ProcessVariation::from_pct(5.0),
            temperature_c: 60.0,
            trials: 2_000,
            seed: 0xBEEF,
        };
        assert_eq!(exp.run(), exp.run_scalar());
    }

    #[test]
    fn partial_last_chunk_is_handled() {
        // A trial count that is not a multiple of the chunk size.
        let exp = SigsaExperiment {
            trials: MC_CHUNK_TRIALS + 17,
            ..SigsaExperiment::default()
        };
        let stats = exp.run();
        assert_eq!(stats.trials, MC_CHUNK_TRIALS + 17);
        assert_eq!(exp.run_scalar().flips, stats.flips);
    }

    #[test]
    fn trial_rngs_are_positionally_independent() {
        use rand::Rng;
        let mut a = trial_rng(1, 0);
        let mut b = trial_rng(1, 1);
        let draws_a: Vec<u64> = (0..4).map(|_| a.gen::<u64>()).collect();
        let draws_b: Vec<u64> = (0..4).map(|_| b.gen::<u64>()).collect();
        assert_ne!(draws_a, draws_b);
        let mut a2 = trial_rng(1, 0);
        let again: Vec<u64> = (0..4).map(|_| a2.gen::<u64>()).collect();
        assert_eq!(draws_a, again);
    }
}
