//! Classification of a circuit run's terminal state.

use crate::signal::Signal;
use crate::waveform::Waveform;

/// The functional outcome of one CODIC command at the circuit level,
/// classified from the terminal node voltages.
///
/// "Restored" outcomes describe the *cell* state when the wordline was
/// raised (the cell participated); "Bitline" outcomes describe commands that
/// never connected the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SenseOutcome {
    /// The cell ended at `Vdd`: a one was written/restored into it.
    RestoredOne,
    /// The cell ended at 0 V: a zero was written/restored into it.
    RestoredZero,
    /// The cell ended at `Vdd/2`, the CODIC-sig post-state (§4.1.1): a
    /// subsequent activation will amplify it according to process variation.
    CellEqualized,
    /// The wordline never rose; the bitline ended at `Vdd/2` (a precharge).
    BitlinePrecharged,
    /// The wordline never rose; the sense amplifier latched the bitline high
    /// without involving the cell.
    BitlineResolvedOne,
    /// The wordline never rose; the sense amplifier latched the bitline low
    /// without involving the cell.
    BitlineResolvedZero,
    /// No classification applies: some node ended between the defined bands.
    Metastable,
}

impl SenseOutcome {
    /// The binary value this outcome stores or latches, if it has one.
    #[must_use]
    pub fn bit(self) -> Option<bool> {
        match self {
            SenseOutcome::RestoredOne | SenseOutcome::BitlineResolvedOne => Some(true),
            SenseOutcome::RestoredZero | SenseOutcome::BitlineResolvedZero => Some(false),
            _ => None,
        }
    }

    /// Whether the command modified (or may have modified) the cell contents.
    #[must_use]
    pub fn is_destructive(self) -> bool {
        !matches!(
            self,
            SenseOutcome::BitlinePrecharged
                | SenseOutcome::BitlineResolvedOne
                | SenseOutcome::BitlineResolvedZero
        )
    }
}

impl std::fmt::Display for SenseOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SenseOutcome::RestoredOne => "restored one",
            SenseOutcome::RestoredZero => "restored zero",
            SenseOutcome::CellEqualized => "cell equalized to Vdd/2",
            SenseOutcome::BitlinePrecharged => "bitline precharged",
            SenseOutcome::BitlineResolvedOne => "bitline resolved one (cell untouched)",
            SenseOutcome::BitlineResolvedZero => "bitline resolved zero (cell untouched)",
            SenseOutcome::Metastable => "metastable",
        };
        f.write_str(s)
    }
}

fn band(v: f64, vdd: f64) -> Band {
    if v >= 0.8 * vdd {
        Band::One
    } else if v <= 0.2 * vdd {
        Band::Zero
    } else if (v - vdd / 2.0).abs() <= 0.12 * vdd {
        Band::Half
    } else {
        Band::Between
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Band {
    One,
    Zero,
    Half,
    Between,
}

/// Classifies the terminal state of `waveform`; see [`SenseOutcome`].
#[must_use]
pub fn classify(waveform: &Waveform) -> SenseOutcome {
    let final_sample = waveform.final_sample();
    classify_terminal(
        waveform.schedule(),
        waveform.params().vdd,
        final_sample.v_bitline,
        final_sample.v_cell,
    )
}

/// Classifies a run from its terminal node voltages alone — the form the
/// batched engine uses, since [`CircuitSimBatch`](crate::CircuitSimBatch)
/// produces terminal states without capturing waveforms.
#[must_use]
pub fn classify_terminal(
    schedule: &crate::signal::SignalSchedule,
    vdd: f64,
    v_bitline: f64,
    v_cell: f64,
) -> SenseOutcome {
    let cell_connected = schedule.pulse(Signal::Wordline).is_some();
    if cell_connected {
        match band(v_cell, vdd) {
            Band::One => SenseOutcome::RestoredOne,
            Band::Zero => SenseOutcome::RestoredZero,
            Band::Half => SenseOutcome::CellEqualized,
            Band::Between => SenseOutcome::Metastable,
        }
    } else {
        match band(v_bitline, vdd) {
            Band::One => SenseOutcome::BitlineResolvedOne,
            Band::Zero => SenseOutcome::BitlineResolvedZero,
            Band::Half => SenseOutcome::BitlinePrecharged,
            Band::Between => SenseOutcome::Metastable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptm::CircuitParams;
    use crate::signal::SignalSchedule;
    use crate::waveform::Sample;

    fn wave(v_cell: f64, v_bl: f64, with_wl: bool) -> Waveform {
        let schedule = if with_wl {
            SignalSchedule::builder()
                .pulse(Signal::Wordline, 5, 22)
                .unwrap()
                .build()
        } else {
            SignalSchedule::default()
        };
        Waveform::new(
            schedule,
            CircuitParams::default(),
            vec![Sample {
                t_ns: 0.0,
                v_bitline: v_bl,
                v_bitline_bar: 1.5 - v_bl,
                v_cell,
            }],
        )
    }

    #[test]
    fn classifies_cell_bands() {
        assert_eq!(wave(1.45, 1.45, true).outcome(), SenseOutcome::RestoredOne);
        assert_eq!(wave(0.05, 0.05, true).outcome(), SenseOutcome::RestoredZero);
        assert_eq!(
            wave(0.75, 0.75, true).outcome(),
            SenseOutcome::CellEqualized
        );
        assert_eq!(wave(0.45, 0.45, true).outcome(), SenseOutcome::Metastable);
    }

    #[test]
    fn classifies_bitline_bands_when_cell_disconnected() {
        assert_eq!(
            wave(0.0, 1.45, false).outcome(),
            SenseOutcome::BitlineResolvedOne
        );
        assert_eq!(
            wave(0.0, 0.05, false).outcome(),
            SenseOutcome::BitlineResolvedZero
        );
        assert_eq!(
            wave(0.0, 0.75, false).outcome(),
            SenseOutcome::BitlinePrecharged
        );
    }

    #[test]
    fn bit_and_destructive_flags() {
        assert_eq!(SenseOutcome::RestoredOne.bit(), Some(true));
        assert_eq!(SenseOutcome::BitlineResolvedZero.bit(), Some(false));
        assert_eq!(SenseOutcome::CellEqualized.bit(), None);
        assert!(SenseOutcome::RestoredZero.is_destructive());
        assert!(SenseOutcome::CellEqualized.is_destructive());
        assert!(!SenseOutcome::BitlinePrecharged.is_destructive());
    }

    #[test]
    fn display_is_nonempty() {
        for o in [
            SenseOutcome::RestoredOne,
            SenseOutcome::Metastable,
            SenseOutcome::BitlinePrecharged,
        ] {
            assert!(!o.to_string().is_empty());
        }
    }
}
