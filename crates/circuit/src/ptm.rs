//! Device and circuit parameters standing in for the paper's 22 nm
//! Predictive Technology Model (PTM) SPICE decks.
//!
//! The absolute values are representative of published DRAM design
//! literature (Keeth, *DRAM Circuit Design*); what matters for CODIC is that
//! the resulting time constants reproduce the paper's waveforms: charge
//! sharing completes within a few nanoseconds of `wl` rising, sensing
//! resolves a few nanoseconds after `sense_n`/`sense_p` assert, and the
//! equalizer drives a connected cell to `Vdd/2` almost immediately
//! (paper §4.1.1).

/// MOSFET parameters for the sense-amplifier and peripheral transistors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransistorParams {
    /// NMOS threshold voltage in volts.
    pub vth_n: f64,
    /// PMOS threshold voltage magnitude in volts.
    pub vth_p: f64,
    /// NMOS transconductance factor in siemens per volt of overdrive.
    pub gm_n: f64,
    /// PMOS transconductance factor in siemens per volt of overdrive.
    pub gm_p: f64,
}

impl Default for TransistorParams {
    /// Defaults sized so the sense amplifier is much stronger than the
    /// access transistor: the single-ended collapse phase of CODIC-det must
    /// bottom out both bitlines before the cell can re-inject its charge
    /// through the access device (paper Figure 3b).
    fn default() -> Self {
        TransistorParams {
            vth_n: 0.40,
            vth_p: 0.40,
            gm_n: 4.0e-4,
            gm_p: 4.0e-4,
        }
    }
}

impl TransistorParams {
    /// Returns the parameters shifted to an operating temperature.
    ///
    /// Threshold voltage decreases with temperature (≈ −1 mV/°C) and
    /// mobility degrades (≈ −0.3 %/°C), both referenced to 30 °C. This
    /// first-order model is sufficient to reproduce the temperature trends
    /// the paper reports for CODIC-sigsa (Table 11).
    #[must_use]
    pub fn at_temperature(self, celsius: f64) -> Self {
        let dt = celsius - 30.0;
        let mobility = (1.0 - 0.003 * dt).max(0.3);
        TransistorParams {
            vth_n: self.vth_n - 1.0e-3 * dt,
            vth_p: self.vth_p - 1.0e-3 * dt,
            gm_n: self.gm_n * mobility,
            gm_p: self.gm_p * mobility,
        }
    }
}

/// Complete electrical description of one cell/bitline/sense-amp slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitParams {
    /// Supply voltage in volts (1.5 V for DDR3, 1.35 V for DDR3L).
    pub vdd: f64,
    /// Cell storage capacitance in farads.
    pub c_cell: f64,
    /// Bitline parasitic capacitance in farads.
    pub c_bitline: f64,
    /// Access-transistor on conductance in siemens.
    pub g_access: f64,
    /// Precharge/equalize device conductance in siemens (per bitline).
    pub g_equalize: f64,
    /// Sense-amplifier transistor parameters.
    pub transistors: TransistorParams,
    /// Sense-amplifier common-mode tail conductance in siemens (see
    /// [`SenseAmplifier::g_tail`](crate::components::SenseAmplifier)).
    pub g_sa_tail: f64,
    /// Input-referred sense-amplifier offset in volts. Positive values bias
    /// the amplifier toward resolving a one. The nominal (variation-free)
    /// design has a small positive structural imbalance, which is why the
    /// paper's SA model "always generates '1' values in absence of process
    /// variation" (Appendix C).
    pub sa_offset: f64,
    /// Cell leakage conductance toward `Vdd/2` in siemens. Negligible within
    /// one command window; non-zero so long-horizon models can reuse the
    /// parameter set.
    pub g_leak: f64,
    /// Operating temperature in °C (informational; apply via
    /// [`CircuitParams::at_temperature`]).
    pub temperature_c: f64,
}

/// Nominal structural sense-amplifier imbalance in volts (see
/// [`CircuitParams::sa_offset`]).
pub const NOMINAL_SA_IMBALANCE: f64 = 8.5e-3;

impl Default for CircuitParams {
    fn default() -> Self {
        CircuitParams {
            vdd: 1.5,
            c_cell: 22e-15,
            c_bitline: 85e-15,
            g_access: 8.0e-5,
            g_equalize: 5.0e-5,
            transistors: TransistorParams::default(),
            g_sa_tail: 7.0e-5,
            sa_offset: NOMINAL_SA_IMBALANCE,
            g_leak: 1.0e-12,
            temperature_c: 30.0,
        }
    }
}

impl CircuitParams {
    /// Parameters for a DDR3L (1.35 V) device.
    #[must_use]
    pub fn ddr3l() -> Self {
        CircuitParams {
            vdd: 1.35,
            ..CircuitParams::default()
        }
    }

    /// Returns the parameters shifted to an operating temperature, updating
    /// the transistor models and recording the temperature.
    #[must_use]
    pub fn at_temperature(self, celsius: f64) -> Self {
        CircuitParams {
            transistors: self.transistors.at_temperature(celsius),
            temperature_c: celsius,
            ..self
        }
    }

    /// The precharge voltage `Vdd/2` in volts.
    #[must_use]
    pub fn v_precharge(&self) -> f64 {
        self.vdd / 2.0
    }

    /// Charge-sharing time constant in seconds: the series combination of
    /// cell and bitline capacitance through the access transistor.
    #[must_use]
    pub fn charge_sharing_tau(&self) -> f64 {
        let c_series = self.c_cell * self.c_bitline / (self.c_cell + self.c_bitline);
        c_series / self.g_access
    }

    /// The ideal post-charge-sharing bitline deviation from `Vdd/2` in
    /// volts, for a full cell (the paper's `ε`): `(Vdd/2)·C_cell/(C_cell+C_bl)`.
    #[must_use]
    pub fn charge_sharing_epsilon(&self) -> f64 {
        self.v_precharge() * self.c_cell / (self.c_cell + self.c_bitline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_sharing_completes_within_activate_window() {
        // The ACT schedule raises wl at 5 ns and the SA at 7 ns; charge
        // sharing must be substantially complete within those 2 ns, so the
        // time constant has to be well below a nanosecond.
        let tau = CircuitParams::default().charge_sharing_tau();
        assert!(tau < 1.5e-9, "tau = {tau:e}");
        assert!(tau > 0.1e-9, "tau = {tau:e}");
    }

    #[test]
    fn epsilon_is_tens_of_millivolts() {
        let eps = CircuitParams::default().charge_sharing_epsilon();
        assert!(eps > 0.05 && eps < 0.30, "epsilon = {eps}");
    }

    #[test]
    fn temperature_lowers_threshold_and_mobility() {
        let hot = TransistorParams::default().at_temperature(85.0);
        let cold = TransistorParams::default();
        assert!(hot.vth_n < cold.vth_n);
        assert!(hot.gm_n < cold.gm_n);
    }

    #[test]
    fn at_temperature_room_is_identity() {
        let t = TransistorParams::default().at_temperature(30.0);
        assert_eq!(t, TransistorParams::default());
    }

    #[test]
    fn ddr3l_uses_lower_rail() {
        assert_eq!(CircuitParams::ddr3l().vdd, 1.35);
        assert_eq!(CircuitParams::ddr3l().v_precharge(), 0.675);
    }

    #[test]
    fn nominal_offset_biases_toward_one() {
        assert!(CircuitParams::default().sa_offset > 0.0);
    }
}
