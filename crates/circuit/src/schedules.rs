//! The canonical Table 1 signal schedules (plus §4.1.1 and Appendix C).
//!
//! These timings were previously re-declared ad hoc in the `sim` tests, the
//! Monte Carlo harness, and `codic-core`'s variant library; this module is
//! the single source of truth. `codic-core::library` wraps each schedule in
//! a named `CodicVariant`.

use crate::signal::{Signal, SignalSchedule};

fn schedule(pulses: &[(Signal, u8, u8)]) -> SignalSchedule {
    let mut b = SignalSchedule::builder();
    for &(s, a, d) in pulses {
        b = b.pulse(s, a, d).expect("canonical timings are valid");
    }
    b.build()
}

/// The standard activate command
/// (Table 1: `wl [5↑,22↓] sense_p [7↓,22↑] sense_n [7↑,22↓]`).
#[must_use]
pub fn activate() -> SignalSchedule {
    schedule(&[
        (Signal::Wordline, 5, 22),
        (Signal::SenseP, 7, 22),
        (Signal::SenseN, 7, 22),
    ])
}

/// The standard precharge command (Table 1: `EQ [5↑,11↓]`).
#[must_use]
pub fn precharge() -> SignalSchedule {
    schedule(&[(Signal::Equalize, 5, 11)])
}

/// CODIC-sig: drives the connected cell to `Vdd/2`
/// (Table 1: `wl [5↑,22↓] EQ [7↑,22↓]`).
#[must_use]
pub fn codic_sig() -> SignalSchedule {
    schedule(&[(Signal::Wordline, 5, 22), (Signal::Equalize, 7, 22)])
}

/// CODIC-sig-opt: the §4.1.1 early-termination optimization of
/// [`codic_sig`], completing in a precharge-class latency.
#[must_use]
pub fn codic_sig_opt() -> SignalSchedule {
    schedule(&[(Signal::Wordline, 5, 11), (Signal::Equalize, 7, 11)])
}

/// The alternative CODIC-sig timing the paper notes performs the same
/// function (§4.1.1: `wl` at 4 ns, `EQ` at 8 ns).
#[must_use]
pub fn codic_sig_alt() -> SignalSchedule {
    schedule(&[(Signal::Wordline, 4, 22), (Signal::Equalize, 8, 22)])
}

/// CODIC-det generating zeros
/// (Table 1: `wl [5↑,22↓] sense_p [14↓,22↑] sense_n [7↑,22↓]`).
#[must_use]
pub fn codic_det_zero() -> SignalSchedule {
    schedule(&[
        (Signal::Wordline, 5, 22),
        (Signal::SenseN, 7, 22),
        (Signal::SenseP, 14, 22),
    ])
}

/// CODIC-det generating ones: the mirror of [`codic_det_zero`] — `sense_p`
/// triggers first (§4.1.2).
#[must_use]
pub fn codic_det_one() -> SignalSchedule {
    schedule(&[
        (Signal::Wordline, 5, 22),
        (Signal::SenseP, 7, 22),
        (Signal::SenseN, 14, 22),
    ])
}

/// CODIC-sigsa (Appendix C): both sense-amplifier enables at 3 ns on the
/// precharged bitline pair, resolving purely by SA process variation; `wl`
/// rises at 5 ns to write the resolved value back.
#[must_use]
pub fn codic_sigsa() -> SignalSchedule {
    schedule(&[
        (Signal::SenseP, 3, 22),
        (Signal::SenseN, 3, 22),
        (Signal::Wordline, 5, 22),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::SignalPulse;

    fn pulse(s: &SignalSchedule, sig: Signal) -> SignalPulse {
        s.pulse(sig).expect("pulse programmed")
    }

    #[test]
    fn activate_matches_table_1() {
        let s = activate();
        assert_eq!(
            pulse(&s, Signal::Wordline),
            SignalPulse::new(5, 22).unwrap()
        );
        assert_eq!(pulse(&s, Signal::SenseP), SignalPulse::new(7, 22).unwrap());
        assert_eq!(pulse(&s, Signal::SenseN), SignalPulse::new(7, 22).unwrap());
        assert_eq!(s.pulse(Signal::Equalize), None);
    }

    #[test]
    fn precharge_matches_table_1() {
        let s = precharge();
        assert_eq!(
            pulse(&s, Signal::Equalize),
            SignalPulse::new(5, 11).unwrap()
        );
        assert_eq!(s.programmed_signals(), 1);
    }

    #[test]
    fn det_one_mirrors_det_zero() {
        let z = codic_det_zero();
        let o = codic_det_one();
        assert_eq!(
            pulse(&z, Signal::SenseN).assert_ns(),
            pulse(&o, Signal::SenseP).assert_ns()
        );
        assert_eq!(
            pulse(&z, Signal::SenseP).assert_ns(),
            pulse(&o, Signal::SenseN).assert_ns()
        );
    }

    #[test]
    fn sigsa_enables_amplifier_before_wordline() {
        let s = codic_sigsa();
        assert!(pulse(&s, Signal::SenseN).assert_ns() < pulse(&s, Signal::Wordline).assert_ns());
        assert_eq!(
            pulse(&s, Signal::SenseN).assert_ns(),
            pulse(&s, Signal::SenseP).assert_ns()
        );
    }

    #[test]
    fn sig_opt_terminates_early() {
        assert!(codic_sig_opt().last_deassert_ns() < codic_sig().last_deassert_ns());
    }
}
