//! The four DRAM internal control signals and their programmable schedules.
//!
//! CODIC can assert and deassert each of the four signals anywhere within a
//! 25 ns window at 1 ns steps (paper §4.1). A [`SignalPulse`] is one
//! (assert, deassert) pair; a [`SignalSchedule`] assigns at most one pulse to
//! each signal and is the complete specification of one CODIC command variant
//! at the circuit level.

use crate::error::ScheduleError;

/// Width of CODIC's programmable timing window in nanoseconds (paper §4.1).
pub const WINDOW_NS: u8 = 25;

/// Time step granularity of the programmable window in nanoseconds.
pub const STEP_NS: u8 = 1;

/// The four fundamental DRAM internal circuit control signals (paper §2,
/// Figure 2a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Signal {
    /// `wl` — drives the access transistor connecting the cell capacitor to
    /// the bitline.
    Wordline,
    /// `EQ` — drives the precharge unit that equalizes both bitlines to
    /// `Vdd/2`.
    Equalize,
    /// `sense_p` — enables the PMOS half of the sense amplifier
    /// (electrically active-low: the node is pulled *down* to assert).
    SenseP,
    /// `sense_n` — enables the NMOS half of the sense amplifier.
    SenseN,
}

impl Signal {
    /// All four signals in the order used throughout the crate.
    pub const ALL: [Signal; 4] = [
        Signal::Wordline,
        Signal::Equalize,
        Signal::SenseP,
        Signal::SenseN,
    ];

    /// Whether the signal is electrically active-low.
    ///
    /// `sense_p` gates a PMOS pair, so asserting it means driving the control
    /// node low (the paper's Table 1 writes its edges as `[init↓, end↑]`).
    #[must_use]
    pub fn is_active_low(self) -> bool {
        matches!(self, Signal::SenseP)
    }

    /// Short lowercase name as printed in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Signal::Wordline => "wl",
            Signal::Equalize => "EQ",
            Signal::SenseP => "sense_p",
            Signal::SenseN => "sense_n",
        }
    }

    fn index(self) -> usize {
        match self {
            Signal::Wordline => 0,
            Signal::Equalize => 1,
            Signal::SenseP => 2,
            Signal::SenseN => 3,
        }
    }
}

impl std::fmt::Display for Signal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One assert/deassert pair for a signal inside the CODIC window.
///
/// Both times are in nanoseconds relative to the start of the command. The
/// invariants `assert < deassert < WINDOW_NS` are enforced at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalPulse {
    assert_ns: u8,
    deassert_ns: u8,
}

impl SignalPulse {
    /// Creates a pulse asserting at `assert_ns` and deasserting at
    /// `deassert_ns`.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::OutOfWindow`] if either time is `>= 25`, and
    /// [`ScheduleError::EmptyPulse`] if `deassert_ns <= assert_ns`.
    pub fn new(assert_ns: u8, deassert_ns: u8) -> Result<Self, ScheduleError> {
        if assert_ns >= WINDOW_NS {
            return Err(ScheduleError::OutOfWindow { time_ns: assert_ns });
        }
        if deassert_ns >= WINDOW_NS {
            return Err(ScheduleError::OutOfWindow {
                time_ns: deassert_ns,
            });
        }
        if deassert_ns <= assert_ns {
            return Err(ScheduleError::EmptyPulse {
                assert_ns,
                deassert_ns,
            });
        }
        Ok(SignalPulse {
            assert_ns,
            deassert_ns,
        })
    }

    /// Time at which the signal becomes active, in nanoseconds.
    #[must_use]
    pub fn assert_ns(self) -> u8 {
        self.assert_ns
    }

    /// Time at which the signal becomes inactive again, in nanoseconds.
    #[must_use]
    pub fn deassert_ns(self) -> u8 {
        self.deassert_ns
    }

    /// Whether the signal is active at time `t_ns` (fractional nanoseconds).
    #[must_use]
    pub fn is_active_at(self, t_ns: f64) -> bool {
        t_ns >= f64::from(self.assert_ns) && t_ns < f64::from(self.deassert_ns)
    }

    /// Number of distinct valid pulses for one signal.
    ///
    /// The paper (§4.1.3, footnote 2) counts `n = Σ_{i=1}^{w-1} i = 300`
    /// valid (assert, deassert) combinations for a `w = 25` ns window.
    #[must_use]
    pub fn valid_count() -> u64 {
        let w = u64::from(WINDOW_NS);
        (1..w).sum()
    }

    /// Iterates over every valid pulse in lexicographic order.
    pub fn enumerate_all() -> impl Iterator<Item = SignalPulse> {
        (0..WINDOW_NS - 1).flat_map(|a| {
            (a + 1..WINDOW_NS).map(move |d| SignalPulse {
                assert_ns: a,
                deassert_ns: d,
            })
        })
    }
}

/// A complete four-signal timing specification for one CODIC command.
///
/// Signals without a pulse stay inactive for the whole window. Construct via
/// [`SignalSchedule::builder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SignalSchedule {
    pulses: [Option<SignalPulse>; 4],
}

impl SignalSchedule {
    /// Starts building a schedule with all signals idle.
    #[must_use]
    pub fn builder() -> ScheduleBuilder {
        ScheduleBuilder {
            schedule: SignalSchedule::default(),
        }
    }

    /// The pulse programmed for `signal`, if any.
    #[must_use]
    pub fn pulse(&self, signal: Signal) -> Option<SignalPulse> {
        self.pulses[signal.index()]
    }

    /// Whether `signal` is asserted at time `t_ns`.
    #[must_use]
    pub fn is_asserted(&self, signal: Signal, t_ns: f64) -> bool {
        self.pulse(signal).is_some_and(|p| p.is_active_at(t_ns))
    }

    /// The latest deassert time across all programmed pulses, in
    /// nanoseconds; `0` when no signal is programmed.
    #[must_use]
    pub fn last_deassert_ns(&self) -> u8 {
        self.pulses
            .iter()
            .flatten()
            .map(|p| p.deassert_ns)
            .max()
            .unwrap_or(0)
    }

    /// The earliest assert time across all programmed pulses, if any signal
    /// is programmed.
    #[must_use]
    pub fn first_assert_ns(&self) -> Option<u8> {
        self.pulses.iter().flatten().map(|p| p.assert_ns).min()
    }

    /// Iterates over the `(signal, pulse)` pairs that are programmed.
    pub fn iter(&self) -> impl Iterator<Item = (Signal, SignalPulse)> + '_ {
        Signal::ALL
            .iter()
            .filter_map(|&s| self.pulse(s).map(|p| (s, p)))
    }

    /// Number of signals with a programmed pulse.
    #[must_use]
    pub fn programmed_signals(&self) -> usize {
        self.pulses.iter().flatten().count()
    }
}

/// Builder for [`SignalSchedule`]; see [`SignalSchedule::builder`].
#[derive(Debug, Clone)]
pub struct ScheduleBuilder {
    schedule: SignalSchedule,
}

impl ScheduleBuilder {
    /// Programs `signal` to assert at `assert_ns` and deassert at
    /// `deassert_ns`, replacing any previous pulse for that signal.
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] from [`SignalPulse::new`].
    pub fn pulse(
        mut self,
        signal: Signal,
        assert_ns: u8,
        deassert_ns: u8,
    ) -> Result<Self, ScheduleError> {
        self.schedule.pulses[signal.index()] = Some(SignalPulse::new(assert_ns, deassert_ns)?);
        Ok(self)
    }

    /// Programs `signal` with an already validated pulse.
    #[must_use]
    pub fn pulse_validated(mut self, signal: Signal, pulse: SignalPulse) -> Self {
        self.schedule.pulses[signal.index()] = Some(pulse);
        self
    }

    /// Finishes the builder and returns the schedule.
    #[must_use]
    pub fn build(self) -> SignalSchedule {
        self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulse_rejects_out_of_window() {
        assert_eq!(
            SignalPulse::new(25, 26),
            Err(ScheduleError::OutOfWindow { time_ns: 25 })
        );
        assert_eq!(
            SignalPulse::new(5, 25),
            Err(ScheduleError::OutOfWindow { time_ns: 25 })
        );
    }

    #[test]
    fn pulse_rejects_empty() {
        assert_eq!(
            SignalPulse::new(7, 7),
            Err(ScheduleError::EmptyPulse {
                assert_ns: 7,
                deassert_ns: 7
            })
        );
        assert!(SignalPulse::new(8, 3).is_err());
    }

    #[test]
    fn pulse_activity_is_half_open() {
        let p = SignalPulse::new(5, 22).unwrap();
        assert!(!p.is_active_at(4.999));
        assert!(p.is_active_at(5.0));
        assert!(p.is_active_at(21.999));
        assert!(!p.is_active_at(22.0));
    }

    #[test]
    fn valid_count_matches_paper_footnote_2() {
        // n = Σ_{i=1}^{24} i = 300 for the 25 ns window (paper §4.1.3).
        assert_eq!(SignalPulse::valid_count(), 300);
        assert_eq!(SignalPulse::enumerate_all().count() as u64, 300);
    }

    #[test]
    fn enumerate_all_yields_valid_unique_pulses() {
        let mut seen = std::collections::HashSet::new();
        for p in SignalPulse::enumerate_all() {
            assert!(p.assert_ns() < p.deassert_ns());
            assert!(p.deassert_ns() < WINDOW_NS);
            assert!(seen.insert((p.assert_ns(), p.deassert_ns())));
        }
    }

    #[test]
    fn schedule_tracks_pulses_per_signal() {
        let s = SignalSchedule::builder()
            .pulse(Signal::Wordline, 5, 22)
            .unwrap()
            .pulse(Signal::Equalize, 7, 22)
            .unwrap()
            .build();
        assert_eq!(s.programmed_signals(), 2);
        assert!(s.is_asserted(Signal::Wordline, 10.0));
        assert!(!s.is_asserted(Signal::SenseN, 10.0));
        assert_eq!(s.last_deassert_ns(), 22);
        assert_eq!(s.first_assert_ns(), Some(5));
    }

    #[test]
    fn empty_schedule_has_no_activity() {
        let s = SignalSchedule::default();
        assert_eq!(s.programmed_signals(), 0);
        assert_eq!(s.last_deassert_ns(), 0);
        assert_eq!(s.first_assert_ns(), None);
        for sig in Signal::ALL {
            assert!(!s.is_asserted(sig, 0.0));
        }
    }

    #[test]
    fn sense_p_is_the_only_active_low_signal() {
        assert!(Signal::SenseP.is_active_low());
        assert!(!Signal::Wordline.is_active_low());
        assert!(!Signal::Equalize.is_active_low());
        assert!(!Signal::SenseN.is_active_low());
    }

    #[test]
    fn builder_replaces_existing_pulse() {
        let s = SignalSchedule::builder()
            .pulse(Signal::Wordline, 1, 10)
            .unwrap()
            .pulse(Signal::Wordline, 5, 22)
            .unwrap()
            .build();
        assert_eq!(
            s.pulse(Signal::Wordline),
            Some(SignalPulse::new(5, 22).unwrap())
        );
    }
}
