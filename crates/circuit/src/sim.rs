//! The forward-Euler circuit integrator.

use crate::components::{AccessTransistor, PrechargeUnit, SenseAmplifier};
use crate::ptm::CircuitParams;
use crate::signal::{Signal, SignalSchedule, WINDOW_NS};
use crate::waveform::{Sample, Waveform};

/// Default integration step in nanoseconds (10 ps).
pub const DEFAULT_DT_NS: f64 = 0.01;

/// Extra simulated time beyond the CODIC window, in nanoseconds, so the
/// terminal state is observed after all signals have deasserted.
pub const SETTLE_MARGIN_NS: f64 = 5.0;

/// Interval between captured waveform samples in nanoseconds.
const SAMPLE_EVERY_NS: f64 = 0.05;

/// Instantaneous node voltages of the cell/bitline/sense-amp slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitState {
    /// True bitline voltage in volts.
    pub v_bitline: f64,
    /// Reference bitline voltage in volts.
    pub v_bitline_bar: f64,
    /// Cell capacitor voltage in volts.
    pub v_cell: f64,
}

/// A single cell/bitline/sense-amplifier slice simulator.
///
/// Construct with [`CircuitSim::new`], optionally set the stored cell value
/// with [`CircuitSim::set_cell_bit`], then [`CircuitSim::run`] a
/// [`SignalSchedule`] to obtain a [`Waveform`].
///
/// The circuit starts in the precharged state: both bitlines at `Vdd/2`,
/// matching step 1 of the paper's Figure 1.
#[derive(Debug, Clone)]
pub struct CircuitSim {
    params: CircuitParams,
    state: CircuitState,
    access: AccessTransistor,
    precharge: PrechargeUnit,
    sense: SenseAmplifier,
}

impl CircuitSim {
    /// Creates a simulator in the precharged state with the cell storing a
    /// zero (0 V).
    #[must_use]
    pub fn new(params: CircuitParams) -> Self {
        let v_pre = params.v_precharge();
        CircuitSim {
            state: CircuitState {
                v_bitline: v_pre,
                v_bitline_bar: v_pre,
                v_cell: 0.0,
            },
            access: AccessTransistor {
                g_on: params.g_access,
            },
            precharge: PrechargeUnit {
                g_precharge: params.g_equalize,
                g_equalize: params.g_equalize,
                v_ref: v_pre,
            },
            sense: SenseAmplifier {
                transistors: params.transistors,
                vdd: params.vdd,
                offset: params.sa_offset,
                g_tail: params.g_sa_tail,
            },
            params,
        }
    }

    /// The circuit parameters in use.
    #[must_use]
    pub fn params(&self) -> &CircuitParams {
        &self.params
    }

    /// The current node voltages.
    #[must_use]
    pub fn state(&self) -> &CircuitState {
        &self.state
    }

    /// Stores a full one (`Vdd`) or zero (0 V) in the cell.
    pub fn set_cell_bit(&mut self, bit: bool) {
        self.state.v_cell = if bit { self.params.vdd } else { 0.0 };
    }

    /// Sets the cell capacitor to an arbitrary voltage, e.g. `Vdd/2` to model
    /// a cell that has decayed to the precharge level.
    pub fn set_cell_voltage(&mut self, volts: f64) {
        self.state.v_cell = volts;
    }

    /// Overrides the sense-amplifier input-referred offset, e.g. with a
    /// process-variation draw.
    pub fn set_sa_offset(&mut self, volts: f64) {
        self.sense.offset = volts;
        self.params.sa_offset = volts;
    }

    /// Resets the bitlines to the precharged state without touching the cell.
    pub fn precharge_bitlines(&mut self) {
        self.state.v_bitline = self.params.v_precharge();
        self.state.v_bitline_bar = self.params.v_precharge();
    }

    /// Runs `schedule` for the full CODIC window plus a settle margin at the
    /// default step size, capturing a waveform.
    #[must_use]
    pub fn run(&mut self, schedule: &SignalSchedule) -> Waveform {
        self.run_for(
            schedule,
            f64::from(WINDOW_NS) + SETTLE_MARGIN_NS,
            DEFAULT_DT_NS,
        )
    }

    /// Runs `schedule` for `duration_ns` with integration step `dt_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ns` or `duration_ns` is not strictly positive.
    #[must_use]
    pub fn run_for(&mut self, schedule: &SignalSchedule, duration_ns: f64, dt_ns: f64) -> Waveform {
        assert!(dt_ns > 0.0, "integration step must be positive");
        assert!(duration_ns > 0.0, "duration must be positive");
        let steps = (duration_ns / dt_ns).ceil() as usize;
        let sample_stride = (SAMPLE_EVERY_NS / dt_ns).round().max(1.0) as usize;
        let mut samples = Vec::with_capacity(steps / sample_stride + 2);
        samples.push(self.sample(0.0));
        for step in 0..steps {
            let t_ns = step as f64 * dt_ns;
            self.advance(schedule, t_ns, dt_ns);
            if (step + 1) % sample_stride == 0 || step + 1 == steps {
                samples.push(self.sample((step + 1) as f64 * dt_ns));
            }
        }
        Waveform::new(*schedule, self.params, samples)
    }

    /// Fast path: runs `schedule` without capturing a waveform and returns
    /// the bit the sense amplifier resolves the true bitline to, as soon as
    /// the bitline differential exceeds half the supply (or `None` if the
    /// amplifier never resolves within the window).
    ///
    /// Used by the Monte Carlo harness where only the resolved value matters.
    pub fn resolve_bit(&mut self, schedule: &SignalSchedule, dt_ns: f64) -> Option<bool> {
        assert!(dt_ns > 0.0, "integration step must be positive");
        let duration_ns = f64::from(WINDOW_NS) + SETTLE_MARGIN_NS;
        let steps = (duration_ns / dt_ns).ceil() as usize;
        let threshold = 0.5 * self.params.vdd;
        for step in 0..steps {
            let t_ns = step as f64 * dt_ns;
            self.advance(schedule, t_ns, dt_ns);
            let diff = self.state.v_bitline - self.state.v_bitline_bar;
            if diff.abs() > threshold {
                return Some(diff > 0.0);
            }
        }
        let diff = self.state.v_bitline - self.state.v_bitline_bar;
        if diff.abs() > 1e-9 {
            Some(diff > 0.0)
        } else {
            None
        }
    }

    fn sample(&self, t_ns: f64) -> Sample {
        Sample {
            t_ns,
            v_bitline: self.state.v_bitline,
            v_bitline_bar: self.state.v_bitline_bar,
            v_cell: self.state.v_cell,
        }
    }

    fn advance(&mut self, schedule: &SignalSchedule, t_ns: f64, dt_ns: f64) {
        let wl = schedule.is_asserted(Signal::Wordline, t_ns);
        let eq = schedule.is_asserted(Signal::Equalize, t_ns);
        let sp = schedule.is_asserted(Signal::SenseP, t_ns);
        let sn = schedule.is_asserted(Signal::SenseN, t_ns);

        let s = self.state;
        let i_access = self.access.current(wl, s.v_cell, s.v_bitline);
        let (i_pre_bl, i_pre_blb) = self.precharge.currents(eq, s.v_bitline, s.v_bitline_bar);
        let (i_sa_bl, i_sa_blb) = self.sense.currents(sn, sp, s.v_bitline, s.v_bitline_bar);
        let i_leak = self.params.g_leak * (self.params.v_precharge() - s.v_cell);

        let dt_s = dt_ns * 1e-9;
        let dv_bl = (i_access + i_pre_bl + i_sa_bl) / self.params.c_bitline * dt_s;
        let dv_blb = (i_pre_blb + i_sa_blb) / self.params.c_bitline * dt_s;
        let dv_cell = (-i_access + i_leak) / self.params.c_cell * dt_s;

        let lo = -0.02;
        let hi = self.params.vdd + 0.02;
        self.state.v_bitline = (s.v_bitline + dv_bl).clamp(lo, hi);
        self.state.v_bitline_bar = (s.v_bitline_bar + dv_blb).clamp(lo, hi);
        self.state.v_cell = (s.v_cell + dv_cell).clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::SenseOutcome;
    use crate::schedules::{
        activate, codic_det_one, codic_det_zero, codic_sig, codic_sig_alt, precharge,
    };

    fn run_from(bit: bool, s: &SignalSchedule) -> Waveform {
        let mut sim = CircuitSim::new(CircuitParams::default());
        sim.set_cell_bit(bit);
        sim.run(s)
    }

    #[test]
    fn activate_restores_a_one() {
        assert_eq!(
            run_from(true, &activate()).outcome(),
            SenseOutcome::RestoredOne
        );
    }

    #[test]
    fn activate_restores_a_zero() {
        assert_eq!(
            run_from(false, &activate()).outcome(),
            SenseOutcome::RestoredZero
        );
    }

    #[test]
    fn activate_charge_sharing_deviates_bitline_before_sensing() {
        // Between wl (5 ns) and sense enable (7 ns) the bitline must deviate
        // from Vdd/2 by a small epsilon in the direction of the cell value
        // (paper Figure 1 step 2).
        let w = run_from(true, &activate());
        let v = w.voltage_at(crate::waveform::TraceKind::Bitline, 6.9);
        let vpre = w.params().v_precharge();
        assert!(v > vpre + 0.02, "v = {v}");
        assert!(v < vpre + 0.30, "v = {v}");
    }

    #[test]
    fn precharge_returns_bitline_to_half_vdd() {
        // Start from a restored state: bitline at Vdd.
        let mut sim = CircuitSim::new(CircuitParams::default());
        sim.set_cell_bit(true);
        let _ = sim.run(&activate());
        let w = sim.run(&precharge());
        let vpre = w.params().v_precharge();
        assert!((w.final_sample().v_bitline - vpre).abs() < 0.05);
        assert_eq!(w.outcome(), SenseOutcome::BitlinePrecharged);
    }

    #[test]
    fn codic_sig_equalizes_cell_regardless_of_initial_value() {
        for bit in [false, true] {
            let w = run_from(bit, &codic_sig());
            assert_eq!(
                w.outcome(),
                SenseOutcome::CellEqualized,
                "initial bit {bit}"
            );
            let vpre = w.params().v_precharge();
            assert!((w.final_sample().v_cell - vpre).abs() < 0.08);
            // The bitline stays in the precharged state throughout (§4.1.1).
            assert!((w.final_sample().v_bitline - vpre).abs() < 0.08);
        }
    }

    #[test]
    fn codic_sig_equalizes_cell_quickly() {
        // §4.1.1: the capacitor reaches Vdd/2 "almost immediately" after EQ
        // rises at 7 ns — the basis for CODIC-sig-opt.
        let w = run_from(true, &codic_sig());
        let v = w.voltage_at(crate::waveform::TraceKind::Cell, 12.0);
        assert!((v - w.params().v_precharge()).abs() < 0.1, "v = {v}");
    }

    #[test]
    fn codic_det_zero_is_deterministic_for_both_initial_values() {
        for bit in [false, true] {
            let w = run_from(bit, &codic_det_zero());
            assert_eq!(w.outcome(), SenseOutcome::RestoredZero, "initial bit {bit}");
        }
    }

    #[test]
    fn codic_det_one_is_deterministic_for_both_initial_values() {
        for bit in [false, true] {
            let w = run_from(bit, &codic_det_one());
            assert_eq!(w.outcome(), SenseOutcome::RestoredOne, "initial bit {bit}");
        }
    }

    #[test]
    fn codic_det_is_robust_to_sense_amp_offset() {
        // The deterministic mechanism is the capacitive asymmetry of the
        // cell-loaded bitline, which must dominate realistic offsets. The
        // process-variation model's offset sigma is 2.4 mV, so ±15 mV is a
        // beyond-6-sigma stress.
        for offset_mv in [-15.0, -10.0, 0.0, 10.0, 15.0] {
            for bit in [false, true] {
                let mut sim = CircuitSim::new(CircuitParams::default());
                sim.set_sa_offset(offset_mv * 1e-3);
                sim.set_cell_bit(bit);
                let w = sim.run(&codic_det_zero());
                assert_eq!(
                    w.outcome(),
                    SenseOutcome::RestoredZero,
                    "offset {offset_mv} mV, bit {bit}"
                );
            }
        }
    }

    #[test]
    fn sig_then_activate_resolves_by_offset_sign() {
        // The CODIC-sig PUF mechanism (§4.1.1): after CODIC-sig leaves the
        // cell at Vdd/2, the *next* activation amplifies it to a value that
        // depends only on process variation (the SA offset).
        for (offset_mv, expected) in [
            (6.0, SenseOutcome::RestoredOne),
            (-6.0, SenseOutcome::RestoredZero),
        ] {
            let mut sim = CircuitSim::new(CircuitParams::default());
            sim.set_sa_offset(offset_mv * 1e-3);
            sim.set_cell_bit(true);
            let _ = sim.run(&codic_sig());
            sim.precharge_bitlines();
            let w = sim.run(&activate());
            assert_eq!(w.outcome(), expected, "offset {offset_mv} mV");
        }
    }

    #[test]
    fn alternate_sig_timing_from_paper_also_works() {
        // §4.1.1: "CODIC-sig performs the same function by raising the wl
        // signal at 4 ns, and the EQ signal at 8 ns."
        let alt = codic_sig_alt();
        for bit in [false, true] {
            assert_eq!(run_from(bit, &alt).outcome(), SenseOutcome::CellEqualized);
        }
    }

    #[test]
    fn resolve_bit_matches_full_run_for_activate() {
        for bit in [false, true] {
            let mut sim = CircuitSim::new(CircuitParams::default());
            sim.set_cell_bit(bit);
            let resolved = sim.resolve_bit(&activate(), DEFAULT_DT_NS);
            assert_eq!(resolved, Some(bit));
        }
    }

    #[test]
    fn empty_schedule_leaves_state_untouched() {
        let mut sim = CircuitSim::new(CircuitParams::default());
        sim.set_cell_bit(true);
        let w = sim.run(&SignalSchedule::default());
        let f = w.final_sample();
        let vpre = w.params().v_precharge();
        assert!((f.v_bitline - vpre).abs() < 1e-3);
        assert!((f.v_cell - w.params().vdd).abs() < 1e-3);
    }

    #[test]
    fn coarser_time_step_gives_same_outcomes() {
        // The Monte Carlo harness integrates at 25 ps; outcomes must agree
        // with the default 10 ps step.
        for bit in [false, true] {
            for sched in [activate(), codic_det_zero(), codic_sig()] {
                let mut a = CircuitSim::new(CircuitParams::default());
                a.set_cell_bit(bit);
                let mut b = CircuitSim::new(CircuitParams::default());
                b.set_cell_bit(bit);
                let wa = a.run_for(&sched, 30.0, DEFAULT_DT_NS);
                let wb = b.run_for(&sched, 30.0, 0.025);
                assert_eq!(wa.outcome(), wb.outcome());
            }
        }
    }
}
