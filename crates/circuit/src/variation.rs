//! Process-variation and temperature models for the sense amplifier.
//!
//! The paper evaluates CODIC-sigsa with Monte Carlo SPICE simulations,
//! varying "all the affected components of the SAs (transistor
//! length/width/threshold voltage)" (Appendix C). We collapse those
//! parameter variations into their observable effect — the input-referred
//! sense-amplifier offset — plus small capacitance mismatches.

use rand::Rng;

use crate::ptm::{CircuitParams, NOMINAL_SA_IMBALANCE};

/// Standard deviation of the input-referred SA offset at the 4 % process
/// variation point, in volts.
///
/// Calibration anchor: with the nominal structural imbalance of
/// [`NOMINAL_SA_IMBALANCE`] (8.5 mV), a 2.4 mV sigma puts the imbalance at
/// 3.54 σ, i.e. a 0.02 % flip probability — the paper's Table 11 value for
/// 4 % process variation at 30 °C.
pub const OFFSET_SIGMA_AT_4PCT: f64 = 2.4e-3;

/// Exponent of the offset-sigma versus transistor-variation relationship.
///
/// The input-referred offset aggregates several device parameters, so it
/// grows slightly sublinearly with the individual parameter sigma. The
/// exponent is calibrated so the 5 % process-variation point reproduces the
/// paper's 0.19 % flip rate (Table 11).
pub const OFFSET_SIGMA_EXPONENT: f64 = 0.91;

/// Relative sigma of cell and bitline capacitance mismatch (dimensionless),
/// applied independently of the transistor variation level.
pub const CAPACITANCE_REL_SIGMA: f64 = 0.02;

/// A process-variation level: transistor parameter sigma as a percentage
/// (the x-axis of the paper's Table 11, 2–5 %).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessVariation {
    /// Transistor parameter standard deviation in percent.
    pub sigma_pct: f64,
}

impl Default for ProcessVariation {
    /// The paper's reference point: 4 % process variation.
    fn default() -> Self {
        ProcessVariation { sigma_pct: 4.0 }
    }
}

impl ProcessVariation {
    /// Creates a variation level from a transistor-parameter sigma in
    /// percent.
    #[must_use]
    pub fn from_pct(sigma_pct: f64) -> Self {
        ProcessVariation { sigma_pct }
    }

    /// Standard deviation of the input-referred SA offset in volts at this
    /// variation level.
    #[must_use]
    pub fn sa_offset_sigma(&self) -> f64 {
        if self.sigma_pct <= 0.0 {
            return 0.0;
        }
        OFFSET_SIGMA_AT_4PCT * (self.sigma_pct / 4.0).powf(OFFSET_SIGMA_EXPONENT)
    }

    /// Draws one instance of per-sense-amplifier variation.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> VariationDraw {
        VariationDraw {
            sa_offset: standard_normal(rng) * self.sa_offset_sigma(),
            c_cell_factor: 1.0 + standard_normal(rng) * CAPACITANCE_REL_SIGMA,
            c_bitline_factor: 1.0 + standard_normal(rng) * CAPACITANCE_REL_SIGMA,
        }
    }
}

/// One sampled instance of process variation for a cell/SA slice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationDraw {
    /// Input-referred SA offset deviation in volts (added to the structural
    /// imbalance).
    pub sa_offset: f64,
    /// Multiplicative cell-capacitance mismatch.
    pub c_cell_factor: f64,
    /// Multiplicative bitline-capacitance mismatch.
    pub c_bitline_factor: f64,
}

impl VariationDraw {
    /// A draw with no variation at all.
    #[must_use]
    pub fn nominal() -> Self {
        VariationDraw {
            sa_offset: 0.0,
            c_cell_factor: 1.0,
            c_bitline_factor: 1.0,
        }
    }

    /// Applies this draw to a parameter set, producing the per-instance
    /// circuit parameters.
    #[must_use]
    pub fn apply(&self, base: CircuitParams) -> CircuitParams {
        CircuitParams {
            sa_offset: base.sa_offset + self.sa_offset,
            c_cell: base.c_cell * self.c_cell_factor,
            c_bitline: base.c_bitline * self.c_bitline_factor,
            ..base
        }
    }
}

/// The structural SA imbalance at an operating temperature, in volts.
///
/// The paper's Table 11 shows the CODIC-sigsa flip rate rising from 30 °C to
/// a peak around 70 °C and partially recovering at 85 °C — the net effect of
/// mobility degradation (weakens the imbalance) and increased junction
/// leakage pre-biasing the latch (restores it). We model the net imbalance
/// directly with a piecewise-linear curve calibrated to reproduce Table 11
/// at 4 % process variation; intermediate temperatures are interpolated.
#[must_use]
pub fn nominal_imbalance_at(temperature_c: f64) -> f64 {
    // (temperature °C, imbalance as a fraction of the 30 °C value)
    const POINTS: [(f64, f64); 4] = [(30.0, 1.0), (60.0, 0.8165), (70.0, 0.8071), (85.0, 0.8388)];
    let t = temperature_c;
    let frac = if t <= POINTS[0].0 {
        POINTS[0].1
    } else if t >= POINTS[POINTS.len() - 1].0 {
        POINTS[POINTS.len() - 1].1
    } else {
        let mut result = POINTS[0].1;
        for w in POINTS.windows(2) {
            let (t0, f0) = w[0];
            let (t1, f1) = w[1];
            if t >= t0 && t <= t1 {
                result = f0 + (f1 - f0) * (t - t0) / (t1 - t0);
                break;
            }
        }
        result
    };
    NOMINAL_SA_IMBALANCE * frac
}

/// Samples a standard normal deviate with the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn offset_sigma_scales_sublinearly() {
        let s4 = ProcessVariation::from_pct(4.0).sa_offset_sigma();
        let s5 = ProcessVariation::from_pct(5.0).sa_offset_sigma();
        let s2 = ProcessVariation::from_pct(2.0).sa_offset_sigma();
        assert!((s4 - OFFSET_SIGMA_AT_4PCT).abs() < 1e-12);
        assert!(s5 > s4 && s5 < s4 * 1.25);
        assert!(s2 < s4);
        assert_eq!(ProcessVariation::from_pct(0.0).sa_offset_sigma(), 0.0);
    }

    #[test]
    fn calibration_puts_imbalance_at_3_5_sigma_for_4pct() {
        let ratio = NOMINAL_SA_IMBALANCE / OFFSET_SIGMA_AT_4PCT;
        assert!((ratio - 3.54).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn draw_statistics_match_requested_sigma() {
        let pv = ProcessVariation::from_pct(4.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| pv.draw(&mut rng).sa_offset).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        let sigma = var.sqrt();
        assert!(mean.abs() < 1e-4, "mean = {mean}");
        assert!(
            (sigma - pv.sa_offset_sigma()).abs() / pv.sa_offset_sigma() < 0.05,
            "sigma = {sigma}"
        );
    }

    #[test]
    fn nominal_draw_is_identity() {
        let base = CircuitParams::default();
        let applied = VariationDraw::nominal().apply(base);
        assert_eq!(applied, base);
    }

    #[test]
    fn imbalance_dips_then_partially_recovers_with_temperature() {
        let at30 = nominal_imbalance_at(30.0);
        let at60 = nominal_imbalance_at(60.0);
        let at70 = nominal_imbalance_at(70.0);
        let at85 = nominal_imbalance_at(85.0);
        assert!(at60 < at30);
        assert!(at70 < at60);
        assert!(at85 > at70);
        assert!(at85 < at30);
        // Below/above the calibrated range the curve is clamped.
        assert_eq!(nominal_imbalance_at(20.0), at30);
        assert_eq!(nominal_imbalance_at(100.0), at85);
    }

    #[test]
    fn interpolation_is_continuous() {
        let a = nominal_imbalance_at(59.999);
        let b = nominal_imbalance_at(60.001);
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn standard_normal_has_unit_variance() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }
}
