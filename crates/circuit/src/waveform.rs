//! Captured voltage traces from a circuit simulation run.

use crate::outcome::{self, SenseOutcome};
use crate::ptm::CircuitParams;
use crate::signal::{Signal, SignalSchedule};

/// One time-point of a [`Waveform`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulation time in nanoseconds.
    pub t_ns: f64,
    /// True bitline voltage in volts.
    pub v_bitline: f64,
    /// Reference (bar) bitline voltage in volts.
    pub v_bitline_bar: f64,
    /// Cell capacitor voltage in volts.
    pub v_cell: f64,
}

/// Which analog trace of a [`Waveform`] to inspect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// The true bitline (the one the cell connects to).
    Bitline,
    /// The reference bitline.
    BitlineBar,
    /// The cell capacitor.
    Cell,
}

/// A complete record of one simulated CODIC command: the schedule that drove
/// it, the circuit parameters, and the sampled node voltages.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    schedule: SignalSchedule,
    params: CircuitParams,
    samples: Vec<Sample>,
}

impl Waveform {
    /// Assembles a waveform from its parts. Intended for use by
    /// [`CircuitSim`](crate::CircuitSim).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty: a waveform always contains at least the
    /// initial state.
    #[must_use]
    pub fn new(schedule: SignalSchedule, params: CircuitParams, samples: Vec<Sample>) -> Self {
        assert!(!samples.is_empty(), "waveform requires at least one sample");
        Waveform {
            schedule,
            params,
            samples,
        }
    }

    /// The schedule that produced this waveform.
    #[must_use]
    pub fn schedule(&self) -> &SignalSchedule {
        &self.schedule
    }

    /// The circuit parameters used for the run.
    #[must_use]
    pub fn params(&self) -> &CircuitParams {
        &self.params
    }

    /// All captured samples in time order.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The last captured sample (the terminal circuit state).
    #[must_use]
    pub fn final_sample(&self) -> Sample {
        *self.samples.last().expect("waveform is never empty")
    }

    /// Classifies the terminal state of this run (paper §4.1).
    #[must_use]
    pub fn outcome(&self) -> SenseOutcome {
        outcome::classify(self)
    }

    /// The voltage of `trace` at the sample nearest to `t_ns`.
    #[must_use]
    pub fn voltage_at(&self, trace: TraceKind, t_ns: f64) -> f64 {
        let sample = self
            .samples
            .iter()
            .min_by(|a, b| {
                let da = (a.t_ns - t_ns).abs();
                let db = (b.t_ns - t_ns).abs();
                da.partial_cmp(&db).expect("sample times are finite")
            })
            .expect("waveform is never empty");
        self.extract(trace, sample)
    }

    /// The full `(t_ns, volts)` series for `trace`.
    #[must_use]
    pub fn series(&self, trace: TraceKind) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| (s.t_ns, self.extract(trace, s)))
            .collect()
    }

    fn extract(&self, trace: TraceKind, s: &Sample) -> f64 {
        match trace {
            TraceKind::Bitline => s.v_bitline,
            TraceKind::BitlineBar => s.v_bitline_bar,
            TraceKind::Cell => s.v_cell,
        }
    }

    /// Renders an ASCII chart of the analog traces plus the digital control
    /// signals, in the style of the paper's Figures 2b/3/10.
    ///
    /// `width` is the number of character columns for the time axis.
    #[must_use]
    pub fn ascii_chart(&self, width: usize) -> String {
        let width = width.max(16);
        let t_end = self.final_sample().t_ns;
        let mut out = String::new();
        for (label, trace) in [
            ("bitline ", TraceKind::Bitline),
            ("bitl_bar", TraceKind::BitlineBar),
            ("cell    ", TraceKind::Cell),
        ] {
            out.push_str(&self.render_analog_row(label, trace, width, t_end));
        }
        for sig in Signal::ALL {
            out.push_str(&self.render_signal_row(sig, width, t_end));
        }
        out.push_str(&format!(
            "{:10} 0 ns {:>width$}\n",
            "time",
            format!("{t_end:.1} ns"),
            width = width.saturating_sub(5)
        ));
        out
    }

    fn render_analog_row(&self, label: &str, trace: TraceKind, width: usize, t_end: f64) -> String {
        const LEVELS: &[char] = &['_', '.', '-', '=', '^'];
        let vdd = self.params.vdd;
        let mut row = String::with_capacity(width);
        for col in 0..width {
            let t = t_end * (col as f64) / (width as f64 - 1.0);
            let v = self.voltage_at(trace, t);
            let frac = (v / vdd).clamp(0.0, 1.0);
            let idx = ((frac * (LEVELS.len() - 1) as f64).round() as usize).min(LEVELS.len() - 1);
            row.push(LEVELS[idx]);
        }
        format!("{label:10} {row}\n")
    }

    fn render_signal_row(&self, sig: Signal, width: usize, t_end: f64) -> String {
        let mut row = String::with_capacity(width);
        for col in 0..width {
            let t = t_end * (col as f64) / (width as f64 - 1.0);
            let asserted = self.schedule.is_asserted(sig, t);
            // Render the electrical level: sense_p is active-low.
            let high = asserted ^ sig.is_active_low();
            row.push(if high { '^' } else { '_' });
        }
        format!("{:10} {row}\n", sig.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::SignalSchedule;

    fn flat_waveform(v: f64) -> Waveform {
        let params = CircuitParams::default();
        let samples = (0..10)
            .map(|i| Sample {
                t_ns: f64::from(i),
                v_bitline: v,
                v_bitline_bar: v,
                v_cell: v,
            })
            .collect();
        Waveform::new(SignalSchedule::default(), params, samples)
    }

    #[test]
    fn voltage_at_picks_nearest_sample() {
        let params = CircuitParams::default();
        let samples = vec![
            Sample {
                t_ns: 0.0,
                v_bitline: 0.1,
                v_bitline_bar: 0.2,
                v_cell: 0.3,
            },
            Sample {
                t_ns: 1.0,
                v_bitline: 1.1,
                v_bitline_bar: 1.2,
                v_cell: 1.3,
            },
        ];
        let w = Waveform::new(SignalSchedule::default(), params, samples);
        assert_eq!(w.voltage_at(TraceKind::Bitline, 0.2), 0.1);
        assert_eq!(w.voltage_at(TraceKind::Cell, 0.9), 1.3);
    }

    #[test]
    fn series_preserves_order_and_length() {
        let w = flat_waveform(0.75);
        let s = w.series(TraceKind::Cell);
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|p| p[0].0 < p[1].0));
    }

    #[test]
    fn ascii_chart_contains_all_rows() {
        let w = flat_waveform(0.75);
        let chart = w.ascii_chart(40);
        for name in ["bitline", "cell", "wl", "EQ", "sense_p", "sense_n", "time"] {
            assert!(chart.contains(name), "missing {name} in chart:\n{chart}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_waveform_panics() {
        let _ = Waveform::new(
            SignalSchedule::default(),
            CircuitParams::default(),
            Vec::new(),
        );
    }
}
