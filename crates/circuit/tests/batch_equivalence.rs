//! Property tests: the batched engine is observationally identical to the
//! scalar simulator.
//!
//! [`CircuitSimBatch`] advertises bit-identical outcomes to running
//! [`CircuitSim`] once per trial — across schedules, sense-amplifier
//! offsets, cell states, integration steps, and variation draws. These
//! properties are what lets every consumer switch engines without
//! revalidating the physics.

use codic_circuit::montecarlo::{trial_rng, MC_DT_NS};
use codic_circuit::sim::DEFAULT_DT_NS;
use codic_circuit::{
    schedules, CircuitParams, CircuitSim, CircuitSimBatch, ProcessVariation, Signal, SignalPulse,
    SignalSchedule, VariationDraw,
};
use proptest::prelude::*;

fn arb_pulse() -> impl Strategy<Value = SignalPulse> {
    (0u8..24, 1u8..25)
        .prop_filter("assert < deassert", |(a, d)| a < d)
        .prop_map(|(a, d)| SignalPulse::new(a, d).expect("filtered to valid"))
}

fn arb_schedule() -> impl Strategy<Value = SignalSchedule> {
    (
        proptest::option::of(arb_pulse()),
        proptest::option::of(arb_pulse()),
        proptest::option::of(arb_pulse()),
        proptest::option::of(arb_pulse()),
    )
        .prop_map(|(wl, eq, sp, sn)| {
            let mut b = SignalSchedule::builder();
            for (sig, p) in [
                (Signal::Wordline, wl),
                (Signal::Equalize, eq),
                (Signal::SenseP, sp),
                (Signal::SenseN, sn),
            ] {
                if let Some(p) = p {
                    b = b.pulse_validated(sig, p);
                }
            }
            b.build()
        })
}

/// Scalar reference: one simulator per (offset, cell voltage) pair.
fn scalar_resolve(
    schedule: &SignalSchedule,
    offsets: &[f64],
    v_cell: f64,
    dt_ns: f64,
) -> Vec<Option<bool>> {
    offsets
        .iter()
        .map(|&offset| {
            let mut sim = CircuitSim::new(CircuitParams::default());
            sim.set_sa_offset(offset);
            sim.set_cell_voltage(v_cell);
            sim.resolve_bit(schedule, dt_ns)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_resolution_is_bit_identical_to_scalar(
        schedule in arb_schedule(),
        offset_a_mv in -12.0f64..12.0,
        offset_b_mv in -12.0f64..12.0,
        cell_frac in 0.0f64..1.0,
        dt_idx in 0usize..3,
    ) {
        let params = CircuitParams::default();
        let dt_ns = [DEFAULT_DT_NS, MC_DT_NS, 0.05][dt_idx];
        let offsets = [offset_a_mv * 1e-3, offset_b_mv * 1e-3, params.sa_offset];
        let v_cell = cell_frac * params.vdd;

        let mut batch = CircuitSimBatch::uniform(params, offsets.len());
        batch.set_sa_offsets(&offsets);
        batch.set_cell_voltage_all(v_cell);
        let got = batch.resolve_bits(&schedule, dt_ns);
        let want = scalar_resolve(&schedule, &offsets, v_cell, dt_ns);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn batch_terminal_states_are_bit_identical_to_scalar(
        schedule in arb_schedule(),
        bit in any::<bool>(),
    ) {
        let params = CircuitParams::default();
        let mut batch = CircuitSimBatch::uniform(params, 2);
        batch.set_cell_bits(&[bit, !bit]);
        let states = batch.run_terminal(&schedule, 30.0, 0.025);
        for (i, b) in [bit, !bit].into_iter().enumerate() {
            let mut sim = CircuitSim::new(params);
            sim.set_cell_bit(b);
            let f = sim.run_for(&schedule, 30.0, 0.025).final_sample();
            prop_assert_eq!(states[i].v_bitline.to_bits(), f.v_bitline.to_bits());
            prop_assert_eq!(states[i].v_bitline_bar.to_bits(), f.v_bitline_bar.to_bits());
            prop_assert_eq!(states[i].v_cell.to_bits(), f.v_cell.to_bits());
        }
    }

    #[test]
    fn batch_with_variation_draws_matches_per_trial_scalar(
        seed in any::<u64>(),
        pv_tenths in 0u32..60,
    ) {
        let variation = ProcessVariation::from_pct(f64::from(pv_tenths) / 10.0);
        let base = CircuitParams::default();
        let draws: Vec<VariationDraw> =
            (0..16).map(|t| variation.draw(&mut trial_rng(seed, t))).collect();

        let schedule = schedules::codic_sigsa();
        let mut batch = CircuitSimBatch::new(base, &draws);
        batch.set_cell_voltage_all(base.v_precharge());
        let got = batch.resolve_bits(&schedule, MC_DT_NS);

        for (i, draw) in draws.iter().enumerate() {
            let params = draw.apply(base);
            let mut sim = CircuitSim::new(params);
            sim.set_cell_voltage(params.v_precharge());
            prop_assert_eq!(got[i], sim.resolve_bit(&schedule, MC_DT_NS), "trial {}", i);
        }
    }
}

#[test]
fn canonical_schedules_resolve_identically_on_both_engines() {
    let params = CircuitParams::default();
    for schedule in [
        schedules::activate(),
        schedules::precharge(),
        schedules::codic_sig(),
        schedules::codic_sig_opt(),
        schedules::codic_det_zero(),
        schedules::codic_det_one(),
        schedules::codic_sigsa(),
        schedules::codic_sig_alt(),
    ] {
        for bit in [false, true] {
            let mut batch = CircuitSimBatch::uniform(params, 1);
            batch.set_cell_bits(&[bit]);
            let got = batch.resolve_bits(&schedule, MC_DT_NS);
            let mut sim = CircuitSim::new(params);
            sim.set_cell_bit(bit);
            assert_eq!(got[0], sim.resolve_bit(&schedule, MC_DT_NS));
        }
    }
}
