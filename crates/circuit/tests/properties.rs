//! Property-based tests of the circuit crate's invariants.

use codic_circuit::{CircuitParams, CircuitSim, SenseOutcome, Signal, SignalPulse, SignalSchedule};
use proptest::prelude::*;

fn arb_pulse() -> impl Strategy<Value = SignalPulse> {
    (0u8..24, 1u8..25)
        .prop_filter("assert < deassert", |(a, d)| a < d)
        .prop_map(|(a, d)| SignalPulse::new(a, d).expect("filtered to valid"))
}

fn arb_schedule() -> impl Strategy<Value = SignalSchedule> {
    (
        proptest::option::of(arb_pulse()),
        proptest::option::of(arb_pulse()),
        proptest::option::of(arb_pulse()),
        proptest::option::of(arb_pulse()),
    )
        .prop_map(|(wl, eq, sp, sn)| {
            let mut b = SignalSchedule::builder();
            for (sig, p) in [
                (Signal::Wordline, wl),
                (Signal::Equalize, eq),
                (Signal::SenseP, sp),
                (Signal::SenseN, sn),
            ] {
                if let Some(p) = p {
                    b = b.pulse_validated(sig, p);
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_valid_pulse_is_constructible(a in 0u8..24, d in 1u8..25) {
        prop_assume!(a < d);
        let p = SignalPulse::new(a, d).unwrap();
        prop_assert_eq!(p.assert_ns(), a);
        prop_assert_eq!(p.deassert_ns(), d);
        prop_assert!(p.is_active_at(f64::from(a)));
        prop_assert!(!p.is_active_at(f64::from(d)));
    }

    #[test]
    fn out_of_window_or_empty_pulses_are_rejected(a in 0u8..=40, d in 0u8..=40) {
        let result = SignalPulse::new(a, d);
        let should_be_valid = a < d && d < 25;
        prop_assert_eq!(result.is_ok(), should_be_valid);
    }

    #[test]
    fn simulation_never_leaves_physical_bounds(schedule in arb_schedule(), bit in any::<bool>()) {
        let params = CircuitParams::default();
        let mut sim = CircuitSim::new(params);
        sim.set_cell_bit(bit);
        // Coarser step for test speed; invariants must still hold.
        let wave = sim.run_for(&schedule, 30.0, 0.05);
        for s in wave.samples() {
            prop_assert!(s.v_bitline >= -0.03 && s.v_bitline <= params.vdd + 0.03);
            prop_assert!(s.v_bitline_bar >= -0.03 && s.v_bitline_bar <= params.vdd + 0.03);
            prop_assert!(s.v_cell >= -0.03 && s.v_cell <= params.vdd + 0.03);
        }
        // Classification is total: any outcome (including Metastable) is fine,
        // but it must not panic and must be stable.
        let _o: SenseOutcome = wave.outcome();
    }

    #[test]
    fn schedules_without_wordline_never_touch_the_cell(
        eq in proptest::option::of(arb_pulse()),
        sp in proptest::option::of(arb_pulse()),
        sn in proptest::option::of(arb_pulse()),
        bit in any::<bool>(),
    ) {
        let mut b = SignalSchedule::builder();
        for (sig, p) in [(Signal::Equalize, eq), (Signal::SenseP, sp), (Signal::SenseN, sn)] {
            if let Some(p) = p {
                b = b.pulse_validated(sig, p);
            }
        }
        let schedule = b.build();
        let params = CircuitParams::default();
        let mut sim = CircuitSim::new(params);
        sim.set_cell_bit(bit);
        let before = sim.state().v_cell;
        let wave = sim.run_for(&schedule, 30.0, 0.05);
        let after = wave.final_sample().v_cell;
        // Only leakage (negligible in-window) may move the cell.
        prop_assert!((after - before).abs() < 1e-3, "cell moved {before} -> {after}");
    }
}
