//! The Monte Carlo engine's contract: results are bit-identical regardless
//! of the rayon thread count, because every trial derives its RNG from
//! `seed + trial_index` and the chunk size is fixed.
//!
//! This lives in its own integration-test binary because it mutates the
//! process-wide `RAYON_NUM_THREADS` variable; keeping it isolated (and its
//! assertions serial) avoids races with unrelated tests.

use codic_circuit::montecarlo::{BitFlipStats, SigsaExperiment};
use codic_circuit::variation::ProcessVariation;

fn run_with_threads(threads: &str, exp: &SigsaExperiment) -> BitFlipStats {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    let stats = exp.run();
    std::env::remove_var("RAYON_NUM_THREADS");
    stats
}

#[test]
fn sigsa_experiment_is_invariant_to_rayon_num_threads() {
    // Spans several chunks (MC_CHUNK_TRIALS = 256) plus a partial tail.
    for (pv, temp) in [(4.0, 30.0), (5.0, 60.0)] {
        let exp = SigsaExperiment {
            variation: ProcessVariation::from_pct(pv),
            temperature_c: temp,
            trials: 1_500,
            seed: 0x7EAD5,
        };
        let one = run_with_threads("1", &exp);
        let four = run_with_threads("4", &exp);
        assert_eq!(
            one, four,
            "flip counts diverged between 1 and 4 threads at pv={pv}%, T={temp}C"
        );
        // And both match the scalar reference path.
        assert_eq!(one, exp.run_scalar());
    }
}
