//! End-to-end simulated cold-boot attack (§5.2.1 threat model).
//!
//! The attacker removes the module from a live victim machine (an
//! arbitrarily short power-off), installs it in a machine they control,
//! and dumps memory. We compare what they recover from an unprotected
//! module versus one with CODIC self-destruction.

use crate::mechanism::DestructionMechanism;
use crate::poweron::{CommandOutcome, PowerState, SelfDestructModule};
use crate::remanence::retained_fraction;

/// Result of a simulated attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackResult {
    /// Fraction of the victim's rows the attacker recovered.
    pub recovered_fraction: f64,
    /// Whether the attacker had to wait out a destruction sweep.
    pub blocked_by_self_destruction: bool,
}

/// Parameters of the attack scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackScenario {
    /// Power-off duration while transplanting the module, in seconds.
    pub off_seconds: f64,
    /// Module temperature during the transplant, in °C (attackers cool
    /// the module to extend retention).
    pub temperature_c: f64,
    /// Rows in the module.
    pub total_rows: u64,
}

impl Default for AttackScenario {
    /// A realistic transplant: half a second of power loss on a chilled
    /// module.
    fn default() -> Self {
        AttackScenario {
            off_seconds: 0.5,
            temperature_c: -20.0,
            total_rows: 131_072, // 1 GB
        }
    }
}

/// Attacks an unprotected module: the attacker reads everything that
/// survived the power cycle.
#[must_use]
pub fn attack_unprotected(scenario: &AttackScenario) -> AttackResult {
    AttackResult {
        recovered_fraction: retained_fraction(scenario.off_seconds, scenario.temperature_c),
        blocked_by_self_destruction: false,
    }
}

/// Attacks a module with CODIC self-destruction: power-on triggers the
/// sweep; the module rejects reads until every row is destroyed.
#[must_use]
pub fn attack_protected(scenario: &AttackScenario) -> AttackResult {
    let mut module = SelfDestructModule::new(
        scenario.total_rows,
        scenario.total_rows / 64 + 1,
        DestructionMechanism::Codic,
    );
    // The victim was live: the module holds data, then loses power
    // briefly during the transplant.
    module.power_off(retained_fraction(
        scenario.off_seconds,
        scenario.temperature_c,
    ));
    // Attacker's machine powers the module: detection triggers the sweep.
    module.power_on();
    let mut blocked = false;
    while module.state() != PowerState::Ready {
        if module.command() == CommandOutcome::Rejected {
            blocked = true;
        }
        module.tick();
    }
    AttackResult {
        recovered_fraction: module.remanent_rows() as f64 / scenario.total_rows as f64,
        blocked_by_self_destruction: blocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unprotected_module_leaks_nearly_everything() {
        let r = attack_unprotected(&AttackScenario::default());
        assert!(
            r.recovered_fraction > 0.9,
            "recovered {}",
            r.recovered_fraction
        );
    }

    #[test]
    fn self_destruction_defeats_the_attack() {
        let r = attack_protected(&AttackScenario::default());
        assert_eq!(r.recovered_fraction, 0.0);
        assert!(r.blocked_by_self_destruction);
    }

    #[test]
    fn long_power_off_protects_even_unprotected_modules() {
        // Data self-discharges if the module stays off for minutes warm.
        let scenario = AttackScenario {
            off_seconds: 600.0,
            temperature_c: 20.0,
            ..AttackScenario::default()
        };
        let r = attack_unprotected(&scenario);
        assert!(r.recovered_fraction < 0.05);
    }
}
