//! Overhead comparison against memory-encryption ciphers (paper Table 6).
//!
//! ChaCha-8 and AES-128 numbers are the paper's own analytic constants for
//! an Intel Atom N280-class processor (taken from Yitbarek et al., HPCA
//! 2017); CODIC's DRAM area is *computed* from the delay-element model in
//! `codic-core`.

use codic_core::delay_element;

/// One Table 6 column.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadProfile {
    /// Mechanism name.
    pub name: &'static str,
    /// Runtime performance overhead in percent.
    pub runtime_perf_pct: f64,
    /// Runtime power overhead in percent (at peak memory bandwidth).
    pub runtime_power_pct: f64,
    /// Processor area overhead in percent.
    pub processor_area_pct: f64,
    /// DRAM area overhead in percent.
    pub dram_area_pct: f64,
}

/// CODIC self-destruction: zero runtime overhead; the only cost is the
/// CODIC substrate area in DRAM (§4.2.1 / Table 6: ≈ 1.1 %).
#[must_use]
pub fn codic_self_destruction() -> OverheadProfile {
    OverheadProfile {
        name: "CODIC Self-Dest.",
        runtime_perf_pct: 0.0,
        runtime_power_pct: 0.0,
        processor_area_pct: 0.0,
        dram_area_pct: delay_element::substrate_cost().area_per_mat_pct,
    }
}

/// ChaCha-8 memory encryption (Table 6).
#[must_use]
pub fn chacha8() -> OverheadProfile {
    OverheadProfile {
        name: "ChaCha-8",
        runtime_perf_pct: 0.0,
        runtime_power_pct: 17.0,
        processor_area_pct: 0.9,
        dram_area_pct: 0.0,
    }
}

/// AES-128 memory encryption (Table 6).
#[must_use]
pub fn aes128() -> OverheadProfile {
    OverheadProfile {
        name: "AES-128",
        runtime_perf_pct: 0.0,
        runtime_power_pct: 12.0,
        processor_area_pct: 1.3,
        dram_area_pct: 0.0,
    }
}

/// All three Table 6 columns.
#[must_use]
pub fn table6() -> Vec<OverheadProfile> {
    vec![codic_self_destruction(), chacha8(), aes128()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codic_has_zero_runtime_overhead() {
        let c = codic_self_destruction();
        assert_eq!(c.runtime_perf_pct, 0.0);
        assert_eq!(c.runtime_power_pct, 0.0);
        assert_eq!(c.processor_area_pct, 0.0);
    }

    #[test]
    fn codic_dram_area_is_about_1_1_pct() {
        let a = codic_self_destruction().dram_area_pct;
        assert!((a - 1.1).abs() < 0.1, "area = {a}%");
    }

    #[test]
    fn ciphers_cost_runtime_power_but_no_dram_area() {
        for p in [chacha8(), aes128()] {
            assert!(p.runtime_power_pct > 10.0);
            assert!(p.processor_area_pct > 0.0);
            assert_eq!(p.dram_area_pct, 0.0);
        }
    }

    #[test]
    fn table_has_three_columns() {
        assert_eq!(table6().len(), 3);
    }
}
