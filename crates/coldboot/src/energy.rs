//! Destruction-energy comparison (§6.2 "Energy Results").

use codic_power::EnergyModel;

use crate::latency::destruction_run;
use crate::mechanism::DestructionMechanism;

/// Energy to destroy a whole module, in millijoules.
#[must_use]
pub fn destruction_energy_mj(mechanism: DestructionMechanism, capacity_mib: u64) -> f64 {
    let run = destruction_run(mechanism, capacity_mib);
    let model = EnergyModel::paper_default();
    let mut total_nj = model.breakdown(&run.stats, run.cycles).total_nj();
    total_nj += mechanism.extra_row_energy_nj() * run.stats.row_ops as f64;
    total_nj * 1e-6
}

/// Energy ratios of the three baselines relative to CODIC at one module
/// size (§6.2 reports 41.7× / 2.5× / 1.7× for TCG / LISA-clone / RowClone
/// at 8 GB).
#[must_use]
pub fn energy_ratios_vs_codic(capacity_mib: u64) -> [(DestructionMechanism, f64); 3] {
    let codic = destruction_energy_mj(DestructionMechanism::Codic, capacity_mib);
    [
        DestructionMechanism::Tcg,
        DestructionMechanism::LisaClone,
        DestructionMechanism::RowClone,
    ]
    .map(|m| (m, destruction_energy_mj(m, capacity_mib) / codic))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codic_uses_least_energy() {
        let codic = destruction_energy_mj(DestructionMechanism::Codic, 256);
        for m in [
            DestructionMechanism::Tcg,
            DestructionMechanism::LisaClone,
            DestructionMechanism::RowClone,
        ] {
            let e = destruction_energy_mj(m, 256);
            assert!(e > codic, "{m:?}: {e} vs CODIC {codic}");
        }
    }

    #[test]
    fn ratios_match_paper_ordering_and_magnitude() {
        // §6.2: TCG/LISA/RowClone use 41.7×/2.5×/1.7× more energy than
        // CODIC (8 GB module; we check at 1 GB where TCG is still
        // simulated closer to exactly — ratios are size-independent to
        // first order).
        let ratios = energy_ratios_vs_codic(1024);
        let by: std::collections::HashMap<_, _> =
            ratios.iter().map(|&(m, r)| (m.name(), r)).collect();
        assert!(by["TCG"] > 10.0, "TCG ratio = {}", by["TCG"]);
        assert!(
            (by["LISA-clone"] - 2.5).abs() < 0.8,
            "LISA ratio = {}",
            by["LISA-clone"]
        );
        assert!(
            (by["RowClone"] - 1.7).abs() < 0.6,
            "RowClone ratio = {}",
            by["RowClone"]
        );
        assert!(by["LISA-clone"] > by["RowClone"]);
    }

    #[test]
    fn energy_scales_with_capacity() {
        let small = destruction_energy_mj(DestructionMechanism::Codic, 64);
        let large = destruction_energy_mj(DestructionMechanism::Codic, 1024);
        assert!(large > small * 10.0);
    }
}
