//! Destruction-time evaluation (the paper's Figure 7).
//!
//! The in-DRAM mechanisms issue their typed per-row operation through the
//! [`CodicDevice`] service layer's event-driven sweep path
//! ([`CodicDevice::sweep_all_rows`]), which applies the rank tRRD/tFAW
//! windows and per-bank occupancy the cycle-level controller enforces.
//! The TCG firmware baseline is simulated cycle-by-cycle through the full
//! CPU + cache + controller model up to 256 MB and extrapolated linearly
//! per line beyond that, exactly as the paper extrapolates its largest
//! points (§6.2).

use codic_core::device::{CodicDevice, DeviceConfig};
use codic_core::ops::CodicOp;
use codic_dram::geometry::{DramGeometry, LINE_BYTES};
use codic_dram::stats::MemStats;
use codic_dram::system::System;
use codic_dram::timing::TimingParams;
use codic_dram::trace::zero_fill_trace;

use crate::mechanism::DestructionMechanism;

/// Module sizes plotted in Figure 7, in MiB.
pub const FIGURE7_SIZES_MIB: [u64; 6] = [64, 256, 1024, 4096, 16384, 65536];

/// Largest module simulated cycle-accurately for TCG; larger sizes are
/// extrapolated linearly from this point's per-line rate.
pub const TCG_EXACT_LIMIT_MIB: u64 = 256;

/// Largest module swept cycle-exactly through the device's event engine;
/// larger modules are extrapolated linearly from this point's per-row
/// rate. The sweep's steady state is tFAW-bound (4 activations per tFAW
/// window), so the extrapolation is exact up to the few-cycle startup
/// transient — the same treatment the paper (and [`TCG_EXACT_LIMIT_MIB`])
/// gives its largest Figure 7 points.
pub const DEVICE_EXACT_LIMIT_MIB: u64 = 256;

/// Result of one destruction run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DestructionRun {
    /// Wall-clock destruction time in milliseconds.
    pub time_ms: f64,
    /// Memory-command statistics (for the energy model).
    pub stats: MemStats,
    /// Total memory cycles the destruction occupied.
    pub cycles: u64,
}

/// Destruction time in milliseconds for `mechanism` on a single-rank
/// module of `capacity_mib`, with density-scaled DDR3-1600 timing.
#[must_use]
pub fn destruction_time_ms(mechanism: DestructionMechanism, capacity_mib: u64) -> f64 {
    destruction_run(mechanism, capacity_mib).time_ms
}

/// Full destruction run (time + command counts) for the energy model.
#[must_use]
pub fn destruction_run(mechanism: DestructionMechanism, capacity_mib: u64) -> DestructionRun {
    let geometry = DramGeometry::module_mib(capacity_mib);
    let density_gbit = ((capacity_mib / 1024 / u64::from(geometry.devices_per_rank)) * 8).max(1);
    let timing = TimingParams::ddr3_1600_11().with_density_gbit(density_gbit as u32);
    match mechanism.op_for_row(0) {
        Some(proto) => device_sweep(proto, geometry, timing),
        None => tcg_run(&geometry, &timing),
    }
}

/// Full-module destruction through the device service layer: one typed op
/// per row, streamed through the shared event-driven FR-FCFS engine, with
/// linear extrapolation beyond [`DEVICE_EXACT_LIMIT_MIB`] (the timing —
/// already density-scaled for the *target* capacity — is what the
/// simulated slice runs under, so the per-row rate is the target's).
fn device_sweep(proto: CodicOp, geometry: DramGeometry, timing: TimingParams) -> DestructionRun {
    let total_bytes = geometry.total_bytes();
    let exact_bytes = total_bytes.min(DEVICE_EXACT_LIMIT_MIB * 1024 * 1024);
    let sim_geometry = DramGeometry::module_mib(exact_bytes / 1024 / 1024);
    let mut device = CodicDevice::new(DeviceConfig::new(sim_geometry, timing).with_refresh(false));
    let report = device
        .sweep_all_rows(proto)
        .expect("self-destruction is authorized over the whole module");
    let scale = total_bytes as f64 / exact_bytes as f64;
    let cycles = (report.finish_cycle as f64 * scale) as u64;
    let mut stats = report.stats;
    if scale > 1.0 {
        stats.row_ops = (stats.row_ops as f64 * scale) as u64;
        stats.row_op_activations = (stats.row_op_activations as f64 * scale) as u64;
    }
    DestructionRun {
        time_ms: timing.ns(cycles) * 1e-6,
        stats,
        cycles,
    }
}

/// TCG firmware zero-fill through the full system model, with linear
/// extrapolation beyond [`TCG_EXACT_LIMIT_MIB`].
fn tcg_run(geometry: &DramGeometry, timing: &TimingParams) -> DestructionRun {
    let total_bytes = geometry.total_bytes();
    let exact_bytes = total_bytes.min(TCG_EXACT_LIMIT_MIB * 1024 * 1024);
    let sim_geometry = DramGeometry::module_mib(exact_bytes / 1024 / 1024);
    let trace = zero_fill_trace(0, exact_bytes);
    let mut system = System::new(sim_geometry, *timing, vec![trace]);
    let stats = system.run(u64::MAX);
    let scale = total_bytes as f64 / exact_bytes as f64;
    let lines = total_bytes / LINE_BYTES;
    let mut mem = stats.mem;
    if scale > 1.0 {
        mem.reads = (mem.reads as f64 * scale) as u64;
        mem.writes = (mem.writes as f64 * scale) as u64;
        mem.activates = (mem.activates as f64 * scale) as u64;
        mem.precharges = (mem.precharges as f64 * scale) as u64;
        mem.refreshes = (mem.refreshes as f64 * scale) as u64;
    }
    let cycles = (stats.cycles as f64 * scale) as u64;
    let _ = lines;
    DestructionRun {
        time_ms: timing.ns(cycles) * 1e-6,
        stats: mem,
        cycles,
    }
}

/// The full Figure 7 sweep: destruction time (ms) for every mechanism and
/// module size.
#[must_use]
pub fn figure7() -> Vec<(DestructionMechanism, Vec<(u64, f64)>)> {
    DestructionMechanism::ALL
        .iter()
        .map(|&m| {
            let series = FIGURE7_SIZES_MIB
                .iter()
                .map(|&mib| (mib, destruction_time_ms(m, mib)))
                .collect();
            (m, series)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codic_64mb_is_about_60_microseconds() {
        // Figure 7 leftmost group: CODIC = 60 µs.
        let ms = destruction_time_ms(DestructionMechanism::Codic, 64);
        assert!((ms - 0.060).abs() < 0.010, "{ms} ms");
    }

    #[test]
    fn rowclone_64mb_is_about_120_microseconds() {
        let ms = destruction_time_ms(DestructionMechanism::RowClone, 64);
        assert!((ms - 0.120).abs() < 0.015, "{ms} ms");
    }

    #[test]
    fn lisa_64mb_is_about_150_microseconds() {
        let ms = destruction_time_ms(DestructionMechanism::LisaClone, 64);
        assert!((ms - 0.150).abs() < 0.020, "{ms} ms");
    }

    #[test]
    fn tcg_64mb_is_tens_of_milliseconds() {
        // Figure 7: TCG = 34 ms at 64 MB. The in-order store+CLFLUSH loop
        // is within a factor ~1.6 of the paper's absolute number; the
        // orders-of-magnitude gap to the in-DRAM mechanisms is the claim.
        let ms = destruction_time_ms(DestructionMechanism::Tcg, 64);
        assert!(ms > 20.0 && ms < 80.0, "{ms} ms");
    }

    #[test]
    fn codic_is_2x_faster_than_rowclone_and_2_5x_than_lisa() {
        let codic = destruction_time_ms(DestructionMechanism::Codic, 256);
        let rowclone = destruction_time_ms(DestructionMechanism::RowClone, 256);
        let lisa = destruction_time_ms(DestructionMechanism::LisaClone, 256);
        assert!((rowclone / codic - 2.0).abs() < 0.2, "{}", rowclone / codic);
        assert!((lisa / codic - 2.5).abs() < 0.3, "{}", lisa / codic);
    }

    #[test]
    fn destruction_scales_linearly_with_capacity() {
        for m in [DestructionMechanism::Codic, DestructionMechanism::RowClone] {
            let small = destruction_time_ms(m, 64);
            let large = destruction_time_ms(m, 1024);
            let ratio = large / small;
            assert!((ratio - 16.0).abs() < 0.5, "{m:?}: ratio {ratio}");
        }
    }

    #[test]
    fn codic_64gb_is_about_63_ms() {
        let ms = destruction_time_ms(DestructionMechanism::Codic, 65536);
        assert!((ms - 63.0).abs() < 8.0, "{ms} ms");
    }

    #[test]
    fn row_sweep_counts_every_row() {
        let run = destruction_run(DestructionMechanism::Codic, 64);
        assert_eq!(run.stats.row_ops, DramGeometry::module_mib(64).total_rows());
    }
}
