//! Cold-boot-attack prevention: the CODIC self-destruction mechanism and
//! the baselines the paper compares it against (§5.2, §6.2).
//!
//! - [`mechanism::DestructionMechanism`]: TCG firmware zero-writes,
//!   LISA-clone, RowClone, and CODIC self-destruction;
//! - [`latency`]: the Figure 7 destruction-time sweep (64 MB – 64 GB);
//! - [`energy`]: destruction-energy comparison (§6.2: CODIC uses
//!   41.7× / 2.5× / 1.7× less energy than TCG / LISA-clone / RowClone);
//! - [`ciphers`]: the Table 6 overhead comparison against ChaCha-8 and
//!   AES-128 memory encryption;
//! - [`poweron`]: the power-on detection FSM that triggers atomic
//!   self-destruction before any command is accepted (§5.2.2);
//! - [`remanence`]: DRAM data-retention decay across a power cycle;
//! - [`attack`]: an end-to-end simulated cold-boot attack showing what an
//!   attacker recovers with and without protection.
//!
//! # Example
//!
//! ```
//! use codic_coldboot::mechanism::DestructionMechanism;
//! use codic_coldboot::latency::destruction_time_ms;
//!
//! let codic = destruction_time_ms(DestructionMechanism::Codic, 64);
//! let rowclone = destruction_time_ms(DestructionMechanism::RowClone, 64);
//! assert!(codic < rowclone, "CODIC destroys a 64 MB module fastest");
//! ```

pub mod attack;
pub mod ciphers;
pub mod energy;
pub mod latency;
pub mod mechanism;
pub mod poweron;
pub mod remanence;

pub use mechanism::DestructionMechanism;
