//! The four evaluated data-destruction mechanisms (§6.2).

use codic_dram::request::RowOpKind;
use codic_dram::TimingParams;

/// A mechanism for destroying the entire contents of a DRAM module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DestructionMechanism {
    /// TCG firmware baseline: the CPU overwrites every line with zeros
    /// (store + CLFLUSH) through the memory controller.
    Tcg,
    /// Self-destruction with LISA-clone row copies from a zeroed row.
    LisaClone,
    /// Self-destruction with RowClone FPM copies from a zeroed row.
    RowClone,
    /// Self-destruction with one CODIC command per row.
    Codic,
}

impl DestructionMechanism {
    /// All mechanisms in the order plotted by Figure 7.
    pub const ALL: [DestructionMechanism; 4] = [
        DestructionMechanism::Tcg,
        DestructionMechanism::LisaClone,
        DestructionMechanism::RowClone,
        DestructionMechanism::Codic,
    ];

    /// Display name as used in Figure 7.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DestructionMechanism::Tcg => "TCG",
            DestructionMechanism::LisaClone => "LISA-clone",
            DestructionMechanism::RowClone => "RowClone",
            DestructionMechanism::Codic => "CODIC",
        }
    }

    /// The row-operation kind, for the in-DRAM mechanisms.
    #[must_use]
    pub fn row_op(self) -> Option<RowOpKind> {
        match self {
            DestructionMechanism::Tcg => None,
            DestructionMechanism::LisaClone => Some(RowOpKind::LisaClone),
            DestructionMechanism::RowClone => Some(RowOpKind::RowClone),
            DestructionMechanism::Codic => Some(RowOpKind::Codic),
        }
    }

    /// Bank-busy duration of one per-row operation, in memory cycles.
    ///
    /// - CODIC: one activation-class command (tRC).
    /// - RowClone FPM: back-to-back activation pair plus precharge
    ///   (2·tRAS + tRP); its throughput is tFAW-bound at 2× CODIC's.
    /// - LISA-clone: the activation pair plus the row-buffer-movement
    ///   sequence and its restore (≈ 70 ns extra, calibrated so LISA's
    ///   occupancy-bound sweep lands on the paper's 2.5× CODIC time).
    #[must_use]
    pub fn busy_cycles(self, t: &TimingParams) -> Option<u32> {
        match self {
            DestructionMechanism::Tcg => None,
            DestructionMechanism::Codic => Some(t.t_rc),
            DestructionMechanism::RowClone => Some(2 * t.t_ras + t.t_rp),
            DestructionMechanism::LisaClone => Some(2 * t.t_ras + t.t_rp + t.cycles_from_ns(70.0)),
        }
    }

    /// Per-row energy in nanojoules beyond the activations that
    /// [`codic_power::EnergyModel::row_op_nj`] already charges: LISA's
    /// row-buffer movement drives the full row of bitlines an extra time.
    #[must_use]
    pub fn extra_row_energy_nj(self) -> f64 {
        match self {
            DestructionMechanism::LisaClone => 11.0,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codic_has_the_shortest_row_operation() {
        let t = TimingParams::ddr3_1600_11();
        let codic = DestructionMechanism::Codic.busy_cycles(&t).unwrap();
        let rc = DestructionMechanism::RowClone.busy_cycles(&t).unwrap();
        let lisa = DestructionMechanism::LisaClone.busy_cycles(&t).unwrap();
        assert!(codic < rc);
        assert!(rc < lisa);
        assert_eq!(DestructionMechanism::Tcg.busy_cycles(&t), None);
    }

    #[test]
    fn activation_counts_follow_the_mechanism() {
        assert_eq!(
            DestructionMechanism::Codic.row_op().unwrap().activations(),
            1
        );
        assert_eq!(
            DestructionMechanism::RowClone
                .row_op()
                .unwrap()
                .activations(),
            2
        );
    }

    #[test]
    fn names_match_figure_7_legend() {
        let names: Vec<_> = DestructionMechanism::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["TCG", "LISA-clone", "RowClone", "CODIC"]);
    }
}
