//! The four evaluated data-destruction mechanisms (§6.2).
//!
//! The in-DRAM mechanisms are expressed as typed [`CodicOp`] plans
//! ([`InDramMechanism`]) issued through the `CodicDevice` service path;
//! their per-row latency/energy costs come from the shared
//! [`codic_power::accounting`] helper, not from mechanism-local math.

use codic_core::ops::{CodicOp, InDramMechanism, RowRegion, VariantId};
use codic_dram::request::RowOpKind;
use codic_dram::TimingParams;
use codic_power::accounting;

/// A mechanism for destroying the entire contents of a DRAM module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DestructionMechanism {
    /// TCG firmware baseline: the CPU overwrites every line with zeros
    /// (store + CLFLUSH) through the memory controller.
    Tcg,
    /// Self-destruction with LISA-clone row copies from a zeroed row.
    LisaClone,
    /// Self-destruction with RowClone FPM copies from a zeroed row.
    RowClone,
    /// Self-destruction with one CODIC command per row.
    Codic,
}

impl DestructionMechanism {
    /// All mechanisms in the order plotted by Figure 7.
    pub const ALL: [DestructionMechanism; 4] = [
        DestructionMechanism::Tcg,
        DestructionMechanism::LisaClone,
        DestructionMechanism::RowClone,
        DestructionMechanism::Codic,
    ];

    /// Display name as used in Figure 7.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DestructionMechanism::Tcg => "TCG",
            DestructionMechanism::LisaClone => "LISA-clone",
            DestructionMechanism::RowClone => "RowClone",
            DestructionMechanism::Codic => "CODIC",
        }
    }

    /// The typed per-row operation, for the in-DRAM mechanisms. CODIC
    /// self-destruction drives every cell to zero (CODIC-det); the clone
    /// baselines copy from a zeroed row.
    #[must_use]
    pub fn op_for_row(self, row_addr: u64) -> Option<CodicOp> {
        match self {
            DestructionMechanism::Tcg => None,
            DestructionMechanism::Codic => Some(CodicOp::command(VariantId::DetZero, row_addr)),
            DestructionMechanism::RowClone => Some(CodicOp::RowCloneZero { row_addr }),
            DestructionMechanism::LisaClone => Some(CodicOp::LisaCloneZero { row_addr }),
        }
    }

    /// The row-operation kind, for the in-DRAM mechanisms.
    #[must_use]
    pub fn row_op(self) -> Option<RowOpKind> {
        self.op_for_row(0).and_then(CodicOp::row_op_kind)
    }

    /// Bank-busy duration of one per-row operation, in memory cycles
    /// (shared accounting: CODIC tRC, RowClone 2·tRAS + tRP, LISA-clone
    /// + its ≈ 70 ns row-buffer movement).
    #[must_use]
    pub fn busy_cycles(self, t: &TimingParams) -> Option<u32> {
        self.row_op()
            .map(|kind| accounting::row_op_busy_cycles(kind, t))
    }

    /// Per-row energy in nanojoules beyond the activations that
    /// [`codic_power::EnergyModel::row_op_nj`] already charges (shared
    /// accounting: LISA's row-buffer movement drives the full row of
    /// bitlines an extra time).
    #[must_use]
    pub fn extra_row_energy_nj(self) -> f64 {
        self.row_op()
            .map_or(0.0, accounting::row_op_extra_energy_nj)
    }
}

impl InDramMechanism for DestructionMechanism {
    fn name(&self) -> &str {
        DestructionMechanism::name(*self)
    }

    /// One destruction op per row; the TCG firmware baseline has no
    /// in-DRAM component and plans nothing.
    fn plan(&self, region: RowRegion) -> Vec<CodicOp> {
        region
            .row_addrs()
            .filter_map(|addr| self.op_for_row(addr))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codic_has_the_shortest_row_operation() {
        let t = TimingParams::ddr3_1600_11();
        let codic = DestructionMechanism::Codic.busy_cycles(&t).unwrap();
        let rc = DestructionMechanism::RowClone.busy_cycles(&t).unwrap();
        let lisa = DestructionMechanism::LisaClone.busy_cycles(&t).unwrap();
        assert!(codic < rc);
        assert!(rc < lisa);
        assert_eq!(DestructionMechanism::Tcg.busy_cycles(&t), None);
    }

    #[test]
    fn activation_counts_follow_the_mechanism() {
        assert_eq!(
            DestructionMechanism::Codic.row_op().unwrap().activations(),
            1
        );
        assert_eq!(
            DestructionMechanism::RowClone
                .row_op()
                .unwrap()
                .activations(),
            2
        );
    }

    #[test]
    fn names_match_figure_7_legend() {
        let names: Vec<_> = DestructionMechanism::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["TCG", "LISA-clone", "RowClone", "CODIC"]);
    }

    #[test]
    fn plans_are_typed_ops_one_per_row() {
        let region = RowRegion::new(0, 4);
        let plan = InDramMechanism::plan(&DestructionMechanism::Codic, region);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan[1], CodicOp::command(VariantId::DetZero, 8192));
        assert!(plan.iter().all(|op| op.is_destructive()));
        assert!(InDramMechanism::plan(&DestructionMechanism::Tcg, region).is_empty());
        assert_eq!(
            InDramMechanism::plan(&DestructionMechanism::LisaClone, region)[0].row_op_kind(),
            Some(RowOpKind::LisaClone)
        );
    }

    #[test]
    fn costs_delegate_to_shared_accounting() {
        let t = TimingParams::ddr3_1600_11();
        for m in [
            DestructionMechanism::Codic,
            DestructionMechanism::RowClone,
            DestructionMechanism::LisaClone,
        ] {
            let kind = m.row_op().unwrap();
            assert_eq!(
                m.busy_cycles(&t).unwrap(),
                accounting::row_op_busy_cycles(kind, &t)
            );
            assert_eq!(
                m.extra_row_energy_nj(),
                accounting::row_op_extra_energy_nj(kind)
            );
        }
        assert_eq!(DestructionMechanism::Tcg.extra_row_energy_nj(), 0.0);
    }
}
