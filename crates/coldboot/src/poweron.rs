//! The power-on detection and atomic self-destruction state machine
//! (§5.2.2): "During self-destruction, the DRAM chip does not accept any
//! memory commands to ensure the atomicity of the process."

use crate::mechanism::DestructionMechanism;

/// The module's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerState {
    /// No power applied.
    Off,
    /// Power detected; self-destruction sweep in progress.
    Destructing {
        /// Rows destroyed so far.
        rows_done: u64,
    },
    /// Destruction complete; normal operation (commands accepted).
    Ready,
}

/// Outcome of presenting a command to the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandOutcome {
    /// The command was accepted.
    Accepted,
    /// The command was rejected (powered off or mid-destruction).
    Rejected,
}

/// A DRAM module with the CODIC self-destruction circuit.
///
/// The power-on detection circuit triggers on any voltage ramp from 0 V —
/// operating the module at a reduced voltage does not bypass it (§5.2
/// "Security Analysis").
#[derive(Debug, Clone)]
pub struct SelfDestructModule {
    state: PowerState,
    total_rows: u64,
    rows_per_tick: u64,
    mechanism: DestructionMechanism,
    /// Fraction of rows still holding pre-power-cycle data.
    remanent_rows: u64,
}

impl SelfDestructModule {
    /// Creates a powered-off module of `total_rows` rows whose
    /// self-destruction sweep uses `mechanism` and destroys
    /// `rows_per_tick` rows per tick.
    ///
    /// # Panics
    ///
    /// Panics if `mechanism` is the TCG firmware (self-destruction is
    /// in-DRAM by definition) or `rows_per_tick` is zero.
    #[must_use]
    pub fn new(total_rows: u64, rows_per_tick: u64, mechanism: DestructionMechanism) -> Self {
        assert!(
            mechanism.row_op().is_some(),
            "self-destruction requires an in-DRAM mechanism"
        );
        assert!(rows_per_tick > 0, "sweep must make progress");
        SelfDestructModule {
            state: PowerState::Off,
            total_rows,
            rows_per_tick,
            mechanism,
            remanent_rows: 0,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> PowerState {
        self.state
    }

    /// The sweep mechanism.
    #[must_use]
    pub fn mechanism(&self) -> DestructionMechanism {
        self.mechanism
    }

    /// Rows still holding data from before the power cycle.
    #[must_use]
    pub fn remanent_rows(&self) -> u64 {
        self.remanent_rows
    }

    /// Removes power. `retained_fraction` of rows keep their charge
    /// through the off period (see
    /// [`remanence::retained_fraction`](crate::remanence::retained_fraction)).
    pub fn power_off(&mut self, retained_fraction: f64) {
        let f = retained_fraction.clamp(0.0, 1.0);
        self.remanent_rows = (self.total_rows as f64 * f) as u64;
        self.state = PowerState::Off;
    }

    /// Applies power: any ramp from 0 V triggers the detection circuit and
    /// the destruction sweep starts immediately.
    pub fn power_on(&mut self) {
        if self.state == PowerState::Off {
            self.state = PowerState::Destructing { rows_done: 0 };
        }
    }

    /// Advances the destruction sweep by one tick.
    pub fn tick(&mut self) {
        if let PowerState::Destructing { rows_done } = self.state {
            let done = (rows_done + self.rows_per_tick).min(self.total_rows);
            // The sweep wipes remanent rows as it passes over them.
            self.remanent_rows = self.remanent_rows.min(self.total_rows - done);
            self.state = if done == self.total_rows {
                PowerState::Ready
            } else {
                PowerState::Destructing { rows_done: done }
            };
        }
    }

    /// Presents a memory command (e.g. an attacker's read). Commands are
    /// accepted only in the `Ready` state.
    pub fn command(&mut self) -> CommandOutcome {
        match self.state {
            PowerState::Ready => CommandOutcome::Accepted,
            _ => CommandOutcome::Rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> SelfDestructModule {
        SelfDestructModule::new(1000, 100, DestructionMechanism::Codic)
    }

    #[test]
    fn commands_rejected_until_sweep_completes() {
        let mut m = module();
        m.power_off(1.0);
        m.power_on();
        for _ in 0..9 {
            assert_eq!(m.command(), CommandOutcome::Rejected);
            m.tick();
        }
        m.tick();
        assert_eq!(m.state(), PowerState::Ready);
        assert_eq!(m.command(), CommandOutcome::Accepted);
    }

    #[test]
    fn sweep_destroys_all_remanent_data() {
        let mut m = module();
        m.power_off(1.0);
        assert_eq!(m.remanent_rows(), 1000);
        m.power_on();
        while m.state() != PowerState::Ready {
            m.tick();
        }
        assert_eq!(m.remanent_rows(), 0);
    }

    #[test]
    fn powered_off_module_rejects_commands() {
        let mut m = module();
        assert_eq!(m.command(), CommandOutcome::Rejected);
    }

    #[test]
    fn power_on_is_idempotent_once_running() {
        let mut m = module();
        m.power_on();
        m.tick();
        let s = m.state();
        m.power_on();
        assert_eq!(
            m.state(),
            s,
            "re-asserting power must not restart the sweep"
        );
    }

    #[test]
    #[should_panic(expected = "in-DRAM mechanism")]
    fn tcg_cannot_be_a_self_destruct_sweep() {
        let _ = SelfDestructModule::new(10, 1, DestructionMechanism::Tcg);
    }
}
