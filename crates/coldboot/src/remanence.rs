//! DRAM data remanence across a power cycle (§5.2).
//!
//! Charge leaks from cell capacitors once power (and refresh) stops; cold
//! chips retain data for seconds to minutes (Halderman et al., USENIX
//! Security 2008). We model per-cell retention times as log-normal with a
//! strong temperature dependence, which reproduces the qualitative curves
//! the cold-boot literature reports.

/// Fraction of cells still holding their value after `off_seconds` without
/// power at `temperature_c`.
///
/// The retention-time distribution is log-normal with a median of
/// ≈ 4 s at 20 °C that doubles for every 10 °C of cooling.
#[must_use]
pub fn retained_fraction(off_seconds: f64, temperature_c: f64) -> f64 {
    if off_seconds <= 0.0 {
        return 1.0;
    }
    let median_at_20c = 4.0f64;
    let median = median_at_20c * 2f64.powf((20.0 - temperature_c) / 10.0);
    // Log-normal survival with sigma = 1.0 in log space.
    let z = (off_seconds.ln() - median.ln()) / 1.0;
    0.5 * erfc_approx(z / std::f64::consts::SQRT_2)
}

/// Abramowitz–Stegun-style erfc approximation (enough precision for a
/// behavioural retention model; the NIST crate owns the precise one).
fn erfc_approx(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc_approx(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_off_time_means_full_retention() {
        assert_eq!(retained_fraction(0.0, 20.0), 1.0);
    }

    #[test]
    fn short_power_cycles_retain_most_data() {
        // The threat model: an arbitrarily short power-off (§5.2.1).
        let f = retained_fraction(0.2, 20.0);
        assert!(f > 0.95, "retained {f}");
    }

    #[test]
    fn long_off_times_lose_data() {
        let f = retained_fraction(600.0, 20.0);
        assert!(f < 0.05, "retained {f}");
    }

    #[test]
    fn cooling_extends_retention() {
        let warm = retained_fraction(30.0, 20.0);
        let cold = retained_fraction(30.0, -50.0);
        assert!(cold > warm, "cold {cold} vs warm {warm}");
        assert!(cold > 0.9, "cold-boot attacks work on cold chips: {cold}");
    }

    #[test]
    fn retention_is_monotone_in_time() {
        let mut prev = 1.0;
        for secs in [0.1, 1.0, 5.0, 30.0, 120.0] {
            let f = retained_fraction(secs, 20.0);
            assert!(f <= prev);
            prev = f;
        }
    }
}
