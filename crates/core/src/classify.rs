//! Functional classification of CODIC variants through circuit simulation.
//!
//! "The functionality of a particular CODIC command is determined by the
//! relative order in which the internal circuits are triggered and
//! deactivated" (§4.1.3). This module names that functionality by running a
//! variant through the analog simulator under the four probe conditions
//! that distinguish the classes: both initial cell values × both offset
//! signs.

use codic_circuit::outcome::classify_terminal;
use codic_circuit::sim::{DEFAULT_DT_NS, SETTLE_MARGIN_NS};
use codic_circuit::{CircuitParams, CircuitSimBatch, SenseOutcome, WINDOW_NS};
use rayon::prelude::*;

use crate::variant::CodicVariant;

/// The functional class of a CODIC variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperationClass {
    /// Restores whatever the cell stored: a regular activation.
    ActivateLike,
    /// Returns the bitlines to `Vdd/2` without touching the cell.
    PrechargeLike,
    /// Leaves the cell at `Vdd/2`, ready for a process-variation-dependent
    /// amplification on the next activate (CODIC-sig).
    SignaturePreparation,
    /// Drives the cell to zero regardless of its prior value (CODIC-det).
    DeterministicZero,
    /// Drives the cell to one regardless of its prior value (CODIC-det).
    DeterministicOne,
    /// Writes a value determined purely by sense-amplifier process
    /// variation (CODIC-sigsa).
    SignatureAmplified,
    /// Overwrites the target row(s) with a computed bitwise result
    /// (multi-row-activation MAJ/AND/OR, dual-contact NOT, row copies and
    /// fills). Never produced by the circuit classifier — this class names
    /// the bulk-bitwise [`CodicOp`](crate::ops::CodicOp) family for the
    /// controller's compute-region policy.
    BulkBitwise,
    /// Leaves all nodes untouched.
    NoOp,
    /// Anything else: data-dependent, metastable, or partially restored
    /// states.
    Other,
}

impl OperationClass {
    /// Whether commands of this class destroy (or may destroy) the cell
    /// contents — the property the self-destruction mechanism relies on
    /// (§5.2) and the PUF challenge semantics must respect (§4.4).
    #[must_use]
    pub fn is_destructive(self) -> bool {
        matches!(
            self,
            OperationClass::SignaturePreparation
                | OperationClass::DeterministicZero
                | OperationClass::DeterministicOne
                | OperationClass::SignatureAmplified
                | OperationClass::BulkBitwise
                | OperationClass::Other
        )
    }
}

impl std::fmt::Display for OperationClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OperationClass::ActivateLike => "activate-like",
            OperationClass::PrechargeLike => "precharge-like",
            OperationClass::SignaturePreparation => "signature preparation (CODIC-sig)",
            OperationClass::DeterministicZero => "deterministic zero (CODIC-det)",
            OperationClass::DeterministicOne => "deterministic one (CODIC-det)",
            OperationClass::SignatureAmplified => "signature amplification (CODIC-sigsa)",
            OperationClass::BulkBitwise => "bulk bitwise compute",
            OperationClass::NoOp => "no-op",
            OperationClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// Probe offset magnitude in volts used to detect process-variation
/// dependence (a few sigma of the offset distribution).
const PROBE_OFFSET: f64 = 4.0e-3;

/// Classifies `variant` by simulating it under probe conditions.
///
/// All four probe trials — both initial cell values × both offset signs —
/// run as one [`CircuitSimBatch`], so a classification is a single pass of
/// the batched integrator; the terminal-state arithmetic is identical to
/// the scalar simulator's, so the resulting class is too.
#[must_use]
pub fn classify(variant: &CodicVariant, params: &CircuitParams) -> OperationClass {
    if variant.schedule().programmed_signals() == 0 {
        return OperationClass::NoOp;
    }
    let vdd = params.vdd;
    let mut batch = CircuitSimBatch::uniform(*params, 4);
    batch.set_sa_offsets(&[PROBE_OFFSET, PROBE_OFFSET, -PROBE_OFFSET, -PROBE_OFFSET]);
    batch.set_cell_bits(&[false, true, false, true]);
    let duration_ns = f64::from(WINDOW_NS) + SETTLE_MARGIN_NS;
    let states = batch.run_terminal(variant.schedule(), duration_ns, DEFAULT_DT_NS);
    let outcome = |i: usize| -> SenseOutcome {
        classify_terminal(
            variant.schedule(),
            vdd,
            states[i].v_bitline,
            states[i].v_cell,
        )
    };
    let zero_pos = outcome(0);
    let one_pos = outcome(1);

    use SenseOutcome as O;
    // A command whose result flips with the offset sign is process-
    // variation dependent — the signature of CODIC-sigsa.
    let offset_flips = |was_one: bool| -> bool {
        match outcome(if was_one { 3 } else { 2 }) {
            O::RestoredZero => was_one,
            O::RestoredOne => !was_one,
            _ => false,
        }
    };
    match (zero_pos, one_pos) {
        (O::RestoredZero, O::RestoredOne) => OperationClass::ActivateLike,
        (O::RestoredZero, O::RestoredZero) => {
            if offset_flips(false) {
                OperationClass::SignatureAmplified
            } else {
                OperationClass::DeterministicZero
            }
        }
        (O::RestoredOne, O::RestoredOne) => {
            if offset_flips(true) {
                OperationClass::SignatureAmplified
            } else {
                OperationClass::DeterministicOne
            }
        }
        (O::CellEqualized, O::CellEqualized) => OperationClass::SignaturePreparation,
        (O::BitlinePrecharged, O::BitlinePrecharged) => OperationClass::PrechargeLike,
        _ => OperationClass::Other,
    }
}

/// Classifies many variants in parallel (rayon worker threads, one batched
/// classification per variant), preserving input order.
#[must_use]
pub fn classify_all(variants: &[CodicVariant], params: &CircuitParams) -> Vec<OperationClass> {
    variants.par_iter().map(|v| classify(v, params)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    fn classify_default(v: &CodicVariant) -> OperationClass {
        classify(v, &CircuitParams::default())
    }

    #[test]
    fn library_variants_classify_as_documented() {
        assert_eq!(
            classify_default(&library::activation()),
            OperationClass::ActivateLike
        );
        assert_eq!(
            classify_default(&library::precharge()),
            OperationClass::PrechargeLike
        );
        assert_eq!(
            classify_default(&library::codic_sig()),
            OperationClass::SignaturePreparation
        );
        assert_eq!(
            classify_default(&library::codic_sig_opt()),
            OperationClass::SignaturePreparation
        );
        assert_eq!(
            classify_default(&library::codic_det_zero()),
            OperationClass::DeterministicZero
        );
        assert_eq!(
            classify_default(&library::codic_det_one()),
            OperationClass::DeterministicOne
        );
        assert_eq!(
            classify_default(&library::codic_sigsa()),
            OperationClass::SignatureAmplified
        );
        assert_eq!(
            classify_default(&library::codic_sig_alt()),
            OperationClass::SignaturePreparation
        );
    }

    #[test]
    fn empty_program_is_noop() {
        let v = CodicVariant::new("idle", codic_circuit::SignalSchedule::default());
        assert_eq!(classify_default(&v), OperationClass::NoOp);
    }

    #[test]
    fn destructive_flags_match_paper_semantics() {
        assert!(!OperationClass::ActivateLike.is_destructive());
        assert!(!OperationClass::PrechargeLike.is_destructive());
        assert!(OperationClass::SignaturePreparation.is_destructive());
        assert!(OperationClass::DeterministicZero.is_destructive());
        assert!(OperationClass::SignatureAmplified.is_destructive());
    }

    #[test]
    fn ddr3l_classifications_match_ddr3() {
        let p = CircuitParams::ddr3l();
        assert_eq!(
            classify(&library::codic_sig(), &p),
            OperationClass::SignaturePreparation
        );
        assert_eq!(
            classify(&library::codic_det_zero(), &p),
            OperationClass::DeterministicZero
        );
    }

    #[test]
    fn classify_all_matches_per_variant_classification() {
        let variants = [
            library::activation(),
            library::precharge(),
            library::codic_sig(),
            library::codic_det_zero(),
            library::codic_det_one(),
            library::codic_sigsa(),
        ];
        let params = CircuitParams::default();
        let batch = classify_all(&variants, &params);
        let serial: Vec<_> = variants.iter().map(|v| classify(v, &params)).collect();
        assert_eq!(batch, serial);
    }

    #[test]
    fn display_is_informative() {
        assert!(OperationClass::SignaturePreparation
            .to_string()
            .contains("CODIC-sig"));
    }
}
