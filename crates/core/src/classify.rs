//! Functional classification of CODIC variants through circuit simulation.
//!
//! "The functionality of a particular CODIC command is determined by the
//! relative order in which the internal circuits are triggered and
//! deactivated" (§4.1.3). This module names that functionality by running a
//! variant through the analog simulator under the four probe conditions
//! that distinguish the classes: both initial cell values × both offset
//! signs.

use codic_circuit::{CircuitParams, CircuitSim, SenseOutcome};

use crate::variant::CodicVariant;

/// The functional class of a CODIC variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperationClass {
    /// Restores whatever the cell stored: a regular activation.
    ActivateLike,
    /// Returns the bitlines to `Vdd/2` without touching the cell.
    PrechargeLike,
    /// Leaves the cell at `Vdd/2`, ready for a process-variation-dependent
    /// amplification on the next activate (CODIC-sig).
    SignaturePreparation,
    /// Drives the cell to zero regardless of its prior value (CODIC-det).
    DeterministicZero,
    /// Drives the cell to one regardless of its prior value (CODIC-det).
    DeterministicOne,
    /// Writes a value determined purely by sense-amplifier process
    /// variation (CODIC-sigsa).
    SignatureAmplified,
    /// Leaves all nodes untouched.
    NoOp,
    /// Anything else: data-dependent, metastable, or partially restored
    /// states.
    Other,
}

impl OperationClass {
    /// Whether commands of this class destroy (or may destroy) the cell
    /// contents — the property the self-destruction mechanism relies on
    /// (§5.2) and the PUF challenge semantics must respect (§4.4).
    #[must_use]
    pub fn is_destructive(self) -> bool {
        matches!(
            self,
            OperationClass::SignaturePreparation
                | OperationClass::DeterministicZero
                | OperationClass::DeterministicOne
                | OperationClass::SignatureAmplified
                | OperationClass::Other
        )
    }
}

impl std::fmt::Display for OperationClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OperationClass::ActivateLike => "activate-like",
            OperationClass::PrechargeLike => "precharge-like",
            OperationClass::SignaturePreparation => "signature preparation (CODIC-sig)",
            OperationClass::DeterministicZero => "deterministic zero (CODIC-det)",
            OperationClass::DeterministicOne => "deterministic one (CODIC-det)",
            OperationClass::SignatureAmplified => "signature amplification (CODIC-sigsa)",
            OperationClass::NoOp => "no-op",
            OperationClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// Probe offset magnitude in volts used to detect process-variation
/// dependence (a few sigma of the offset distribution).
const PROBE_OFFSET: f64 = 4.0e-3;

/// Classifies `variant` by simulating it under probe conditions.
#[must_use]
pub fn classify(variant: &CodicVariant, params: &CircuitParams) -> OperationClass {
    if variant.schedule().programmed_signals() == 0 {
        return OperationClass::NoOp;
    }
    let run = |bit: bool, offset: f64| -> SenseOutcome {
        let mut sim = CircuitSim::new(*params);
        sim.set_sa_offset(offset);
        sim.set_cell_bit(bit);
        sim.run(variant.schedule()).outcome()
    };
    let zero_pos = run(false, PROBE_OFFSET);
    let one_pos = run(true, PROBE_OFFSET);

    use SenseOutcome as O;
    match (zero_pos, one_pos) {
        (O::RestoredZero, O::RestoredOne) => OperationClass::ActivateLike,
        (O::RestoredZero, O::RestoredZero) => {
            if offset_flips(variant, params, false) {
                OperationClass::SignatureAmplified
            } else {
                OperationClass::DeterministicZero
            }
        }
        (O::RestoredOne, O::RestoredOne) => {
            if offset_flips(variant, params, true) {
                OperationClass::SignatureAmplified
            } else {
                OperationClass::DeterministicOne
            }
        }
        (O::CellEqualized, O::CellEqualized) => OperationClass::SignaturePreparation,
        (O::BitlinePrecharged, O::BitlinePrecharged) => OperationClass::PrechargeLike,
        _ => OperationClass::Other,
    }
}

/// Whether flipping the sense-amplifier offset sign flips the outcome —
/// the signature of a process-variation-dependent command.
fn offset_flips(variant: &CodicVariant, params: &CircuitParams, was_one: bool) -> bool {
    let mut sim = CircuitSim::new(*params);
    sim.set_sa_offset(-PROBE_OFFSET);
    sim.set_cell_bit(was_one);
    let flipped = sim.run(variant.schedule()).outcome();
    match flipped {
        SenseOutcome::RestoredZero => was_one,
        SenseOutcome::RestoredOne => !was_one,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    fn classify_default(v: &CodicVariant) -> OperationClass {
        classify(v, &CircuitParams::default())
    }

    #[test]
    fn library_variants_classify_as_documented() {
        assert_eq!(
            classify_default(&library::activation()),
            OperationClass::ActivateLike
        );
        assert_eq!(
            classify_default(&library::precharge()),
            OperationClass::PrechargeLike
        );
        assert_eq!(
            classify_default(&library::codic_sig()),
            OperationClass::SignaturePreparation
        );
        assert_eq!(
            classify_default(&library::codic_sig_opt()),
            OperationClass::SignaturePreparation
        );
        assert_eq!(
            classify_default(&library::codic_det_zero()),
            OperationClass::DeterministicZero
        );
        assert_eq!(
            classify_default(&library::codic_det_one()),
            OperationClass::DeterministicOne
        );
        assert_eq!(
            classify_default(&library::codic_sigsa()),
            OperationClass::SignatureAmplified
        );
        assert_eq!(
            classify_default(&library::codic_sig_alt()),
            OperationClass::SignaturePreparation
        );
    }

    #[test]
    fn empty_program_is_noop() {
        let v = CodicVariant::new("idle", codic_circuit::SignalSchedule::default());
        assert_eq!(classify_default(&v), OperationClass::NoOp);
    }

    #[test]
    fn destructive_flags_match_paper_semantics() {
        assert!(!OperationClass::ActivateLike.is_destructive());
        assert!(!OperationClass::PrechargeLike.is_destructive());
        assert!(OperationClass::SignaturePreparation.is_destructive());
        assert!(OperationClass::DeterministicZero.is_destructive());
        assert!(OperationClass::SignatureAmplified.is_destructive());
    }

    #[test]
    fn ddr3l_classifications_match_ddr3() {
        let p = CircuitParams::ddr3l();
        assert_eq!(
            classify(&library::codic_sig(), &p),
            OperationClass::SignaturePreparation
        );
        assert_eq!(
            classify(&library::codic_det_zero(), &p),
            OperationClass::DeterministicZero
        );
    }

    #[test]
    fn display_is_informative() {
        assert!(OperationClass::SignaturePreparation
            .to_string()
            .contains("CODIC-sig"));
    }
}
