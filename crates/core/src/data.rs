//! The compute-region data plane: simulated row *contents* for the
//! bulk-bitwise subsystem.
//!
//! The cycle-level model times operations; it does not hold data. That is
//! the right trade for the paper's original use cases (signatures and
//! zeroing need no value tracking), but the bulk-bitwise family exists to
//! *compute*, so its results must be value-checked against a scalar
//! reference — not just timed. This module materializes row contents
//! lazily and only for rows inside the authorized compute region, so a
//! device without a compute region pays nothing.
//!
//! Rows never touched (or outside the region) read as all-zeros; a
//! `RowCopy`/`Not` whose source lies outside the region therefore reads
//! zeros, which the planner never relies on. Every mutation returns the
//! FNV-1a-64 fingerprint of the destination row, which the service layer
//! carries into completions and the wire protocol folds into the session
//! checksum — making a pinned replay checksum value-verifying end to end.

use std::collections::HashMap;
use std::ops::Range;

use codic_dram::geometry::DramGeometry;

use crate::exec::DataEffect;
use crate::ops::CodicOp;

/// 64-bit words per DRAM row (8 KB rows).
pub const WORDS_PER_ROW: usize = (DramGeometry::ROW_BYTES / 8) as usize;

/// One row of simulated contents.
pub type RowWords = [u64; WORDS_PER_ROW];

/// The all-zeros contents every unmaterialized row reads as.
static ZERO_ROW: RowWords = [0; WORDS_PER_ROW];

/// FNV-1a-64 over `words` in little-endian byte order — the same
/// algorithm (and constants) the wire protocol's session checksum uses,
/// so a row fingerprint folds naturally into the replay checksum.
#[must_use]
pub fn row_fingerprint(words: &RowWords) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for word in words {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Lazily materialized row contents for one device's compute region.
#[derive(Debug, Clone, Default)]
pub struct DataPlane {
    region: Range<u64>,
    rows: HashMap<u64, Box<RowWords>>,
}

impl DataPlane {
    /// A data plane tracking contents for rows inside `region` (byte
    /// addresses).
    #[must_use]
    pub fn new(region: Range<u64>) -> Self {
        DataPlane {
            region,
            rows: HashMap::new(),
        }
    }

    /// The tracked byte-address region.
    #[must_use]
    pub fn region(&self) -> &Range<u64> {
        &self.region
    }

    /// Number of rows materialized so far.
    #[must_use]
    pub fn materialized_rows(&self) -> usize {
        self.rows.len()
    }

    fn key(addr: u64) -> u64 {
        addr - addr % DramGeometry::ROW_BYTES
    }

    /// The contents of the row containing `addr` (all-zeros when never
    /// written or outside the region).
    #[must_use]
    pub fn row(&self, addr: u64) -> &RowWords {
        self.rows
            .get(&Self::key(addr))
            .map_or(&ZERO_ROW, |row| row.as_ref())
    }

    /// The FNV-1a-64 fingerprint of the row containing `addr`.
    #[must_use]
    pub fn fingerprint(&self, addr: u64) -> u64 {
        row_fingerprint(self.row(addr))
    }

    fn row_mut(&mut self, addr: u64) -> &mut RowWords {
        self.rows
            .entry(Self::key(addr))
            .or_insert_with(|| Box::new(ZERO_ROW))
    }

    fn fill(&mut self, addr: u64, word: u64) {
        self.row_mut(addr).fill(word);
    }

    /// Applies the architectural data effect of `op` and returns the
    /// fingerprint of the written destination row for bulk-bitwise
    /// compute operations (`0` for everything else).
    ///
    /// Non-compute destructive operations landing inside the region keep
    /// the plane honest: CODIC-det and the clone-zero baselines leave the
    /// deterministic value, and signature-class commands drop the row
    /// (its process-variation contents are not modeled, so it reads as
    /// zeros afterwards). Ordinary reads and writes are column traffic
    /// the plane does not track.
    pub fn apply(&mut self, op: CodicOp) -> u64 {
        match op {
            CodicOp::RowInit { row_addr, ones } => {
                self.fill(row_addr, if ones { u64::MAX } else { 0 });
            }
            CodicOp::RowFill { row_addr, pattern } => self.fill(row_addr, pattern),
            CodicOp::RowCopy { src_addr, dst_addr } => {
                let src = *self.row(src_addr);
                *self.row_mut(dst_addr) = src;
            }
            CodicOp::Not { src_addr, dst_addr } => {
                let src = *self.row(src_addr);
                let dst = self.row_mut(dst_addr);
                for (d, s) in dst.iter_mut().zip(src.iter()) {
                    *d = !s;
                }
            }
            CodicOp::MajAnd { row_addr } | CodicOp::MajOr { row_addr } => {
                // Triple-row activation: the group charge-shares to the
                // bitwise majority, and the restore writes that majority
                // back into all three rows.
                let row = DramGeometry::ROW_BYTES;
                let a = *self.row(row_addr);
                let b = *self.row(row_addr + row);
                let c = *self.row(row_addr + 2 * row);
                let mut maj = ZERO_ROW;
                for i in 0..WORDS_PER_ROW {
                    maj[i] = (a[i] & b[i]) | (a[i] & c[i]) | (b[i] & c[i]);
                }
                *self.row_mut(row_addr) = maj;
                *self.row_mut(row_addr + row) = maj;
                *self.row_mut(row_addr + 2 * row) = maj;
            }
            _ => {
                // Non-compute operations only matter when they land on a
                // tracked row.
                if op.written_rows().rows > 0 && self.region.contains(&op.row_addr()) {
                    match op.class().data_effect() {
                        DataEffect::Zeros => self.fill(op.row_addr(), 0),
                        DataEffect::Ones => self.fill(op.row_addr(), u64::MAX),
                        DataEffect::Signature | DataEffect::Scramble => {
                            self.rows.remove(&Self::key(op.row_addr()));
                        }
                        DataEffect::Preserve | DataEffect::Computed => {}
                    }
                }
                return 0;
            }
        }
        self.fingerprint(op.row_addr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::VariantId;

    const ROW: u64 = DramGeometry::ROW_BYTES;

    fn plane() -> DataPlane {
        DataPlane::new(0..16 * ROW)
    }

    #[test]
    fn untouched_rows_read_as_zeros() {
        let p = plane();
        assert!(p.row(0).iter().all(|&w| w == 0));
        assert_eq!(p.fingerprint(0), row_fingerprint(&ZERO_ROW));
        assert_eq!(p.materialized_rows(), 0);
    }

    #[test]
    fn init_fill_copy_and_not_have_value_semantics() {
        let mut p = plane();
        p.apply(CodicOp::RowFill {
            row_addr: 0,
            pattern: 0xA5A5_A5A5_A5A5_A5A5,
        });
        p.apply(CodicOp::RowCopy {
            src_addr: 0,
            dst_addr: ROW,
        });
        assert_eq!(p.row(ROW)[7], 0xA5A5_A5A5_A5A5_A5A5);
        let fp = p.apply(CodicOp::Not {
            src_addr: ROW,
            dst_addr: 2 * ROW,
        });
        assert_eq!(p.row(2 * ROW)[0], 0x5A5A_5A5A_5A5A_5A5A);
        assert_eq!(fp, p.fingerprint(2 * ROW));
        p.apply(CodicOp::RowInit {
            row_addr: 2 * ROW,
            ones: true,
        });
        assert!(p.row(2 * ROW).iter().all(|&w| w == u64::MAX));
    }

    #[test]
    fn triple_activation_writes_the_majority_into_all_three_rows() {
        let mut p = plane();
        for (i, pattern) in [(0u64, 0b1100u64), (1, 0b1010), (2, 0b1001)] {
            p.apply(CodicOp::RowFill {
                row_addr: i * ROW,
                pattern,
            });
        }
        p.apply(CodicOp::MajAnd { row_addr: 0 });
        for i in 0..3 {
            assert_eq!(p.row(i * ROW)[0], 0b1000, "row {i} holds MAJ");
        }
    }

    #[test]
    fn addressing_is_row_granular() {
        let mut p = plane();
        p.apply(CodicOp::RowFill {
            row_addr: ROW + 64,
            pattern: 7,
        });
        assert_eq!(p.row(ROW)[0], 7, "mid-row addresses select the row");
    }

    #[test]
    fn legacy_destructive_ops_keep_tracked_rows_honest() {
        let mut p = plane();
        p.apply(CodicOp::RowFill {
            row_addr: 0,
            pattern: 7,
        });
        assert_eq!(p.apply(CodicOp::RowCloneZero { row_addr: 0 }), 0);
        assert!(p.row(0).iter().all(|&w| w == 0));
        p.apply(CodicOp::command(VariantId::DetOne, 0));
        assert!(p.row(0).iter().all(|&w| w == u64::MAX));
        p.apply(CodicOp::command(VariantId::Sig, 0));
        assert_eq!(p.row(0)[0], 0, "signature rows are dropped, read zeros");
        // Out-of-region destructive ops are ignored entirely.
        p.apply(CodicOp::RowCloneZero {
            row_addr: 1024 * ROW,
        });
        assert_eq!(p.materialized_rows(), 0, "sig dropped row 0; nothing new");
    }
}
