//! The configurable delay-element circuit and its cost model (paper §4.2.1).
//!
//! Each CODIC-controlled signal gets a chain of 25 buffer stages (≈ 1 ns
//! propagation each) feeding a 25-to-1 multiplexer, plus a 2-to-1 mux that
//! selects between the fixed DDRx delay path and the CODIC path (Figure 4).
//! The paper reports: 0.28 % mat area per signal (1.12 % for all four),
//! < 500 fJ energy per command, and a 0.028 ns added delay on the DDRx path
//! that is compensated by buffer sizing.

/// Cell area of a DRAM cell in F² (6F² cells; paper cites [120, 129]).
pub const CELL_AREA_F2: f64 = 6.0;

/// Rows in a typical mat (512 × 512; §4.2.1).
pub const MAT_ROWS: u64 = 512;

/// Columns in a typical mat.
pub const MAT_COLS: u64 = 512;

/// Average layout area of one peripheral transistor in F², calibrated so
/// the delay element's transistor count yields the paper's 0.28 % per-mat
/// overhead.
pub const TRANSISTOR_AREA_F2: f64 = 29.4;

/// The configurable delay element for one internal signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayElement {
    /// Buffer stages in the chain (one per programmable nanosecond).
    pub stages: u32,
    /// Propagation delay per stage in picoseconds.
    pub stage_delay_ps: u32,
}

impl Default for DelayElement {
    fn default() -> Self {
        DelayElement {
            stages: 25,
            stage_delay_ps: 1000,
        }
    }
}

impl DelayElement {
    /// Transistors in the element: 2 per buffer stage, 4 per multiplexer
    /// input (transmission gate + select inverter), and 4 for the 2-to-1
    /// DDRx/CODIC select mux.
    #[must_use]
    pub fn transistor_count(&self) -> u64 {
        u64::from(self.stages) * 2 + u64::from(self.stages) * 4 + 4
    }

    /// Layout area of the element in F².
    #[must_use]
    pub fn area_f2(&self) -> f64 {
        self.transistor_count() as f64 * TRANSISTOR_AREA_F2
    }

    /// Area overhead relative to one mat, in percent (paper: ≈ 0.28 %).
    #[must_use]
    pub fn area_per_mat_pct(&self) -> f64 {
        let mat_area = (MAT_ROWS * MAT_COLS) as f64 * CELL_AREA_F2;
        100.0 * self.area_f2() / mat_area
    }

    /// Maximum programmable delay in nanoseconds.
    #[must_use]
    pub fn max_delay_ns(&self) -> f64 {
        f64::from(self.stages) * f64::from(self.stage_delay_ps) / 1000.0
    }

    /// Dynamic energy per traversal in femtojoules (paper: < 500 fJ).
    ///
    /// Only the buffer chain and the selected multiplexer leg switch on a
    /// traversal: each stage toggles a ≈ 1 fF gate load at 1.5 V
    /// (`E = C·V²`, half the transistors switching per event), and the
    /// selected mux leg adds the equivalent of 8 transistor loads.
    #[must_use]
    pub fn energy_fj(&self) -> f64 {
        let c_stage_f = 1.0e-15;
        let vdd = 1.5;
        let switched = f64::from(self.stages) * 2.0 * 0.5 + 8.0;
        switched * c_stage_f * vdd * vdd * 1e15
    }

    /// Delay added to the fixed DDRx path by the 2-to-1 select mux, in
    /// nanoseconds (paper: 0.028 ns, compensated by buffer sizing).
    #[must_use]
    pub fn ddrx_mux_delay_ns(&self) -> f64 {
        0.028
    }
}

/// Cost summary for a full CODIC deployment (all four signals).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodicCost {
    /// Mat-relative area overhead in percent.
    pub area_per_mat_pct: f64,
    /// Energy per CODIC command in femtojoules.
    pub energy_fj: f64,
    /// Added delay on the unmodified DDRx activate path in nanoseconds.
    pub ddrx_delay_ns: f64,
}

/// Computes the total substrate cost: four delay elements, one per signal
/// (§4.2.1: `4 × 0.28 % = 1.12 %`).
#[must_use]
pub fn substrate_cost() -> CodicCost {
    let e = DelayElement::default();
    CodicCost {
        area_per_mat_pct: 4.0 * e.area_per_mat_pct(),
        energy_fj: 4.0 * e.energy_fj(),
        ddrx_delay_ns: e.ddrx_mux_delay_ns(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_signal_area_matches_paper_0_28_pct() {
        let pct = DelayElement::default().area_per_mat_pct();
        assert!((pct - 0.28).abs() < 0.02, "area = {pct}%");
    }

    #[test]
    fn total_area_matches_paper_1_12_pct() {
        let pct = substrate_cost().area_per_mat_pct;
        assert!((pct - 1.12).abs() < 0.08, "area = {pct}%");
    }

    #[test]
    fn energy_is_below_500_fj() {
        let e = substrate_cost().energy_fj;
        assert!(e < 500.0, "energy = {e} fJ");
        assert!(e > 50.0, "energy = {e} fJ (suspiciously low)");
    }

    #[test]
    fn mux_delay_is_negligible_relative_to_stage_delay() {
        let e = DelayElement::default();
        assert!((e.ddrx_mux_delay_ns() - 0.028).abs() < 1e-12);
        assert!(e.ddrx_mux_delay_ns() < 0.05 * f64::from(e.stage_delay_ps) / 1000.0);
    }

    #[test]
    fn chain_spans_the_codic_window() {
        let e = DelayElement::default();
        assert!((e.max_delay_ns() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn coarser_granularity_reduces_area() {
        // Footnote 3: coarsening the time control reduces area.
        let coarse = DelayElement {
            stages: 13,
            stage_delay_ps: 2000,
        };
        assert!(coarse.area_per_mat_pct() < DelayElement::default().area_per_mat_pct());
    }
}
