//! The `CodicDevice` service layer: one typed command path from use case
//! to cycle-level controller.
//!
//! The paper's §4.4 argues the memory controller should expose CODIC
//! *applications* behind a controlled interface. [`CodicDevice`] is that
//! interface as a service: it composes
//!
//! 1. mode-register programming ([`CodicController`] installs the variant
//!    a [`CodicOp`] names),
//! 2. safe-range policy enforcement (every operation is authorized
//!    *before* it is enqueued — rejected operations never reach the
//!    command bus), and
//! 3. cycle-level scheduling (the operation is enqueued on the embedded
//!    FR-FCFS [`MemoryController`] — row operations and ordinary
//!    [`CodicOp::Read`]/[`CodicOp::Write`] traffic share one scheduler —
//!    and completes under real bank/rank timing).
//!
//! Completions are typed: each [`OpCompletion`] carries the operation, the
//! memory cycle it finished, and its accounted cost ([`OpCost`]: occupancy
//! + energy, from [`codic_power::accounting`] for row operations).
//!
//! The engine underneath is event-driven: the controller jumps from event
//! to event ([`MemoryController::advance_to`]) instead of ticking every
//! cycle, with bit-identical results, so even full-module sweeps
//! ([`CodicDevice::sweep_all_rows`] — cold-boot destruction of up to
//! 64 GB) stream through the one shared scheduler at per-command rather
//! than per-cycle cost. Completions can be polled
//! ([`CodicDevice::take_completions`]) or awaited: [`CodicDevice::submit_async`]
//! returns an [`OpFuture`] resolved by the
//! clock driver ([`CodicDevice::step`] / [`CodicDevice::run_to_idle`]).

use std::ops::Range;
use std::sync::Arc;

use codic_dram::controller::{MemoryController, QUEUE_DEPTH};
use codic_dram::geometry::DramGeometry;
use codic_dram::request::{MemRequest, ReqId, ReqKind, RowOpKind};
use codic_dram::stats::MemStats;
use codic_dram::timing::TimingParams;
use codic_power::accounting::{self, RowOpCost};
use codic_power::{EnergyModel, IddValues};

use crate::data::DataPlane;
use crate::error::CodicError;
use crate::executor::{OpFuture, SlotArena, SlotHandle};
use crate::fault::{FaultCause, FaultPlan, FaultStats, OpOutcome, RetryPolicy};
use crate::idmap::IdMap;
use crate::interface::CodicController;
use crate::ops::{CodicOp, InDramMechanism, RowRegion, VariantId};

/// Configuration of one [`CodicDevice`] (one channel/rank's worth of
/// DRAM plus its controller policy).
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Module organization behind the device.
    pub geometry: DramGeometry,
    /// DDR timing the embedded controller enforces.
    pub timing: TimingParams,
    /// Datasheet currents for the completion energy accounting.
    pub idd: IddValues,
    /// The system-defined range destructive operations are confined to
    /// (§4.4). Defaults to the whole module.
    pub safe_range: Range<u64>,
    /// Whether the refresh engine runs (the paper's PUF methodology
    /// disables it, §6.1).
    pub refresh_enabled: bool,
    /// Injected fault schedule (`None` — the default — disables fault
    /// injection entirely; the service path then behaves exactly as if
    /// the feature did not exist).
    pub fault: Option<FaultPlan>,
    /// Retry discipline for misfired operations (only consulted while a
    /// fault plan is installed; the default of one attempt disables
    /// retry).
    pub retry: RetryPolicy,
    /// Rows reserved for the bulk-bitwise compute region, carved from the
    /// *top* of the module. `0` (the default) disables the compute
    /// subsystem entirely: compute operations are rejected pre-bus and no
    /// data plane is allocated, so existing workloads pay nothing.
    pub compute_rows: u64,
}

impl DeviceConfig {
    /// A device over `geometry` with `timing`, destructive operations
    /// allowed anywhere in the module, and refresh enabled.
    #[must_use]
    pub fn new(geometry: DramGeometry, timing: TimingParams) -> Self {
        DeviceConfig {
            geometry,
            timing,
            idd: IddValues::ddr3_1600(),
            safe_range: 0..geometry.total_bytes(),
            refresh_enabled: true,
            fault: None,
            retry: RetryPolicy::default(),
            compute_rows: 0,
        }
    }

    /// The paper's evaluation configuration: 1 GB DDR3-1600.
    #[must_use]
    pub fn paper_default() -> Self {
        DeviceConfig::new(DramGeometry::default(), TimingParams::ddr3_1600_11())
    }

    /// Confines destructive operations to `safe_range`.
    #[must_use]
    pub fn with_safe_range(mut self, safe_range: Range<u64>) -> Self {
        self.safe_range = safe_range;
        self
    }

    /// Enables or disables the refresh engine.
    #[must_use]
    pub fn with_refresh(mut self, enabled: bool) -> Self {
        self.refresh_enabled = enabled;
        self
    }

    /// Installs a deterministic fault-injection plan.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Sets the retry discipline for misfired operations.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Reserves `rows` rows at the top of the module as the authorized
    /// bulk-bitwise compute region (clamped to the module size).
    #[must_use]
    pub fn with_compute_rows(mut self, rows: u64) -> Self {
        self.compute_rows = rows.min(self.geometry.total_rows());
        self
    }

    /// The byte-address range of the compute region (empty when the
    /// compute subsystem is disabled).
    #[must_use]
    pub fn compute_range(&self) -> Range<u64> {
        let total = self.geometry.total_bytes();
        total - self.compute_rows * DramGeometry::ROW_BYTES..total
    }
}

/// Completion token returned by [`CodicDevice::submit`]; redeemed against
/// the matching [`OpCompletion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpToken(pub(crate) ReqId);

impl OpToken {
    /// A token for unit tests that never touches a real controller.
    #[cfg(test)]
    pub(crate) fn test_only(raw: u64) -> Self {
        OpToken(ReqId(raw))
    }
}

/// The accounted cost of one operation on the service path: bank/bus
/// occupancy plus energy. Row operations inherit the shared
/// [`codic_power::accounting`] numbers; ordinary data accesses are charged
/// their burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Occupancy duration in memory cycles (bank occupancy for row
    /// operations, data-path latency for column accesses).
    pub busy_cycles: u32,
    /// Activations charged against the rank's tRRD/tFAW windows.
    pub activations: u8,
    /// Total energy of the operation in nanojoules.
    pub energy_nj: f64,
}

impl From<RowOpCost> for OpCost {
    fn from(cost: RowOpCost) -> Self {
        OpCost {
            busy_cycles: cost.busy_cycles,
            activations: cost.activations,
            energy_nj: cost.energy_nj,
        }
    }
}

/// A finished operation, with its typed outcome and accounted cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCompletion {
    /// The token [`CodicDevice::submit`] handed out.
    pub token: OpToken,
    /// The operation that completed.
    pub op: CodicOp,
    /// Memory cycle at which the operation finished.
    pub finish_cycle: u64,
    /// Accounted occupancy and energy cost. A misfired operation keeps
    /// its real cost (the bank was occupied and the energy spent); an
    /// operation failed without executing ([`FaultCause::ClockStuck`],
    /// [`FaultCause::Quarantined`]) carries zero cost.
    pub cost: OpCost,
    /// Whether the operation succeeded ([`OpOutcome::Ok`] always, unless
    /// fault injection is active).
    pub outcome: OpOutcome,
    /// Issue attempts this completion took (1 = first try; larger only
    /// when a [`RetryPolicy`] re-issued misfires).
    pub attempts: u8,
    /// FNV-1a-64 fingerprint of the destination row contents after a
    /// bulk-bitwise compute operation, computed by the data plane at
    /// submit time. `0` for every other operation and whenever the
    /// compute subsystem is disabled.
    pub fingerprint: u64,
}

/// Result of a batched [`CodicDevice::execute_all`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Every completion, in completion order.
    pub completions: Vec<OpCompletion>,
    /// Memory cycle at which the last operation finished.
    pub finish_cycle: u64,
    /// Wall-clock time of the batch in nanoseconds of DRAM time.
    pub finish_ns: f64,
    /// Total accounted energy of the batch in nanojoules.
    pub energy_nj: f64,
}

impl BatchOutcome {
    /// Number of completed operations.
    #[must_use]
    pub fn ops(&self) -> usize {
        self.completions.len()
    }
}

/// Result of an event-driven full-module row sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepReport {
    /// Row operations issued (one per row of the module).
    pub rows: u64,
    /// Memory cycle at which the last row finished.
    pub finish_cycle: u64,
    /// Command statistics of the sweep (row ops + activations).
    pub stats: MemStats,
    /// Total accounted energy of the sweep in nanojoules.
    pub energy_nj: f64,
}

/// One submitted operation awaiting completion: its typed op, accounted
/// cost, and — for async submissions — the arena slot to fulfil. The
/// token is the op's *original* request id: a retried op re-enters the
/// scheduler under a fresh id but keeps the token its submitter holds.
#[derive(Debug)]
struct PendingOp {
    token: OpToken,
    op: CodicOp,
    cost: OpCost,
    /// Data-plane fingerprint fixed at submit time (architectural state
    /// advances in submission order, decoupled from the timing model).
    fingerprint: u64,
    waiter: Option<SlotHandle>,
    /// Issue attempts so far (1 = first issue).
    attempts: u8,
    /// Per-device row-op index the misfire schedule is keyed by.
    op_index: u64,
    /// Decision of the fault plan for this attempt, fixed at issue time.
    will_fail: bool,
}

/// A misfired operation waiting out its retry backoff.
#[derive(Debug)]
struct Retry {
    pending: PendingOp,
    /// Earliest cycle the re-issue may enter the scheduler.
    not_before: u64,
}

/// The device's fault-injection state; exists only while a plan is
/// installed, so the fault-free hot path costs one `Option` branch.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    retry: RetryPolicy,
    /// Row ops issued so far — the misfire schedule's op index.
    next_op_index: u64,
    retries: Vec<Retry>,
    stats: FaultStats,
}

/// The CODIC service device: policy-checked, typed command submission over
/// an embedded cycle-level memory controller.
///
/// Completion delivery is allocation-free at steady state: in-flight
/// operations live in a direct-mapped id window (no hashing), and async
/// submissions claim recycled slots of the device's completion-slot
/// arena instead of allocating one `Arc<Mutex>` per operation.
#[derive(Debug)]
pub struct CodicDevice {
    policy: CodicController,
    mc: MemoryController,
    energy: EnergyModel,
    /// In-flight operations keyed by controller request id. Ids are
    /// monotone and live only while queued or in flight, so the window
    /// stays within the controller's queue + in-flight bound.
    pending: IdMap<PendingOp>,
    /// The completion-slot arena shared with this device's [`OpFuture`]s.
    futures: Arc<SlotArena>,
    /// Accounted costs, precomputed per request shape (timing and energy
    /// model are fixed at construction): reads, writes, and the three
    /// row-operation kinds — no per-submission float accounting.
    read_cost: OpCost,
    write_cost: OpCost,
    row_costs: [OpCost; 5],
    ready: Vec<OpCompletion>,
    /// Fault injection and retry state; `None` (the default) means the
    /// feature is disabled and every completion is [`OpOutcome::Ok`].
    fault: Option<FaultState>,
    /// The compute-region data plane; `None` (the default) means the
    /// bulk-bitwise subsystem is disabled and costs nothing.
    data: Option<DataPlane>,
    /// The variant key the policy's full authorization last passed for,
    /// invalidated on every mode-register change. The address part of
    /// the policy still runs per operation; this memo only skips
    /// re-deriving the variant-match decision op after op.
    auth_memo: Option<Option<VariantId>>,
}

/// The `row_costs` slot of a row-operation kind.
fn row_cost_idx(kind: RowOpKind) -> usize {
    match kind {
        RowOpKind::Codic => 0,
        RowOpKind::RowClone => 1,
        RowOpKind::LisaClone => 2,
        RowOpKind::TripleAct => 3,
        RowOpKind::DualContact => 4,
    }
}

impl CodicDevice {
    /// Creates a device from `config`.
    #[must_use]
    pub fn new(config: DeviceConfig) -> Self {
        let mut mc = MemoryController::new(config.geometry, config.timing);
        mc.set_refresh_enabled(config.refresh_enabled);
        let fault = config.fault.map(|plan| {
            if let Some(cycle) = plan.stuck_at_cycle {
                mc.set_clock_fault(cycle);
            }
            FaultState {
                plan,
                retry: config.retry,
                next_op_index: 0,
                retries: Vec::new(),
                stats: FaultStats::default(),
            }
        });
        let energy = EnergyModel::new(config.idd, config.timing, config.geometry.devices_per_rank);
        let t = config.timing;
        let read_cost = OpCost {
            busy_cycles: t.t_cl + t.t_bl,
            activations: 0,
            energy_nj: energy.read_burst_nj(),
        };
        let write_cost = OpCost {
            busy_cycles: t.t_cwl + t.t_bl,
            activations: 0,
            energy_nj: energy.write_burst_nj(),
        };
        let mut row_costs = [read_cost; 5];
        for kind in [
            RowOpKind::Codic,
            RowOpKind::RowClone,
            RowOpKind::LisaClone,
            RowOpKind::TripleAct,
            RowOpKind::DualContact,
        ] {
            row_costs[row_cost_idx(kind)] = accounting::row_op_cost(kind, &t, &energy).into();
        }
        let compute_range = config.compute_range();
        let data = (!compute_range.is_empty()).then(|| DataPlane::new(compute_range.clone()));
        CodicDevice {
            policy: CodicController::new(config.safe_range).with_compute_range(compute_range),
            mc,
            energy,
            // Live ids span at most the three 64-deep queues plus the
            // in-flight set; one extra doubling of headroom keeps the
            // ring collision-free in steady state.
            pending: IdMap::with_capacity(8 * QUEUE_DEPTH),
            futures: SlotArena::with_capacity(2 * QUEUE_DEPTH),
            read_cost,
            write_cost,
            row_costs,
            ready: Vec::new(),
            fault,
            data,
            auth_memo: None,
        }
    }

    /// The policy layer (mode registers and safe range). The device keeps
    /// the controller's issued-command log empty — completions are the
    /// service path's bounded, drainable audit trail.
    #[must_use]
    pub fn controller(&self) -> &CodicController {
        &self.policy
    }

    /// The embedded cycle-level controller's statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        self.mc.stats()
    }

    /// The current memory cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.mc.now()
    }

    /// The timing parameters in use.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        self.mc.timing()
    }

    /// The module geometry behind the device.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        self.mc.geometry()
    }

    /// The energy model used for completion accounting.
    #[must_use]
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The compute-region data plane, when the compute subsystem is
    /// enabled ([`DeviceConfig::with_compute_rows`]).
    #[must_use]
    pub fn data_plane(&self) -> Option<&DataPlane> {
        self.data.as_ref()
    }

    /// True when nothing is queued or in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.mc.is_idle()
    }

    /// Number of submitted operations not yet completed — the
    /// backpressure signal for serving loops that bound their in-flight
    /// window. Misfired operations waiting out a retry backoff still
    /// count: their submitters have not been answered yet.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.pending.len() + self.fault.as_ref().map_or(0, |fault| fault.retries.len())
    }

    /// True when an injected stuck-clock fault prevents any further
    /// progress on this device (always `false` without fault injection).
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        self.mc.clock_stalled()
    }

    /// Fault observations so far (all zero while fault injection is
    /// disabled) — the input to the pool's health policy.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.fault
            .as_ref()
            .map_or_else(FaultStats::default, |fault| fault.stats)
    }

    /// Fails every submitted-but-unanswered operation with `cause`,
    /// resolving async futures and buffering synchronous completions as
    /// usual — the quarantine path for a shard that can no longer make
    /// progress. Failed-this-way completions carry zero cost (the
    /// operations never executed to completion) and finish at the
    /// current cycle. Returns how many operations were failed.
    pub fn fail_all_pending(&mut self, cause: FaultCause) -> usize {
        self.harvest();
        let CodicDevice {
            mc,
            pending,
            futures,
            ready,
            fault,
            ..
        } = self;
        let now = mc.now();
        let mut failed = 0usize;
        let mut deliver = |p: PendingOp| {
            let completion = OpCompletion {
                token: p.token,
                op: p.op,
                finish_cycle: now,
                cost: OpCost {
                    busy_cycles: 0,
                    activations: 0,
                    energy_nj: 0.0,
                },
                outcome: OpOutcome::Failed { cause },
                attempts: p.attempts,
                fingerprint: p.fingerprint,
            };
            match p.waiter {
                Some(handle) => futures.fulfil(handle, completion),
                None => ready.push(completion),
            }
        };
        pending.drain(|_, p| {
            deliver(p);
            failed += 1;
        });
        if let Some(fault) = fault {
            for retry in fault.retries.drain(..) {
                deliver(retry.pending);
                failed += 1;
            }
            fault.stats.failed += failed as u64;
        }
        failed
    }

    /// Submits one typed operation.
    ///
    /// The safe-range policy check runs *before* anything else, so a
    /// rejected operation neither reaches the command bus nor perturbs
    /// the mode registers. The variant a [`CodicOp::Command`] names is
    /// then programmed if it is not already installed; reprogramming
    /// waits for the device to drain first (JEDEC MRS requires all banks
    /// idle), so queued operations of the previous variant complete under
    /// the registers they were issued with. If the row-operation queue is
    /// full, the device ticks the controller until a slot frees.
    ///
    /// # Errors
    ///
    /// Returns the policy error (e.g. [`CodicError::AddressOutOfRange`])
    /// when §4.4's rules reject the operation.
    pub fn submit(&mut self, op: CodicOp) -> Result<OpToken, CodicError> {
        self.policy.check_safe_range(op)?;
        self.submit_inner(op, None)
    }

    /// The post-policy submission path shared by every submit flavor:
    /// callers have already run [`CodicController::check_safe_range`]
    /// (directly, or batched at the pool/batch boundary), so the per-op
    /// loop pays only the memoized authorization, the cost memo, and
    /// the queue push. `waiter` is installed into the pending entry at
    /// insert time — the async path no longer pays a second `IdMap`
    /// lookup to attach it after the fact.
    fn submit_inner(
        &mut self,
        op: CodicOp,
        waiter: Option<SlotHandle>,
    ) -> Result<OpToken, CodicError> {
        self.install_for(op);
        // The full §4.4 authorization (variant match + range), memoized
        // by the variant the op requires: the first op of a stream runs
        // the complete derivation, every following op of the same shape
        // pays only the address check above. The memo is invalidated on
        // every mode-register change, so the decision can never go
        // stale, and the device does not grow the controller's
        // issued-command log — the typed completions are the service
        // path's audit trail, drained by `take_completions`.
        if self.auth_memo != Some(op.variant()) {
            self.policy
                .authorize(op)
                .expect("range was pre-checked and the variant just installed");
            self.auth_memo = Some(op.variant());
        }
        let (kind, cost) = self.request_for(op);
        let request = MemRequest::new(op.row_addr(), kind);
        loop {
            match self.mc.push(request) {
                Ok(id) => {
                    // Architectural state advances at accept time, in
                    // submission order, decoupled from the cycle-level
                    // timing below.
                    let fingerprint = match &mut self.data {
                        Some(data) => data.apply(op),
                        None => 0,
                    };
                    // Only the in-DRAM row operations are probabilistic:
                    // the fault plan rolls per row op, never for ordinary
                    // reads/writes.
                    let (op_index, will_fail) = match &mut self.fault {
                        Some(fault) if op.row_op_kind().is_some() => {
                            let index = fault.next_op_index;
                            fault.next_op_index += 1;
                            (index, fault.plan.misfires(index, 1))
                        }
                        _ => (0, false),
                    };
                    self.pending.insert(
                        id.0,
                        PendingOp {
                            token: OpToken(id),
                            op,
                            cost,
                            fingerprint,
                            waiter,
                            attempts: 1,
                            op_index,
                            will_fail,
                        },
                    );
                    return Ok(OpToken(id));
                }
                // The queue drains as the scheduler makes progress, so a
                // full queue only costs time, never correctness. Jump
                // straight to the next engine event instead of ticking
                // through the quiet gap. A device that can make no
                // progress at all (injected stuck clock) reports the
                // stall instead of spinning forever.
                Err(_) => {
                    if !self.step() {
                        return Err(CodicError::DeviceStalled);
                    }
                }
            }
        }
    }

    /// Submits one typed operation and returns a future resolving to its
    /// [`OpCompletion`] — the async twin of [`CodicDevice::submit`].
    ///
    /// The future is fulfilled by the clock driver
    /// ([`CodicDevice::step`] / [`CodicDevice::run_to_idle`] /
    /// [`DevicePool::drive`](crate::pool::DevicePool::drive)); completions
    /// delivered this way bypass the [`CodicDevice::take_completions`]
    /// buffer, arriving in the same completion order.
    ///
    /// # Errors
    ///
    /// Returns the policy error exactly as [`CodicDevice::submit`] does.
    pub fn submit_async(&mut self, op: CodicOp) -> Result<OpFuture, CodicError> {
        self.policy.check_safe_range(op)?;
        self.submit_async_prechecked(op)
    }

    /// [`CodicDevice::submit_async`] minus the safe-range check, for
    /// callers that already pre-flighted the whole batch (the pool's
    /// all-or-nothing routed path). The future's slot is claimed first
    /// and handed to `submit_inner`, so the waiter rides the pending
    /// insert instead of a second lookup; if submission fails the
    /// returned-early future drops and releases its slot.
    pub(crate) fn submit_async_prechecked(&mut self, op: CodicOp) -> Result<OpFuture, CodicError> {
        let (future, handle) = self.futures.claim();
        self.submit_inner(op, Some(handle))?;
        Ok(future)
    }

    /// [`CodicDevice::submit`] minus the safe-range check, for callers
    /// that already pre-flighted the whole batch.
    pub(crate) fn submit_prechecked(&mut self, op: CodicOp) -> Result<OpToken, CodicError> {
        self.submit_inner(op, None)
    }

    /// The controller request and accounted cost `op` maps to: a
    /// bank-occupying row operation, or an ordinary column access for the
    /// data path. Costs come from the construction-time memo.
    fn request_for(&self, op: CodicOp) -> (ReqKind, OpCost) {
        match op {
            CodicOp::Read { .. } => (ReqKind::Read, self.read_cost),
            CodicOp::Write { .. } => (ReqKind::Write, self.write_cost),
            _ => {
                let kind = op.row_op_kind().expect("non-data ops are row ops");
                let cost = self.row_costs[row_cost_idx(kind)];
                (
                    ReqKind::RowOp {
                        op: kind,
                        busy_cycles: cost.busy_cycles,
                    },
                    cost,
                )
            }
        }
    }

    /// Submits a whole batch, all-or-nothing: every operation is checked
    /// against the safe-range policy first, and nothing is enqueued unless
    /// all pass. Tokens are returned in input order.
    ///
    /// # Errors
    ///
    /// Returns the first policy error without enqueuing anything.
    pub fn submit_all(&mut self, ops: &[CodicOp]) -> Result<Vec<OpToken>, CodicError> {
        for op in ops {
            self.policy.check_safe_range(*op)?;
        }
        ops.iter().map(|&op| self.submit_inner(op, None)).collect()
    }

    /// Advances one memory cycle and harvests any completions.
    pub fn tick(&mut self) {
        self.mc.tick();
        self.harvest();
        self.pump_retries();
    }

    /// Advances one memory cycle through the *reference* driver
    /// ([`MemoryController::tick_reference`]: retire/refresh/schedule run
    /// unconditionally, no event-horizon consultation) and harvests —
    /// the oracle the engine-equivalence tests pin the event engine
    /// against.
    pub fn tick_reference(&mut self) {
        self.mc.tick_reference();
        self.harvest();
        self.pump_retries();
    }

    /// The cycle of the next event [`CodicDevice::step`] could act on —
    /// the earliest of the scheduler's event horizon and any misfire
    /// retry coming due — or `u64::MAX` when there is none (idle, or
    /// wedged at an injected clock ceiling). `u64::MAX` guarantees
    /// `step()` would be a no-op returning `false`, which is what lets
    /// [`DevicePool::step`](crate::pool::DevicePool::step) and
    /// [`DevicePool::drive`](crate::pool::DevicePool::drive) skip this
    /// shard entirely instead of visiting it every iteration.
    #[must_use]
    pub fn next_event_cycle(&self) -> u64 {
        let ceiling = self.mc.clock_fault();
        let mut next = u64::MAX;
        if !self.mc.is_idle() {
            let event = self.mc.next_event_cycle();
            if ceiling.is_none_or(|c| event <= c) {
                next = event;
            }
        }
        if let Some(fault) = &self.fault {
            if let Some(due) = fault.retries.iter().map(|r| r.not_before).min() {
                if ceiling.is_none_or(|c| due <= c) {
                    next = next.min(due);
                }
            }
        }
        next
    }

    /// The clock-driver step: advances the engine to its next event (at
    /// most one command issues or retires), harvests completions, and
    /// resolves any fulfilled [`OpFuture`]s. Returns `false` when the
    /// device was already idle (no event to advance to).
    pub fn step(&mut self) -> bool {
        if !self.mc.is_idle() && self.mc.step_event() {
            self.harvest();
            self.pump_retries();
            return true;
        }
        // The engine is out of events (idle, or wedged at an injected
        // clock ceiling): misfires waiting out their backoff are the only
        // remaining source of progress.
        self.advance_to_next_retry()
    }

    /// Runs until every submitted operation completed; returns the cycle
    /// the last one finished (or the current cycle when already idle).
    ///
    /// Event-driven: the embedded controller jumps from event to event
    /// (bit-identical to ticking every cycle), and every outstanding
    /// [`OpFuture`] is resolved on the way.
    pub fn run_to_idle(&mut self) -> u64 {
        let mut last = self.mc.run_to_idle();
        self.harvest();
        // Misfired operations re-enter the scheduler once their backoff
        // elapses; keep draining until no retry can make progress.
        while self.advance_to_next_retry() {
            last = last.max(self.mc.run_to_idle());
            self.harvest();
        }
        debug_assert!(
            self.pending.is_empty() || self.mc.clock_stalled(),
            "an idle device has no outstanding operations"
        );
        last
    }

    /// Removes and returns all completions harvested so far.
    pub fn take_completions(&mut self) -> Vec<OpCompletion> {
        self.harvest();
        std::mem::take(&mut self.ready)
    }

    /// Submits `ops`, runs to idle, and returns the typed batch outcome.
    ///
    /// The outcome covers exactly this batch: completions of operations
    /// submitted earlier through the token API stay buffered for their
    /// own [`CodicDevice::take_completions`] call.
    ///
    /// # Errors
    ///
    /// Returns the first policy error without enqueuing anything.
    pub fn execute_all(&mut self, ops: &[CodicOp]) -> Result<BatchOutcome, CodicError> {
        let tokens: std::collections::HashSet<OpToken> =
            self.submit_all(ops)?.into_iter().collect();
        self.run_to_idle();
        let (completions, earlier): (Vec<_>, Vec<_>) = self
            .take_completions()
            .into_iter()
            .partition(|c| tokens.contains(&c.token));
        self.ready = earlier;
        let finish_cycle = completions
            .iter()
            .map(|c| c.finish_cycle)
            .max()
            .unwrap_or_else(|| self.mc.now());
        let energy_nj = completions.iter().map(|c| c.cost.energy_nj).sum();
        Ok(BatchOutcome {
            finish_cycle,
            finish_ns: self.mc.timing().ns(finish_cycle),
            energy_nj,
            completions,
        })
    }

    /// Plans `mechanism` over `region` and executes the resulting command
    /// stream — the one service entry point all three use cases share.
    ///
    /// # Errors
    ///
    /// Returns the first policy error without enqueuing anything.
    pub fn run_mechanism(
        &mut self,
        mechanism: &dyn InDramMechanism,
        region: RowRegion,
    ) -> Result<BatchOutcome, CodicError> {
        self.execute_all(&mechanism.plan(region))
    }

    /// Sweeps `proto` over *every* row of the module — the full-module
    /// workload (cold-boot destruction), streamed through the shared
    /// event-driven engine: each row is enqueued as a row operation on the
    /// embedded FR-FCFS controller, which jumps from event to event, so
    /// the sweep pays per *command* rather than per cycle while the rank
    /// tRRD/tFAW windows and per-bank occupancy are enforced by exactly
    /// the scheduler every other operation uses (no bespoke sweep math).
    ///
    /// The report is scoped to the sweep: `finish_cycle` is the duration
    /// from sweep start, `stats` the command-count delta.
    ///
    /// # Errors
    ///
    /// Returns the policy error when a destructive `proto` is not allowed
    /// over the full module range, and
    /// [`CodicError::NotARowOperation`] when `proto` is an ordinary data
    /// access.
    pub fn sweep_all_rows(&mut self, proto: CodicOp) -> Result<SweepReport, CodicError> {
        let geometry = *self.mc.geometry();
        if proto.is_data_access() {
            return Err(CodicError::NotARowOperation { op: proto });
        }
        // The sweep covers [0, total_bytes): checking the first and last
        // row covers the whole contiguous range — and runs before any
        // register programming, so a rejected sweep leaves no trace.
        self.policy.check_safe_range(proto.with_row_addr(0))?;
        self.policy.check_safe_range(
            proto.with_row_addr(geometry.total_bytes() - DramGeometry::ROW_BYTES),
        )?;
        self.install_for(proto);
        let kind = proto.row_op_kind().expect("data accesses rejected above");
        let cost = self.row_costs[row_cost_idx(kind)];
        let request_at = |row: u64| {
            MemRequest::new(
                row * DramGeometry::ROW_BYTES,
                ReqKind::RowOp {
                    op: kind,
                    busy_cycles: cost.busy_cycles,
                },
            )
        };
        let start_cycle = self.mc.now();
        let stats_before = *self.mc.stats();
        let rows = geometry.total_rows();
        // Consecutive row addresses rotate over the banks, so the queue
        // keeps every bank busy; refills jump the engine one event at a
        // time when the 64-deep row-op queue is full.
        let mut pushed = 0u64;
        while pushed < rows {
            match self.mc.push(request_at(pushed)) {
                Ok(_) => pushed += 1,
                Err(_) => {
                    self.step();
                }
            }
        }
        let finish = self.run_to_idle();
        Ok(SweepReport {
            rows,
            finish_cycle: finish - start_cycle,
            stats: self.mc.stats().since(&stats_before),
            energy_nj: cost.energy_nj * rows as f64,
        })
    }

    /// Programs the variant `op` names, if any and not already installed.
    /// Reprogramming is an MRS barrier: JEDEC requires all banks idle for
    /// a mode-register write, so the device drains first and every queued
    /// operation completes under the registers it was issued with.
    fn install_for(&mut self, op: CodicOp) {
        if let Some(variant) = op.variant() {
            if self.policy.installed() != Some(variant) {
                // Backoff-parked retries count as queued work: they must
                // re-issue (and complete) under the registers they were
                // submitted against before the MRS reprogram.
                if !self.mc.is_idle() || self.has_retries() {
                    self.run_to_idle();
                }
                self.policy.install(variant);
                // The mode registers changed: every memoized
                // authorization decision is stale.
                self.auth_memo = None;
            }
        }
    }

    /// True while misfired operations are waiting out a retry backoff.
    fn has_retries(&self) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|fault| !fault.retries.is_empty())
    }

    /// Re-issues every retry whose backoff has elapsed, oldest first;
    /// returns how many entered the scheduler. A fresh misfire roll is
    /// made per attempt.
    fn pump_retries(&mut self) -> usize {
        if !self.has_retries() {
            return 0;
        }
        let Some(mut fault) = self.fault.take() else {
            return 0;
        };
        let now = self.mc.now();
        let mut issued = 0;
        let mut i = 0;
        while i < fault.retries.len() {
            if fault.retries[i].not_before > now {
                i += 1;
                continue;
            }
            let (kind, _) = self.request_for(fault.retries[i].pending.op);
            let request = MemRequest::new(fault.retries[i].pending.op.row_addr(), kind);
            match self.mc.push(request) {
                Ok(id) => {
                    let mut p = fault.retries.remove(i).pending;
                    p.attempts += 1;
                    p.will_fail = fault.plan.misfires(p.op_index, p.attempts);
                    fault.stats.retries += 1;
                    self.pending.insert(id.0, p);
                    issued += 1;
                }
                // No queue slot at this event; a later pump re-tries.
                Err(_) => i += 1,
            }
        }
        self.fault = Some(fault);
        issued
    }

    /// When the engine itself is out of events, jumps the clock to the
    /// earliest retry due time and re-issues what came due. Returns
    /// `false` when there is nothing to do (no retries, or none can ever
    /// issue — e.g. due beyond an injected clock ceiling, or no free
    /// queue slot on a wedged scheduler).
    fn advance_to_next_retry(&mut self) -> bool {
        let due = match &self.fault {
            Some(fault) => match fault.retries.iter().map(|r| r.not_before).min() {
                Some(due) => due,
                None => return false,
            },
            None => return false,
        };
        if self.mc.clock_fault().is_some_and(|ceiling| due > ceiling) {
            return false;
        }
        if due > self.mc.now() {
            self.mc.advance_to(due);
            self.harvest();
        }
        self.pump_retries() > 0
    }

    fn harvest(&mut self) {
        // Disjoint field borrows: the controller drains its buffer in
        // place (capacity retained — no allocation) while the pending
        // window and arena deliver each completion.
        let CodicDevice {
            mc,
            pending,
            futures,
            ready,
            fault,
            ..
        } = self;
        match fault {
            // The fault-free fast path: one `match` on entry, zero cost
            // per completion.
            None => mc.drain_completions(|c| {
                if let Some(p) = pending.remove(c.id.0) {
                    let completion = OpCompletion {
                        token: p.token,
                        op: p.op,
                        finish_cycle: c.finish_cycle,
                        cost: p.cost,
                        outcome: OpOutcome::Ok,
                        attempts: p.attempts,
                        fingerprint: p.fingerprint,
                    };
                    // Async submissions resolve their future (in
                    // completion order); synchronous ones land in the
                    // drainable buffer.
                    match p.waiter {
                        Some(handle) => futures.fulfil(handle, completion),
                        None => ready.push(completion),
                    }
                }
            }),
            Some(fault) => mc.drain_completions(|c| {
                if let Some(p) = pending.remove(c.id.0) {
                    // A misfire with attempts left parks for its backoff
                    // instead of completing; the submitter's token and
                    // future ride along to the re-issue.
                    if p.will_fail && p.attempts < fault.retry.max_attempts {
                        let not_before = c.finish_cycle + fault.retry.backoff_for(p.attempts);
                        fault.retries.push(Retry {
                            pending: p,
                            not_before,
                        });
                        return;
                    }
                    let outcome = if p.will_fail {
                        fault.stats.failed += 1;
                        OpOutcome::Failed {
                            cause: FaultCause::Misfire,
                        }
                    } else {
                        fault.stats.ok += 1;
                        OpOutcome::Ok
                    };
                    let completion = OpCompletion {
                        token: p.token,
                        op: p.op,
                        finish_cycle: c.finish_cycle,
                        cost: p.cost,
                        outcome,
                        attempts: p.attempts,
                        fingerprint: p.fingerprint,
                    };
                    match p.waiter {
                        Some(handle) => futures.fulfil(handle, completion),
                        None => ready.push(completion),
                    }
                }
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::VariantId;

    fn device() -> CodicDevice {
        let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
            .with_refresh(false);
        CodicDevice::new(config)
    }

    #[test]
    fn submit_programs_registers_and_completes_with_cost() {
        let mut d = device();
        let token = d.submit(CodicOp::command(VariantId::Sig, 0)).unwrap();
        assert_eq!(d.controller().installed(), Some(VariantId::Sig));
        d.run_to_idle();
        let done = d.take_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, token);
        assert_eq!(done[0].op.variant(), Some(VariantId::Sig));
        assert_eq!(done[0].cost.busy_cycles, d.timing().t_rc);
        assert!(done[0].cost.energy_nj > 17.0);
        assert_eq!(d.stats().row_ops, 1);
    }

    #[test]
    fn rejected_ops_never_reach_the_command_bus() {
        let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
            .with_safe_range(0..8192)
            .with_refresh(false);
        let mut d = CodicDevice::new(config);
        let err = d
            .submit(CodicOp::command(VariantId::DetZero, 1 << 20))
            .unwrap_err();
        assert!(matches!(err, CodicError::AddressOutOfRange { .. }));
        assert!(d.is_idle());
        assert_eq!(d.stats().row_ops, 0);
        assert!(d.take_completions().is_empty());
        // The rejection happened before any register programming.
        assert_eq!(d.controller().installed(), None);
        assert_eq!(d.controller().registers().mrs_commands(), 0);
    }

    #[test]
    fn submit_all_is_all_or_nothing() {
        let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
            .with_safe_range(0..8192)
            .with_refresh(false);
        let mut d = CodicDevice::new(config);
        let ops = [
            CodicOp::command(VariantId::DetZero, 0),
            CodicOp::command(VariantId::DetZero, 1 << 20), // out of range
        ];
        assert!(d.submit_all(&ops).is_err());
        assert_eq!(d.stats().row_ops, 0, "nothing was enqueued");
        assert!(d.controller().issued().is_empty());
    }

    #[test]
    fn batch_execution_reports_cycles_and_energy() {
        let mut d = device();
        let ops: Vec<CodicOp> = (0..16)
            .map(|i| CodicOp::command(VariantId::DetZero, i * DramGeometry::ROW_BYTES))
            .collect();
        let outcome = d.execute_all(&ops).unwrap();
        assert_eq!(outcome.ops(), 16);
        assert!(outcome.finish_cycle > 0);
        assert!((outcome.finish_ns - d.timing().ns(outcome.finish_cycle)).abs() < 1e-9);
        let per_op = d.energy_model().act_pre_nj();
        assert!((outcome.energy_nj - 16.0 * per_op).abs() < 1e-6);
    }

    #[test]
    fn queue_overflow_is_absorbed_by_ticking() {
        let mut d = device();
        // Far more ops than the 64-entry row-op queue.
        let ops: Vec<CodicOp> = (0..200)
            .map(|i| CodicOp::command(VariantId::DetZero, i * DramGeometry::ROW_BYTES))
            .collect();
        let outcome = d.execute_all(&ops).unwrap();
        assert_eq!(outcome.ops(), 200);
        assert_eq!(d.stats().row_ops, 200);
        // Long-running services stay bounded: the controller-side log does
        // not grow with traffic (completions are the audit trail).
        assert!(d.controller().issued().is_empty());
    }

    #[test]
    fn sweep_matches_the_cycle_level_rate_bound() {
        let mut d = device();
        let report = d
            .sweep_all_rows(CodicOp::command(VariantId::DetZero, 0))
            .unwrap();
        let g = d.geometry();
        assert_eq!(report.rows, g.total_rows());
        assert_eq!(report.stats.row_ops, report.rows);
        // Steady state is tFAW-bound: 4 ops per tFAW.
        let per_op = report.finish_cycle as f64 / report.rows as f64;
        let bound = f64::from(d.timing().t_faw) / 4.0;
        assert!((per_op - bound).abs() < 2.0, "per-op {per_op} vs {bound}");
    }

    #[test]
    fn sweep_requires_module_wide_destructive_authority() {
        let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
            .with_safe_range(0..8192);
        let mut d = CodicDevice::new(config);
        assert!(matches!(
            d.sweep_all_rows(CodicOp::command(VariantId::DetZero, 0)),
            Err(CodicError::AddressOutOfRange { .. })
        ));
        // Non-destructive sweeps are allowed anywhere.
        assert!(d
            .sweep_all_rows(CodicOp::command(VariantId::Activate, 0))
            .is_ok());
    }

    #[test]
    fn reprogramming_is_an_mrs_barrier() {
        let mut d = device();
        d.submit(CodicOp::command(VariantId::Sig, 0)).unwrap();
        // Reprogramming to a new variant drains the queued Sig op first
        // (MRS needs idle banks), so it completed under Sig's registers.
        d.submit(CodicOp::command(VariantId::DetZero, 8192))
            .unwrap();
        assert_eq!(d.controller().installed(), Some(VariantId::DetZero));
        let drained = d.take_completions();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].op.variant(), Some(VariantId::Sig));
        d.run_to_idle();
        assert_eq!(d.take_completions().len(), 1);
    }

    #[test]
    fn reads_writes_and_row_ops_share_one_scheduler() {
        let mut d = device();
        let ops = [
            CodicOp::command(VariantId::DetZero, 0),
            CodicOp::read(8192),
            CodicOp::write(16384),
            CodicOp::read(16448),
        ];
        let outcome = d.execute_all(&ops).unwrap();
        assert_eq!(outcome.ops(), 4);
        assert_eq!(d.stats().row_ops, 1);
        assert_eq!(d.stats().reads, 2);
        assert_eq!(d.stats().writes, 1);
        let t = *d.timing();
        for c in &outcome.completions {
            match c.op {
                CodicOp::Read { .. } => {
                    assert_eq!(c.cost.busy_cycles, t.t_cl + t.t_bl);
                    assert_eq!(c.cost.activations, 0);
                    assert!((c.cost.energy_nj - d.energy_model().read_burst_nj()).abs() < 1e-12);
                }
                CodicOp::Write { .. } => {
                    assert_eq!(c.cost.busy_cycles, t.t_cwl + t.t_bl);
                    assert!((c.cost.energy_nj - d.energy_model().write_burst_nj()).abs() < 1e-12);
                }
                _ => assert_eq!(c.cost.busy_cycles, t.t_rc),
            }
        }
    }

    #[test]
    fn data_accesses_need_no_variant_and_ignore_the_safe_range() {
        let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
            .with_safe_range(0..8192)
            .with_refresh(false);
        let mut d = CodicDevice::new(config);
        // Plain traffic far outside the destructive safe range is fine —
        // it is not a destructive CODIC command.
        d.submit(CodicOp::read(1 << 20)).unwrap();
        d.submit(CodicOp::write(1 << 21)).unwrap();
        d.run_to_idle();
        assert_eq!(d.take_completions().len(), 2);
        assert_eq!(d.controller().installed(), None, "no MRS programming");
    }

    #[test]
    fn sweep_rejects_data_access_protos() {
        let mut d = device();
        assert!(matches!(
            d.sweep_all_rows(CodicOp::read(0)),
            Err(CodicError::NotARowOperation { .. })
        ));
        assert!(d.is_idle());
    }

    #[test]
    fn awaiting_a_future_needs_no_polling_loop() {
        use crate::executor::block_on;
        let mut d = device();
        let future = d.submit_async(CodicOp::command(VariantId::Sig, 0)).unwrap();
        assert!(!future.is_ready());
        // One call drives the engine to idle and resolves the future; the
        // await that follows never polls the device.
        d.run_to_idle();
        assert!(future.is_ready());
        let done = block_on(future);
        assert_eq!(done.op, CodicOp::command(VariantId::Sig, 0));
        assert_eq!(done.cost.busy_cycles, d.timing().t_rc);
        // Async completions bypass the polling buffer.
        assert!(d.take_completions().is_empty());
    }

    #[test]
    fn step_is_the_single_event_clock_driver() {
        let mut d = device();
        let future = d
            .submit_async(CodicOp::command(VariantId::DetZero, 0))
            .unwrap();
        let mut steps = 0;
        while d.step() {
            steps += 1;
            assert!(steps < 100, "one op takes a handful of events");
        }
        assert!(steps >= 2, "at least an issue and a retire event");
        assert!(future.is_ready());
        assert!(!d.step(), "idle device has no events");
    }

    #[test]
    fn compute_ops_need_an_enabled_compute_region() {
        let mut d = device();
        assert!(d.data_plane().is_none(), "compute is off by default");
        assert!(matches!(
            d.submit(CodicOp::MajAnd { row_addr: 0 }),
            Err(CodicError::NoComputeRegion)
        ));
        assert!(d.is_idle() && d.take_completions().is_empty());
    }

    #[test]
    fn compute_ops_are_timed_costed_and_value_checked() {
        use crate::data::row_fingerprint;
        let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
            .with_refresh(false)
            .with_compute_rows(16);
        let region = config.compute_range();
        let mut d = CodicDevice::new(config);
        let base = region.start;
        let row = DramGeometry::ROW_BYTES;
        let ops = [
            CodicOp::RowFill {
                row_addr: base,
                pattern: 0b1100,
            },
            CodicOp::RowFill {
                row_addr: base + row,
                pattern: 0b1010,
            },
            CodicOp::RowInit {
                row_addr: base + 2 * row,
                ones: false,
            },
            CodicOp::MajAnd { row_addr: base },
            CodicOp::Not {
                src_addr: base,
                dst_addr: base + 3 * row,
            },
        ];
        let outcome = d.execute_all(&ops).unwrap();
        assert_eq!(outcome.ops(), 5);
        let t = *d.timing();
        for c in &outcome.completions {
            match c.op {
                CodicOp::MajAnd { .. } => {
                    assert_eq!(c.cost.activations, 3);
                    assert!(c.cost.busy_cycles > t.t_rc, "charge sharing adds cycles");
                }
                CodicOp::Not { .. } => {
                    assert_eq!(c.cost.activations, 2);
                    assert_eq!(c.cost.busy_cycles, 2 * t.t_ras + t.t_rp);
                }
                _ => {}
            }
            // Every compute completion carries a fingerprint of its
            // destination row as of its own submission.
            assert_ne!(c.fingerprint, 0, "{:?}", c.op);
        }
        // Ops whose destination was never overwritten afterwards carry
        // the fingerprint the final plane still agrees with.
        for (i, addr) in [(3usize, base), (4, base + 3 * row)] {
            assert_eq!(
                outcome
                    .completions
                    .iter()
                    .find(|c| c.op == ops[i])
                    .unwrap()
                    .fingerprint,
                d.data_plane().unwrap().fingerprint(addr),
                "op {i}"
            );
        }
        // Value semantics: MAJ(1100, 1010, 0) = AND = 1000, NOT → !1000.
        let plane = d.data_plane().unwrap();
        assert_eq!(plane.row(base)[0], 0b1000);
        assert_eq!(plane.row(base + 3 * row)[0], !0b1000);
        let mut expected = [0u64; crate::data::WORDS_PER_ROW];
        expected.fill(!0b1000u64);
        assert_eq!(
            plane.fingerprint(base + 3 * row),
            row_fingerprint(&expected)
        );
        // Out-of-region compute destinations are rejected pre-bus.
        assert!(matches!(
            d.submit(CodicOp::RowInit {
                row_addr: 0,
                ones: true,
            }),
            Err(CodicError::ComputeOutsideRegion { .. })
        ));
    }

    #[test]
    fn non_compute_completions_carry_no_fingerprint() {
        let mut d = device();
        let outcome = d
            .execute_all(&[CodicOp::command(VariantId::DetZero, 0), CodicOp::read(64)])
            .unwrap();
        assert!(outcome.completions.iter().all(|c| c.fingerprint == 0));
    }

    #[test]
    fn execute_all_scopes_the_outcome_to_its_batch() {
        let mut d = device();
        let token = d.submit(CodicOp::command(VariantId::DetZero, 0)).unwrap();
        // A later batch must not absorb the earlier op's completion.
        let outcome = d
            .execute_all(&[CodicOp::command(VariantId::DetZero, 8192)])
            .unwrap();
        assert_eq!(outcome.ops(), 1);
        assert_eq!(outcome.completions[0].op.row_addr(), 8192);
        let earlier = d.take_completions();
        assert_eq!(earlier.len(), 1);
        assert_eq!(earlier[0].token, token);
    }
}
