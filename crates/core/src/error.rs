//! Error type for the CODIC substrate.

use std::error::Error;
use std::fmt;

use codic_circuit::ScheduleError;

use crate::ops::VariantId;

/// Errors produced by the CODIC substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodicError {
    /// A timing programmed into a mode register does not form a valid pulse.
    InvalidTiming {
        /// The underlying schedule validation error.
        source: ScheduleError,
    },
    /// A raw register value exceeds 10 bits or holds an invalid encoding.
    InvalidRegister {
        /// The rejected raw value.
        raw: u16,
    },
    /// A CODIC command was issued with no variant programmed.
    NoVariantInstalled,
    /// A CODIC command was issued while a different variant was programmed
    /// in the mode registers.
    WrongVariantInstalled {
        /// The variant currently programmed.
        installed: VariantId,
        /// The variant the command requires.
        requested: VariantId,
    },
    /// A destructive CODIC command targeted memory outside the safe range.
    AddressOutOfRange {
        /// The offending address.
        addr: u64,
        /// Safe range start (inclusive).
        start: u64,
        /// Safe range end (exclusive).
        end: u64,
    },
    /// A bulk-bitwise compute command was issued on a controller with no
    /// authorized compute region configured.
    NoComputeRegion,
    /// A bulk-bitwise compute command would overwrite a row outside the
    /// authorized compute region.
    ComputeOutsideRegion {
        /// The offending (written) row address.
        addr: u64,
        /// Compute region start (inclusive).
        start: u64,
        /// Compute region end (exclusive).
        end: u64,
    },
    /// An ordinary data access was handed to an API that only accepts
    /// bank-occupying row operations (e.g. a full-module row sweep).
    NotARowOperation {
        /// The rejected operation.
        op: crate::ops::CodicOp,
    },
    /// The device's clock is stuck (injected fault) and its queues are
    /// full, so the operation can never be accepted.
    DeviceStalled,
    /// Every shard of the pool is quarantined; there is nowhere to route
    /// the operation.
    NoHealthyShards,
}

impl fmt::Display for CodicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodicError::InvalidTiming { source } => {
                write!(f, "invalid mode-register timing: {source}")
            }
            CodicError::InvalidRegister { raw } => {
                write!(f, "invalid mode-register encoding {raw:#x}")
            }
            CodicError::NoVariantInstalled => {
                write!(f, "no CODIC variant installed in the mode registers")
            }
            CodicError::WrongVariantInstalled {
                installed,
                requested,
            } => write!(
                f,
                "CODIC command requires {requested} but {installed} is installed"
            ),
            CodicError::AddressOutOfRange { addr, start, end } => write!(
                f,
                "destructive CODIC command at {addr:#x} outside the safe range {start:#x}..{end:#x}"
            ),
            CodicError::NoComputeRegion => {
                write!(f, "bulk-bitwise compute command with no compute region configured")
            }
            CodicError::ComputeOutsideRegion { addr, start, end } => write!(
                f,
                "bulk-bitwise compute command writes {addr:#x} outside the compute region {start:#x}..{end:#x}"
            ),
            CodicError::NotARowOperation { op } => {
                write!(f, "{op:?} is a data access, not a row operation")
            }
            CodicError::DeviceStalled => {
                write!(f, "device clock is stuck and its queues are full")
            }
            CodicError::NoHealthyShards => {
                write!(f, "every shard of the pool is quarantined")
            }
        }
    }
}

impl Error for CodicError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CodicError::InvalidTiming { source } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = CodicError::AddressOutOfRange {
            addr: 0x3000,
            start: 0x1000,
            end: 0x2000,
        };
        let s = e.to_string();
        assert!(s.contains("0x3000") && s.contains("0x1000"));
        assert!(!CodicError::NoVariantInstalled.to_string().is_empty());
    }

    #[test]
    fn invalid_timing_exposes_source() {
        let e = CodicError::InvalidTiming {
            source: ScheduleError::OutOfWindow { time_ns: 30 },
        };
        assert!(e.source().is_some());
    }
}
