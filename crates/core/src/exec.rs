//! Data semantics: what a CODIC command does to the contents of a DRAM row.

use rand::Rng;

use crate::classify::OperationClass;

/// The transformation a CODIC command applies to a row's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataEffect {
    /// Contents preserved (activate, precharge).
    Preserve,
    /// Every bit becomes zero (CODIC-det zero).
    Zeros,
    /// Every bit becomes one (CODIC-det one).
    Ones,
    /// Every bit becomes a process-variation-dependent signature value:
    /// the old contents are destroyed (CODIC-sig after the follow-up
    /// activation, CODIC-sigsa directly).
    Signature,
    /// Contents are destroyed with no useful replacement defined
    /// (unclassified destructive variants).
    Scramble,
    /// Contents are replaced by a computed bitwise result; the value-level
    /// semantics live in the compute-region data plane
    /// (`codic_core::data`), not in this per-row effect model.
    Computed,
}

impl OperationClass {
    /// The data effect of commands in this class.
    #[must_use]
    pub fn data_effect(self) -> DataEffect {
        match self {
            OperationClass::ActivateLike | OperationClass::PrechargeLike | OperationClass::NoOp => {
                DataEffect::Preserve
            }
            OperationClass::DeterministicZero => DataEffect::Zeros,
            OperationClass::DeterministicOne => DataEffect::Ones,
            OperationClass::SignaturePreparation | OperationClass::SignatureAmplified => {
                DataEffect::Signature
            }
            OperationClass::BulkBitwise => DataEffect::Computed,
            OperationClass::Other => DataEffect::Scramble,
        }
    }
}

/// Applies `effect` to a row buffer. `signature_bits` supplies the
/// process-variation signature for [`DataEffect::Signature`]; it is drawn
/// per cell from the caller's chip model (see `codic-puf`), here
/// represented by a caller-provided generator.
pub fn apply_effect<R: Rng + ?Sized>(effect: DataEffect, row: &mut [u8], signature_rng: &mut R) {
    match effect {
        DataEffect::Preserve => {}
        DataEffect::Zeros => row.fill(0),
        DataEffect::Ones => row.fill(0xFF),
        // The per-row effect model cannot know a computed bitwise result
        // (that is the data plane's job); here it only models that the old
        // contents are gone.
        DataEffect::Signature | DataEffect::Scramble | DataEffect::Computed => {
            signature_rng.fill(row)
        }
    }
}

/// Whether the effect guarantees the previous contents are unrecoverable —
/// the property the cold-boot self-destruction mechanism needs (§5.2).
#[must_use]
pub fn destroys_contents(effect: DataEffect) -> bool {
    effect != DataEffect::Preserve
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn class_to_effect_mapping() {
        assert_eq!(
            OperationClass::ActivateLike.data_effect(),
            DataEffect::Preserve
        );
        assert_eq!(
            OperationClass::DeterministicZero.data_effect(),
            DataEffect::Zeros
        );
        assert_eq!(
            OperationClass::DeterministicOne.data_effect(),
            DataEffect::Ones
        );
        assert_eq!(
            OperationClass::SignaturePreparation.data_effect(),
            DataEffect::Signature
        );
    }

    #[test]
    fn zeros_and_ones_overwrite_everything() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut row = vec![0xA5u8; 64];
        apply_effect(DataEffect::Zeros, &mut row, &mut rng);
        assert!(row.iter().all(|&b| b == 0));
        apply_effect(DataEffect::Ones, &mut row, &mut rng);
        assert!(row.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn signature_replaces_contents() {
        let mut rng = SmallRng::seed_from_u64(2);
        let before = vec![0xA5u8; 256];
        let mut row = before.clone();
        apply_effect(DataEffect::Signature, &mut row, &mut rng);
        assert_ne!(row, before);
    }

    #[test]
    fn preserve_keeps_contents() {
        let mut rng = SmallRng::seed_from_u64(3);
        let before = vec![7u8; 32];
        let mut row = before.clone();
        apply_effect(DataEffect::Preserve, &mut row, &mut rng);
        assert_eq!(row, before);
    }

    #[test]
    fn destruction_property() {
        assert!(!destroys_contents(DataEffect::Preserve));
        assert!(destroys_contents(DataEffect::Zeros));
        assert!(destroys_contents(DataEffect::Signature));
    }
}
