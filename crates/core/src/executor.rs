//! Std-only completion futures for the device service path.
//!
//! The ROADMAP's async-executor item asks services to `await` operation
//! completions instead of polling
//! [`execute_all`](crate::device::CodicDevice::execute_all). This module
//! supplies the machinery with **no external runtime** (the build is
//! offline/vendored): an [`OpFuture`] is a plain [`std::future::Future`]
//! resolved by the engine's clock driver —
//! [`CodicDevice::step`](crate::device::CodicDevice::step) /
//! [`run_to_idle`](crate::device::CodicDevice::run_to_idle) or
//! [`DevicePool::drive`](crate::pool::DevicePool::drive) — and
//! [`block_on`] is a minimal thread-parking executor for synchronous
//! callers (examples, tests, trace-replay services).
//!
//! The contract: submitting through
//! [`submit_async`](crate::device::CodicDevice::submit_async) hands back a
//! future; driving the clock fulfils it (possibly from a rayon worker
//! thread — the slot is `Arc<Mutex>`-shared and wakes any registered
//! waker); awaiting it yields the same typed
//! [`OpCompletion`] the polling API returns,
//! in the same completion order.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

use crate::device::OpCompletion;

/// Shared state between an [`OpFuture`] and the device that fulfils it.
#[derive(Debug, Default)]
struct Slot {
    completion: Option<OpCompletion>,
    waker: Option<Waker>,
}

/// The device-side handle: fulfils the paired [`OpFuture`] exactly once.
#[derive(Debug)]
pub(crate) struct CompletionSlot(Arc<Mutex<Slot>>);

impl CompletionSlot {
    /// Stores the completion and wakes the awaiting task, if any.
    pub(crate) fn fulfil(self, completion: OpCompletion) {
        let mut slot = self.0.lock().expect("completion slot poisoned");
        slot.completion = Some(completion);
        if let Some(waker) = slot.waker.take() {
            waker.wake();
        }
    }
}

/// A future resolving to the typed [`OpCompletion`] of one submitted
/// operation.
///
/// Created by [`CodicDevice::submit_async`](crate::device::CodicDevice::submit_async)
/// or [`DevicePool::submit_all_async`](crate::pool::DevicePool::submit_all_async).
/// It is resolved by the clock driver, not by polling: `await` it (under
/// [`block_on`] or any executor) after — or while another thread is —
/// driving the engine.
#[derive(Debug)]
pub struct OpFuture {
    slot: Arc<Mutex<Slot>>,
}

impl OpFuture {
    /// Creates a connected future/fulfilment pair.
    pub(crate) fn pair() -> (OpFuture, CompletionSlot) {
        let slot = Arc::new(Mutex::new(Slot::default()));
        (OpFuture { slot: slot.clone() }, CompletionSlot(slot))
    }

    /// Whether the completion has already arrived (non-consuming peek).
    #[must_use]
    pub fn is_ready(&self) -> bool {
        self.slot
            .lock()
            .expect("completion slot poisoned")
            .completion
            .is_some()
    }
}

impl Future for OpFuture {
    type Output = OpCompletion;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<OpCompletion> {
        let mut slot = self.slot.lock().expect("completion slot poisoned");
        match slot.completion {
            Some(completion) => Poll::Ready(completion),
            None => {
                slot.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Wakes the blocked thread of [`block_on`].
struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives a future to completion on the current thread — the minimal
/// executor the offline/vendored build uses in place of an async runtime.
///
/// The thread parks between polls and is unparked by the future's waker,
/// so this is event-driven too: no spin/poll loop. A future that is never
/// fulfilled (e.g. an [`OpFuture`] whose device is never driven) blocks
/// forever, exactly like awaiting it under any other executor.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = Box::pin(future);
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{OpCost, OpToken};
    use crate::ops::{CodicOp, VariantId};

    fn completion(cycle: u64) -> OpCompletion {
        OpCompletion {
            token: OpToken::test_only(cycle),
            op: CodicOp::command(VariantId::Sig, 0),
            finish_cycle: cycle,
            cost: OpCost {
                busy_cycles: 1,
                activations: 1,
                energy_nj: 0.5,
            },
        }
    }

    #[test]
    fn fulfilled_future_resolves_immediately() {
        let (future, slot) = OpFuture::pair();
        assert!(!future.is_ready());
        slot.fulfil(completion(42));
        assert!(future.is_ready());
        let done = block_on(future);
        assert_eq!(done.finish_cycle, 42);
    }

    #[test]
    fn block_on_wakes_across_threads() {
        let (future, slot) = OpFuture::pair();
        let handle = std::thread::spawn(move || {
            // Let the main thread reach park() first in the common case;
            // correctness does not depend on the ordering.
            std::thread::yield_now();
            slot.fulfil(completion(7));
        });
        let done = block_on(future);
        handle.join().unwrap();
        assert_eq!(done.finish_cycle, 7);
    }

    #[test]
    fn block_on_runs_plain_async_blocks() {
        let value = block_on(async { 40 + 2 });
        assert_eq!(value, 42);
    }
}
