//! Std-only completion futures for the device service path, backed by a
//! preallocated slot arena.
//!
//! The ROADMAP's async-executor item asks services to `await` operation
//! completions instead of polling
//! [`execute_all`](crate::device::CodicDevice::execute_all). This module
//! supplies the machinery with **no external runtime** (the build is
//! offline/vendored): an [`OpFuture`] is a plain [`std::future::Future`]
//! resolved by the engine's clock driver —
//! [`CodicDevice::step`](crate::device::CodicDevice::step) /
//! [`run_to_idle`](crate::device::CodicDevice::run_to_idle) or
//! [`DevicePool::drive`](crate::pool::DevicePool::drive) — and
//! [`block_on`] is a minimal thread-parking executor for synchronous
//! callers (examples, tests, trace-replay services).
//!
//! # Allocation-free steady state
//!
//! Futures do not own a per-operation `Arc<Mutex>`. Each device owns one
//! `SlotArena` — a slab of completion slots recycled through a
//! freelist — and a future is just `(Arc<arena>, slot index, generation)`.
//! Submitting an operation claims a slot (recycling a freed one when
//! available), the clock driver fulfils it, and consuming or dropping
//! the future returns the slot to the freelist with its generation
//! bumped, so a stale handle can never observe a recycled slot. After
//! warm-up the async path allocates nothing per operation.
//!
//! The contract: submitting through
//! [`submit_async`](crate::device::CodicDevice::submit_async) hands back a
//! future; driving the clock fulfils it (possibly from a rayon worker
//! thread — the arena is mutex-guarded and wakes any registered waker);
//! awaiting it yields the same typed [`OpCompletion`] the polling API
//! returns, in the same completion order.
//!
//! # Example
//!
//! Submit asynchronously, drive the clock, and `await` the typed
//! completion — no tick loop and no poll loop:
//!
//! ```
//! use codic_core::device::{CodicDevice, DeviceConfig};
//! use codic_core::executor::block_on;
//! use codic_core::ops::{CodicOp, VariantId};
//! use codic_dram::{DramGeometry, TimingParams};
//!
//! let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
//!     .with_refresh(false);
//! let mut device = CodicDevice::new(config);
//!
//! let future = device.submit_async(CodicOp::command(VariantId::DetZero, 0)).unwrap();
//! assert!(!future.is_ready());
//! device.run_to_idle(); // the clock driver resolves the future
//! let completion = block_on(future);
//! assert_eq!(completion.op, CodicOp::command(VariantId::DetZero, 0));
//! assert!(completion.cost.energy_nj > 0.0);
//! ```
//!
//! Serving loops that must not block use the non-blocking drain instead:
//! [`OpFuture::try_take`] consumes the completion only once it has
//! arrived, so a connection handler can interleave submission, clock
//! driving, and completion streaming on one thread.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

use crate::device::OpCompletion;

/// One completion slot of the arena.
#[derive(Debug)]
struct ArenaSlot {
    /// Bumped every time the slot is returned to the freelist; a handle
    /// whose generation does not match is stale (its future was consumed
    /// or dropped) and is ignored.
    generation: u32,
    state: SlotState,
}

#[derive(Debug)]
enum SlotState {
    /// On the freelist.
    Vacant,
    /// Claimed by a submission; holds the awaiting task's waker once the
    /// future has been polled.
    Waiting(Option<Waker>),
    /// Fulfilled; the completion awaits its one consumer.
    Done(OpCompletion),
}

#[derive(Debug, Default)]
struct ArenaInner {
    slots: Vec<ArenaSlot>,
    free: Vec<u32>,
}

/// A device's preallocated pool of completion slots. Shared (via `Arc`)
/// between the device — which claims and fulfils slots — and the
/// [`OpFuture`]s that await them.
#[derive(Debug, Default)]
pub(crate) struct SlotArena {
    inner: Mutex<ArenaInner>,
}

/// The device-side handle to one claimed slot: a plain `Copy` index +
/// generation pair, stored in the device's pending table instead of a
/// per-operation allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SlotHandle {
    index: u32,
    generation: u32,
}

impl SlotArena {
    /// An arena with `capacity` slots pre-created (it still grows on
    /// demand if a burst claims more).
    pub(crate) fn with_capacity(capacity: usize) -> Arc<Self> {
        let mut inner = ArenaInner {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
        };
        for i in 0..capacity {
            inner.slots.push(ArenaSlot {
                generation: 0,
                state: SlotState::Vacant,
            });
            inner.free.push(i as u32);
        }
        Arc::new(SlotArena {
            inner: Mutex::new(inner),
        })
    }

    /// Claims a slot (recycling a freed one when available) and returns
    /// the connected future/handle pair.
    pub(crate) fn claim(self: &Arc<Self>) -> (OpFuture, SlotHandle) {
        let mut inner = self.inner.lock().expect("slot arena poisoned");
        let index = match inner.free.pop() {
            Some(index) => index,
            None => {
                inner.slots.push(ArenaSlot {
                    generation: 0,
                    state: SlotState::Vacant,
                });
                (inner.slots.len() - 1) as u32
            }
        };
        let slot = &mut inner.slots[index as usize];
        slot.state = SlotState::Waiting(None);
        let handle = SlotHandle {
            index,
            generation: slot.generation,
        };
        drop(inner);
        (
            OpFuture {
                arena: Arc::clone(self),
                handle,
                taken: false,
            },
            handle,
        )
    }

    /// Stores `completion` in the slot `handle` names and wakes the
    /// awaiting task, if any. A stale handle (its future was dropped
    /// before fulfilment) is ignored — matching the old per-op-slot
    /// behavior where the completion landed in a slot nobody could read.
    pub(crate) fn fulfil(&self, handle: SlotHandle, completion: OpCompletion) {
        let waker = {
            let mut inner = self.inner.lock().expect("slot arena poisoned");
            let slot = &mut inner.slots[handle.index as usize];
            if slot.generation != handle.generation {
                return;
            }
            match std::mem::replace(&mut slot.state, SlotState::Done(completion)) {
                SlotState::Waiting(waker) => waker,
                state => {
                    slot.state = state;
                    return;
                }
            }
        };
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    /// Returns `handle`'s slot to the freelist, invalidating the handle.
    fn release(&self, handle: SlotHandle) {
        let mut inner = self.inner.lock().expect("slot arena poisoned");
        let slot = &mut inner.slots[handle.index as usize];
        if slot.generation != handle.generation {
            return;
        }
        slot.generation = slot.generation.wrapping_add(1);
        slot.state = SlotState::Vacant;
        inner.free.push(handle.index);
    }
}

/// A future resolving to the typed [`OpCompletion`] of one submitted
/// operation.
///
/// Created by [`CodicDevice::submit_async`](crate::device::CodicDevice::submit_async)
/// or [`DevicePool::submit_all_async`](crate::pool::DevicePool::submit_all_async).
/// It is resolved by the clock driver, not by polling: `await` it (under
/// [`block_on`] or any executor) after — or while another thread is —
/// driving the engine. The future references a recycled arena slot, not
/// a per-operation allocation; consuming or dropping it frees the slot.
#[derive(Debug)]
pub struct OpFuture {
    arena: Arc<SlotArena>,
    handle: SlotHandle,
    taken: bool,
}

impl OpFuture {
    /// Whether the completion has already arrived (non-consuming peek).
    #[must_use]
    pub fn is_ready(&self) -> bool {
        if self.taken {
            return false;
        }
        let inner = self.arena.inner.lock().expect("slot arena poisoned");
        let slot = &inner.slots[self.handle.index as usize];
        slot.generation == self.handle.generation && matches!(slot.state, SlotState::Done(_))
    }

    /// Consumes the completion if it has already arrived, without
    /// blocking, registering a waker, or needing an executor — the
    /// serving-loop drain. Returns `None` while the operation is still in
    /// flight (and after the completion has been taken); the slot is
    /// recycled exactly as if the future had been awaited.
    pub fn try_take(&mut self) -> Option<OpCompletion> {
        if self.taken {
            return None;
        }
        let mut inner = self.arena.inner.lock().expect("slot arena poisoned");
        let slot = &mut inner.slots[self.handle.index as usize];
        if slot.generation != self.handle.generation || !matches!(slot.state, SlotState::Done(_)) {
            return None;
        }
        let SlotState::Done(completion) = std::mem::replace(&mut slot.state, SlotState::Vacant)
        else {
            unreachable!("state was just matched as Done");
        };
        // Inline release (the lock is already held): bump the generation
        // and return the slot to the freelist.
        slot.generation = slot.generation.wrapping_add(1);
        inner.free.push(self.handle.index);
        self.taken = true;
        Some(completion)
    }
}

impl Future for OpFuture {
    type Output = OpCompletion;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<OpCompletion> {
        let this = self.get_mut();
        assert!(!this.taken, "OpFuture polled after completion");
        let completion = {
            let mut inner = this.arena.inner.lock().expect("slot arena poisoned");
            let slot = &mut inner.slots[this.handle.index as usize];
            debug_assert_eq!(
                slot.generation, this.handle.generation,
                "live future references a recycled slot"
            );
            match &mut slot.state {
                SlotState::Done(completion) => *completion,
                SlotState::Waiting(waker) => {
                    *waker = Some(cx.waker().clone());
                    return Poll::Pending;
                }
                SlotState::Vacant => unreachable!("claimed slot cannot be vacant"),
            }
        };
        this.taken = true;
        this.arena.release(this.handle);
        Poll::Ready(completion)
    }
}

impl Drop for OpFuture {
    fn drop(&mut self) {
        if !self.taken {
            self.arena.release(self.handle);
        }
    }
}

/// Wakes the blocked thread of [`block_on`].
struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives a future to completion on the current thread — the minimal
/// executor the offline/vendored build uses in place of an async runtime.
///
/// The thread parks between polls and is unparked by the future's waker,
/// so this is event-driven too: no spin/poll loop. A future that is never
/// fulfilled (e.g. an [`OpFuture`] whose device is never driven) blocks
/// forever, exactly like awaiting it under any other executor.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = Box::pin(future);
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{OpCost, OpToken};
    use crate::fault::OpOutcome;
    use crate::ops::{CodicOp, VariantId};

    fn completion(cycle: u64) -> OpCompletion {
        OpCompletion {
            token: OpToken::test_only(cycle),
            op: CodicOp::command(VariantId::Sig, 0),
            finish_cycle: cycle,
            cost: OpCost {
                busy_cycles: 1,
                activations: 1,
                energy_nj: 0.5,
            },
            outcome: OpOutcome::Ok,
            attempts: 1,
            fingerprint: 0,
        }
    }

    #[test]
    fn fulfilled_future_resolves_immediately() {
        let arena = SlotArena::with_capacity(4);
        let (future, handle) = arena.claim();
        assert!(!future.is_ready());
        arena.fulfil(handle, completion(42));
        assert!(future.is_ready());
        let done = block_on(future);
        assert_eq!(done.finish_cycle, 42);
    }

    #[test]
    fn block_on_wakes_across_threads() {
        let arena = SlotArena::with_capacity(1);
        let (future, handle) = arena.claim();
        let fulfiller = Arc::clone(&arena);
        let handle_thread = std::thread::spawn(move || {
            // Let the main thread reach park() first in the common case;
            // correctness does not depend on the ordering.
            std::thread::yield_now();
            fulfiller.fulfil(handle, completion(7));
        });
        let done = block_on(future);
        handle_thread.join().unwrap();
        assert_eq!(done.finish_cycle, 7);
    }

    #[test]
    fn block_on_runs_plain_async_blocks() {
        let value = block_on(async { 40 + 2 });
        assert_eq!(value, 42);
    }

    #[test]
    fn slots_are_recycled_not_reallocated() {
        let arena = SlotArena::with_capacity(2);
        for round in 0..8u64 {
            let (future, handle) = arena.claim();
            arena.fulfil(handle, completion(round));
            assert_eq!(block_on(future).finish_cycle, round);
        }
        let inner = arena.inner.lock().unwrap();
        assert_eq!(inner.slots.len(), 2, "steady state claims no new slots");
        assert_eq!(inner.free.len(), 2, "all slots returned to the freelist");
    }

    #[test]
    fn dropped_future_frees_its_slot_and_discards_the_completion() {
        let arena = SlotArena::with_capacity(1);
        let (future, handle) = arena.claim();
        drop(future);
        // Fulfilment after the drop is a stale-generation no-op.
        arena.fulfil(handle, completion(9));
        // The slot is reusable and uncontaminated by the stale result.
        let (future, fresh) = arena.claim();
        assert!(!future.is_ready(), "recycled slot starts unfulfilled");
        arena.fulfil(fresh, completion(11));
        assert_eq!(block_on(future).finish_cycle, 11);
        let inner = arena.inner.lock().unwrap();
        assert_eq!(inner.slots.len(), 1, "one slot served every claim");
    }

    #[test]
    fn try_take_drains_without_blocking() {
        let arena = SlotArena::with_capacity(2);
        let (mut future, handle) = arena.claim();
        assert_eq!(future.try_take(), None, "in-flight op yields nothing");
        arena.fulfil(handle, completion(5));
        let done = future.try_take().expect("fulfilled op drains");
        assert_eq!(done.finish_cycle, 5);
        assert_eq!(future.try_take(), None, "a completion is taken once");
        assert!(!future.is_ready());
        // The slot was recycled: dropping the future must not double-free.
        drop(future);
        let inner = arena.inner.lock().unwrap();
        assert_eq!(inner.free.len(), 2, "slot returned to the freelist once");
    }

    #[test]
    fn arena_grows_past_capacity_when_a_burst_demands_it() {
        let arena = SlotArena::with_capacity(1);
        let (f1, h1) = arena.claim();
        let (f2, h2) = arena.claim();
        {
            let inner = arena.inner.lock().unwrap();
            assert_eq!(inner.slots.len(), 2, "the burst created a second slot");
            assert!(inner.free.is_empty());
        }
        arena.fulfil(h2, completion(2));
        arena.fulfil(h1, completion(1));
        assert_eq!(block_on(f1).finish_cycle, 1);
        assert_eq!(block_on(f2).finish_cycle, 2);
        let inner = arena.inner.lock().unwrap();
        assert_eq!(inner.free.len(), 2, "both slots returned to the freelist");
    }
}
