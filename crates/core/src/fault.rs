//! Deterministic fault injection for the CODIC service path.
//!
//! CODIC variants are only *probabilistically* reliable: the paper
//! classifies variants per chip under process variation, and real-chip
//! characterizations (PiDRAM's end-to-end evaluations, the
//! functionally-complete-logic DRAM studies) show in-DRAM operations
//! misfire on real modules. A serving pool therefore needs a way to
//! *rehearse* failure deterministically: [`FaultPlan`] is a seeded,
//! reproducible schedule of injected faults — off by default, zero cost
//! when disabled — that the device layer consults at submission time.
//!
//! Three fault classes are modelled:
//!
//! 1. **Transient op misfires** — a row operation executes (occupying
//!    the bank and spending its energy) but its result is wrong; the
//!    completion reports [`OpOutcome::Failed`] with
//!    [`FaultCause::Misfire`]. Whether a given `(op, attempt)` misfires
//!    is a pure function of the plan seed, so two runs with the same
//!    plan fail the same ops.
//! 2. **Stuck shards** — a device's clock stops advancing past a
//!    configured cycle; operations behind the stall can never finish and
//!    are failed with [`FaultCause::ClockStuck`] when the shard is
//!    quarantined.
//! 3. **Wire faults** — truncated/corrupt frames, exercised at the
//!    protocol layer (`codic_server::proto`), not here.
//!
//! [`RetryPolicy`] is the recovery half: a misfired operation is
//! re-issued up to `max_attempts` times with bounded, deterministic
//! backoff in DRAM cycles, and the completion carries the attempt count.
//!
//! Everything here is `std`-only and bit-stable across platforms: the
//! misfire decision uses a splitmix64-style mixer, not a stateful RNG,
//! so it is independent of submission interleaving across shards.

/// Why an operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultCause {
    /// The in-DRAM operation executed but misfired (transient; the
    /// retry layer may re-issue it).
    Misfire,
    /// The device clock stopped advancing; the operation can never
    /// finish on this shard.
    ClockStuck,
    /// The operation's shard was quarantined while it was pending; the
    /// op was abandoned without executing.
    Quarantined,
}

impl std::fmt::Display for FaultCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultCause::Misfire => write!(f, "misfire"),
            FaultCause::ClockStuck => write!(f, "clock stuck"),
            FaultCause::Quarantined => write!(f, "shard quarantined"),
        }
    }
}

/// The typed outcome of one completed operation. `Ok` is the only value
/// ever produced while fault injection is disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpOutcome {
    /// The operation executed and its result is trustworthy.
    Ok,
    /// The operation failed; `cause` says how.
    Failed {
        /// Why the operation failed.
        cause: FaultCause,
    },
}

impl OpOutcome {
    /// True for a successful outcome.
    #[must_use]
    pub fn is_ok(self) -> bool {
        matches!(self, OpOutcome::Ok)
    }

    /// True for a failed outcome.
    #[must_use]
    pub fn is_failed(self) -> bool {
        !self.is_ok()
    }

    /// The failure cause, if any.
    #[must_use]
    pub fn cause(self) -> Option<FaultCause> {
        match self {
            OpOutcome::Ok => None,
            OpOutcome::Failed { cause } => Some(cause),
        }
    }
}

/// The splitmix64 finalizer: a high-quality, platform-independent bit
/// mixer (no state, so the misfire decision is a pure function).
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A seeded, deterministic fault-injection schedule.
///
/// The plan is pool-level: [`FaultPlan::for_shard`] derives the
/// per-device plan (an independent seed per shard; the stuck clock is
/// kept only on its target shard). A plan installed directly on a
/// [`CodicDevice`](crate::device::CodicDevice) applies as given.
///
/// All rates are zero by default, so `FaultPlan::new(seed)` alone
/// injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the misfire schedule.
    pub seed: u64,
    /// Misfire probability of each row-op attempt, in parts per 65536
    /// (0 = never, 65536 = always). Ordinary reads/writes never misfire:
    /// only the in-DRAM row operations are probabilistic.
    pub misfire_per_64k: u32,
    /// Clock ceiling: the device stops advancing past this cycle.
    pub stuck_at_cycle: Option<u64>,
    /// When deriving per-shard plans, the shard the stuck clock applies
    /// to (`None` = the ceiling applies wherever the plan is installed).
    pub stuck_shard: Option<u16>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            misfire_per_64k: 0,
            stuck_at_cycle: None,
            stuck_shard: None,
        }
    }

    /// Sets the per-attempt misfire rate in parts per 65536.
    #[must_use]
    pub fn with_misfires(mut self, per_64k: u32) -> Self {
        self.misfire_per_64k = per_64k;
        self
    }

    /// Freezes the clock of `shard` at `cycle` (when the plan is later
    /// split per shard with [`FaultPlan::for_shard`]).
    #[must_use]
    pub fn with_stuck_shard(mut self, shard: u16, cycle: u64) -> Self {
        self.stuck_at_cycle = Some(cycle);
        self.stuck_shard = Some(shard);
        self
    }

    /// Freezes the clock of whatever device this plan is installed on.
    #[must_use]
    pub fn with_stuck_clock(mut self, cycle: u64) -> Self {
        self.stuck_at_cycle = Some(cycle);
        self.stuck_shard = None;
        self
    }

    /// The per-device plan of shard `shard`: an independently seeded
    /// misfire schedule, the stuck clock retained only on its target.
    #[must_use]
    pub fn for_shard(self, shard: usize) -> FaultPlan {
        let keep_stuck = match self.stuck_shard {
            Some(target) => usize::from(target) == shard,
            None => true,
        };
        FaultPlan {
            seed: mix64(self.seed ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            misfire_per_64k: self.misfire_per_64k,
            stuck_at_cycle: self.stuck_at_cycle.filter(|_| keep_stuck),
            stuck_shard: None,
        }
    }

    /// True when attempt `attempt` (1-based) of the device's
    /// `op_index`-th row operation misfires. Pure in `(seed, op_index,
    /// attempt)`: independent of wall clock, thread count, and the
    /// traffic on other shards.
    #[must_use]
    pub fn misfires(&self, op_index: u64, attempt: u8) -> bool {
        if self.misfire_per_64k == 0 {
            return false;
        }
        let roll = mix64(
            self.seed
                ^ op_index.wrapping_mul(0xd134_2543_de82_ef95)
                ^ u64::from(attempt).wrapping_mul(0x2545_f491_4f6c_dd1d),
        );
        (roll & 0xffff) < u64::from(self.misfire_per_64k)
    }
}

/// Bounded, deterministic retry of misfired operations.
///
/// `max_attempts = 1` (the default) disables retry: the first misfire is
/// final. Backoff is measured in DRAM cycles — attempt `n` is re-issued
/// no earlier than `backoff_cycles << (n - 1)` cycles after the misfire,
/// capped at `backoff_cap_cycles` — so the recovery schedule is part of
/// the deterministic timeline, not wall-clock dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total issue attempts per operation (≥ 1; 1 = no retry).
    pub max_attempts: u8,
    /// Base backoff before the first re-issue, in DRAM cycles.
    pub backoff_cycles: u64,
    /// Upper bound of the exponential backoff, in DRAM cycles.
    pub backoff_cap_cycles: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_cycles: 64,
            backoff_cap_cycles: 4096,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` total issues with the default
    /// backoff curve.
    #[must_use]
    pub fn attempts(max_attempts: u8) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Overrides the backoff curve.
    #[must_use]
    pub fn with_backoff(mut self, base_cycles: u64, cap_cycles: u64) -> Self {
        self.backoff_cycles = base_cycles;
        self.backoff_cap_cycles = cap_cycles.max(base_cycles);
        self
    }

    /// The backoff after failed attempt `attempt` (1-based):
    /// `min(base << (attempt - 1), cap)`.
    #[must_use]
    pub fn backoff_for(&self, attempt: u8) -> u64 {
        // `checked_shl` only rejects shifts ≥ 64; bits shifted out of the
        // top would silently wrap the backoff to a *shorter* delay, so
        // saturate whenever the doubling can no longer be represented.
        let shift = u32::from(attempt.saturating_sub(1));
        let shifted = match self.backoff_cycles.checked_shl(shift) {
            Some(v) if v >> shift == self.backoff_cycles => v,
            _ => u64::MAX,
        };
        shifted.min(self.backoff_cap_cycles)
    }
}

/// Per-device fault observations, the input to the pool's health policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations delivered with [`OpOutcome::Ok`].
    pub ok: u64,
    /// Operations delivered with [`OpOutcome::Failed`].
    pub failed: u64,
    /// Re-issues scheduled by the retry layer.
    pub retries: u64,
}

impl FaultStats {
    /// Delivered completions (successes + final failures).
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.ok + self.failed
    }

    /// The delivered failure rate in parts per 65536 (0 when nothing
    /// was delivered yet).
    #[must_use]
    pub fn failed_per_64k(&self) -> u64 {
        (self.failed * 65536)
            .checked_div(self.delivered())
            .unwrap_or(0)
    }
}

/// When a pool quarantines a shard on its own: a shard is quarantined
/// once it has delivered at least `min_ops` completions and its failure
/// rate crosses `max_failed_per_64k` (or its clock stalls, regardless of
/// rate). Checked only at batch/flush boundaries
/// ([`DevicePool::check_health`](crate::pool::DevicePool::check_health)),
/// never on the per-op hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Failure-rate threshold in parts per 65536.
    pub max_failed_per_64k: u64,
    /// Minimum delivered completions before the rate is judged.
    pub min_ops: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        // 25% delivered failures over at least 64 ops: far beyond any
        // retryable transient rate, so healthy shards under a light
        // misfire plan are never quarantined by accident.
        HealthPolicy {
            max_failed_per_64k: 16384,
            min_ops: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_misfires() {
        let plan = FaultPlan::new(42);
        assert!((0..10_000).all(|i| !plan.misfires(i, 1)));
    }

    #[test]
    fn misfires_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::new(7).with_misfires(6554); // ~10%
        let a: Vec<bool> = (0..4096).map(|i| plan.misfires(i, 1)).collect();
        let b: Vec<bool> = (0..4096).map(|i| plan.misfires(i, 1)).collect();
        assert_eq!(a, b, "same plan ⇒ same schedule");
        let other = FaultPlan::new(8).with_misfires(6554);
        let c: Vec<bool> = (0..4096).map(|i| other.misfires(i, 1)).collect();
        assert_ne!(a, c, "seed matters");
        let hits = a.iter().filter(|&&m| m).count();
        assert!(
            (200..=700).contains(&hits),
            "~10% of 4096 ops misfire, got {hits}"
        );
    }

    #[test]
    fn attempts_roll_independently() {
        let plan = FaultPlan::new(3).with_misfires(32768); // 50%
        let differs = (0..256).any(|i| plan.misfires(i, 1) != plan.misfires(i, 2));
        assert!(differs, "retry attempts are fresh rolls, not replays");
    }

    #[test]
    fn per_shard_plans_are_independent_but_derived() {
        let plan = FaultPlan::new(11).with_misfires(6554);
        let s0 = plan.for_shard(0);
        let s1 = plan.for_shard(1);
        assert_ne!(s0.seed, s1.seed);
        assert_eq!(s0, plan.for_shard(0), "derivation is pure");
        let a: Vec<bool> = (0..1024).map(|i| s0.misfires(i, 1)).collect();
        let b: Vec<bool> = (0..1024).map(|i| s1.misfires(i, 1)).collect();
        assert_ne!(a, b, "shards fail independently");
    }

    #[test]
    fn stuck_clock_lands_only_on_its_shard() {
        let plan = FaultPlan::new(0).with_stuck_shard(2, 5_000);
        assert_eq!(plan.for_shard(2).stuck_at_cycle, Some(5_000));
        assert_eq!(plan.for_shard(0).stuck_at_cycle, None);
        assert_eq!(plan.for_shard(3).stuck_at_cycle, None);
        // A device-local plan keeps its ceiling as given.
        let local = FaultPlan::new(0).with_stuck_clock(9);
        assert_eq!(local.stuck_at_cycle, Some(9));
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let retry = RetryPolicy::attempts(6).with_backoff(64, 1000);
        assert_eq!(retry.backoff_for(1), 64);
        assert_eq!(retry.backoff_for(2), 128);
        assert_eq!(retry.backoff_for(3), 256);
        assert_eq!(retry.backoff_for(5), 1000, "capped");
        assert_eq!(retry.backoff_for(64), 1000, "shift overflow saturates");
        assert_eq!(RetryPolicy::attempts(0).max_attempts, 1, "floor of one");
    }

    #[test]
    fn outcome_accessors_agree() {
        assert!(OpOutcome::Ok.is_ok());
        assert_eq!(OpOutcome::Ok.cause(), None);
        let failed = OpOutcome::Failed {
            cause: FaultCause::Misfire,
        };
        assert!(failed.is_failed());
        assert_eq!(failed.cause(), Some(FaultCause::Misfire));
    }

    #[test]
    fn fault_stats_rate_arithmetic() {
        let stats = FaultStats {
            ok: 96,
            failed: 32,
            retries: 5,
        };
        assert_eq!(stats.delivered(), 128);
        assert_eq!(stats.failed_per_64k(), 16384); // 25%
        assert_eq!(FaultStats::default().failed_per_64k(), 0);
    }
}
