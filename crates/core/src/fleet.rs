//! A shared device fleet multiplexing many tenants over one
//! [`DevicePool`].
//!
//! Every serving layer before this one gave each session a private pool.
//! [`SharedFleet`] is the multi-tenant substrate CODIC actually targets:
//! one sharded fleet of devices, carved into fixed-size *slots* of
//! contiguous shards, with each tenant holding an exclusive
//! [`ShardLease`] over its slot. Three properties define the design:
//!
//! - **Isolation by construction.** A tenant's lease routes, quarantines,
//!   and drives clocks with the *same* [`ShardLease`] machinery a private
//!   [`DevicePool`] uses over its own shards, against devices freshly
//!   rebuilt at acquisition with lease-local fault seeding. A tenant's
//!   demultiplexed event stream — sequence numbers, lease-local shard
//!   indices, finish cycles, energy bits, fingerprints, typed failures —
//!   is therefore bit-identical to a solo run on an equivalent private
//!   pool, regardless of what other tenants do. The test battery in
//!   `tests/fleet_isolation.rs` pins this, not just claims it.
//! - **Fair admission.** Queued batches are admitted by deficit
//!   round-robin over the slots: each rotation visit grants a tenant
//!   `weight × quantum` ops of credit, batches are admitted while the
//!   front batch's cost fits the deficit, and an idle tenant forfeits its
//!   credit. With `quantum` at least the largest batch cost, every
//!   pending tenant is served within one full rotation — the starvation
//!   bound `tests/fleet_fairness.rs` asserts.
//! - **Quota backpressure.** Each tenant's outstanding-op quota is
//!   enforced the way a private serving engine bounds its own window:
//!   after admission, the tenant's *own* lease is stepped until its
//!   outstanding count is back under quota. Fairness and quotas shape
//!   host-side admission order only; they never touch device timing.
//!
//! [`FleetHandle`] wraps the fleet in `Arc<Mutex<…>>` for the server's
//! one-thread-per-session model: sessions submit batches, the lock
//! holder pumps the round-robin until its own ticket resolves (doing
//! other tenants' admissions in fair order on the way), and each
//! tenant's events stay in per-tenant buffers until collected.
//!
//! # Example
//!
//! Two tenants on one fleet; each stream demuxes independently:
//!
//! ```
//! use codic_core::device::DeviceConfig;
//! use codic_core::fleet::{FleetConfig, FleetHandle};
//! use codic_core::ops::CodicOp;
//! use codic_dram::{DramGeometry, TimingParams};
//!
//! let device = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
//!     .with_refresh(false);
//! let fleet = FleetHandle::new(FleetConfig::new(2, 2, device));
//!
//! let a = fleet.acquire_with(1, 64).unwrap();
//! let b = fleet.acquire_with(1, 64).unwrap();
//! let ops: Vec<CodicOp> = (0..32).map(|i| CodicOp::read(i * 8192)).collect();
//!
//! let (receipt, _) = fleet.submit(a, &ops).unwrap();
//! assert_eq!(receipt.seq_base, 0);
//! let (_, events_a) = fleet.flush(a);
//! let (_, events_b) = {
//!     fleet.submit(b, &ops).unwrap();
//!     fleet.flush(b)
//! };
//! // Same ops, same quota, disjoint slots: bit-identical streams.
//! assert_eq!(events_a.len(), 32);
//! assert_eq!(events_a, events_b);
//! fleet.release(a);
//! fleet.release(b);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::device::{DeviceConfig, OpCompletion};
use crate::error::CodicError;
use crate::fault::HealthPolicy;
use crate::idmap::IdMap;
use crate::ops::CodicOp;
use crate::pool::{DevicePool, ShardHealth, ShardLease};

/// Static shape of a [`SharedFleet`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of tenant slots. Each holds at most one tenant.
    pub slots: usize,
    /// Contiguous shards leased to each slot.
    pub shards_per_slot: usize,
    /// Device configuration for every shard. A
    /// [`FaultPlan`](crate::fault::FaultPlan) here is the *base* plan:
    /// each tenant's shards derive per-shard schedules from it by
    /// **lease-local** index, so every tenant sees the schedule a
    /// private pool built from the same config would see.
    pub device: DeviceConfig,
    /// Default per-tenant outstanding-op quota
    /// (see [`SharedFleet::acquire_with`] to override per tenant).
    pub quota: usize,
    /// Deficit-round-robin quantum: ops of admission credit granted per
    /// weight unit per rotation visit. Any quantum at least the largest
    /// batch cost bounds every pending tenant's wait to one rotation.
    pub quantum: u32,
    /// Self-quarantine policy applied to every tenant's lease.
    pub health: HealthPolicy,
}

impl FleetConfig {
    /// A fleet of `slots` tenant slots, `shards_per_slot` shards each,
    /// with the default quota (1024 ops), quantum (4096 ops), and health
    /// policy.
    #[must_use]
    pub fn new(slots: usize, shards_per_slot: usize, device: DeviceConfig) -> Self {
        FleetConfig {
            slots,
            shards_per_slot,
            device,
            quota: 1024,
            quantum: 4096,
            health: HealthPolicy::default(),
        }
    }

    /// Replaces the default per-tenant outstanding-op quota.
    #[must_use]
    pub fn with_quota(mut self, quota: usize) -> Self {
        self.quota = quota.max(1);
        self
    }

    /// Replaces the deficit-round-robin quantum.
    #[must_use]
    pub fn with_quantum(mut self, quantum: u32) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    /// Replaces the self-quarantine policy.
    #[must_use]
    pub fn with_health(mut self, health: HealthPolicy) -> Self {
        self.health = health;
        self
    }
}

/// Handle to a live tenant: which slot, and an epoch stamp so a handle
/// that outlives its tenancy is caught instead of touching the slot's
/// next occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId {
    slot: usize,
    epoch: u64,
}

impl TenantId {
    /// The slot this tenancy occupies.
    #[must_use]
    pub fn slot(self) -> usize {
        self.slot
    }
}

/// One demultiplexed completion event of a tenant's stream. `shard` is
/// **lease-local** — the same index an equivalent private pool would
/// report — so the stream carries no trace of where in the fleet the
/// tenant's slot happens to sit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetEvent {
    /// Tenant-stream sequence number (dense from 0, submission order).
    pub seq: u64,
    /// Lease-local shard that served the operation.
    pub shard: u16,
    /// The device-level completion, bit-for-bit.
    pub completion: OpCompletion,
}

/// What the fleet admitted for one enqueued batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmitReceipt {
    /// First sequence number assigned to the batch.
    pub seq_base: u64,
    /// Operations admitted (the whole batch — admission is
    /// all-or-nothing, like a private pool's submission).
    pub accepted: u32,
}

/// A batch waiting in a tenant's pending queue for DRR admission.
#[derive(Debug)]
struct PendingBatch {
    ticket: u64,
    ops: Vec<CodicOp>,
}

/// One live tenancy: the lease plus everything a private serving engine
/// would keep per session.
#[derive(Debug)]
struct Tenant {
    epoch: u64,
    lease: ShardLease,
    /// QoS weight: admission credit per rotation is `weight × quantum`.
    weight: u32,
    /// Outstanding-op quota enforced by stepping the tenant's own lease.
    quota: usize,
    /// Deficit-round-robin credit, in ops.
    deficit: u64,
    /// Next tenant-stream sequence number.
    next_seq: u64,
    /// Batches enqueued but not yet admitted.
    pending: VecDeque<PendingBatch>,
    /// Admitted, not yet completed: `(seq, lease-local shard, future)`.
    inflight: Vec<(u64, u16, crate::executor::OpFuture)>,
    scratch: Vec<(u64, u16, crate::executor::OpFuture)>,
    /// Completed events awaiting collection, in emission order.
    events: Vec<FleetEvent>,
    /// Batches admitted over the tenancy (fairness observability).
    admitted: u64,
}

#[derive(Debug)]
enum Slot {
    Free,
    Held(Box<Tenant>),
}

/// The shared fleet: one [`DevicePool`] carved into per-tenant
/// [`ShardLease`]s, with deficit-round-robin admission at the pool
/// boundary. See the [module docs](self) for the design contract.
#[derive(Debug)]
pub struct SharedFleet {
    pool: DevicePool,
    config: FleetConfig,
    slots: Vec<Slot>,
    /// Next slot the round-robin visits.
    cursor: usize,
    /// Monotonic tenancy counter backing [`TenantId`] staleness checks.
    epoch: u64,
    next_ticket: u64,
    /// Resolved admission tickets awaiting collection.
    tickets: IdMap<Result<AdmitReceipt, CodicError>>,
}

impl SharedFleet {
    /// Builds the fleet: `slots × shards_per_slot` devices, all slots
    /// free. The pool is built fault-free; fault schedules are derived
    /// per tenant at [`SharedFleet::acquire`] with lease-local seeding.
    ///
    /// # Panics
    ///
    /// Panics if `config.slots` or `config.shards_per_slot` is zero.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        assert!(config.slots > 0, "a fleet needs at least one slot");
        assert!(
            config.shards_per_slot > 0,
            "a slot needs at least one shard"
        );
        let mut base = config.device.clone();
        base.fault = None;
        let pool = DevicePool::new(config.slots * config.shards_per_slot, &base);
        SharedFleet {
            pool,
            slots: (0..config.slots).map(|_| Slot::Free).collect(),
            cursor: 0,
            epoch: 0,
            next_ticket: 0,
            tickets: IdMap::with_capacity(config.slots.max(8) * 2),
            config,
        }
    }

    /// Number of tenant slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently free.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Free))
            .count()
    }

    /// Shards leased to each slot.
    #[must_use]
    pub fn shards_per_slot(&self) -> usize {
        self.config.shards_per_slot
    }

    /// Acquires a free slot with weight 1 and the fleet's default quota.
    pub fn acquire(&mut self) -> Option<TenantId> {
        self.acquire_with(1, self.config.quota)
    }

    /// Acquires the lowest free slot for a new tenant with the given QoS
    /// `weight` and outstanding-op `quota` (both clamped to at least 1),
    /// or `None` when the fleet is full.
    ///
    /// Every shard of the slot is rebuilt factory-fresh, with the base
    /// fault plan (if any) derived by **lease-local** shard index —
    /// local shard `l` runs `plan.for_shard(l)` — exactly what
    /// [`DevicePool::new`] would build for a private pool of
    /// `shards_per_slot` shards. That, plus the lease's own routing and
    /// health state, is the whole solo-equivalence argument.
    pub fn acquire_with(&mut self, weight: u32, quota: usize) -> Option<TenantId> {
        let slot = self.slots.iter().position(|s| matches!(s, Slot::Free))?;
        let base = slot * self.config.shards_per_slot;
        for local in 0..self.config.shards_per_slot {
            let mut cfg = self.config.device.clone();
            cfg.fault = cfg.fault.map(|plan| plan.for_shard(local));
            self.pool.reset_shard(base + local, &cfg);
        }
        let mut lease = ShardLease::new(base, self.config.shards_per_slot, &self.config.device);
        lease.set_health_policy(self.config.health);
        self.epoch += 1;
        self.slots[slot] = Slot::Held(Box::new(Tenant {
            epoch: self.epoch,
            lease,
            weight: weight.max(1),
            quota: quota.max(1),
            deficit: 0,
            next_seq: 0,
            pending: VecDeque::new(),
            inflight: Vec::new(),
            scratch: Vec::new(),
            events: Vec::new(),
            admitted: 0,
        }));
        Some(TenantId {
            slot,
            epoch: self.epoch,
        })
    }

    /// Releases the tenancy, freeing its slot for the next tenant (whose
    /// acquisition rebuilds the devices). Batches still pending resolve
    /// their tickets as [`CodicError::NoHealthyShards`] — a released
    /// tenant has no shards left to admit to.
    ///
    /// # Panics
    ///
    /// Panics on a stale [`TenantId`].
    pub fn release(&mut self, id: TenantId) {
        let slot = self.checked_slot(id);
        if let Slot::Held(tenant) = &mut self.slots[slot] {
            for batch in tenant.pending.drain(..) {
                self.tickets
                    .insert(batch.ticket, Err(CodicError::NoHealthyShards));
            }
        }
        self.slots[slot] = Slot::Free;
    }

    fn checked_slot(&self, id: TenantId) -> usize {
        match &self.slots[id.slot] {
            Slot::Held(t) if t.epoch == id.epoch => id.slot,
            _ => panic!("stale tenant handle for slot {}", id.slot),
        }
    }

    fn tenant_mut(&mut self, id: TenantId) -> &mut Tenant {
        let slot = self.checked_slot(id);
        match &mut self.slots[slot] {
            Slot::Held(t) => t,
            Slot::Free => unreachable!("checked_slot verified occupancy"),
        }
    }

    fn tenant(&self, id: TenantId) -> &Tenant {
        let slot = self.checked_slot(id);
        match &self.slots[slot] {
            Slot::Held(t) => t,
            Slot::Free => unreachable!("checked_slot verified occupancy"),
        }
    }

    /// Queues a batch for fair admission; returns the ticket that
    /// [`SharedFleet::pump_until`] resolves. Sequence numbers are
    /// assigned at *admission*, so they follow admission order (which,
    /// within one tenant, is enqueue order — the queue is FIFO).
    pub fn enqueue(&mut self, id: TenantId, ops: &[CodicOp]) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.tenant_mut(id).pending.push_back(PendingBatch {
            ticket,
            ops: ops.to_vec(),
        });
        ticket
    }

    /// Collects a resolved ticket, if resolved.
    pub fn take_ticket(&mut self, ticket: u64) -> Option<Result<AdmitReceipt, CodicError>> {
        self.tickets.remove(ticket)
    }

    /// True while any tenant has batches awaiting admission.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        self.slots.iter().any(|s| match s {
            Slot::Held(t) => !t.pending.is_empty(),
            Slot::Free => false,
        })
    }

    /// One deficit-round-robin visit: grants the cursor slot's tenant its
    /// credit and admits its queued batches while they fit, then advances
    /// the cursor. Returns the number of batches admitted.
    ///
    /// Classic DRR, with batch length in ops as the cost function: an
    /// idle queue forfeits its credit (deficits measure backlog service,
    /// not idle accumulation), and a visited backlog earns
    /// `weight × quantum` more credit than it did last rotation — so any
    /// pending batch is eventually affordable, and with the quantum at
    /// least the largest batch cost, affordable within one rotation.
    pub fn pump_turn(&mut self) -> usize {
        let slot = self.cursor;
        self.cursor = (self.cursor + 1) % self.slots.len();
        let quantum = self.config.quantum;
        let Slot::Held(tenant) = &mut self.slots[slot] else {
            return 0;
        };
        if tenant.pending.is_empty() {
            tenant.deficit = 0;
            return 0;
        }
        tenant.deficit = tenant
            .deficit
            .saturating_add(u64::from(tenant.weight) * u64::from(quantum));
        let mut admitted = 0;
        while let Some(front) = tenant.pending.front() {
            let cost = (front.ops.len() as u64).max(1);
            if cost > tenant.deficit {
                break;
            }
            let batch = tenant.pending.pop_front().expect("front exists");
            tenant.deficit -= cost;
            let result = Self::admit(&mut self.pool, tenant, &batch.ops);
            self.tickets.insert(batch.ticket, result);
            admitted += 1;
        }
        admitted
    }

    /// Pumps rotation turns until `ticket` resolves, then returns its
    /// result. Other tenants' batches ahead in the rotation are admitted
    /// along the way — the caller does the fleet's work in fair order.
    ///
    /// # Errors
    ///
    /// The admission error the ticket resolved to, verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `ticket` is not pending anywhere and never resolves
    /// (e.g. a ticket already taken).
    pub fn pump_until(&mut self, ticket: u64) -> Result<AdmitReceipt, CodicError> {
        loop {
            if let Some(result) = self.tickets.remove(ticket) {
                return result;
            }
            assert!(
                self.has_pending(),
                "ticket {ticket} is not pending and never resolved"
            );
            self.pump_turn();
        }
    }

    /// Pumps rotation turns until every queued batch everywhere is
    /// admitted; returns the total admitted.
    pub fn pump(&mut self) -> usize {
        let mut total = 0;
        while self.has_pending() {
            total += self.pump_turn();
        }
        total
    }

    /// The private serving engine's submission discipline, confined to
    /// the tenant's lease: all-or-nothing routed submission, quota
    /// backpressure stepping only this tenant's shards, health check at
    /// the batch boundary, then a non-blocking drain. Because every
    /// clock this touches belongs to the tenant's own slot, admission
    /// order across tenants cannot perturb any tenant's device timeline.
    fn admit(
        pool: &mut DevicePool,
        tenant: &mut Tenant,
        ops: &[CodicOp],
    ) -> Result<AdmitReceipt, CodicError> {
        let routed = tenant
            .lease
            .submit_all_async_routed(pool.devices_mut(), ops)?;
        let seq_base = tenant.next_seq;
        for (local, future) in routed {
            tenant
                .inflight
                .push((tenant.next_seq, local as u16, future));
            tenant.next_seq += 1;
        }
        while tenant.lease.outstanding(pool.devices()) > tenant.quota {
            if !tenant.lease.step(pool.devices_mut()) {
                break;
            }
        }
        tenant.lease.check_health(pool.devices_mut());
        tenant.admitted += 1;
        Self::drain(tenant);
        Ok(AdmitReceipt {
            seq_base,
            accepted: ops.len() as u32,
        })
    }

    /// Moves every resolved in-flight future into the tenant's event
    /// buffer, ordered by `(finish_cycle, seq)` — the same emission
    /// order a private serving engine produces.
    fn drain(tenant: &mut Tenant) {
        let mut ready = Vec::new();
        tenant.scratch.clear();
        for (seq, shard, mut future) in tenant.inflight.drain(..) {
            match future.try_take() {
                Some(completion) => ready.push(FleetEvent {
                    seq,
                    shard,
                    completion,
                }),
                None => tenant.scratch.push((seq, shard, future)),
            }
        }
        std::mem::swap(&mut tenant.inflight, &mut tenant.scratch);
        ready.sort_by_key(|e| (e.completion.finish_cycle, e.seq));
        tenant.events.extend(ready);
    }

    /// Flushes the tenancy: runs its lease to idle, applies the health
    /// policy, drains every event. Returns the slowest leased shard's
    /// cycle. Other tenants' clocks don't move.
    pub fn flush(&mut self, id: TenantId) -> u64 {
        let slot = self.checked_slot(id);
        let Slot::Held(tenant) = &mut self.slots[slot] else {
            unreachable!("checked_slot verified occupancy")
        };
        tenant.lease.run_to_idle(self.pool.devices_mut());
        tenant.lease.check_health(self.pool.devices_mut());
        Self::drain(tenant);
        tenant.lease.now_max(self.pool.devices())
    }

    /// Takes the tenant's buffered events (emission order).
    pub fn take_events(&mut self, id: TenantId) -> Vec<FleetEvent> {
        std::mem::take(&mut self.tenant_mut(id).events)
    }

    /// Operations admitted but not yet completed on the tenant's lease.
    #[must_use]
    pub fn outstanding(&self, id: TenantId) -> usize {
        self.tenant(id).lease.outstanding(self.pool.devices())
    }

    /// The slowest shard cycle on the tenant's lease.
    #[must_use]
    pub fn now_max(&self, id: TenantId) -> u64 {
        self.tenant(id).lease.now_max(self.pool.devices())
    }

    /// The tenant's per-shard health, lease-local indices.
    #[must_use]
    pub fn health(&self, id: TenantId) -> &[ShardHealth] {
        self.tenant(id).lease.health()
    }

    /// Next sequence number of the tenant's stream.
    #[must_use]
    pub fn next_seq(&self, id: TenantId) -> u64 {
        self.tenant(id).next_seq
    }

    /// The tenant's current deficit-round-robin credit, in ops.
    #[must_use]
    pub fn deficit(&self, id: TenantId) -> u64 {
        self.tenant(id).deficit
    }

    /// Batches admitted over the tenancy so far.
    #[must_use]
    pub fn admitted_batches(&self, id: TenantId) -> u64 {
        self.tenant(id).admitted
    }

    /// Batches queued but not yet admitted.
    #[must_use]
    pub fn pending_batches(&self, id: TenantId) -> usize {
        self.tenant(id).pending.len()
    }
}

/// Cloneable, thread-safe handle to a [`SharedFleet`] — the form the
/// server's one-thread-per-session model consumes. All methods lock the
/// fleet for their duration; [`FleetHandle::submit`] additionally pumps
/// the round-robin until its own ticket resolves.
#[derive(Clone)]
pub struct FleetHandle {
    inner: Arc<Mutex<SharedFleet>>,
}

impl fmt::Debug for FleetHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fleet = self.lock();
        f.debug_struct("FleetHandle")
            .field("slots", &fleet.slots())
            .field("free_slots", &fleet.free_slots())
            .field("shards_per_slot", &fleet.shards_per_slot())
            .finish()
    }
}

impl FleetHandle {
    /// Builds a fleet and wraps it (see [`SharedFleet::new`]).
    ///
    /// # Panics
    ///
    /// As [`SharedFleet::new`].
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        FleetHandle {
            inner: Arc::new(Mutex::new(SharedFleet::new(config))),
        }
    }

    /// Locks the fleet for direct driving (benchmarks, tests). A
    /// panicked holder's poison is ignored: the fleet's state is only
    /// mutated under methods that keep it consistent at every await-free
    /// step.
    pub fn lock(&self) -> MutexGuard<'_, SharedFleet> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// See [`SharedFleet::acquire_with`].
    pub fn acquire_with(&self, weight: u32, quota: usize) -> Option<TenantId> {
        self.lock().acquire_with(weight, quota)
    }

    /// See [`SharedFleet::release`].
    pub fn release(&self, id: TenantId) {
        self.lock().release(id);
    }

    /// Enqueues the batch, pumps the fair rotation until it is admitted,
    /// and returns the receipt plus every event of this tenant's stream
    /// that became ready — exactly what a private serving engine's
    /// batch submission returns.
    ///
    /// # Errors
    ///
    /// The admission error, with the tenant's state untouched (buffered
    /// events stay buffered, like a private engine's failed submission).
    pub fn submit(
        &self,
        id: TenantId,
        ops: &[CodicOp],
    ) -> Result<(AdmitReceipt, Vec<FleetEvent>), CodicError> {
        let mut fleet = self.lock();
        let ticket = fleet.enqueue(id, ops);
        let receipt = fleet.pump_until(ticket)?;
        Ok((receipt, fleet.take_events(id)))
    }

    /// Flushes the tenancy; returns the slowest leased shard's cycle and
    /// the drained events (see [`SharedFleet::flush`]).
    pub fn flush(&self, id: TenantId) -> (u64, Vec<FleetEvent>) {
        let mut fleet = self.lock();
        let now = fleet.flush(id);
        (now, fleet.take_events(id))
    }

    /// See [`SharedFleet::outstanding`].
    #[must_use]
    pub fn outstanding(&self, id: TenantId) -> usize {
        self.lock().outstanding(id)
    }

    /// See [`SharedFleet::now_max`].
    #[must_use]
    pub fn now_max(&self, id: TenantId) -> u64 {
        self.lock().now_max(id)
    }

    /// The tenant's per-shard health, cloned out of the lock.
    #[must_use]
    pub fn health(&self, id: TenantId) -> Vec<ShardHealth> {
        self.lock().health(id).to_vec()
    }

    /// See [`SharedFleet::slots`].
    #[must_use]
    pub fn slots(&self) -> usize {
        self.lock().slots()
    }

    /// See [`SharedFleet::free_slots`].
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.lock().free_slots()
    }

    /// See [`SharedFleet::shards_per_slot`].
    #[must_use]
    pub fn shards_per_slot(&self) -> usize {
        self.lock().shards_per_slot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codic_dram::geometry::DramGeometry;
    use codic_dram::timing::TimingParams;

    use crate::fault::FaultPlan;
    use crate::ops::VariantId;

    fn device_config() -> DeviceConfig {
        DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
            .with_refresh(false)
    }

    fn zero_ops(rows: u64) -> Vec<CodicOp> {
        (0..rows)
            .map(|i| CodicOp::command(VariantId::DetZero, i * DramGeometry::ROW_BYTES))
            .collect()
    }

    #[test]
    fn slots_acquire_release_and_recycle() {
        let mut fleet = SharedFleet::new(FleetConfig::new(2, 2, device_config()));
        assert_eq!(fleet.free_slots(), 2);
        let a = fleet.acquire().expect("slot a");
        let b = fleet.acquire().expect("slot b");
        assert_eq!(fleet.free_slots(), 0);
        assert!(fleet.acquire().is_none(), "full fleet rejects");
        fleet.release(a);
        assert_eq!(fleet.free_slots(), 1);
        let c = fleet.acquire().expect("slot a recycled");
        assert_eq!(c.slot(), a.slot(), "lowest free slot is reused");
        assert_ne!(c, a, "but under a fresh epoch");
        fleet.release(b);
        fleet.release(c);
    }

    #[test]
    #[should_panic(expected = "stale tenant handle")]
    fn stale_tenant_handles_are_caught() {
        let mut fleet = SharedFleet::new(FleetConfig::new(1, 1, device_config()));
        let a = fleet.acquire().expect("slot");
        fleet.release(a);
        let _b = fleet.acquire().expect("recycled");
        fleet.enqueue(a, &zero_ops(1)); // stale: a's epoch is gone
    }

    #[test]
    fn submission_streams_are_dense_and_ordered() {
        let fleet = FleetHandle::new(FleetConfig::new(1, 2, device_config()));
        let t = fleet.acquire_with(1, 64).expect("slot");
        let mut events = Vec::new();
        for chunk in zero_ops(96).chunks(32) {
            let (receipt, ready) = fleet.submit(t, chunk).expect("admit");
            assert_eq!(receipt.accepted, 32);
            events.extend(ready);
        }
        let (_, tail) = fleet.flush(t);
        events.extend(tail);
        assert_eq!(events.len(), 96);
        let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..96).collect::<Vec<_>>(), "dense seq space");
        for pair in events.windows(2) {
            assert!(
                (pair[0].completion.finish_cycle, pair[0].seq)
                    <= (pair[1].completion.finish_cycle, pair[1].seq),
                "emission order is (finish_cycle, seq)"
            );
        }
        fleet.release(t);
    }

    #[test]
    fn quota_is_respected_after_every_admission() {
        let mut fleet = SharedFleet::new(FleetConfig::new(1, 2, device_config()).with_quota(8));
        let t = fleet.acquire().expect("slot");
        for chunk in zero_ops(64).chunks(16) {
            let ticket = fleet.enqueue(t, chunk);
            fleet.pump_until(ticket).expect("admit");
            assert!(
                fleet.outstanding(t) <= 8,
                "quota bounds outstanding ops after every admission step"
            );
        }
        fleet.release(t);
    }

    #[test]
    fn derived_fault_seeds_are_lease_local() {
        // A faulted fleet slot must deliver the same failures a private
        // pool of the same shape delivers — seeds derived from LOCAL
        // shard indices, not fleet-global ones. Slot 1 (global shards
        // 2..4) is the interesting case.
        let device = device_config().with_faults(FaultPlan::new(77).with_misfires(8000));
        let fleet = FleetHandle::new(FleetConfig::new(2, 2, device.clone()));
        let _a = fleet.acquire_with(1, 1024).expect("slot 0");
        let b = fleet.acquire_with(1, 1024).expect("slot 1");
        let ops = zero_ops(512);
        let (_, mut events) = fleet.submit(b, &ops).expect("admit");
        let (_, tail) = fleet.flush(b);
        events.extend(tail);

        let mut solo = crate::pool::DevicePool::new(2, &device);
        let routed = solo.submit_all_async_routed(&ops).expect("solo admit");
        solo.run_to_idle();
        let mut solo_failures = 0;
        for (i, (shard, future)) in routed.into_iter().enumerate() {
            let completion = crate::executor::block_on(future);
            let event = &events[events.iter().position(|e| e.seq == i as u64).unwrap()];
            assert_eq!(event.shard as usize, shard);
            assert_eq!(event.completion.outcome, completion.outcome);
            if completion.outcome.cause().is_some() {
                solo_failures += 1;
            }
        }
        assert!(solo_failures > 0, "the misfire plan must actually fire");
        fleet.release(b);
    }

    #[test]
    fn drr_serves_every_pending_tenant_within_one_rotation() {
        let mut fleet = SharedFleet::new(FleetConfig::new(3, 1, device_config()).with_quantum(64));
        let tenants: Vec<TenantId> = (0..3).map(|_| fleet.acquire().expect("slot")).collect();
        // Tenant 0 floods; tenants 1 and 2 each queue one batch.
        for chunk in zero_ops(64 * 8).chunks(64) {
            fleet.enqueue(tenants[0], chunk);
        }
        let t1 = fleet.enqueue(tenants[1], &zero_ops(32));
        let t2 = fleet.enqueue(tenants[2], &zero_ops(32));
        // One full rotation (slots() turns) must admit every tenant's
        // front batch: the quantum covers the largest batch cost.
        for _ in 0..fleet.slots() {
            fleet.pump_turn();
        }
        assert!(
            fleet.take_ticket(t1).is_some(),
            "tenant 1 served in one rotation"
        );
        assert!(
            fleet.take_ticket(t2).is_some(),
            "tenant 2 served in one rotation"
        );
        assert!(fleet.has_pending(), "the flood is still queued");
        fleet.pump();
        for t in tenants {
            fleet.flush(t);
            fleet.release(t);
        }
    }

    #[test]
    fn weights_scale_admission_credit() {
        let mut fleet = SharedFleet::new(
            FleetConfig::new(2, 1, device_config())
                .with_quantum(32)
                .with_quota(4096),
        );
        let heavy = fleet.acquire_with(4, 4096).expect("heavy");
        let light = fleet.acquire_with(1, 4096).expect("light");
        for chunk in zero_ops(32 * 40).chunks(32) {
            fleet.enqueue(heavy, chunk);
        }
        for chunk in zero_ops(32 * 40).chunks(32) {
            fleet.enqueue(light, chunk);
        }
        // Four rotations: weight-4 earns 4 admissions per visit to
        // weight-1's single admission.
        for _ in 0..4 * fleet.slots() {
            fleet.pump_turn();
        }
        assert_eq!(fleet.admitted_batches(heavy), 16);
        assert_eq!(fleet.admitted_batches(light), 4);
        fleet.pump();
        for t in [heavy, light] {
            fleet.flush(t);
            fleet.release(t);
        }
    }

    #[test]
    fn idle_tenants_forfeit_deficit() {
        let mut fleet = SharedFleet::new(FleetConfig::new(1, 1, device_config()).with_quantum(16));
        let t = fleet.acquire().expect("slot");
        let ticket = fleet.enqueue(t, &zero_ops(8));
        fleet.pump_until(ticket).expect("admit");
        assert!(fleet.deficit(t) > 0, "leftover credit after admission");
        fleet.pump_turn(); // visit with an empty queue
        assert_eq!(fleet.deficit(t), 0, "idle visit resets the deficit");
        fleet.flush(t);
        fleet.release(t);
    }

    #[test]
    fn released_tenants_reject_their_queued_batches() {
        let mut fleet = SharedFleet::new(FleetConfig::new(1, 1, device_config()));
        let t = fleet.acquire().expect("slot");
        let ticket = fleet.enqueue(t, &zero_ops(4));
        fleet.release(t);
        assert_eq!(
            fleet.take_ticket(ticket),
            Some(Err(CodicError::NoHealthyShards)),
            "a released tenant's pending batches resolve as rejections"
        );
    }

    #[test]
    fn tenant_quarantine_is_confined_to_its_lease() {
        // Both slots share a hot misfire plan, but only row operations
        // can misfire: the tenant hammering DetZero trips the health
        // policy and quarantines its own shard, while its neighbour —
        // running plain reads on the *same* plan — must neither observe
        // the quarantine in its health nor in its stream.
        let hot = device_config().with_faults(FaultPlan::new(9).with_misfires(60_000));
        let policy = HealthPolicy {
            max_failed_per_64k: 30_000,
            min_ops: 16,
        };
        let fleet = FleetHandle::new(FleetConfig::new(2, 1, hot).with_health(policy));
        let sick = fleet.acquire_with(1, 1024).expect("sick");
        let fine = fleet.acquire_with(1, 1024).expect("fine");
        let _ = fleet.submit(sick, &zero_ops(64));
        let _ = fleet.flush(sick);
        assert!(
            fleet.health(sick).iter().any(|h| !h.is_healthy()),
            "the misfiring shard quarantines"
        );
        let reads: Vec<CodicOp> = (0..64).map(|i| CodicOp::read(i * 8192)).collect();
        fleet.submit(fine, &reads).expect("healthy tenant admits");
        let (_, events) = fleet.flush(fine);
        assert_eq!(events.len(), 64);
        assert!(
            fleet.health(fine).iter().all(|h| h.is_healthy()),
            "the neighbour's lease stays healthy"
        );
        fleet.release(sick);
        fleet.release(fine);
    }
}
