//! A direct-mapped table keyed by monotone request ids.
//!
//! The device's pending table maps every in-flight [`ReqId`] to its typed
//! operation and cost. Ids are handed out sequentially by the controller
//! and live only while the request is queued or in flight, so at any
//! instant the live ids span a window no wider than the controller's
//! queue depth plus its in-flight set. [`IdMap`] exploits that: a
//! power-of-two ring indexed by `id % capacity` gives O(1) insert /
//! lookup / remove with **no hashing and no per-operation allocation**
//! (the ring doubles — rare, amortized — only if the live window ever
//! outgrows it).
//!
//! [`ReqId`]: codic_dram::request::ReqId

/// A direct-mapped id → value table over a power-of-two ring.
#[derive(Debug)]
pub(crate) struct IdMap<T> {
    slots: Vec<Option<(u64, T)>>,
    mask: u64,
    len: usize,
}

impl<T> IdMap<T> {
    /// A map with room for a live-id window of at least `capacity`
    /// (rounded up to a power of two).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(2);
        IdMap {
            slots: (0..capacity).map(|_| None).collect(),
            mask: capacity as u64 - 1,
            len: 0,
        }
    }

    /// Number of live entries.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is live.
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts `value` under `id`. A ring collision with a *different*
    /// live id doubles the ring until the window fits.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already present (request ids are unique): a
    /// duplicate would otherwise re-seat to the same slot after every
    /// doubling and loop until allocation failure, so the check is a hard
    /// assert on the (cold) collision path.
    pub(crate) fn insert(&mut self, id: u64, value: T) {
        while let Some((existing, _)) = &self.slots[(id & self.mask) as usize] {
            assert_ne!(*existing, id, "request ids are unique");
            self.grow();
        }
        self.slots[(id & self.mask) as usize] = Some((id, value));
        self.len += 1;
    }

    /// Mutable access to the value under `id`, if present. The service
    /// path no longer needs it (waiters ride the pending insert); the
    /// ring tests still exercise it directly.
    #[cfg(test)]
    pub(crate) fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        match &mut self.slots[(id & self.mask) as usize] {
            Some((key, value)) if *key == id => Some(value),
            _ => None,
        }
    }

    /// Removes every live entry, handing each `(id, value)` to `f` in
    /// ring order — the quarantine path that fails all pending
    /// operations at once. O(capacity), so it never runs on the per-op
    /// hot path.
    pub(crate) fn drain(&mut self, mut f: impl FnMut(u64, T)) {
        if self.len == 0 {
            return;
        }
        for slot in &mut self.slots {
            if let Some((id, value)) = slot.take() {
                self.len -= 1;
                f(id, value);
            }
        }
        debug_assert_eq!(self.len, 0);
    }

    /// Removes and returns the value under `id`, if present.
    pub(crate) fn remove(&mut self, id: u64) -> Option<T> {
        let slot = &mut self.slots[(id & self.mask) as usize];
        match slot {
            Some((key, _)) if *key == id => {
                let (_, value) = slot.take().expect("just matched");
                self.len -= 1;
                Some(value)
            }
            _ => None,
        }
    }

    /// Doubles the ring, re-seating every live entry. Distinct ids can
    /// collide modulo any ring size short of covering their window, so a
    /// re-seat may recursively double again; distinct u64 ids cannot
    /// collide forever, so this terminates.
    fn grow(&mut self) {
        let new_capacity = self.slots.len() * 2;
        let old: Vec<Option<(u64, T)>> =
            std::mem::replace(&mut self.slots, (0..new_capacity).map(|_| None).collect());
        self.mask = new_capacity as u64 - 1;
        for (id, value) in old.into_iter().flatten() {
            while self.slots[(id & self.mask) as usize].is_some() {
                self.grow();
            }
            self.slots[(id & self.mask) as usize] = Some((id, value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut m = IdMap::with_capacity(4);
        m.insert(0, "a");
        m.insert(1, "b");
        assert_eq!(m.len(), 2);
        assert_eq!(m.get_mut(0), Some(&mut "a"));
        assert_eq!(m.get_mut(7), None);
        assert_eq!(m.remove(1), Some("b"));
        assert_eq!(m.remove(1), None);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn sliding_window_never_grows_the_ring() {
        // Monotone ids with a bounded live window: the steady-state shape
        // of the device's pending table.
        let mut m = IdMap::with_capacity(8);
        for id in 0..1000u64 {
            m.insert(id, id * 10);
            if id >= 7 {
                assert_eq!(m.remove(id - 7), Some((id - 7) * 10));
            }
        }
        assert_eq!(m.slots.len(), 8, "window of 8 fits the ring of 8");
    }

    #[test]
    fn drain_empties_the_map_and_visits_every_entry() {
        let mut m = IdMap::with_capacity(4);
        for id in 10..14u64 {
            m.insert(id, id * 2);
        }
        let mut seen: Vec<(u64, u64)> = Vec::new();
        m.drain(|id, v| seen.push((id, v)));
        seen.sort_unstable();
        assert_eq!(seen, vec![(10, 20), (11, 22), (12, 24), (13, 26)]);
        assert!(m.is_empty());
        m.drain(|_, _: u64| panic!("drained map is empty"));
        m.insert(99, 1); // the map stays usable after a drain
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn colliding_window_doubles_until_it_fits() {
        let mut m = IdMap::with_capacity(2);
        for id in 0..16u64 {
            m.insert(id, id);
        }
        assert_eq!(m.len(), 16);
        for id in 0..16u64 {
            assert_eq!(m.remove(id), Some(id));
        }
        assert!(m.is_empty());
    }
}
