//! The controlled CODIC interface of §4.4.
//!
//! Exposing raw internal signals to software is a security risk, so the
//! paper proposes that the memory controller offer *applications* (e.g. a
//! PUF evaluation) rather than raw timing control, internally tracking "a
//! system-defined memory address range that is safe to use". This module
//! implements that controller-side policy layer.

use std::ops::Range;

use crate::classify::OperationClass;
use crate::error::CodicError;
use crate::mode_register::ModeRegisterFile;
use crate::variant::CodicVariant;

/// A CODIC command accepted by the controller, ready for the command bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssuedCommand {
    /// The row's physical byte address.
    pub row_addr: u64,
    /// The variant name that was installed when the command issued.
    pub variant: String,
}

/// The controller-side CODIC policy layer: a variant is programmed through
/// the mode registers, and destructive commands are confined to a
/// system-defined safe address range.
#[derive(Debug, Clone)]
pub struct CodicController {
    registers: ModeRegisterFile,
    installed: Option<(CodicVariant, OperationClass)>,
    safe_range: Range<u64>,
    issued: Vec<IssuedCommand>,
}

impl CodicController {
    /// Creates a controller whose destructive commands are confined to
    /// `safe_range` (byte addresses).
    #[must_use]
    pub fn new(safe_range: Range<u64>) -> Self {
        CodicController {
            registers: ModeRegisterFile::new(),
            installed: None,
            safe_range,
            issued: Vec::new(),
        }
    }

    /// The mode-register file (for inspection).
    #[must_use]
    pub fn registers(&self) -> &ModeRegisterFile {
        &self.registers
    }

    /// Programs `variant` into the mode registers; returns the number of
    /// MRS commands used.
    pub fn install(&mut self, variant: CodicVariant, class: OperationClass) -> u32 {
        let writes = self.registers.program(&variant);
        self.installed = Some((variant, class));
        writes
    }

    /// Issues the installed CODIC command against the row containing
    /// `row_addr`.
    ///
    /// # Errors
    ///
    /// - [`CodicError::NoVariantInstalled`] when nothing is programmed;
    /// - [`CodicError::AddressOutOfRange`] when a destructive command
    ///   targets memory outside the safe range (§4.4's policy).
    pub fn issue(&mut self, row_addr: u64) -> Result<&IssuedCommand, CodicError> {
        let (variant, class) = self
            .installed
            .as_ref()
            .ok_or(CodicError::NoVariantInstalled)?;
        if class.is_destructive() && !self.safe_range.contains(&row_addr) {
            return Err(CodicError::AddressOutOfRange {
                addr: row_addr,
                start: self.safe_range.start,
                end: self.safe_range.end,
            });
        }
        self.issued.push(IssuedCommand {
            row_addr,
            variant: variant.name().to_string(),
        });
        Ok(self.issued.last().expect("just pushed"))
    }

    /// Commands issued so far.
    #[must_use]
    pub fn issued(&self) -> &[IssuedCommand] {
        &self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    fn controller() -> CodicController {
        CodicController::new(0x1000..0x2000)
    }

    #[test]
    fn issue_without_install_fails() {
        let mut c = controller();
        assert!(matches!(
            c.issue(0x1000),
            Err(CodicError::NoVariantInstalled)
        ));
    }

    #[test]
    fn destructive_commands_are_confined_to_safe_range() {
        let mut c = controller();
        c.install(library::codic_sig(), OperationClass::SignaturePreparation);
        assert!(c.issue(0x1000).is_ok());
        assert!(c.issue(0x1FFF).is_ok());
        let err = c.issue(0x2000).unwrap_err();
        assert!(matches!(err, CodicError::AddressOutOfRange { .. }));
        assert!(err.to_string().contains("outside"));
        assert_eq!(c.issued().len(), 2);
    }

    #[test]
    fn non_destructive_commands_may_target_anywhere() {
        let mut c = controller();
        c.install(library::activation(), OperationClass::ActivateLike);
        assert!(c.issue(0xFFFF_0000).is_ok());
    }

    #[test]
    fn install_programs_mode_registers() {
        let mut c = controller();
        let writes = c.install(library::codic_sig(), OperationClass::SignaturePreparation);
        assert_eq!(writes, 2);
        assert_eq!(
            &c.registers().schedule().unwrap(),
            library::codic_sig().schedule()
        );
    }

    #[test]
    fn issued_commands_record_variant_name() {
        let mut c = controller();
        c.install(library::codic_det_zero(), OperationClass::DeterministicZero);
        c.issue(0x1800).unwrap();
        assert_eq!(c.issued()[0].variant, "CODIC-det (zero)");
        assert_eq!(c.issued()[0].row_addr, 0x1800);
    }
}
