//! The controlled CODIC interface of §4.4.
//!
//! Exposing raw internal signals to software is a security risk, so the
//! paper proposes that the memory controller offer *applications* (e.g. a
//! PUF evaluation) rather than raw timing control, internally tracking "a
//! system-defined memory address range that is safe to use". This module
//! implements that controller-side policy layer over the typed
//! [`CodicOp`] command set; the cycle-level scheduling behind it lives in
//! [`CodicDevice`](crate::device::CodicDevice).

use std::ops::Range;

use crate::classify::OperationClass;
use crate::error::CodicError;
use crate::mode_register::{ModeRegister, ModeRegisterFile};
use crate::ops::{CodicOp, VariantId};

/// A CODIC command accepted by the controller, ready for the command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssuedCommand {
    /// The row's physical byte address.
    pub row_addr: u64,
    /// The typed operation that was authorized.
    pub op: CodicOp,
    /// The functional class the policy decision was based on.
    pub class: OperationClass,
}

/// The controller-side CODIC policy layer: a variant is programmed through
/// the mode registers, and destructive commands are confined to a
/// system-defined safe address range.
#[derive(Debug, Clone)]
pub struct CodicController {
    registers: ModeRegisterFile,
    installed: Option<VariantId>,
    safe_range: Range<u64>,
    compute_range: Range<u64>,
    issued: Vec<IssuedCommand>,
}

impl CodicController {
    /// Creates a controller whose destructive commands are confined to
    /// `safe_range` (byte addresses) and that rejects every bulk-bitwise
    /// compute command (no compute region is configured).
    #[must_use]
    pub fn new(safe_range: Range<u64>) -> Self {
        CodicController {
            registers: ModeRegisterFile::new(),
            installed: None,
            safe_range,
            compute_range: 0..0,
            issued: Vec::new(),
        }
    }

    /// The same controller with bulk-bitwise compute commands authorized
    /// inside `compute_range` (byte addresses).
    #[must_use]
    pub fn with_compute_range(mut self, compute_range: Range<u64>) -> Self {
        self.compute_range = compute_range;
        self
    }

    /// The authorized compute region (empty when compute is disabled).
    #[must_use]
    pub fn compute_range(&self) -> &Range<u64> {
        &self.compute_range
    }

    /// The mode-register file (for inspection).
    #[must_use]
    pub fn registers(&self) -> &ModeRegisterFile {
        &self.registers
    }

    /// The system-defined safe address range.
    #[must_use]
    pub fn safe_range(&self) -> &Range<u64> {
        &self.safe_range
    }

    /// The currently installed variant, if any.
    #[must_use]
    pub fn installed(&self) -> Option<VariantId> {
        self.installed
    }

    /// Programs `variant` into the mode registers; returns the number of
    /// MRS commands used.
    pub fn install(&mut self, variant: VariantId) -> u32 {
        let writes = self.registers.program(&variant.variant());
        self.installed = Some(variant);
        writes
    }

    /// Returns every mode register to the idle encoding, uninstalling the
    /// current variant; returns the number of MRS commands used.
    pub fn uninstall(&mut self) -> u32 {
        let mut writes = 0;
        for sig in codic_circuit::Signal::ALL {
            if self.registers.register(sig) != ModeRegister::idle() {
                self.registers.write(sig, ModeRegister::idle());
                writes += 1;
            }
        }
        self.installed = None;
        writes
    }

    /// Checks `op` against the §4.4 policy without issuing it.
    ///
    /// # Errors
    ///
    /// - [`CodicError::NoVariantInstalled`] when a CODIC command is issued
    ///   with nothing programmed;
    /// - [`CodicError::WrongVariantInstalled`] when a CODIC command does
    ///   not match the programmed variant;
    /// - [`CodicError::AddressOutOfRange`] when a destructive command
    ///   targets memory outside the safe range (§4.4's policy).
    pub fn authorize(&self, op: CodicOp) -> Result<(), CodicError> {
        if let Some(requested) = op.variant() {
            match self.installed {
                None => return Err(CodicError::NoVariantInstalled),
                Some(installed) if installed != requested => {
                    return Err(CodicError::WrongVariantInstalled {
                        installed,
                        requested,
                    });
                }
                Some(_) => {}
            }
        }
        self.check_safe_range(op)
    }

    /// The address part of the policy alone. Used to pre-flight whole
    /// batches before any variant is installed:
    ///
    /// - destructive commands must stay inside the safe range;
    /// - bulk-bitwise compute commands must write only rows inside the
    ///   authorized compute region (every row of a triple-row-activation
    ///   group counts as written — the charge sharing destroys all three).
    ///   Sources of `Not`/`RowCopy` are sensed non-destructively and may
    ///   lie anywhere.
    ///
    /// # Errors
    ///
    /// Returns [`CodicError::AddressOutOfRange`] when a destructive
    /// command targets memory outside the safe range,
    /// [`CodicError::NoComputeRegion`] when a compute command arrives with
    /// no compute region configured, and
    /// [`CodicError::ComputeOutsideRegion`] when a compute command would
    /// overwrite a row outside that region.
    pub fn check_safe_range(&self, op: CodicOp) -> Result<(), CodicError> {
        if op.is_compute() {
            if self.compute_range.is_empty() {
                return Err(CodicError::NoComputeRegion);
            }
            for addr in op.written_rows().row_addrs() {
                if !self.compute_range.contains(&addr) {
                    return Err(CodicError::ComputeOutsideRegion {
                        addr,
                        start: self.compute_range.start,
                        end: self.compute_range.end,
                    });
                }
            }
            return Ok(());
        }
        if op.is_destructive() && !self.safe_range.contains(&op.row_addr()) {
            return Err(CodicError::AddressOutOfRange {
                addr: op.row_addr(),
                start: self.safe_range.start,
                end: self.safe_range.end,
            });
        }
        Ok(())
    }

    /// Issues `op`, recording it as an [`IssuedCommand`] bound for the
    /// command bus.
    ///
    /// # Errors
    ///
    /// Fails exactly when [`CodicController::authorize`] does; rejected
    /// operations never reach the command bus.
    pub fn issue(&mut self, op: CodicOp) -> Result<&IssuedCommand, CodicError> {
        self.authorize(op)?;
        self.issued.push(IssuedCommand {
            row_addr: op.row_addr(),
            op,
            class: op.class(),
        });
        Ok(self.issued.last().expect("just pushed"))
    }

    /// Commands issued so far (and not yet taken).
    #[must_use]
    pub fn issued(&self) -> &[IssuedCommand] {
        &self.issued
    }

    /// Removes and returns the issued-command log, bounding its growth for
    /// long-running services.
    pub fn take_issued(&mut self) -> Vec<IssuedCommand> {
        std::mem::take(&mut self.issued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> CodicController {
        CodicController::new(0x1000..0x2000)
    }

    #[test]
    fn issue_without_install_fails() {
        let mut c = controller();
        assert!(matches!(
            c.issue(CodicOp::command(VariantId::Sig, 0x1000)),
            Err(CodicError::NoVariantInstalled)
        ));
    }

    #[test]
    fn issue_with_mismatched_variant_fails() {
        let mut c = controller();
        c.install(VariantId::DetZero);
        let err = c
            .issue(CodicOp::command(VariantId::Sig, 0x1000))
            .unwrap_err();
        assert!(matches!(err, CodicError::WrongVariantInstalled { .. }));
        assert!(err.to_string().contains("CODIC-sig"));
        assert!(c.issued().is_empty(), "rejected ops never reach the bus");
    }

    #[test]
    fn destructive_commands_are_confined_to_safe_range() {
        let mut c = controller();
        c.install(VariantId::Sig);
        assert!(c.issue(CodicOp::command(VariantId::Sig, 0x1000)).is_ok());
        assert!(c.issue(CodicOp::command(VariantId::Sig, 0x1FFF)).is_ok());
        let err = c
            .issue(CodicOp::command(VariantId::Sig, 0x2000))
            .unwrap_err();
        assert!(matches!(err, CodicError::AddressOutOfRange { .. }));
        assert!(err.to_string().contains("outside"));
        assert_eq!(c.issued().len(), 2);
    }

    #[test]
    fn non_destructive_commands_may_target_anywhere() {
        let mut c = controller();
        c.install(VariantId::Activate);
        assert!(c
            .issue(CodicOp::command(VariantId::Activate, 0xFFFF_0000))
            .is_ok());
    }

    #[test]
    fn clone_baselines_need_no_install_but_respect_the_range() {
        let mut c = controller();
        assert!(c.issue(CodicOp::RowCloneZero { row_addr: 0x1800 }).is_ok());
        assert!(matches!(
            c.issue(CodicOp::LisaCloneZero { row_addr: 0x2000 }),
            Err(CodicError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn compute_commands_need_a_compute_region() {
        let mut c = controller();
        let err = c.issue(CodicOp::MajAnd { row_addr: 0x1000 }).unwrap_err();
        assert!(matches!(err, CodicError::NoComputeRegion));
        assert!(c.issued().is_empty());
    }

    #[test]
    fn compute_commands_are_confined_to_the_compute_region() {
        // Region holds rows 0x10000..0x18000 (four 8 KB rows).
        let mut c = CodicController::new(0x1000..0x2000).with_compute_range(0x10000..0x18000);
        assert!(c.issue(CodicOp::MajAnd { row_addr: 0x10000 }).is_ok());
        // The group's third row (0x14000 + 2·0x2000 = 0x18000) falls
        // outside: rejected even though the base row is inside.
        let err = c.issue(CodicOp::MajOr { row_addr: 0x14000 }).unwrap_err();
        assert!(
            matches!(err, CodicError::ComputeOutsideRegion { addr: 0x18000, .. }),
            "{err:?}"
        );
        // A NOT may read from anywhere but must write inside.
        assert!(c
            .issue(CodicOp::Not {
                src_addr: 0,
                dst_addr: 0x16000,
            })
            .is_ok());
        assert!(matches!(
            c.issue(CodicOp::Not {
                src_addr: 0x10000,
                dst_addr: 0,
            }),
            Err(CodicError::ComputeOutsideRegion { addr: 0, .. })
        ));
        // The compute region does not loosen the safe range for the
        // classic destructive commands.
        c.install(VariantId::DetZero);
        assert!(matches!(
            c.issue(CodicOp::command(VariantId::DetZero, 0x10000)),
            Err(CodicError::AddressOutOfRange { .. })
        ));
        assert_eq!(c.issued().len(), 2);
    }

    #[test]
    fn install_programs_mode_registers() {
        let mut c = controller();
        let writes = c.install(VariantId::Sig);
        assert_eq!(writes, 2);
        assert_eq!(c.installed(), Some(VariantId::Sig));
        assert_eq!(
            &c.registers().schedule().unwrap(),
            VariantId::Sig.variant().schedule()
        );
    }

    #[test]
    fn uninstall_round_trips_the_register_file() {
        let mut c = controller();
        let fresh_writes = c.install(VariantId::DetZero);
        let cleared = c.uninstall();
        assert_eq!(cleared, fresh_writes, "every programmed register resets");
        assert_eq!(c.installed(), None);
        assert_eq!(c.registers().schedule().unwrap().programmed_signals(), 0);
        assert_eq!(c.install(VariantId::DetZero), fresh_writes);
    }

    #[test]
    fn issued_commands_are_typed_and_takeable() {
        let mut c = controller();
        c.install(VariantId::DetZero);
        c.issue(CodicOp::command(VariantId::DetZero, 0x1800))
            .unwrap();
        assert_eq!(c.issued()[0].op.variant(), Some(VariantId::DetZero));
        assert_eq!(c.issued()[0].row_addr, 0x1800);
        assert_eq!(c.issued()[0].class, OperationClass::DeterministicZero);
        let taken = c.take_issued();
        assert_eq!(taken.len(), 1);
        assert!(c.issued().is_empty());
    }
}
