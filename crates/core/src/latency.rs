//! Latency and energy of CODIC command variants (paper Table 2).
//!
//! Latency: a CODIC command occupies the bank like the DDRx command class
//! it resembles. Variants whose signals stay asserted through the window
//! occupy an activate-class slot (tRAS = 35 ns at DDR3-1600); variants that
//! terminate early occupy a precharge-class slot (tRP ≈ 13 ns). These are
//! exactly the 35 ns / 13 ns rows of Table 2.
//!
//! Energy: every variant routes the row address (≈ 40 % of command energy)
//! and drives the sense amplifier or precharge logic (≈ 40 %), so all
//! variants cost almost the same (§4.3). The full-restore activation costs
//! 17.3 nJ; every other variant saves one full bitline swing, ≈ 0.1 nJ.

use codic_dram::TimingParams;
use codic_power::EnergyModel;

use crate::classify::OperationClass;
use crate::variant::CodicVariant;

/// Energy saved by variants that do not perform a full restore, in
/// nanojoules (the Table 2 difference between CODIC-activate and the other
/// variants).
pub const NON_RESTORE_SAVING_NJ: f64 = 0.1;

/// The latency and energy of one CODIC command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommandCost {
    /// Command latency in nanoseconds.
    pub latency_ns: f64,
    /// Command energy in nanojoules.
    pub energy_nj: f64,
}

/// Computes the cost of `variant` under `timing` and `energy` models.
///
/// `class` should come from [`classify`](crate::classify::classify) (it is
/// a parameter so callers can batch-classify).
#[must_use]
pub fn command_cost(
    variant: &CodicVariant,
    class: OperationClass,
    timing: &TimingParams,
    energy: &EnergyModel,
) -> CommandCost {
    let latency_ns = if variant.occupies_full_window() {
        timing.ns(u64::from(timing.t_ras))
    } else {
        timing.ns(u64::from(timing.t_rp))
    }
    .floor();
    let base = energy.act_pre_nj();
    let energy_nj = if class == OperationClass::ActivateLike {
        base
    } else {
        base - NON_RESTORE_SAVING_NJ
    };
    CommandCost {
        latency_ns,
        energy_nj,
    }
}

/// One row of the paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Variant name as printed in the paper.
    pub primitive: String,
    /// Latency in nanoseconds.
    pub latency_ns: f64,
    /// Energy in nanojoules.
    pub energy_nj: f64,
}

/// Regenerates Table 2: latency and energy of the five CODIC variants.
#[must_use]
pub fn table2(timing: &TimingParams, energy: &EnergyModel) -> Vec<Table2Row> {
    use codic_circuit::CircuitParams;
    crate::library::table2_variants()
        .into_iter()
        .map(|v| {
            let class = crate::classify::classify(&v, &CircuitParams::default());
            let cost = command_cost(&v, class, timing, energy);
            Table2Row {
                primitive: v.name().to_string(),
                latency_ns: cost.latency_ns,
                energy_nj: cost.energy_nj,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    fn models() -> (TimingParams, EnergyModel) {
        (TimingParams::ddr3_1600_11(), EnergyModel::paper_default())
    }

    #[test]
    fn table2_latencies_match_paper() {
        let (t, e) = models();
        let rows = table2(&t, &e);
        let by_name: std::collections::HashMap<_, _> = rows
            .iter()
            .map(|r| (r.primitive.as_str(), r.latency_ns))
            .collect();
        assert_eq!(by_name["CODIC-activate"], 35.0);
        assert_eq!(by_name["CODIC-precharge"], 13.0);
        assert_eq!(by_name["CODIC-sig"], 35.0);
        assert_eq!(by_name["CODIC-sig-opt"], 13.0);
        assert_eq!(by_name["CODIC-det (zero)"], 35.0);
    }

    #[test]
    fn table2_energies_match_paper() {
        let (t, e) = models();
        for row in table2(&t, &e) {
            let expected = if row.primitive == "CODIC-activate" {
                17.3
            } else {
                17.2
            };
            assert!(
                (row.energy_nj - expected).abs() < 0.1,
                "{}: {} nJ (expected ≈ {expected})",
                row.primitive,
                row.energy_nj
            );
        }
    }

    #[test]
    fn sig_opt_is_significantly_faster_than_sig() {
        let (t, e) = models();
        let class = OperationClass::SignaturePreparation;
        let sig = command_cost(&library::codic_sig(), class, &t, &e);
        let opt = command_cost(&library::codic_sig_opt(), class, &t, &e);
        assert!(opt.latency_ns < sig.latency_ns / 2.0);
        assert!((opt.energy_nj - sig.energy_nj).abs() < 1e-9);
    }

    #[test]
    fn table2_has_five_rows() {
        let (t, e) = models();
        assert_eq!(table2(&t, &e).len(), 5);
    }
}
