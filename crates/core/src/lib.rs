//! The CODIC substrate — the primary contribution of "CODIC: A Low-Cost
//! Substrate for Enabling Custom In-DRAM Functionalities and Optimizations"
//! (Orosa et al., ISCA 2021).
//!
//! CODIC makes four previously fixed DRAM internal circuit timing signals
//! (`wl`, `EQ`, `sense_p`, `sense_n`) programmable: each can be asserted and
//! deasserted anywhere in a 25 ns window at 1 ns steps. This crate provides:
//!
//! - [`CodicVariant`]: a named four-signal timing program, with the paper's
//!   Table 1 presets in [`library`] (activate, precharge, CODIC-sig,
//!   CODIC-sig-opt, CODIC-det, CODIC-sigsa);
//! - [`variant_space`]: the combinatorics of the 300⁴-variant design space
//!   (§4.1.3) with iterators and samplers;
//! - [`mode_register`]: the 4 × 10-bit mode registers through which the
//!   memory controller programs timings over the standard MRS command
//!   (§4.2.2);
//! - [`delay_element`]: the configurable delay-element circuit model and its
//!   area/energy/delay costs (§4.2.1: 0.28 % per mat per signal, < 500 fJ,
//!   0.028 ns added mux delay);
//! - [`classify`]: functional classification of any variant by running it
//!   through the `codic-circuit` analog simulator;
//! - [`latency`]: the paper's Table 2 latency and energy costs;
//! - [`exec`]: the data transformation each variant applies to a DRAM row;
//! - [`interface`]: the controlled, range-restricted controller API the
//!   paper proposes to avoid exposing raw internal signals (§4.4);
//! - [`ops`]: the typed command set ([`VariantId`], [`CodicOp`]) and the
//!   [`InDramMechanism`] trait the use cases implement;
//! - [`device`]: the [`CodicDevice`] service layer composing
//!   mode-register programming, safe-range policy, and event-driven
//!   cycle-level scheduling into one typed command path;
//! - [`executor`]: std-only completion futures ([`OpFuture`]) and the
//!   [`block_on`] mini-executor, so services `await` operations instead
//!   of polling;
//! - [`pool`]: the sharded [`DevicePool`] serving path for
//!   throughput-style workloads, with the async
//!   [`submit_all_async`](pool::DevicePool::submit_all_async) /
//!   [`drive`](pool::DevicePool::drive) pair;
//! - [`spsc`]: bounded std-only single-producer/single-consumer rings,
//!   the queues that feed per-shard worker threads;
//! - [`worker`]: the optional pipelined pool mode ([`ShardWorkers`]):
//!   one thread per shard fed by SPSC rings, drained in deterministic
//!   per-shard seq order, bit-identical to the inline [`DevicePool`]
//!   path;
//! - [`fleet`]: the multi-tenant [`SharedFleet`] —
//!   one pool carved into exclusive per-tenant shard leases with
//!   deficit-round-robin admission and per-tenant quotas, each tenant's
//!   stream bit-identical to a private pool's;
//! - [`data`]: the lazily materialized compute-region data plane, so
//!   bulk-bitwise results are value-checked rather than only timed;
//! - [`simd`]: the bit-serial SIMD planner compiling element-wise vector
//!   add/and/or/xor into multi-row-activation sequences (SIMDRAM-style).
//!
//! # Example
//!
//! ```
//! use codic_core::library;
//! use codic_core::classify::{classify, OperationClass};
//! use codic_circuit::CircuitParams;
//!
//! let sig = library::codic_sig();
//! assert_eq!(
//!     classify(&sig, &CircuitParams::default()),
//!     OperationClass::SignaturePreparation,
//! );
//! ```

pub mod classify;
pub mod data;
pub mod delay_element;
pub mod device;
pub mod error;
pub mod exec;
pub mod executor;
pub mod fault;
pub mod fleet;
mod idmap;
pub mod interface;
pub mod latency;
pub mod library;
pub mod mode_register;
pub mod ops;
pub mod optimize;
pub mod pool;
pub mod simd;
pub mod spsc;
pub mod variant;
pub mod variant_space;
pub mod worker;

pub use classify::OperationClass;
pub use data::DataPlane;
pub use device::{
    BatchOutcome, CodicDevice, DeviceConfig, OpCompletion, OpCost, OpToken, SweepReport,
};
pub use error::CodicError;
pub use executor::{block_on, OpFuture};
pub use fault::{FaultCause, FaultPlan, FaultStats, HealthPolicy, OpOutcome, RetryPolicy};
pub use fleet::{FleetConfig, FleetEvent, FleetHandle, SharedFleet, TenantId};
pub use latency::CommandCost;
pub use mode_register::{ModeRegister, ModeRegisterFile};
pub use ops::{CodicOp, InDramMechanism, RowRegion, VariantId};
pub use pool::{DevicePool, PoolOutcome, PoolToken, ShardHealth};
pub use simd::{SimdLayout, VecOp};
pub use variant::CodicVariant;
pub use worker::ShardWorkers;
