//! The paper's named CODIC variants (Table 1 plus §4.1.1 and Appendix C).
//!
//! The timings come from the canonical `codic_circuit::schedules` module —
//! the single source of truth for Table 1 — and are wrapped here in named
//! [`CodicVariant`]s.

use codic_circuit::schedules;

use crate::variant::CodicVariant;

/// The standard activation implemented on the CODIC substrate
/// (Table 1: `wl [5↑,22↓] sense_p [7↓,22↑] sense_n [7↑,22↓]`).
#[must_use]
pub fn activation() -> CodicVariant {
    CodicVariant::new("CODIC-activate", schedules::activate())
}

/// The standard precharge implemented on the CODIC substrate
/// (Table 1: `EQ [5↑,11↓]`).
#[must_use]
pub fn precharge() -> CodicVariant {
    CodicVariant::new("CODIC-precharge", schedules::precharge())
}

/// CODIC-sig: drives the connected cell to `Vdd/2` so a subsequent
/// activation amplifies it according to process variation
/// (Table 1: `wl [5↑,22↓] EQ [7↑,22↓]`).
#[must_use]
pub fn codic_sig() -> CodicVariant {
    CodicVariant::new("CODIC-sig", schedules::codic_sig())
}

/// CODIC-sig-opt: the §4.1.1 optimization — the cell reaches `Vdd/2`
/// almost immediately after `EQ` rises, so both signals terminate early
/// and the command completes in a precharge-class latency (Table 2).
#[must_use]
pub fn codic_sig_opt() -> CodicVariant {
    CodicVariant::new("CODIC-sig-opt", schedules::codic_sig_opt())
}

/// CODIC-det generating zeros: `sense_n` first collapses the bitlines,
/// then `sense_p` resolves the race that the cell-loaded bitline always
/// loses (Table 1: `wl [5↑,22↓] sense_p [14↓,22↑] sense_n [7↑,22↓]`).
#[must_use]
pub fn codic_det_zero() -> CodicVariant {
    CodicVariant::new("CODIC-det (zero)", schedules::codic_det_zero())
}

/// CODIC-det generating ones: the mirror of [`codic_det_zero`] — `sense_p`
/// triggers first (§4.1.2).
#[must_use]
pub fn codic_det_one() -> CodicVariant {
    CodicVariant::new("CODIC-det (one)", schedules::codic_det_one())
}

/// CODIC-sigsa (Appendix C): both sense-amplifier enables fire at 3 ns on
/// the precharged bitline pair, resolving purely by sense-amplifier process
/// variation; `wl` rises at 5 ns to write the resolved value into the cell.
#[must_use]
pub fn codic_sigsa() -> CodicVariant {
    CodicVariant::new("CODIC-sigsa", schedules::codic_sigsa())
}

/// The alternative CODIC-sig timing the paper notes performs the same
/// function (§4.1.1: `wl` at 4 ns, `EQ` at 8 ns).
#[must_use]
pub fn codic_sig_alt() -> CodicVariant {
    CodicVariant::new("CODIC-sig (alt)", schedules::codic_sig_alt())
}

/// All Table 1 rows in order, for the Table 1 regeneration binary.
#[must_use]
pub fn table1() -> Vec<CodicVariant> {
    vec![activation(), precharge(), codic_sig(), codic_det_zero()]
}

/// The five Table 2 rows in order.
#[must_use]
pub fn table2_variants() -> Vec<CodicVariant> {
    vec![
        activation(),
        precharge(),
        codic_sig(),
        codic_sig_opt(),
        codic_det_zero(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use codic_circuit::{Signal, SignalPulse};

    fn pulse(v: &CodicVariant, s: Signal) -> SignalPulse {
        v.schedule().pulse(s).expect("pulse programmed")
    }

    #[test]
    fn table1_activation_timings() {
        let v = activation();
        assert_eq!(
            pulse(&v, Signal::Wordline),
            SignalPulse::new(5, 22).unwrap()
        );
        assert_eq!(pulse(&v, Signal::SenseP), SignalPulse::new(7, 22).unwrap());
        assert_eq!(pulse(&v, Signal::SenseN), SignalPulse::new(7, 22).unwrap());
        assert_eq!(v.schedule().pulse(Signal::Equalize), None);
    }

    #[test]
    fn table1_precharge_timings() {
        let v = precharge();
        assert_eq!(
            pulse(&v, Signal::Equalize),
            SignalPulse::new(5, 11).unwrap()
        );
        assert_eq!(v.schedule().programmed_signals(), 1);
    }

    #[test]
    fn table1_codic_sig_timings() {
        let v = codic_sig();
        assert_eq!(
            pulse(&v, Signal::Wordline),
            SignalPulse::new(5, 22).unwrap()
        );
        assert_eq!(
            pulse(&v, Signal::Equalize),
            SignalPulse::new(7, 22).unwrap()
        );
    }

    #[test]
    fn table1_codic_det_timings() {
        let v = codic_det_zero();
        assert_eq!(pulse(&v, Signal::SenseN), SignalPulse::new(7, 22).unwrap());
        assert_eq!(pulse(&v, Signal::SenseP), SignalPulse::new(14, 22).unwrap());
    }

    #[test]
    fn det_one_mirrors_det_zero() {
        let z = codic_det_zero();
        let o = codic_det_one();
        assert_eq!(
            pulse(&z, Signal::SenseN).assert_ns(),
            pulse(&o, Signal::SenseP).assert_ns()
        );
        assert_eq!(
            pulse(&z, Signal::SenseP).assert_ns(),
            pulse(&o, Signal::SenseN).assert_ns()
        );
    }

    #[test]
    fn sigsa_enables_amplifier_before_wordline() {
        let v = codic_sigsa();
        assert!(pulse(&v, Signal::SenseN).assert_ns() < pulse(&v, Signal::Wordline).assert_ns());
        assert_eq!(
            pulse(&v, Signal::SenseN).assert_ns(),
            pulse(&v, Signal::SenseP).assert_ns()
        );
    }

    #[test]
    fn sig_opt_terminates_early() {
        assert!(!codic_sig_opt().occupies_full_window());
        assert!(codic_sig().occupies_full_window());
    }

    #[test]
    fn sigsa_matches_circuit_crate_schedule() {
        assert_eq!(
            *codic_sigsa().schedule(),
            codic_circuit::montecarlo::sigsa_schedule()
        );
    }

    #[test]
    fn tables_have_expected_row_counts() {
        assert_eq!(table1().len(), 4);
        assert_eq!(table2_variants().len(), 5);
    }
}
