//! The 10-bit CODIC mode registers and their MRS programming model
//! (paper §4.2.2).
//!
//! Each of the four internal signals has one dedicated 10-bit mode register
//! holding its assert time (5 bits) and deassert time (5 bits). A variant is
//! installed by programming up to four MRs with the JEDEC mode-register-set
//! (MRS) command; the reserved all-ones encoding keeps a signal idle.

use codic_circuit::{Signal, SignalPulse, SignalSchedule};

use crate::error::CodicError;
use crate::variant::CodicVariant;

/// The all-ones 10-bit encoding meaning "signal stays idle".
pub const IDLE_ENCODING: u16 = 0x3FF;

/// One 10-bit CODIC mode register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModeRegister(u16);

impl ModeRegister {
    /// The idle (reset) encoding.
    #[must_use]
    pub fn idle() -> Self {
        ModeRegister(IDLE_ENCODING)
    }

    /// Encodes a pulse: deassert in bits 9..5, assert in bits 4..0.
    #[must_use]
    pub fn encode(pulse: SignalPulse) -> Self {
        ModeRegister((u16::from(pulse.deassert_ns()) << 5) | u16::from(pulse.assert_ns()))
    }

    /// The raw 10-bit value.
    #[must_use]
    pub fn raw(self) -> u16 {
        self.0
    }

    /// Reconstructs a register from a raw 10-bit value.
    ///
    /// # Errors
    ///
    /// Returns [`CodicError::InvalidRegister`] if the value exceeds 10 bits
    /// or encodes an invalid pulse (and is not the idle encoding).
    pub fn from_raw(raw: u16) -> Result<Self, CodicError> {
        if raw > IDLE_ENCODING {
            return Err(CodicError::InvalidRegister { raw });
        }
        let mr = ModeRegister(raw);
        if raw != IDLE_ENCODING {
            mr.decode_pulse()?;
        }
        Ok(mr)
    }

    /// Decodes the register into a pulse, or `None` for the idle encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CodicError::InvalidRegister`] if the stored times do not
    /// form a valid pulse.
    pub fn decode(self) -> Result<Option<SignalPulse>, CodicError> {
        if self.0 == IDLE_ENCODING {
            return Ok(None);
        }
        self.decode_pulse().map(Some)
    }

    fn decode_pulse(self) -> Result<SignalPulse, CodicError> {
        let assert_ns = (self.0 & 0x1F) as u8;
        let deassert_ns = (self.0 >> 5) as u8;
        SignalPulse::new(assert_ns, deassert_ns)
            .map_err(|source| CodicError::InvalidTiming { source })
    }
}

/// The four CODIC mode registers, indexed by signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModeRegisterFile {
    regs: [ModeRegister; 4],
    mrs_commands: u32,
}

impl Default for ModeRegisterFile {
    fn default() -> Self {
        ModeRegisterFile::new()
    }
}

impl ModeRegisterFile {
    /// A register file with all signals idle.
    #[must_use]
    pub fn new() -> Self {
        ModeRegisterFile {
            regs: [ModeRegister::idle(); 4],
            mrs_commands: 0,
        }
    }

    /// The register for `signal`.
    #[must_use]
    pub fn register(&self, signal: Signal) -> ModeRegister {
        self.regs[index(signal)]
    }

    /// Number of MRS commands issued so far (each register write is one
    /// MRS on the DDRx bus).
    #[must_use]
    pub fn mrs_commands(&self) -> u32 {
        self.mrs_commands
    }

    /// Writes one register via MRS.
    pub fn write(&mut self, signal: Signal, value: ModeRegister) {
        self.regs[index(signal)] = value;
        self.mrs_commands += 1;
    }

    /// Programs a full variant, writing only the registers that change and
    /// returning how many MRS commands that took.
    pub fn program(&mut self, variant: &CodicVariant) -> u32 {
        let before = self.mrs_commands;
        for sig in Signal::ALL {
            let target = match variant.schedule().pulse(sig) {
                Some(p) => ModeRegister::encode(p),
                None => ModeRegister::idle(),
            };
            if self.register(sig) != target {
                self.write(sig, target);
            }
        }
        self.mrs_commands - before
    }

    /// Reconstructs the currently programmed schedule.
    ///
    /// # Errors
    ///
    /// Returns [`CodicError::InvalidRegister`] if any register holds an
    /// invalid encoding (possible only via [`ModeRegisterFile::write`] of a
    /// hand-built register).
    pub fn schedule(&self) -> Result<SignalSchedule, CodicError> {
        let mut b = SignalSchedule::builder();
        for sig in Signal::ALL {
            if let Some(pulse) = self.register(sig).decode()? {
                b = b.pulse_validated(sig, pulse);
            }
        }
        Ok(b.build())
    }
}

fn index(signal: Signal) -> usize {
    match signal {
        Signal::Wordline => 0,
        Signal::Equalize => 1,
        Signal::SenseP => 2,
        Signal::SenseN => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn encode_decode_round_trips() {
        for pulse in SignalPulse::enumerate_all() {
            let mr = ModeRegister::encode(pulse);
            assert!(mr.raw() <= IDLE_ENCODING);
            assert_eq!(mr.decode().unwrap(), Some(pulse));
        }
    }

    #[test]
    fn idle_decodes_to_none() {
        assert_eq!(ModeRegister::idle().decode().unwrap(), None);
    }

    #[test]
    fn ten_bits_are_sufficient_for_the_window() {
        // 5 bits per edge hold 0..31 ≥ the 0..24 ns window (paper §4.2.2
        // sizes the registers at 10 bits).
        let max = SignalPulse::new(23, 24).unwrap();
        assert!(ModeRegister::encode(max).raw() < 1 << 10);
    }

    #[test]
    fn from_raw_rejects_wide_and_invalid_values() {
        assert!(ModeRegister::from_raw(1 << 10).is_err());
        // assert 7, deassert 3: invalid pulse.
        let raw = (3 << 5) | 7;
        assert!(ModeRegister::from_raw(raw).is_err());
        assert!(ModeRegister::from_raw(IDLE_ENCODING).is_ok());
    }

    #[test]
    fn program_and_readback_schedule() {
        let mut mrf = ModeRegisterFile::new();
        let v = library::codic_sig();
        let writes = mrf.program(&v);
        assert_eq!(writes, 2, "sig programs wl and EQ only");
        assert_eq!(&mrf.schedule().unwrap(), v.schedule());
    }

    #[test]
    fn reprogramming_writes_only_changed_registers() {
        let mut mrf = ModeRegisterFile::new();
        mrf.program(&library::codic_det_zero()); // wl, sense_n, sense_p
        let writes = mrf.program(&library::codic_det_one());
        // wl unchanged; sense_p and sense_n swap timings: 2 writes.
        assert_eq!(writes, 2);
    }

    #[test]
    fn programming_same_variant_twice_is_free() {
        let mut mrf = ModeRegisterFile::new();
        mrf.program(&library::activation());
        assert_eq!(mrf.program(&library::activation()), 0);
    }
}
