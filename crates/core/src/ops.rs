//! The typed CODIC command set: the single vocabulary every layer of the
//! service path speaks.
//!
//! The paper's §4.4 interface exposes *applications* — not raw timing
//! control — behind the memory controller. This module gives that
//! interface a typed surface: [`VariantId`] names the library variants
//! (no stringly-typed names cross the API), [`CodicOp`] is the command a
//! use case submits to a [`CodicDevice`](crate::device::CodicDevice), and
//! [`InDramMechanism`] is the trait the PUF, secure-deallocation, and
//! cold-boot use cases implement so they all issue through the same
//! controlled path.

use codic_dram::geometry::DramGeometry;
use codic_dram::request::RowOpKind;

use crate::classify::OperationClass;
use crate::library;
use crate::variant::CodicVariant;

/// A library CODIC variant, identified by type rather than by name string.
///
/// Each id maps to the [`library`] preset of the same name and to the
/// [`OperationClass`] the circuit-level classifier assigns it (the mapping
/// is pinned by tests against [`classify`](crate::classify::classify)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VariantId {
    /// The standard activation implemented on the substrate.
    Activate,
    /// The standard precharge implemented on the substrate.
    Precharge,
    /// CODIC-sig: signature preparation (cells to `Vdd/2`).
    Sig,
    /// CODIC-sig-opt: early-terminating signature preparation (§4.1.1).
    SigOpt,
    /// The alternative CODIC-sig timing (§4.1.1).
    SigAlt,
    /// CODIC-det generating zeros.
    DetZero,
    /// CODIC-det generating ones.
    DetOne,
    /// CODIC-sigsa: sense-amplifier signature amplification (Appendix C).
    Sigsa,
}

impl VariantId {
    /// Every library variant, in Table 1 / Appendix order.
    pub const ALL: [VariantId; 8] = [
        VariantId::Activate,
        VariantId::Precharge,
        VariantId::Sig,
        VariantId::SigOpt,
        VariantId::SigAlt,
        VariantId::DetZero,
        VariantId::DetOne,
        VariantId::Sigsa,
    ];

    /// The library preset this id names.
    #[must_use]
    pub fn variant(self) -> CodicVariant {
        match self {
            VariantId::Activate => library::activation(),
            VariantId::Precharge => library::precharge(),
            VariantId::Sig => library::codic_sig(),
            VariantId::SigOpt => library::codic_sig_opt(),
            VariantId::SigAlt => library::codic_sig_alt(),
            VariantId::DetZero => library::codic_det_zero(),
            VariantId::DetOne => library::codic_det_one(),
            VariantId::Sigsa => library::codic_sigsa(),
        }
    }

    /// The functional class the circuit-level classifier assigns this
    /// variant (pinned by tests against
    /// [`classify`](crate::classify::classify)).
    #[must_use]
    pub fn class(self) -> OperationClass {
        match self {
            VariantId::Activate => OperationClass::ActivateLike,
            VariantId::Precharge => OperationClass::PrechargeLike,
            VariantId::Sig | VariantId::SigOpt | VariantId::SigAlt => {
                OperationClass::SignaturePreparation
            }
            VariantId::DetZero => OperationClass::DeterministicZero,
            VariantId::DetOne => OperationClass::DeterministicOne,
            VariantId::Sigsa => OperationClass::SignatureAmplified,
        }
    }

    /// Whether commands of this variant destroy (or may destroy) cell
    /// contents.
    #[must_use]
    pub fn is_destructive(self) -> bool {
        self.class().is_destructive()
    }

    /// The display name (same as the library preset's).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            VariantId::Activate => "CODIC-activate",
            VariantId::Precharge => "CODIC-precharge",
            VariantId::Sig => "CODIC-sig",
            VariantId::SigOpt => "CODIC-sig-opt",
            VariantId::SigAlt => "CODIC-sig (alt)",
            VariantId::DetZero => "CODIC-det (zero)",
            VariantId::DetOne => "CODIC-det (one)",
            VariantId::Sigsa => "CODIC-sigsa",
        }
    }
}

impl std::fmt::Display for VariantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed command submitted to the CODIC service path.
///
/// The command set covers the CODIC variants themselves plus the two
/// in-DRAM copy baselines the studies compare against; all of them are
/// row-granular operations the controller schedules like activates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodicOp {
    /// One CODIC command of `variant` against the row containing
    /// `row_addr`.
    Command {
        /// Which library variant to execute.
        variant: VariantId,
        /// Physical byte address selecting the target row.
        row_addr: u64,
    },
    /// RowClone FPM copy from a zeroed row onto the row containing
    /// `row_addr` (baseline zeroing mechanism).
    RowCloneZero {
        /// Physical byte address selecting the target row.
        row_addr: u64,
    },
    /// LISA-clone copy from a zeroed row onto the row containing
    /// `row_addr` (baseline zeroing mechanism).
    LisaCloneZero {
        /// Physical byte address selecting the target row.
        row_addr: u64,
    },
    /// An ordinary 64 B read — plain memory traffic routed through the
    /// same typed path, so row operations and data accesses share one
    /// FR-FCFS scheduler (§4.4's single controlled interface).
    Read {
        /// Physical byte address of the line.
        addr: u64,
    },
    /// An ordinary 64 B write on the shared service path.
    Write {
        /// Physical byte address of the line.
        addr: u64,
    },
    /// Bulk row initialization to all-zeros or all-ones: one CODIC-det
    /// class command against the row containing `row_addr`, used to load
    /// the constant row a triple-row activation needs to realize AND/OR
    /// from MAJ (SIMDRAM-style).
    RowInit {
        /// Physical byte address selecting the target row.
        row_addr: u64,
        /// `true` fills the row with ones, `false` with zeros.
        ones: bool,
    },
    /// Fills the row containing `row_addr` with `pattern` repeated across
    /// every 64-bit word — modeled as a RowClone FPM copy from a
    /// pre-written pattern row, used to seed bit-sliced SIMD operands.
    RowFill {
        /// Physical byte address selecting the target row.
        row_addr: u64,
        /// The 64-bit pattern repeated across the row.
        pattern: u64,
    },
    /// RowClone FPM copy of the row containing `src_addr` onto the row
    /// containing `dst_addr` (the planner's data-movement primitive).
    RowCopy {
        /// Physical byte address selecting the source row.
        src_addr: u64,
        /// Physical byte address selecting the destination row.
        dst_addr: u64,
    },
    /// Triple-row activation over the compute group based at `row_addr`:
    /// the three consecutive rows `row_addr`, `row_addr + ROW_BYTES`, and
    /// `row_addr + 2·ROW_BYTES` charge-share and all three are overwritten
    /// with their bitwise majority. Realizes AND when the planner loads
    /// all-zeros into the third row first.
    MajAnd {
        /// Physical byte address of the first row of the 3-row group.
        row_addr: u64,
    },
    /// Triple-row activation identical in mechanism and result to
    /// [`CodicOp::MajAnd`] (both compute the 3-row majority); the mnemonic
    /// records that the planner loads all-ones into the third row to
    /// realize OR, or uses the group as a true 3-input majority (carry).
    MajOr {
        /// Physical byte address of the first row of the 3-row group.
        row_addr: u64,
    },
    /// Dual-contact negation: the row containing `dst_addr` becomes the
    /// bitwise complement of the row containing `src_addr` (Ambit-style
    /// NOT through the inverted sense-amplifier side).
    Not {
        /// Physical byte address selecting the source row (read, restored).
        src_addr: u64,
        /// Physical byte address selecting the overwritten destination row.
        dst_addr: u64,
    },
}

impl CodicOp {
    /// Shorthand for a [`CodicOp::Command`].
    #[must_use]
    pub fn command(variant: VariantId, row_addr: u64) -> Self {
        CodicOp::Command { variant, row_addr }
    }

    /// Shorthand for a [`CodicOp::Read`].
    #[must_use]
    pub fn read(addr: u64) -> Self {
        CodicOp::Read { addr }
    }

    /// Shorthand for a [`CodicOp::Write`].
    #[must_use]
    pub fn write(addr: u64) -> Self {
        CodicOp::Write { addr }
    }

    /// The physical byte address the operation targets (row-granular for
    /// row operations, line-granular for data accesses). Two-address
    /// operations report their *destination* — the row they overwrite —
    /// which is also the address the pool routes on.
    #[must_use]
    pub fn row_addr(self) -> u64 {
        match self {
            CodicOp::Command { row_addr, .. }
            | CodicOp::RowCloneZero { row_addr }
            | CodicOp::LisaCloneZero { row_addr }
            | CodicOp::RowInit { row_addr, .. }
            | CodicOp::RowFill { row_addr, .. }
            | CodicOp::MajAnd { row_addr }
            | CodicOp::MajOr { row_addr } => row_addr,
            CodicOp::RowCopy { dst_addr, .. } | CodicOp::Not { dst_addr, .. } => dst_addr,
            CodicOp::Read { addr } | CodicOp::Write { addr } => addr,
        }
    }

    /// The same operation retargeted at `row_addr` (used by row sweeps).
    /// Two-address operations keep their source and move the destination.
    #[must_use]
    pub fn with_row_addr(self, row_addr: u64) -> Self {
        match self {
            CodicOp::Command { variant, .. } => CodicOp::Command { variant, row_addr },
            CodicOp::RowCloneZero { .. } => CodicOp::RowCloneZero { row_addr },
            CodicOp::LisaCloneZero { .. } => CodicOp::LisaCloneZero { row_addr },
            CodicOp::Read { .. } => CodicOp::Read { addr: row_addr },
            CodicOp::Write { .. } => CodicOp::Write { addr: row_addr },
            CodicOp::RowInit { ones, .. } => CodicOp::RowInit { row_addr, ones },
            CodicOp::RowFill { pattern, .. } => CodicOp::RowFill { row_addr, pattern },
            CodicOp::RowCopy { src_addr, .. } => CodicOp::RowCopy {
                src_addr,
                dst_addr: row_addr,
            },
            CodicOp::MajAnd { .. } => CodicOp::MajAnd { row_addr },
            CodicOp::MajOr { .. } => CodicOp::MajOr { row_addr },
            CodicOp::Not { src_addr, .. } => CodicOp::Not {
                src_addr,
                dst_addr: row_addr,
            },
        }
    }

    /// The CODIC variant the operation installs, if it is a CODIC command.
    #[must_use]
    pub fn variant(self) -> Option<VariantId> {
        match self {
            CodicOp::Command { variant, .. } => Some(variant),
            _ => None,
        }
    }

    /// The functional class, for the controller's safe-range policy. The
    /// copy baselines overwrite the target row, so they are classed as
    /// deterministic zeroing; ordinary data accesses are no-ops to the
    /// policy (a write stores caller data, it does not destroy a row the
    /// way a CODIC command does).
    #[must_use]
    pub fn class(self) -> OperationClass {
        match self {
            CodicOp::Command { variant, .. } => variant.class(),
            CodicOp::RowCloneZero { .. } | CodicOp::LisaCloneZero { .. } => {
                OperationClass::DeterministicZero
            }
            CodicOp::Read { .. } | CodicOp::Write { .. } => OperationClass::NoOp,
            CodicOp::RowInit { .. }
            | CodicOp::RowFill { .. }
            | CodicOp::RowCopy { .. }
            | CodicOp::MajAnd { .. }
            | CodicOp::MajOr { .. }
            | CodicOp::Not { .. } => OperationClass::BulkBitwise,
        }
    }

    /// Whether the operation destroys (or may destroy) the target row.
    #[must_use]
    pub fn is_destructive(self) -> bool {
        self.class().is_destructive()
    }

    /// The row-operation kind the cycle-level controller schedules this
    /// command as, or `None` for ordinary data accesses ([`CodicOp::Read`]
    /// and [`CodicOp::Write`] are scheduled as column traffic, not as
    /// bank-occupying row operations).
    #[must_use]
    pub fn row_op_kind(self) -> Option<RowOpKind> {
        match self {
            CodicOp::Command { .. } | CodicOp::RowInit { .. } => Some(RowOpKind::Codic),
            CodicOp::RowCloneZero { .. } | CodicOp::RowFill { .. } | CodicOp::RowCopy { .. } => {
                Some(RowOpKind::RowClone)
            }
            CodicOp::LisaCloneZero { .. } => Some(RowOpKind::LisaClone),
            CodicOp::MajAnd { .. } | CodicOp::MajOr { .. } => Some(RowOpKind::TripleAct),
            CodicOp::Not { .. } => Some(RowOpKind::DualContact),
            CodicOp::Read { .. } | CodicOp::Write { .. } => None,
        }
    }

    /// Whether the operation is an ordinary data access (read/write)
    /// rather than a row operation.
    #[must_use]
    pub fn is_data_access(self) -> bool {
        matches!(self, CodicOp::Read { .. } | CodicOp::Write { .. })
    }

    /// Whether the operation belongs to the bulk-bitwise compute family
    /// (policed by the compute region rather than the safe range).
    #[must_use]
    pub fn is_compute(self) -> bool {
        self.class() == OperationClass::BulkBitwise
    }

    /// The row addresses the operation overwrites: the 3-row group for a
    /// triple-row activation, the destination row for every other row
    /// operation, and nothing for ordinary data accesses (a write stores
    /// caller data at line granularity; it does not destroy a row).
    #[must_use]
    pub fn written_rows(self) -> RowRegion {
        match self {
            CodicOp::Read { .. } | CodicOp::Write { .. } => RowRegion::new(self.row_addr(), 0),
            CodicOp::MajAnd { row_addr } | CodicOp::MajOr { row_addr } => {
                RowRegion::new(row_addr, 3)
            }
            _ => RowRegion::new(self.row_addr(), 1),
        }
    }
}

/// A contiguous range of DRAM rows, the planning granularity of
/// [`InDramMechanism`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowRegion {
    /// Physical byte address of the first row (row-aligned addresses
    /// address the row; others are truncated by the controller).
    pub start_addr: u64,
    /// Number of consecutive rows.
    pub rows: u64,
}

impl RowRegion {
    /// A region of `rows` rows starting at `start_addr`.
    #[must_use]
    pub fn new(start_addr: u64, rows: u64) -> Self {
        RowRegion { start_addr, rows }
    }

    /// The smallest whole-row region covering `len` bytes from `start`:
    /// the start is aligned down to its row and every row the byte span
    /// touches is included, so misaligned spans are never undercovered.
    #[must_use]
    pub fn covering_bytes(start: u64, len: u64) -> Self {
        if len == 0 {
            return RowRegion {
                start_addr: start,
                rows: 0,
            };
        }
        let row = DramGeometry::ROW_BYTES;
        let first = start / row;
        let last = (start + len - 1) / row;
        RowRegion {
            start_addr: first * row,
            rows: last - first + 1,
        }
    }

    /// Iterates the row addresses of the region.
    pub fn row_addrs(self) -> impl Iterator<Item = u64> {
        (0..self.rows).map(move |i| self.start_addr + i * DramGeometry::ROW_BYTES)
    }

    /// Bytes covered (whole rows).
    #[must_use]
    pub fn bytes(self) -> u64 {
        self.rows * DramGeometry::ROW_BYTES
    }
}

/// A CODIC use case: something that turns a row region into the typed
/// command stream it needs.
///
/// The PUF signature extraction, secure deallocation, and cold-boot
/// self-destruction mechanisms all implement this trait, so every use case
/// issues through the same [`CodicDevice`](crate::device::CodicDevice)
/// handle — the paper's §4.4 controlled interface — instead of private
/// row-op/timing plumbing.
pub trait InDramMechanism {
    /// Display name of the mechanism.
    fn name(&self) -> &str;

    /// The typed commands the mechanism issues over `region`, one per
    /// row. Mechanisms with no in-DRAM component (software baselines)
    /// return an empty plan.
    fn plan(&self, region: RowRegion) -> Vec<CodicOp>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use codic_circuit::CircuitParams;

    #[test]
    fn static_classes_match_the_circuit_classifier() {
        let params = CircuitParams::default();
        for id in VariantId::ALL {
            assert_eq!(
                id.class(),
                crate::classify::classify(&id.variant(), &params),
                "{id}"
            );
        }
    }

    #[test]
    fn names_match_the_library_presets() {
        for id in VariantId::ALL {
            assert_eq!(id.name(), id.variant().name(), "{id:?}");
        }
    }

    #[test]
    fn ops_map_to_row_op_kinds_and_classes() {
        let sig = CodicOp::command(VariantId::Sig, 0x2000);
        assert_eq!(sig.row_op_kind(), Some(RowOpKind::Codic));
        assert_eq!(sig.class(), OperationClass::SignaturePreparation);
        assert!(sig.is_destructive());
        assert_eq!(sig.row_addr(), 0x2000);

        let act = CodicOp::command(VariantId::Activate, 0);
        assert!(!act.is_destructive());

        let rc = CodicOp::RowCloneZero { row_addr: 64 };
        assert_eq!(rc.row_op_kind(), Some(RowOpKind::RowClone));
        assert_eq!(rc.class(), OperationClass::DeterministicZero);

        let lisa = CodicOp::LisaCloneZero { row_addr: 128 };
        assert_eq!(lisa.row_op_kind(), Some(RowOpKind::LisaClone));
        assert!(lisa.is_destructive());
    }

    #[test]
    fn data_accesses_are_policy_noops_without_a_row_op_kind() {
        for op in [CodicOp::read(0x40), CodicOp::write(0x80)] {
            assert_eq!(op.row_op_kind(), None);
            assert_eq!(op.class(), OperationClass::NoOp);
            assert!(!op.is_destructive());
            assert!(op.is_data_access());
            assert_eq!(op.variant(), None);
        }
        assert_eq!(CodicOp::read(0x40).row_addr(), 0x40);
        assert_eq!(CodicOp::write(0x80).row_addr(), 0x80);
        assert!(!CodicOp::command(VariantId::Sig, 0).is_data_access());
    }

    #[test]
    fn with_row_addr_retargets_every_op_kind() {
        for op in [
            CodicOp::command(VariantId::DetZero, 0),
            CodicOp::RowCloneZero { row_addr: 0 },
            CodicOp::LisaCloneZero { row_addr: 0 },
            CodicOp::read(0),
            CodicOp::write(0),
        ] {
            let moved = op.with_row_addr(0x4000);
            assert_eq!(moved.row_addr(), 0x4000);
            assert_eq!(moved.row_op_kind(), op.row_op_kind());
        }
    }

    #[test]
    fn regions_cover_partial_rows() {
        let r = RowRegion::covering_bytes(0, 8192 * 2 + 1);
        assert_eq!(r.rows, 3);
        assert_eq!(r.bytes(), 3 * 8192);
        let addrs: Vec<u64> = r.row_addrs().collect();
        assert_eq!(addrs, vec![0, 8192, 16384]);
    }

    #[test]
    fn misaligned_spans_cover_every_touched_row() {
        // 8 KB starting mid-row touches two rows; both must be covered.
        let r = RowRegion::covering_bytes(4096, 8192);
        assert_eq!(r.start_addr, 0, "start aligns down to its row");
        assert_eq!(r.rows, 2);
        assert_eq!(r.row_addrs().collect::<Vec<_>>(), vec![0, 8192]);
        assert_eq!(RowRegion::covering_bytes(4096, 0).rows, 0);
    }

    #[test]
    fn compute_ops_map_to_multi_row_kinds_and_the_bulk_bitwise_class() {
        let maj = CodicOp::MajAnd { row_addr: 0x6000 };
        assert_eq!(maj.row_op_kind(), Some(RowOpKind::TripleAct));
        assert_eq!(maj.class(), OperationClass::BulkBitwise);
        assert!(maj.is_destructive() && maj.is_compute());
        assert_eq!(maj.row_addr(), 0x6000);
        assert_eq!(
            maj.written_rows().row_addrs().collect::<Vec<_>>(),
            vec![0x6000, 0x8000, 0xA000],
            "a triple-row activation overwrites the whole 3-row group"
        );
        assert_eq!(
            CodicOp::MajOr { row_addr: 0 }.row_op_kind(),
            Some(RowOpKind::TripleAct)
        );

        let not = CodicOp::Not {
            src_addr: 0x2000,
            dst_addr: 0x4000,
        };
        assert_eq!(not.row_op_kind(), Some(RowOpKind::DualContact));
        assert_eq!(not.row_addr(), 0x4000, "routing follows the destination");
        assert_eq!(not.written_rows().row_addrs().collect::<Vec<_>>(), [0x4000]);

        let copy = CodicOp::RowCopy {
            src_addr: 0,
            dst_addr: 0x2000,
        };
        assert_eq!(copy.row_op_kind(), Some(RowOpKind::RowClone));
        assert_eq!(copy.row_addr(), 0x2000);

        for op in [
            CodicOp::RowInit {
                row_addr: 0x2000,
                ones: true,
            },
            CodicOp::RowFill {
                row_addr: 0x2000,
                pattern: 0xDEAD_BEEF,
            },
        ] {
            assert!(op.is_compute() && op.is_destructive());
            assert_eq!(op.written_rows().rows, 1);
        }
        assert_eq!(
            CodicOp::RowInit {
                row_addr: 0,
                ones: false
            }
            .row_op_kind(),
            Some(RowOpKind::Codic)
        );
        assert!(!CodicOp::read(0).is_compute());
        assert_eq!(CodicOp::read(64).written_rows().rows, 0);
    }

    #[test]
    fn with_row_addr_moves_the_destination_of_two_address_ops() {
        for op in [
            CodicOp::MajAnd { row_addr: 0 },
            CodicOp::MajOr { row_addr: 0 },
            CodicOp::RowInit {
                row_addr: 0,
                ones: false,
            },
            CodicOp::RowFill {
                row_addr: 0,
                pattern: 7,
            },
            CodicOp::RowCopy {
                src_addr: 0x1000,
                dst_addr: 0,
            },
            CodicOp::Not {
                src_addr: 0x1000,
                dst_addr: 0,
            },
        ] {
            let moved = op.with_row_addr(0x4000);
            assert_eq!(moved.row_addr(), 0x4000);
            assert_eq!(moved.row_op_kind(), op.row_op_kind());
        }
        // Sources are preserved when the destination moves.
        let moved = CodicOp::Not {
            src_addr: 0x1000,
            dst_addr: 0,
        }
        .with_row_addr(0x4000);
        assert_eq!(
            moved,
            CodicOp::Not {
                src_addr: 0x1000,
                dst_addr: 0x4000,
            }
        );
    }

    #[test]
    fn display_prints_paper_names() {
        assert_eq!(VariantId::Sig.to_string(), "CODIC-sig");
        assert_eq!(VariantId::DetZero.to_string(), "CODIC-det (zero)");
    }
}
