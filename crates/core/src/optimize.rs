//! Custom latency optimization with CODIC (paper §5.3.2).
//!
//! DRAM ships with conservative internal timings. With CODIC, "the
//! internal circuit timings can be optimized for a particular DRAM device":
//! rows whose cells share charge quickly can use an activation variant with
//! a shorter wl→sense interval. This module builds such variants and picks
//! the fastest one that still restores data reliably, verified through the
//! analog simulator — the in-silico analogue of the paper's proposed
//! error-characterization-driven re-implementation of commands.

use codic_circuit::outcome::classify_terminal;
use codic_circuit::sim::{DEFAULT_DT_NS, SETTLE_MARGIN_NS};
use codic_circuit::{
    CircuitParams, CircuitSimBatch, SenseOutcome, Signal, SignalSchedule, WINDOW_NS,
};
use rayon::prelude::*;

use crate::variant::CodicVariant;

/// Builds an activation variant whose sense amplifier fires `gap_ns` after
/// the wordline rises at 5 ns (the standard command uses 2 ns).
///
/// # Panics
///
/// Panics if the resulting pulse would leave the CODIC window; gaps of
/// 0–16 ns are always valid.
#[must_use]
pub fn activation_with_gap(gap_ns: u8) -> CodicVariant {
    let sense_at = 5 + gap_ns;
    assert!(sense_at < 23, "sense enable must fit the window");
    let schedule = SignalSchedule::builder()
        .pulse(Signal::Wordline, 5, 22)
        .expect("static timing")
        .pulse(Signal::SenseP, sense_at, 22)
        .expect("gap keeps the pulse in-window")
        .pulse(Signal::SenseN, sense_at, 22)
        .expect("gap keeps the pulse in-window")
        .build();
    CodicVariant::new(format!("CODIC-activate (gap {gap_ns} ns)"), schedule)
}

/// Whether an activation variant reliably restores both stored values on a
/// device described by `params` (including its offset/variation draw).
///
/// Both stored-value trials run as one [`CircuitSimBatch`] pass.
#[must_use]
pub fn restores_reliably(variant: &CodicVariant, params: &CircuitParams) -> bool {
    let mut batch = CircuitSimBatch::uniform(*params, 2);
    batch.set_cell_bits(&[false, true]);
    let duration_ns = f64::from(WINDOW_NS) + SETTLE_MARGIN_NS;
    let states = batch.run_terminal(variant.schedule(), duration_ns, DEFAULT_DT_NS);
    [SenseOutcome::RestoredZero, SenseOutcome::RestoredOne]
        .iter()
        .zip(&states)
        .all(|(want, s)| {
            classify_terminal(variant.schedule(), params.vdd, s.v_bitline, s.v_cell) == *want
        })
}

/// Finds the smallest wl→sense gap (in ns) that still restores reliably on
/// this device, trying gaps from 0 up to the standard 2 ns and beyond.
/// Returns the optimized variant and its gap.
#[must_use]
pub fn fastest_reliable_activation(params: &CircuitParams) -> (CodicVariant, u8) {
    for gap in 0..=8u8 {
        let v = activation_with_gap(gap);
        if restores_reliably(&v, params) {
            return (v, gap);
        }
    }
    (activation_with_gap(2), 2)
}

/// Optimizes a population of devices in parallel: one
/// [`fastest_reliable_activation`] search per parameter set, spread across
/// rayon worker threads, preserving input order.
#[must_use]
pub fn fastest_reliable_activations(devices: &[CircuitParams]) -> Vec<(CodicVariant, u8)> {
    devices
        .par_iter()
        .map(fastest_reliable_activation)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_gap_always_restores() {
        assert!(restores_reliably(
            &activation_with_gap(2),
            &CircuitParams::default()
        ));
    }

    #[test]
    fn fast_cells_admit_shorter_gaps() {
        // A device with a faster access transistor completes charge
        // sharing sooner and tolerates a smaller gap.
        let fast = CircuitParams {
            g_access: 2.0e-4,
            ..CircuitParams::default()
        };
        let (_, fast_gap) = fastest_reliable_activation(&fast);
        let slow = CircuitParams {
            g_access: 2.5e-5,
            ..CircuitParams::default()
        };
        let (_, slow_gap) = fastest_reliable_activation(&slow);
        assert!(
            fast_gap <= slow_gap,
            "fast {fast_gap} ns vs slow {slow_gap} ns"
        );
    }

    #[test]
    fn optimized_variant_still_classifies_as_activation() {
        let (v, _) = fastest_reliable_activation(&CircuitParams::default());
        assert_eq!(
            crate::classify::classify(&v, &CircuitParams::default()),
            crate::classify::OperationClass::ActivateLike
        );
    }

    #[test]
    #[should_panic(expected = "fit the window")]
    fn oversized_gap_is_rejected() {
        let _ = activation_with_gap(18);
    }

    #[test]
    fn parallel_device_sweep_matches_serial_search() {
        let devices = [
            CircuitParams::default(),
            CircuitParams {
                g_access: 2.0e-4,
                ..CircuitParams::default()
            },
            CircuitParams::ddr3l(),
        ];
        let sweep = fastest_reliable_activations(&devices);
        for (params, (variant, gap)) in devices.iter().zip(&sweep) {
            let (serial_variant, serial_gap) = fastest_reliable_activation(params);
            assert_eq!(*gap, serial_gap);
            assert_eq!(variant.schedule(), serial_variant.schedule());
        }
    }
}
