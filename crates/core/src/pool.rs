//! A sharded pool of [`CodicDevice`]s for throughput-style workloads.
//!
//! Serving-scale CODIC traffic (secure-deallocation trace replays,
//! full-module destruction sweeps, PUF evaluation campaigns) is
//! embarrassingly parallel across channels/ranks: each shard owns its own
//! mode registers, policy state, and cycle-level scheduler. [`DevicePool`]
//! builds one [`CodicDevice`] per shard, routes each [`CodicOp`] to the
//! shard owning its row, and drives the shards on rayon worker threads.
//!
//! The API is batched: [`DevicePool::submit_all`] distributes a batch and
//! hands back per-op [`PoolToken`]s; [`DevicePool::execute_all`] is the
//! submit → run → collect convenience wrapper the benchmarks use; and
//! [`DevicePool::submit_all_async`] + [`DevicePool::drive`] is the async
//! pair — one [`OpFuture`] per operation, resolved by the clock driver,
//! so services `await` completions instead of polling.
//!
//! The async path is allocation-free at steady state: each shard's
//! futures are recycled slots of that device's completion-slot arena
//! (no per-operation `Arc<Mutex>`), fulfilled in place by the rayon
//! worker driving the shard, and each shard's in-flight table is a
//! direct-mapped id window rather than a hash map.
//!
//! Long-running services bound their in-flight window with
//! [`DevicePool::outstanding`] (the pool-wide backpressure signal; the
//! per-shard figure is [`CodicDevice::outstanding`] via
//! [`DevicePool::device`]) and relieve pressure incrementally with
//! [`DevicePool::step`], which advances every busy shard by one engine
//! event instead of running all the way to idle.
//!
//! # Example
//!
//! The async serving pattern end to end — submit a batch, drive the
//! shard clocks, `await` typed completions:
//!
//! ```
//! use codic_core::device::DeviceConfig;
//! use codic_core::executor::block_on;
//! use codic_core::ops::{CodicOp, VariantId};
//! use codic_core::pool::DevicePool;
//! use codic_dram::{DramGeometry, TimingParams};
//!
//! let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
//!     .with_refresh(false);
//! let mut pool = DevicePool::new(2, &config);
//!
//! // One zeroing command and one ordinary read on the shared path.
//! let ops = [CodicOp::command(VariantId::DetZero, 0), CodicOp::read(64)];
//! let futures = pool.submit_all_async(&ops).unwrap();
//! assert_eq!(pool.outstanding(), 2);
//!
//! pool.drive(); // the clock driver resolves every future
//! assert_eq!(pool.outstanding(), 0);
//!
//! let completions: Vec<_> = futures.into_iter().map(block_on).collect();
//! assert_eq!(completions[0].op, ops[0]);
//! assert!(completions[1].finish_cycle > 0);
//! ```

use codic_dram::geometry::DramGeometry;
use rayon::prelude::*;

use crate::device::{BatchOutcome, CodicDevice, DeviceConfig, OpCompletion, OpToken, SweepReport};
use crate::error::CodicError;
use crate::executor::OpFuture;
use crate::fault::{FaultCause, HealthPolicy};
use crate::ops::CodicOp;

/// One shard's health state, as tracked by the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// The shard serves traffic.
    Healthy,
    /// The shard was drained and removed from the routing table; its row
    /// ranges are re-routed to the surviving shards.
    Quarantined {
        /// What condemned the shard.
        cause: FaultCause,
    },
}

impl ShardHealth {
    /// True while the shard serves traffic.
    #[must_use]
    pub fn is_healthy(self) -> bool {
        matches!(self, ShardHealth::Healthy)
    }
}

/// Completion token for an operation submitted through a pool: which
/// shard took it, and the device-level token inside that shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolToken {
    /// Index of the owning shard.
    pub shard: usize,
    /// The device-level completion token.
    pub token: OpToken,
}

/// Aggregate outcome of a pooled batch execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolOutcome {
    /// Per-shard batch outcomes, indexed by shard.
    pub per_shard: Vec<BatchOutcome>,
}

impl PoolOutcome {
    /// Total operations completed across all shards.
    #[must_use]
    pub fn ops(&self) -> usize {
        self.per_shard.iter().map(BatchOutcome::ops).sum()
    }

    /// The slowest shard's finish cycle (shards run concurrently, so this
    /// is the batch's wall-clock DRAM time).
    #[must_use]
    pub fn finish_cycle(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|o| o.finish_cycle)
            .max()
            .unwrap_or(0)
    }

    /// The slowest shard's finish time in nanoseconds of DRAM time.
    #[must_use]
    pub fn finish_ns(&self) -> f64 {
        self.per_shard
            .iter()
            .map(|o| o.finish_ns)
            .fold(0.0, f64::max)
    }

    /// Total accounted energy across shards, in nanojoules.
    #[must_use]
    pub fn energy_nj(&self) -> f64 {
        self.per_shard.iter().map(|o| o.energy_nj).sum()
    }

    /// Iterates every completion with its shard index.
    pub fn completions(&self) -> impl Iterator<Item = (usize, &OpCompletion)> {
        self.per_shard
            .iter()
            .enumerate()
            .flat_map(|(shard, o)| o.completions.iter().map(move |c| (shard, c)))
    }
}

/// Routing and health state over a contiguous range of a pool's shards,
/// with *lease-local* shard indices.
///
/// A lease is the pool's routing machinery made relocatable: shard
/// index `local` backs onto device `base + local` of the owning
/// [`DevicePool`], and every routing, quarantine, and clock-driving
/// decision consults only the lease's own health table. A `DevicePool`
/// routes all of its own traffic through one whole-pool lease
/// (`base = 0`), and the shared fleet
/// ([`SharedFleet`](crate::fleet::SharedFleet)) carves one pool into
/// disjoint per-tenant leases — the *same code path* either way, which
/// is what makes a tenant's stream on a shared fleet bit-identical to a
/// private pool's by construction rather than by re-implementation.
#[derive(Debug)]
pub struct ShardLease {
    /// First backing shard in the owning pool.
    base: usize,
    /// Rows per distribution block: one block spans every bank of a
    /// shard, so consecutive blocks rotate shards without starving any
    /// shard's bank-level parallelism.
    block_rows: u64,
    /// Per-shard health (lease-local); quarantined shards take no new
    /// traffic.
    health: Vec<ShardHealth>,
    /// Cache of healthy lease-local indices, in order — the re-routing
    /// table consulted by [`ShardLease::shard_of`] when a primary shard
    /// is quarantined.
    healthy: Vec<usize>,
    /// Byte address anchoring every bulk-bitwise compute op's route when
    /// the configuration carries a compute region. Compute state lives in
    /// one device's data plane, so every compute op must land on the one
    /// shard owning the region's base block — scattering the region's
    /// rows across shards would split the architectural state.
    compute_base: Option<u64>,
    /// When shards self-quarantine (checked only at batch boundaries).
    health_policy: HealthPolicy,
}

impl ShardLease {
    /// A lease over shards `base..base + shards` of a pool whose devices
    /// were built from `config`, all healthy.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub(crate) fn new(base: usize, shards: usize, config: &DeviceConfig) -> Self {
        assert!(shards > 0, "a lease needs at least one shard");
        ShardLease {
            base,
            block_rows: u64::from(config.geometry.total_banks()).max(1),
            health: vec![ShardHealth::Healthy; shards],
            healthy: (0..shards).collect(),
            compute_base: {
                let region = config.compute_range();
                (!region.is_empty()).then_some(region.start)
            },
            health_policy: HealthPolicy::default(),
        }
    }

    /// First backing shard in the owning pool.
    #[must_use]
    pub fn base(&self) -> usize {
        self.base
    }

    /// Number of leased shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.health.len()
    }

    /// Per-shard health states, lease-local indices.
    #[must_use]
    pub fn health(&self) -> &[ShardHealth] {
        &self.health
    }

    pub(crate) fn set_health_policy(&mut self, policy: HealthPolicy) {
        self.health_policy = policy;
    }

    /// The lease-local shard that owns `op`'s row (see
    /// [`DevicePool::shard_of`] for the routing contract — identical
    /// here, computed over the lease's own shard count and health).
    #[must_use]
    pub fn shard_of(&self, op: CodicOp) -> usize {
        let addr = match self.compute_base {
            Some(base) if op.is_compute() => base,
            _ => op.row_addr(),
        };
        let block = addr / DramGeometry::ROW_BYTES / self.block_rows;
        let primary = (block % self.health.len() as u64) as usize;
        if self.health[primary].is_healthy() || self.healthy.is_empty() {
            primary
        } else {
            self.healthy[(block % self.healthy.len() as u64) as usize]
        }
    }

    /// Re-admits `local` to the routing table with a factory-fresh
    /// health record (the pool resets the backing device).
    fn mark_healthy(&mut self, local: usize) {
        self.health[local] = ShardHealth::Healthy;
        self.healthy = (0..self.health.len())
            .filter(|&s| self.health[s].is_healthy())
            .collect();
    }

    /// Quarantines lease-local `shard` (see [`DevicePool::quarantine`]).
    /// `devices` is the owning pool's full device slice.
    pub(crate) fn quarantine(
        &mut self,
        devices: &mut [CodicDevice],
        shard: usize,
        cause: FaultCause,
    ) -> usize {
        if !self.health[shard].is_healthy() {
            return 0;
        }
        let device = &mut devices[self.base + shard];
        if !device.is_stalled() {
            device.run_to_idle();
        }
        let failed = device.fail_all_pending(cause);
        self.health[shard] = ShardHealth::Quarantined { cause };
        self.healthy = (0..self.health.len())
            .filter(|&s| self.health[s].is_healthy())
            .collect();
        failed
    }

    /// Applies the health policy to every healthy leased shard (see
    /// [`DevicePool::check_health`]).
    pub(crate) fn check_health(&mut self, devices: &mut [CodicDevice]) -> usize {
        let mut condemned = 0;
        for shard in 0..self.health.len() {
            if !self.health[shard].is_healthy() {
                continue;
            }
            let device = &devices[self.base + shard];
            let cause = if device.is_stalled() {
                Some(FaultCause::ClockStuck)
            } else {
                let stats = device.fault_stats();
                let breached = stats.delivered() >= self.health_policy.min_ops
                    && stats.failed_per_64k() > self.health_policy.max_failed_per_64k;
                breached.then_some(FaultCause::Quarantined)
            };
            if let Some(cause) = cause {
                self.quarantine(devices, shard, cause);
                condemned += 1;
            }
        }
        condemned
    }

    /// Submits `op` to lease-local `shard` (re-routing through
    /// [`ShardLease::shard_of`] if the precomputed route went stale),
    /// quarantining any shard that reports a wedged clock at submission
    /// and re-routing to a survivor.
    pub(crate) fn submit_routed<T>(
        &mut self,
        devices: &mut [CodicDevice],
        op: CodicOp,
        shard: usize,
        submit: impl Fn(&mut CodicDevice, CodicOp) -> Result<T, CodicError>,
    ) -> Result<(usize, T), CodicError> {
        let mut shard = if self.health[shard].is_healthy() {
            shard
        } else {
            self.shard_of(op)
        };
        loop {
            if self.healthy.is_empty() {
                return Err(CodicError::NoHealthyShards);
            }
            match submit(&mut devices[self.base + shard], op) {
                Err(CodicError::DeviceStalled) => {
                    // The shard can make no progress with a full queue:
                    // condemn it here rather than bounce the batch; its
                    // stranded ops resolve as typed ClockStuck failures.
                    self.quarantine(devices, shard, FaultCause::ClockStuck);
                    shard = self.shard_of(op);
                }
                result => return result.map(|t| (shard, t)),
            }
        }
    }

    /// Computes every op's lease-local shard and policy-checks it there,
    /// before anything is enqueued anywhere (the all-or-nothing
    /// pre-flight).
    pub(crate) fn route_checked(
        &self,
        devices: &[CodicDevice],
        ops: &[CodicOp],
    ) -> Result<Vec<usize>, CodicError> {
        if self.healthy.is_empty() && !ops.is_empty() {
            return Err(CodicError::NoHealthyShards);
        }
        ops.iter()
            .map(|&op| {
                let shard = self.shard_of(op);
                devices[self.base + shard]
                    .controller()
                    .check_safe_range(op)?;
                Ok(shard)
            })
            .collect()
    }

    /// [`DevicePool::submit_all_async_routed`] confined to the lease:
    /// shard indices in and out are lease-local.
    pub(crate) fn submit_all_async_routed(
        &mut self,
        devices: &mut [CodicDevice],
        ops: &[CodicOp],
    ) -> Result<Vec<(usize, OpFuture)>, CodicError> {
        let shards = self.route_checked(devices, ops)?;
        // `route_checked` already ran every op through the safe-range
        // policy (same config on every shard, so a mid-batch re-route
        // cannot invalidate the check): the per-op loop takes the
        // prechecked path and skips the redundant policy pass.
        ops.iter()
            .zip(&shards)
            .map(|(&op, &shard)| {
                self.submit_routed(devices, op, shard, CodicDevice::submit_async_prechecked)
            })
            .collect()
    }

    /// Advances every busy leased shard by one engine event (see
    /// [`DevicePool::step`]). Returns `false` when every leased shard
    /// was already idle.
    pub(crate) fn step(&self, devices: &mut [CodicDevice]) -> bool {
        let mut advanced = false;
        for device in &mut devices[self.base..self.base + self.health.len()] {
            // `u64::MAX` guarantees `step()` would be a no-op; skipping
            // the shard is state-identical and keeps the backpressure
            // loop from re-visiting drained shards every iteration.
            if device.next_event_cycle() != u64::MAX {
                advanced |= device.step();
            }
        }
        advanced
    }

    /// Runs every leased shard to idle on rayon worker threads; returns
    /// the slowest leased shard's finish cycle (see
    /// [`DevicePool::run_to_idle`]).
    pub(crate) fn run_to_idle(&self, devices: &mut [CodicDevice]) -> u64 {
        let mine = &mut devices[self.base..self.base + self.health.len()];
        // Shards with no actionable event would run-to-idle as a no-op;
        // skip them (their clocks stay put, contributing only `now`)
        // and skip the rayon dispatch entirely when every shard is
        // quiet — serving loops flush at every batch boundary, where
        // most shards are usually already drained.
        if mine.iter().all(|d| d.next_event_cycle() == u64::MAX) {
            return mine.iter().map(CodicDevice::now).max().unwrap_or(0);
        }
        mine.iter_mut()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|d| {
                if d.next_event_cycle() == u64::MAX {
                    d.now()
                } else {
                    d.run_to_idle()
                }
            })
            .collect::<Vec<_>>()
            .into_iter()
            .max()
            .unwrap_or(0)
    }

    /// Operations submitted but not yet completed across the leased
    /// shards — the lease's backpressure signal.
    pub(crate) fn outstanding(&self, devices: &[CodicDevice]) -> usize {
        devices[self.base..self.base + self.health.len()]
            .iter()
            .map(CodicDevice::outstanding)
            .sum()
    }

    /// The slowest leased shard's current cycle.
    pub(crate) fn now_max(&self, devices: &[CodicDevice]) -> u64 {
        devices[self.base..self.base + self.health.len()]
            .iter()
            .map(CodicDevice::now)
            .max()
            .unwrap_or(0)
    }
}

/// A pool of identical devices, one per channel/rank shard.
#[derive(Debug)]
pub struct DevicePool {
    devices: Vec<CodicDevice>,
    /// Whole-pool routing and health state (`base = 0`) — the same
    /// [`ShardLease`] machinery the shared fleet carves per tenant.
    lease: ShardLease,
}

impl DevicePool {
    /// Builds a pool of `shards` devices, each configured from `config`.
    ///
    /// When `config` carries a [`FaultPlan`](crate::fault::FaultPlan),
    /// each shard receives its *derived* per-shard plan
    /// ([`FaultPlan::for_shard`](crate::fault::FaultPlan::for_shard)):
    /// independently seeded misfire schedules, and the stuck clock only
    /// on its target shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(shards: usize, config: &DeviceConfig) -> Self {
        assert!(shards > 0, "a pool needs at least one shard");
        DevicePool {
            devices: (0..shards)
                .map(|shard| {
                    let mut config = config.clone();
                    config.fault = config.fault.map(|plan| plan.for_shard(shard));
                    CodicDevice::new(config)
                })
                .collect(),
            lease: ShardLease::new(0, shards, config),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.devices.len()
    }

    /// The shard that owns `op`'s row. Rows are distributed in blocks of
    /// one bank-rotation each (8 consecutive rows touch all 8 banks), so
    /// every shard keeps full bank-level parallelism under contiguous
    /// workloads.
    ///
    /// When the primary shard is quarantined, the block is re-routed
    /// deterministically over the surviving shards
    /// (`healthy[block % healthy.len()]`), so two pools with the same
    /// quarantine set route identically. With every shard quarantined the
    /// primary mapping is returned; submission paths reject that case
    /// with [`CodicError::NoHealthyShards`] before routing.
    ///
    /// Bulk-bitwise compute operations are the exception to row-based
    /// distribution: they all route by the compute region's base address
    /// (one shard's data plane owns the whole region), regardless of
    /// which compute row they touch.
    #[must_use]
    pub fn shard_of(&self, op: CodicOp) -> usize {
        self.lease.shard_of(op)
    }

    /// Per-shard health states, indexed by shard.
    #[must_use]
    pub fn health(&self) -> &[ShardHealth] {
        self.lease.health()
    }

    /// Replaces the self-quarantine policy (defaults to
    /// [`HealthPolicy::default`]).
    pub fn set_health_policy(&mut self, policy: HealthPolicy) {
        self.lease.set_health_policy(policy);
    }

    /// Quarantines `shard`: drains it if its clock still advances
    /// (pending completions are delivered with their own outcomes), fails
    /// whatever cannot finish with `cause`, and removes the shard from
    /// the routing table. Subsequent traffic for its row ranges is
    /// re-routed to the surviving shards. Returns the number of pending
    /// operations failed; quarantining an already-quarantined shard is a
    /// no-op returning 0.
    pub fn quarantine(&mut self, shard: usize, cause: FaultCause) -> usize {
        self.lease.quarantine(&mut self.devices, shard, cause)
    }

    /// Applies the health policy to every healthy shard: a stalled clock
    /// quarantines immediately ([`FaultCause::ClockStuck`]); a delivered
    /// failure rate past the policy threshold quarantines with
    /// [`FaultCause::Quarantined`]. Called by services at batch/flush
    /// boundaries — never on the per-op hot path. Returns the number of
    /// shards newly quarantined.
    pub fn check_health(&mut self) -> usize {
        self.lease.check_health(&mut self.devices)
    }

    /// One shard's device, for inspection.
    #[must_use]
    pub fn device(&self, shard: usize) -> &CodicDevice {
        &self.devices[shard]
    }

    /// The pool's full device slice, for lease holders (the shared fleet)
    /// that drive disjoint shard ranges through per-tenant
    /// [`ShardLease`]s.
    pub(crate) fn devices(&self) -> &[CodicDevice] {
        &self.devices
    }

    /// Mutable access to the full device slice (see
    /// [`DevicePool::devices`]).
    pub(crate) fn devices_mut(&mut self) -> &mut [CodicDevice] {
        &mut self.devices
    }

    /// Rebuilds `shard` from `config` exactly as given — **no** per-shard
    /// fault derivation; callers that want one pass a `config.fault`
    /// already derived — and re-admits it to the pool's own routing table
    /// as healthy. The shared fleet uses this to hand each new tenant
    /// factory-fresh devices whose fault schedules are seeded by
    /// *lease-local* shard index, so a leased range behaves
    /// bit-identically to a freshly built private pool of the same size.
    pub(crate) fn reset_shard(&mut self, shard: usize, config: &DeviceConfig) {
        self.devices[shard] = CodicDevice::new(config.clone());
        self.lease.mark_healthy(shard);
    }

    /// Distributes a batch across the shards, all-or-nothing: every
    /// operation is policy-checked against its shard before anything is
    /// enqueued anywhere. Tokens are returned in input order.
    ///
    /// A shard whose clock wedges with a full queue *during* submission
    /// is quarantined on the spot — its stranded operations resolve as
    /// typed [`FaultCause::ClockStuck`] failures — and the operation
    /// re-routes to a survivor, so a stuck clock never rejects a batch
    /// that a healthy shard could serve.
    ///
    /// # Errors
    ///
    /// Returns the first policy error without enqueuing anything, or
    /// [`CodicError::NoHealthyShards`] when every shard is (or becomes)
    /// quarantined — in the mid-batch case, operations submitted before
    /// the last shard wedged stay enqueued.
    pub fn submit_all(&mut self, ops: &[CodicOp]) -> Result<Vec<PoolToken>, CodicError> {
        let shards = self.lease.route_checked(&self.devices, ops)?;
        ops.iter()
            .zip(&shards)
            .map(|(&op, &shard)| {
                let (shard, token) = self.lease.submit_routed(
                    &mut self.devices,
                    op,
                    shard,
                    CodicDevice::submit_prechecked,
                )?;
                Ok(PoolToken { shard, token })
            })
            .collect()
    }

    /// Distributes a batch across the shards like
    /// [`DevicePool::submit_all`], but returns one [`OpFuture`] per
    /// operation instead of a token: services `await` typed completions
    /// rather than polling for them. The futures are resolved by the
    /// pool's clock driver, [`DevicePool::drive`] (or by each shard's own
    /// [`CodicDevice::step`]/[`CodicDevice::run_to_idle`]), in completion
    /// order.
    ///
    /// # Errors
    ///
    /// Returns the first policy error without enqueuing anything (see
    /// [`DevicePool::submit_all`] for the stuck-shard semantics).
    pub fn submit_all_async(&mut self, ops: &[CodicOp]) -> Result<Vec<OpFuture>, CodicError> {
        Ok(self
            .submit_all_async_routed(ops)?
            .into_iter()
            .map(|(_, future)| future)
            .collect())
    }

    /// [`DevicePool::submit_all_async`], additionally reporting the shard
    /// each operation actually landed on — which, under a mid-batch
    /// quarantine, can differ from what [`DevicePool::shard_of`] said
    /// before submission. Serving layers that label completions with
    /// their shard must use this variant.
    ///
    /// # Errors
    ///
    /// As [`DevicePool::submit_all_async`].
    pub fn submit_all_async_routed(
        &mut self,
        ops: &[CodicOp],
    ) -> Result<Vec<(usize, OpFuture)>, CodicError> {
        self.lease.submit_all_async_routed(&mut self.devices, ops)
    }

    /// The pool's clock driver: advances every shard's event engine to
    /// idle on rayon worker threads, resolving every outstanding
    /// [`OpFuture`] along the way (wakers fire from the worker threads).
    /// Returns the slowest shard's finish cycle.
    pub fn drive(&mut self) -> u64 {
        self.run_to_idle()
    }

    /// Runs every shard to idle on rayon worker threads; returns the
    /// slowest shard's finish cycle.
    pub fn run_to_idle(&mut self) -> u64 {
        self.lease.run_to_idle(&mut self.devices)
    }

    /// Advances every busy shard by one engine event — the incremental
    /// clock driver for serving loops that relieve backpressure without
    /// running all the way to idle (resolved [`OpFuture`]s become ready
    /// along the way). Returns `false` when every shard was already idle.
    ///
    /// Unlike [`DevicePool::drive`], this is a small, bounded amount of
    /// work, so it runs on the caller's thread (no rayon dispatch) and its
    /// effect is deterministic for a given submission sequence.
    pub fn step(&mut self) -> bool {
        self.lease.step(&mut self.devices)
    }

    /// Total operations submitted but not yet completed across all shards
    /// — the pool-wide backpressure signal for serving loops that bound
    /// their in-flight window. Per shard:
    /// [`CodicDevice::outstanding`] via [`DevicePool::device`].
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.devices.iter().map(CodicDevice::outstanding).sum()
    }

    /// Removes and returns all completions from every shard, tagged with
    /// their shard index.
    pub fn take_completions(&mut self) -> Vec<(usize, OpCompletion)> {
        self.devices
            .iter_mut()
            .enumerate()
            .flat_map(|(shard, d)| d.take_completions().into_iter().map(move |c| (shard, c)))
            .collect()
    }

    /// Distributes `ops` across the shards and runs them all to
    /// completion in parallel — the batched serving path.
    ///
    /// # Errors
    ///
    /// Returns the first policy error without enqueuing anything.
    pub fn execute_all(&mut self, ops: &[CodicOp]) -> Result<PoolOutcome, CodicError> {
        let routes = self.lease.route_checked(&self.devices, ops)?;
        let mut per_shard_ops: Vec<Vec<CodicOp>> = vec![Vec::new(); self.devices.len()];
        for (&op, &shard) in ops.iter().zip(&routes) {
            per_shard_ops[shard].push(op);
        }
        let outcomes = self.zip_map_devices(per_shard_ops, |device, ops| {
            device
                .execute_all(&ops)
                .expect("ops were policy-checked before distribution")
        });
        Ok(PoolOutcome {
            per_shard: outcomes,
        })
    }

    /// Runs an event-driven full-module sweep on every shard in parallel.
    ///
    /// Unlike [`DevicePool::execute_all`] — where the shards act as
    /// parallel channels serving *one* module-sized address space — the
    /// sweep treats each shard as its *own complete module*: a pool of N
    /// shards destroys N modules concurrently (the multi-module variant
    /// of the cold-boot scenario), and total swept rows are N × the
    /// per-module row count.
    ///
    /// # Errors
    ///
    /// Returns the policy error when the sweep is not allowed on a shard.
    pub fn sweep_all_rows(&mut self, proto: CodicOp) -> Result<Vec<SweepReport>, CodicError> {
        self.map_devices(|d| d.sweep_all_rows(proto))
            .into_iter()
            .collect()
    }

    /// Applies `f` to every device on rayon worker threads, preserving
    /// shard order.
    fn map_devices<R: Send>(&mut self, f: impl Fn(&mut CodicDevice) -> R + Sync) -> Vec<R> {
        let devices = std::mem::take(&mut self.devices);
        let (devices, results): (Vec<_>, Vec<_>) = devices
            .into_par_iter()
            .map(|mut d| {
                let r = f(&mut d);
                (d, r)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .unzip();
        self.devices = devices;
        results
    }

    fn zip_map_devices<T: Send, R: Send>(
        &mut self,
        inputs: Vec<T>,
        f: impl Fn(&mut CodicDevice, T) -> R + Sync,
    ) -> Vec<R> {
        let devices = std::mem::take(&mut self.devices);
        let (devices, results): (Vec<_>, Vec<_>) = devices
            .into_iter()
            .zip(inputs)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(mut d, input)| {
                let r = f(&mut d, input);
                (d, r)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .unzip();
        self.devices = devices;
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codic_dram::timing::TimingParams;

    use crate::ops::VariantId;

    fn pool(shards: usize) -> DevicePool {
        let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
            .with_refresh(false);
        DevicePool::new(shards, &config)
    }

    fn zero_ops(rows: u64) -> Vec<CodicOp> {
        (0..rows)
            .map(|i| CodicOp::command(VariantId::DetZero, i * DramGeometry::ROW_BYTES))
            .collect()
    }

    #[test]
    fn ops_are_block_interleaved_across_shards() {
        let p = pool(4);
        // 8 rows per block (one full bank rotation), then the next shard.
        let shards: Vec<usize> = zero_ops(32).iter().map(|&op| p.shard_of(op)).collect();
        let expected: Vec<usize> = (0..32).map(|i| (i / 8) % 4).collect();
        assert_eq!(shards, expected);
    }

    #[test]
    fn pooled_execution_completes_every_op() {
        let mut p = pool(4);
        let outcome = p.execute_all(&zero_ops(64)).unwrap();
        assert_eq!(outcome.ops(), 64);
        let per_shard_rows: Vec<u64> = (0..4).map(|s| p.device(s).stats().row_ops).collect();
        assert_eq!(per_shard_rows, vec![16, 16, 16, 16]);
        assert!(outcome.finish_cycle() > 0);
        assert!(outcome.energy_nj() > 0.0);
        assert_eq!(outcome.completions().count(), 64);
    }

    #[test]
    fn sharding_reduces_per_batch_dram_time() {
        let ops = zero_ops(256);
        let one = pool(1).execute_all(&ops).unwrap().finish_cycle();
        let four = pool(4).execute_all(&ops).unwrap().finish_cycle();
        assert!(
            four * 3 < one,
            "4 shards ({four} cycles) must beat 1 shard ({one} cycles)"
        );
    }

    #[test]
    fn pool_policy_is_all_or_nothing() {
        let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
            .with_safe_range(0..DramGeometry::ROW_BYTES)
            .with_refresh(false);
        let mut p = DevicePool::new(2, &config);
        // Op 0 is in range; op 1 (row 1) is outside every shard's range.
        let err = p.execute_all(&zero_ops(2)).unwrap_err();
        assert!(matches!(err, CodicError::AddressOutOfRange { .. }));
        assert_eq!(p.device(0).stats().row_ops, 0);
        assert_eq!(p.device(1).stats().row_ops, 0);
    }

    #[test]
    fn token_api_round_trips_through_completions() {
        let mut p = pool(2);
        let ops = zero_ops(8);
        let tokens = p.submit_all(&ops).unwrap();
        assert_eq!(tokens.len(), 8);
        p.run_to_idle();
        let completions = p.take_completions();
        assert_eq!(completions.len(), 8);
        for (i, token) in tokens.iter().enumerate() {
            let (shard, c) = completions
                .iter()
                .find(|(s, c)| *s == token.shard && c.token == token.token)
                .expect("every token completes");
            assert_eq!(*shard, p.shard_of(ops[i]));
            assert_eq!(c.op, ops[i]);
        }
    }

    #[test]
    fn async_batch_is_awaitable_after_drive() {
        use crate::executor::block_on;
        let ops = zero_ops(16);
        // Twin pools: the async path must report exactly what the
        // polling path reports.
        let mut sync_pool = pool(2);
        sync_pool.submit_all(&ops).unwrap();
        sync_pool.run_to_idle();
        let mut sync_completions: Vec<_> = sync_pool
            .take_completions()
            .into_iter()
            .map(|(_, c)| (c.op, c.finish_cycle))
            .collect();
        sync_completions.sort_by_key(|&(op, cycle)| (cycle, op.row_addr()));

        let mut async_pool = pool(2);
        let futures = async_pool.submit_all_async(&ops).unwrap();
        assert_eq!(futures.len(), 16);
        assert!(futures.iter().all(|f| !f.is_ready()));
        let finish = async_pool.drive();
        assert!(finish > 0);
        assert!(futures.iter().all(OpFuture::is_ready));
        let mut async_completions: Vec<_> = futures
            .into_iter()
            .map(|f| {
                let c = block_on(f);
                (c.op, c.finish_cycle)
            })
            .collect();
        async_completions.sort_by_key(|&(op, cycle)| (cycle, op.row_addr()));
        assert_eq!(sync_completions, async_completions);
        // Future-delivered completions never enter the polling buffer.
        assert!(async_pool.take_completions().is_empty());
    }

    #[test]
    fn step_relieves_outstanding_incrementally() {
        let mut p = pool(2);
        let ops = zero_ops(24);
        let mut futures = p.submit_all_async(&ops).unwrap();
        assert_eq!(p.outstanding(), 24);
        assert_eq!(p.device(0).outstanding() + p.device(1).outstanding(), 24);
        // Stepping events one at a time drains the window monotonically
        // to zero without ever calling the run-to-idle driver.
        let mut last = p.outstanding();
        while p.step() {
            let now = p.outstanding();
            assert!(now <= last, "outstanding never grows while stepping");
            last = now;
        }
        assert_eq!(p.outstanding(), 0);
        // Every future resolved through the incremental driver.
        let drained: Vec<_> = futures.iter_mut().filter_map(OpFuture::try_take).collect();
        assert_eq!(drained.len(), 24);
        assert!(!p.step(), "idle pool has no events");
    }

    #[test]
    fn quarantine_reroutes_deterministically_to_survivors() {
        let mut p = pool(4);
        assert!(p.health().iter().all(|h| h.is_healthy()));
        let failed = p.quarantine(2, crate::fault::FaultCause::Quarantined);
        assert_eq!(failed, 0, "an idle shard drains with nothing to fail");
        assert_eq!(
            p.health()[2],
            ShardHealth::Quarantined {
                cause: crate::fault::FaultCause::Quarantined
            }
        );
        // Blocks owned by healthy shards keep their primary mapping;
        // shard 2's blocks land on healthy[block % 3] — a pure function
        // of the quarantine set, so a twin pool routes identically.
        let routes: Vec<usize> = zero_ops(32).iter().map(|&op| p.shard_of(op)).collect();
        let healthy = [0usize, 1, 3];
        let expected: Vec<usize> = (0..32u64)
            .map(|i| {
                let block = i / 8;
                let primary = (block % 4) as usize;
                if primary == 2 {
                    healthy[(block % 3) as usize]
                } else {
                    primary
                }
            })
            .collect();
        assert_eq!(routes, expected);
        // Traffic still completes, all on surviving shards.
        let outcome = p.execute_all(&zero_ops(32)).unwrap();
        assert_eq!(outcome.ops(), 32);
        assert_eq!(p.device(2).stats().row_ops, 0);
        // Double quarantine is a no-op.
        assert_eq!(p.quarantine(2, crate::fault::FaultCause::ClockStuck), 0);
    }

    #[test]
    fn fully_quarantined_pool_rejects_submissions() {
        let mut p = pool(2);
        p.quarantine(0, crate::fault::FaultCause::Quarantined);
        p.quarantine(1, crate::fault::FaultCause::Quarantined);
        let err = p.submit_all(&zero_ops(1)).unwrap_err();
        assert_eq!(err, CodicError::NoHealthyShards);
        let err = p.execute_all(&zero_ops(1)).unwrap_err();
        assert_eq!(err, CodicError::NoHealthyShards);
        // An empty batch is still fine: nothing to route.
        assert!(p.submit_all(&[]).unwrap().is_empty());
    }

    #[test]
    fn compute_ops_all_route_to_the_region_owning_shard() {
        let geometry = DramGeometry::module_mib(64);
        let config = DeviceConfig::new(geometry, TimingParams::ddr3_1600_11())
            .with_refresh(false)
            .with_compute_rows(16);
        let mut p = DevicePool::new(4, &config);
        let base = config.compute_range().start;
        let row = DramGeometry::ROW_BYTES;
        let ops = [
            CodicOp::RowFill {
                row_addr: base,
                pattern: 0b1100,
            },
            CodicOp::RowFill {
                row_addr: base + row,
                pattern: 0b1010,
            },
            CodicOp::RowInit {
                row_addr: base + 2 * row,
                ones: false,
            },
            CodicOp::MajAnd { row_addr: base },
        ];
        // Row-based distribution would scatter these 16 rows; compute
        // routing pins them all to the shard owning the region base, so
        // one data plane sees the whole dependency chain.
        let owner = p.shard_of(ops[0]);
        assert!(ops.iter().all(|&op| p.shard_of(op) == owner));
        let outcome = p.execute_all(&ops).unwrap();
        assert_eq!(outcome.ops(), 4);
        assert!(outcome.completions().all(|(shard, _)| shard == owner));
        // The owning shard's data plane holds the AND result (1100 & 1010).
        let plane = p.device(owner).data_plane().unwrap();
        assert_eq!(plane.row(base)[0], 0b1000);
        // Non-compute traffic still block-interleaves across all shards.
        let shards: std::collections::HashSet<usize> =
            zero_ops(32).iter().map(|&op| p.shard_of(op)).collect();
        assert_eq!(shards.len(), 4);
    }

    #[test]
    fn pooled_sweep_destroys_one_full_module_per_shard() {
        let mut p = pool(2);
        let reports = p
            .sweep_all_rows(CodicOp::command(VariantId::DetZero, 0))
            .unwrap();
        assert_eq!(reports.len(), 2);
        for r in reports {
            assert_eq!(r.rows, DramGeometry::module_mib(64).total_rows());
        }
    }
}
