//! A sharded pool of [`CodicDevice`]s for throughput-style workloads.
//!
//! Serving-scale CODIC traffic (secure-deallocation trace replays,
//! full-module destruction sweeps, PUF evaluation campaigns) is
//! embarrassingly parallel across channels/ranks: each shard owns its own
//! mode registers, policy state, and cycle-level scheduler. [`DevicePool`]
//! builds one [`CodicDevice`] per shard, routes each [`CodicOp`] to the
//! shard owning its row, and drives the shards on rayon worker threads.
//!
//! The API is batched: [`DevicePool::submit_all`] distributes a batch and
//! hands back per-op [`PoolToken`]s; [`DevicePool::execute_all`] is the
//! submit → run → collect convenience wrapper the benchmarks use; and
//! [`DevicePool::submit_all_async`] + [`DevicePool::drive`] is the async
//! pair — one [`OpFuture`] per operation, resolved by the clock driver,
//! so services `await` completions instead of polling.
//!
//! The async path is allocation-free at steady state: each shard's
//! futures are recycled slots of that device's completion-slot arena
//! (no per-operation `Arc<Mutex>`), fulfilled in place by the rayon
//! worker driving the shard, and each shard's in-flight table is a
//! direct-mapped id window rather than a hash map.
//!
//! Long-running services bound their in-flight window with
//! [`DevicePool::outstanding`] (the pool-wide backpressure signal; the
//! per-shard figure is [`CodicDevice::outstanding`] via
//! [`DevicePool::device`]) and relieve pressure incrementally with
//! [`DevicePool::step`], which advances every busy shard by one engine
//! event instead of running all the way to idle.
//!
//! # Example
//!
//! The async serving pattern end to end — submit a batch, drive the
//! shard clocks, `await` typed completions:
//!
//! ```
//! use codic_core::device::DeviceConfig;
//! use codic_core::executor::block_on;
//! use codic_core::ops::{CodicOp, VariantId};
//! use codic_core::pool::DevicePool;
//! use codic_dram::{DramGeometry, TimingParams};
//!
//! let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
//!     .with_refresh(false);
//! let mut pool = DevicePool::new(2, &config);
//!
//! // One zeroing command and one ordinary read on the shared path.
//! let ops = [CodicOp::command(VariantId::DetZero, 0), CodicOp::read(64)];
//! let futures = pool.submit_all_async(&ops).unwrap();
//! assert_eq!(pool.outstanding(), 2);
//!
//! pool.drive(); // the clock driver resolves every future
//! assert_eq!(pool.outstanding(), 0);
//!
//! let completions: Vec<_> = futures.into_iter().map(block_on).collect();
//! assert_eq!(completions[0].op, ops[0]);
//! assert!(completions[1].finish_cycle > 0);
//! ```

use codic_dram::geometry::DramGeometry;
use rayon::prelude::*;

use crate::device::{BatchOutcome, CodicDevice, DeviceConfig, OpCompletion, OpToken, SweepReport};
use crate::error::CodicError;
use crate::executor::OpFuture;
use crate::ops::CodicOp;

/// Completion token for an operation submitted through a pool: which
/// shard took it, and the device-level token inside that shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolToken {
    /// Index of the owning shard.
    pub shard: usize,
    /// The device-level completion token.
    pub token: OpToken,
}

/// Aggregate outcome of a pooled batch execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolOutcome {
    /// Per-shard batch outcomes, indexed by shard.
    pub per_shard: Vec<BatchOutcome>,
}

impl PoolOutcome {
    /// Total operations completed across all shards.
    #[must_use]
    pub fn ops(&self) -> usize {
        self.per_shard.iter().map(BatchOutcome::ops).sum()
    }

    /// The slowest shard's finish cycle (shards run concurrently, so this
    /// is the batch's wall-clock DRAM time).
    #[must_use]
    pub fn finish_cycle(&self) -> u64 {
        self.per_shard
            .iter()
            .map(|o| o.finish_cycle)
            .max()
            .unwrap_or(0)
    }

    /// The slowest shard's finish time in nanoseconds of DRAM time.
    #[must_use]
    pub fn finish_ns(&self) -> f64 {
        self.per_shard
            .iter()
            .map(|o| o.finish_ns)
            .fold(0.0, f64::max)
    }

    /// Total accounted energy across shards, in nanojoules.
    #[must_use]
    pub fn energy_nj(&self) -> f64 {
        self.per_shard.iter().map(|o| o.energy_nj).sum()
    }

    /// Iterates every completion with its shard index.
    pub fn completions(&self) -> impl Iterator<Item = (usize, &OpCompletion)> {
        self.per_shard
            .iter()
            .enumerate()
            .flat_map(|(shard, o)| o.completions.iter().map(move |c| (shard, c)))
    }
}

/// A pool of identical devices, one per channel/rank shard.
#[derive(Debug)]
pub struct DevicePool {
    devices: Vec<CodicDevice>,
    /// Rows per distribution block: one block spans every bank of a
    /// shard, so consecutive blocks rotate shards without starving any
    /// shard's bank-level parallelism.
    block_rows: u64,
}

impl DevicePool {
    /// Builds a pool of `shards` devices, each configured from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(shards: usize, config: &DeviceConfig) -> Self {
        assert!(shards > 0, "a pool needs at least one shard");
        DevicePool {
            devices: (0..shards)
                .map(|_| CodicDevice::new(config.clone()))
                .collect(),
            block_rows: u64::from(config.geometry.total_banks()).max(1),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.devices.len()
    }

    /// The shard that owns `op`'s row. Rows are distributed in blocks of
    /// one bank-rotation each (8 consecutive rows touch all 8 banks), so
    /// every shard keeps full bank-level parallelism under contiguous
    /// workloads.
    #[must_use]
    pub fn shard_of(&self, op: CodicOp) -> usize {
        let block = op.row_addr() / DramGeometry::ROW_BYTES / self.block_rows;
        (block % self.devices.len() as u64) as usize
    }

    /// One shard's device, for inspection.
    #[must_use]
    pub fn device(&self, shard: usize) -> &CodicDevice {
        &self.devices[shard]
    }

    /// Distributes a batch across the shards, all-or-nothing: every
    /// operation is policy-checked against its shard before anything is
    /// enqueued anywhere. Tokens are returned in input order.
    ///
    /// # Errors
    ///
    /// Returns the first policy error without enqueuing anything.
    pub fn submit_all(&mut self, ops: &[CodicOp]) -> Result<Vec<PoolToken>, CodicError> {
        let shards = self.route_checked(ops)?;
        ops.iter()
            .zip(&shards)
            .map(|(&op, &shard)| {
                self.devices[shard]
                    .submit(op)
                    .map(|token| PoolToken { shard, token })
            })
            .collect()
    }

    /// Computes every op's shard and policy-checks it there, before
    /// anything is enqueued anywhere (the all-or-nothing pre-flight).
    fn route_checked(&self, ops: &[CodicOp]) -> Result<Vec<usize>, CodicError> {
        ops.iter()
            .map(|&op| {
                let shard = self.shard_of(op);
                self.devices[shard].controller().check_safe_range(op)?;
                Ok(shard)
            })
            .collect()
    }

    /// Distributes a batch across the shards like
    /// [`DevicePool::submit_all`], but returns one [`OpFuture`] per
    /// operation instead of a token: services `await` typed completions
    /// rather than polling for them. The futures are resolved by the
    /// pool's clock driver, [`DevicePool::drive`] (or by each shard's own
    /// [`CodicDevice::step`]/[`CodicDevice::run_to_idle`]), in completion
    /// order.
    ///
    /// # Errors
    ///
    /// Returns the first policy error without enqueuing anything.
    pub fn submit_all_async(&mut self, ops: &[CodicOp]) -> Result<Vec<OpFuture>, CodicError> {
        let shards = self.route_checked(ops)?;
        ops.iter()
            .zip(&shards)
            .map(|(&op, &shard)| self.devices[shard].submit_async(op))
            .collect()
    }

    /// The pool's clock driver: advances every shard's event engine to
    /// idle on rayon worker threads, resolving every outstanding
    /// [`OpFuture`] along the way (wakers fire from the worker threads).
    /// Returns the slowest shard's finish cycle.
    pub fn drive(&mut self) -> u64 {
        self.run_to_idle()
    }

    /// Runs every shard to idle on rayon worker threads; returns the
    /// slowest shard's finish cycle.
    pub fn run_to_idle(&mut self) -> u64 {
        self.map_devices(CodicDevice::run_to_idle)
            .into_iter()
            .max()
            .unwrap_or(0)
    }

    /// Advances every busy shard by one engine event — the incremental
    /// clock driver for serving loops that relieve backpressure without
    /// running all the way to idle (resolved [`OpFuture`]s become ready
    /// along the way). Returns `false` when every shard was already idle.
    ///
    /// Unlike [`DevicePool::drive`], this is a small, bounded amount of
    /// work, so it runs on the caller's thread (no rayon dispatch) and its
    /// effect is deterministic for a given submission sequence.
    pub fn step(&mut self) -> bool {
        let mut advanced = false;
        for device in &mut self.devices {
            advanced |= device.step();
        }
        advanced
    }

    /// Total operations submitted but not yet completed across all shards
    /// — the pool-wide backpressure signal for serving loops that bound
    /// their in-flight window. Per shard:
    /// [`CodicDevice::outstanding`] via [`DevicePool::device`].
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.devices.iter().map(CodicDevice::outstanding).sum()
    }

    /// Removes and returns all completions from every shard, tagged with
    /// their shard index.
    pub fn take_completions(&mut self) -> Vec<(usize, OpCompletion)> {
        self.devices
            .iter_mut()
            .enumerate()
            .flat_map(|(shard, d)| d.take_completions().into_iter().map(move |c| (shard, c)))
            .collect()
    }

    /// Distributes `ops` across the shards and runs them all to
    /// completion in parallel — the batched serving path.
    ///
    /// # Errors
    ///
    /// Returns the first policy error without enqueuing anything.
    pub fn execute_all(&mut self, ops: &[CodicOp]) -> Result<PoolOutcome, CodicError> {
        let routes = self.route_checked(ops)?;
        let mut per_shard_ops: Vec<Vec<CodicOp>> = vec![Vec::new(); self.devices.len()];
        for (&op, &shard) in ops.iter().zip(&routes) {
            per_shard_ops[shard].push(op);
        }
        let outcomes = self.zip_map_devices(per_shard_ops, |device, ops| {
            device
                .execute_all(&ops)
                .expect("ops were policy-checked before distribution")
        });
        Ok(PoolOutcome {
            per_shard: outcomes,
        })
    }

    /// Runs an event-driven full-module sweep on every shard in parallel.
    ///
    /// Unlike [`DevicePool::execute_all`] — where the shards act as
    /// parallel channels serving *one* module-sized address space — the
    /// sweep treats each shard as its *own complete module*: a pool of N
    /// shards destroys N modules concurrently (the multi-module variant
    /// of the cold-boot scenario), and total swept rows are N × the
    /// per-module row count.
    ///
    /// # Errors
    ///
    /// Returns the policy error when the sweep is not allowed on a shard.
    pub fn sweep_all_rows(&mut self, proto: CodicOp) -> Result<Vec<SweepReport>, CodicError> {
        self.map_devices(|d| d.sweep_all_rows(proto))
            .into_iter()
            .collect()
    }

    /// Applies `f` to every device on rayon worker threads, preserving
    /// shard order.
    fn map_devices<R: Send>(&mut self, f: impl Fn(&mut CodicDevice) -> R + Sync) -> Vec<R> {
        let devices = std::mem::take(&mut self.devices);
        let (devices, results): (Vec<_>, Vec<_>) = devices
            .into_par_iter()
            .map(|mut d| {
                let r = f(&mut d);
                (d, r)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .unzip();
        self.devices = devices;
        results
    }

    fn zip_map_devices<T: Send, R: Send>(
        &mut self,
        inputs: Vec<T>,
        f: impl Fn(&mut CodicDevice, T) -> R + Sync,
    ) -> Vec<R> {
        let devices = std::mem::take(&mut self.devices);
        let (devices, results): (Vec<_>, Vec<_>) = devices
            .into_iter()
            .zip(inputs)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(mut d, input)| {
                let r = f(&mut d, input);
                (d, r)
            })
            .collect::<Vec<_>>()
            .into_iter()
            .unzip();
        self.devices = devices;
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codic_dram::timing::TimingParams;

    use crate::ops::VariantId;

    fn pool(shards: usize) -> DevicePool {
        let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
            .with_refresh(false);
        DevicePool::new(shards, &config)
    }

    fn zero_ops(rows: u64) -> Vec<CodicOp> {
        (0..rows)
            .map(|i| CodicOp::command(VariantId::DetZero, i * DramGeometry::ROW_BYTES))
            .collect()
    }

    #[test]
    fn ops_are_block_interleaved_across_shards() {
        let p = pool(4);
        // 8 rows per block (one full bank rotation), then the next shard.
        let shards: Vec<usize> = zero_ops(32).iter().map(|&op| p.shard_of(op)).collect();
        let expected: Vec<usize> = (0..32).map(|i| (i / 8) % 4).collect();
        assert_eq!(shards, expected);
    }

    #[test]
    fn pooled_execution_completes_every_op() {
        let mut p = pool(4);
        let outcome = p.execute_all(&zero_ops(64)).unwrap();
        assert_eq!(outcome.ops(), 64);
        let per_shard_rows: Vec<u64> = (0..4).map(|s| p.device(s).stats().row_ops).collect();
        assert_eq!(per_shard_rows, vec![16, 16, 16, 16]);
        assert!(outcome.finish_cycle() > 0);
        assert!(outcome.energy_nj() > 0.0);
        assert_eq!(outcome.completions().count(), 64);
    }

    #[test]
    fn sharding_reduces_per_batch_dram_time() {
        let ops = zero_ops(256);
        let one = pool(1).execute_all(&ops).unwrap().finish_cycle();
        let four = pool(4).execute_all(&ops).unwrap().finish_cycle();
        assert!(
            four * 3 < one,
            "4 shards ({four} cycles) must beat 1 shard ({one} cycles)"
        );
    }

    #[test]
    fn pool_policy_is_all_or_nothing() {
        let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
            .with_safe_range(0..DramGeometry::ROW_BYTES)
            .with_refresh(false);
        let mut p = DevicePool::new(2, &config);
        // Op 0 is in range; op 1 (row 1) is outside every shard's range.
        let err = p.execute_all(&zero_ops(2)).unwrap_err();
        assert!(matches!(err, CodicError::AddressOutOfRange { .. }));
        assert_eq!(p.device(0).stats().row_ops, 0);
        assert_eq!(p.device(1).stats().row_ops, 0);
    }

    #[test]
    fn token_api_round_trips_through_completions() {
        let mut p = pool(2);
        let ops = zero_ops(8);
        let tokens = p.submit_all(&ops).unwrap();
        assert_eq!(tokens.len(), 8);
        p.run_to_idle();
        let completions = p.take_completions();
        assert_eq!(completions.len(), 8);
        for (i, token) in tokens.iter().enumerate() {
            let (shard, c) = completions
                .iter()
                .find(|(s, c)| *s == token.shard && c.token == token.token)
                .expect("every token completes");
            assert_eq!(*shard, p.shard_of(ops[i]));
            assert_eq!(c.op, ops[i]);
        }
    }

    #[test]
    fn async_batch_is_awaitable_after_drive() {
        use crate::executor::block_on;
        let ops = zero_ops(16);
        // Twin pools: the async path must report exactly what the
        // polling path reports.
        let mut sync_pool = pool(2);
        sync_pool.submit_all(&ops).unwrap();
        sync_pool.run_to_idle();
        let mut sync_completions: Vec<_> = sync_pool
            .take_completions()
            .into_iter()
            .map(|(_, c)| (c.op, c.finish_cycle))
            .collect();
        sync_completions.sort_by_key(|&(op, cycle)| (cycle, op.row_addr()));

        let mut async_pool = pool(2);
        let futures = async_pool.submit_all_async(&ops).unwrap();
        assert_eq!(futures.len(), 16);
        assert!(futures.iter().all(|f| !f.is_ready()));
        let finish = async_pool.drive();
        assert!(finish > 0);
        assert!(futures.iter().all(OpFuture::is_ready));
        let mut async_completions: Vec<_> = futures
            .into_iter()
            .map(|f| {
                let c = block_on(f);
                (c.op, c.finish_cycle)
            })
            .collect();
        async_completions.sort_by_key(|&(op, cycle)| (cycle, op.row_addr()));
        assert_eq!(sync_completions, async_completions);
        // Future-delivered completions never enter the polling buffer.
        assert!(async_pool.take_completions().is_empty());
    }

    #[test]
    fn step_relieves_outstanding_incrementally() {
        let mut p = pool(2);
        let ops = zero_ops(24);
        let mut futures = p.submit_all_async(&ops).unwrap();
        assert_eq!(p.outstanding(), 24);
        assert_eq!(p.device(0).outstanding() + p.device(1).outstanding(), 24);
        // Stepping events one at a time drains the window monotonically
        // to zero without ever calling the run-to-idle driver.
        let mut last = p.outstanding();
        while p.step() {
            let now = p.outstanding();
            assert!(now <= last, "outstanding never grows while stepping");
            last = now;
        }
        assert_eq!(p.outstanding(), 0);
        // Every future resolved through the incremental driver.
        let drained: Vec<_> = futures.iter_mut().filter_map(OpFuture::try_take).collect();
        assert_eq!(drained.len(), 24);
        assert!(!p.step(), "idle pool has no events");
    }

    #[test]
    fn pooled_sweep_destroys_one_full_module_per_shard() {
        let mut p = pool(2);
        let reports = p
            .sweep_all_rows(CodicOp::command(VariantId::DetZero, 0))
            .unwrap();
        assert_eq!(reports.len(), 2);
        for r in reports {
            assert_eq!(r.rows, DramGeometry::module_mib(64).total_rows());
        }
    }
}
