//! The bit-serial SIMD planner: element-wise vector operations compiled
//! into bulk-bitwise row-operation sequences (SIMDRAM-style).
//!
//! Operands live *vertically* bit-sliced: bit `i` of every lane occupies
//! one DRAM row, so an 8 KB row holds bit `i` of 65 536 one-bit lanes and
//! an `n`-bit vector occupies `n` rows. One triple-row activation then
//! computes a bitwise majority over all lanes at once, and AND/OR fall
//! out of MAJ by loading a constant all-zeros/all-ones third row
//! ([`CodicOp::RowInit`]). XOR and ADD are composed:
//!
//! - `a XOR b = (a OR b) AND NOT(a AND b)`;
//! - ADD ripples a carry row through the bit positions, using the
//!   triple-row group as a true 3-input majority for the carry and the
//!   XOR decomposition for the sum bit (results wrap modulo `2^n`).
//!
//! The planner emits only [`CodicOp`]s — `RowCopy` for data movement,
//! `RowInit` for constants, `MajAnd`/`MajOr`/`Not` for logic — over a
//! [`SimdLayout`] carved out of the authorized compute region, so every
//! plan replays through the ordinary service path and its policy.

use codic_dram::geometry::DramGeometry;

use crate::ops::CodicOp;

/// An element-wise vector operation over `n`-bit lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VecOp {
    /// Lane-wise AND.
    And,
    /// Lane-wise OR.
    Or,
    /// Lane-wise XOR.
    Xor,
    /// Lane-wise integer addition, wrapping modulo `2^n`.
    Add,
}

impl VecOp {
    /// Every vector operation the planner compiles.
    pub const ALL: [VecOp; 4] = [VecOp::And, VecOp::Or, VecOp::Xor, VecOp::Add];

    /// The trace-grammar name of the operation.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            VecOp::And => "and",
            VecOp::Or => "or",
            VecOp::Xor => "xor",
            VecOp::Add => "add",
        }
    }
}

/// Row indices (relative to the layout base) of the planner's fixed
/// scratch rows: the 3-row triple-activation group, three temporaries,
/// and the carry row.
const GROUP: u64 = 0;
const T0: u64 = 3;
const T1: u64 = 4;
const T2: u64 = 5;
const CARRY: u64 = 6;
/// First operand row: everything below is scratch.
const OPERANDS: u64 = 7;

/// The compute-region layout of one bit-serial operation: scratch rows,
/// then operand `A`, operand `B`, and the result `D`, each `bits` rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimdLayout {
    base: u64,
    bits: u32,
}

impl SimdLayout {
    /// A layout for `bits`-bit lanes based at byte address `base` (the
    /// first row of the region the caller reserves for it).
    ///
    /// # Panics
    ///
    /// Panics when `bits` is zero.
    #[must_use]
    pub fn new(base: u64, bits: u32) -> Self {
        assert!(bits > 0, "zero-bit lanes have no rows");
        SimdLayout { base, bits }
    }

    /// Byte address of the layout's first row.
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Lane width in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Total rows the layout occupies (scratch + `A` + `B` + `D`).
    #[must_use]
    pub fn rows_needed(&self) -> u64 {
        OPERANDS + 3 * u64::from(self.bits)
    }

    fn row(&self, index: u64) -> u64 {
        self.base + index * DramGeometry::ROW_BYTES
    }

    /// Row address holding bit `bit` of operand `A`.
    #[must_use]
    pub fn a_row(&self, bit: u32) -> u64 {
        self.row(OPERANDS + u64::from(bit))
    }

    /// Row address holding bit `bit` of operand `B`.
    #[must_use]
    pub fn b_row(&self, bit: u32) -> u64 {
        self.row(OPERANDS + u64::from(self.bits) + u64::from(bit))
    }

    /// Row address holding bit `bit` of the result `D`.
    #[must_use]
    pub fn d_row(&self, bit: u32) -> u64 {
        self.row(OPERANDS + 2 * u64::from(self.bits) + u64::from(bit))
    }

    /// The operand-seeding plan: fills each bit-slice row of `A` and `B`
    /// with its 64-lane pattern repeated across the row (lanes repeat
    /// with period 64, which loses no generality for value checks).
    ///
    /// # Panics
    ///
    /// Panics when a pattern slice is not exactly `bits` long.
    #[must_use]
    pub fn seed(&self, a: &[u64], b: &[u64]) -> Vec<CodicOp> {
        assert_eq!(a.len(), self.bits as usize, "one pattern per bit of A");
        assert_eq!(b.len(), self.bits as usize, "one pattern per bit of B");
        let mut ops = Vec::with_capacity(2 * self.bits as usize);
        for (bit, &pattern) in a.iter().enumerate() {
            ops.push(CodicOp::RowFill {
                row_addr: self.a_row(bit as u32),
                pattern,
            });
        }
        for (bit, &pattern) in b.iter().enumerate() {
            ops.push(CodicOp::RowFill {
                row_addr: self.b_row(bit as u32),
                pattern,
            });
        }
        ops
    }

    fn copy(src: u64, dst: u64) -> CodicOp {
        CodicOp::RowCopy {
            src_addr: src,
            dst_addr: dst,
        }
    }

    /// `out = a AND b` via MAJ(a, b, 0).
    fn and_into(&self, ops: &mut Vec<CodicOp>, a: u64, b: u64, out: u64) {
        let g = self.row(GROUP);
        ops.push(Self::copy(a, g));
        ops.push(Self::copy(b, g + DramGeometry::ROW_BYTES));
        ops.push(CodicOp::RowInit {
            row_addr: g + 2 * DramGeometry::ROW_BYTES,
            ones: false,
        });
        ops.push(CodicOp::MajAnd { row_addr: g });
        ops.push(Self::copy(g, out));
    }

    /// `out = a OR b` via MAJ(a, b, 1).
    fn or_into(&self, ops: &mut Vec<CodicOp>, a: u64, b: u64, out: u64) {
        let g = self.row(GROUP);
        ops.push(Self::copy(a, g));
        ops.push(Self::copy(b, g + DramGeometry::ROW_BYTES));
        ops.push(CodicOp::RowInit {
            row_addr: g + 2 * DramGeometry::ROW_BYTES,
            ones: true,
        });
        ops.push(CodicOp::MajOr { row_addr: g });
        ops.push(Self::copy(g, out));
    }

    /// `out = MAJ(a, b, c)` — the true 3-input majority (carry).
    fn maj_into(&self, ops: &mut Vec<CodicOp>, a: u64, b: u64, c: u64, out: u64) {
        let g = self.row(GROUP);
        ops.push(Self::copy(a, g));
        ops.push(Self::copy(b, g + DramGeometry::ROW_BYTES));
        ops.push(Self::copy(c, g + 2 * DramGeometry::ROW_BYTES));
        ops.push(CodicOp::MajOr { row_addr: g });
        ops.push(Self::copy(g, out));
    }

    /// `out = a XOR b = (a OR b) AND NOT(a AND b)`; clobbers `T0`/`T1`,
    /// so `a` and `b` must not be those scratch rows.
    fn xor_into(&self, ops: &mut Vec<CodicOp>, a: u64, b: u64, out: u64) {
        self.and_into(ops, a, b, self.row(T0));
        ops.push(CodicOp::Not {
            src_addr: self.row(T0),
            dst_addr: self.row(T1),
        });
        self.or_into(ops, a, b, self.row(T0));
        self.and_into(ops, self.row(T0), self.row(T1), out);
    }

    /// Compiles `op` over the seeded operands into the row-operation
    /// sequence that leaves the result in the `D` rows.
    #[must_use]
    pub fn plan(&self, op: VecOp) -> Vec<CodicOp> {
        let mut ops = Vec::new();
        match op {
            VecOp::And => {
                for bit in 0..self.bits {
                    self.and_into(&mut ops, self.a_row(bit), self.b_row(bit), self.d_row(bit));
                }
            }
            VecOp::Or => {
                for bit in 0..self.bits {
                    self.or_into(&mut ops, self.a_row(bit), self.b_row(bit), self.d_row(bit));
                }
            }
            VecOp::Xor => {
                for bit in 0..self.bits {
                    self.xor_into(&mut ops, self.a_row(bit), self.b_row(bit), self.d_row(bit));
                }
            }
            VecOp::Add => {
                ops.push(CodicOp::RowInit {
                    row_addr: self.row(CARRY),
                    ones: false,
                });
                for bit in 0..self.bits {
                    let (a, b) = (self.a_row(bit), self.b_row(bit));
                    // Sum bit first (it needs the incoming carry), then
                    // the carry update for the next position.
                    self.xor_into(&mut ops, a, b, self.row(T2));
                    self.xor_into(&mut ops, self.row(T2), self.row(CARRY), self.d_row(bit));
                    self.maj_into(&mut ops, a, b, self.row(CARRY), self.row(CARRY));
                }
            }
        }
        ops
    }
}

/// The scalar reference: the bit-slice patterns the `D` rows must hold
/// after [`SimdLayout::plan`]`(op)` runs over operands seeded with `a`
/// and `b` (one 64-lane pattern per bit).
///
/// # Panics
///
/// Panics when `a` and `b` differ in length.
#[must_use]
pub fn reference(op: VecOp, a: &[u64], b: &[u64]) -> Vec<u64> {
    assert_eq!(a.len(), b.len(), "operands must have the same lane width");
    match op {
        VecOp::And => a.iter().zip(b).map(|(x, y)| x & y).collect(),
        VecOp::Or => a.iter().zip(b).map(|(x, y)| x | y).collect(),
        VecOp::Xor => a.iter().zip(b).map(|(x, y)| x ^ y).collect(),
        VecOp::Add => {
            // Ripple-carry directly on the bit slices: each u64 word is
            // 64 independent lanes, so full-adder algebra per slice IS
            // lane-wise addition.
            let mut carry = 0u64;
            a.iter()
                .zip(b)
                .map(|(&x, &y)| {
                    let sum = x ^ y ^ carry;
                    carry = (x & y) | (x & carry) | (y & carry);
                    sum
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataPlane;

    const ROW: u64 = DramGeometry::ROW_BYTES;

    /// Runs `layout.seed(a, b)` then `layout.plan(op)` through a data
    /// plane and returns the first word of each `D` row.
    fn execute(layout: &SimdLayout, op: VecOp, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut plane = DataPlane::new(layout.base..layout.base + layout.rows_needed() * ROW);
        for op in layout.seed(a, b).into_iter().chain(layout.plan(op)) {
            plane.apply(op);
        }
        (0..layout.bits())
            .map(|bit| plane.row(layout.d_row(bit))[0])
            .collect()
    }

    #[test]
    fn layout_partitions_rows_without_overlap() {
        let l = SimdLayout::new(0x10000, 4);
        assert_eq!(l.rows_needed(), 7 + 12);
        let mut rows: Vec<u64> = (0..4)
            .flat_map(|b| [l.a_row(b), l.b_row(b), l.d_row(b)])
            .collect();
        rows.sort_unstable();
        rows.dedup();
        assert_eq!(rows.len(), 12, "operand and result rows are distinct");
        assert!(rows.iter().all(|&r| r >= 0x10000 + OPERANDS * ROW));
    }

    #[test]
    fn planned_logic_matches_the_scalar_reference() {
        let l = SimdLayout::new(0, 4);
        let a = [0b1100, 0xFFFF_0000_FFFF_0000, 0, u64::MAX];
        let b = [0b1010, 0x00FF_00FF_00FF_00FF, u64::MAX, u64::MAX];
        for op in [VecOp::And, VecOp::Or, VecOp::Xor] {
            assert_eq!(execute(&l, op, &a, &b), reference(op, &a, &b), "{op:?}");
        }
    }

    #[test]
    fn planned_addition_ripples_carries_across_bit_positions() {
        let l = SimdLayout::new(0, 8);
        // Lane 0 (bit 0 of each pattern): 0xFF + 0x01 wraps to 0x00;
        // lane 1: 0x0F + 0x00 = 0x0F; remaining lanes: 0 + 0 = 0.
        let a: Vec<u64> = (0..8).map(|i| 1 | if i < 4 { 2 } else { 0 }).collect();
        let b: Vec<u64> = (0..8).map(|i| u64::from(i == 0)).collect();
        let got = execute(&l, VecOp::Add, &a, &b);
        let want = reference(VecOp::Add, &a, &b);
        assert_eq!(got, want);
        // Decode lane 0 and lane 1 as integers to confirm the reference
        // itself is lane-wise addition.
        let lane = |slices: &[u64], j: u32| -> u64 {
            slices
                .iter()
                .enumerate()
                .map(|(i, s)| ((s >> j) & 1) << i)
                .sum()
        };
        assert_eq!(lane(&want, 0), (0xFFu64 + 1) & 0xFF);
        assert_eq!(lane(&want, 1), 0x0F);
    }

    #[test]
    fn plans_speak_only_the_typed_op_vocabulary() {
        let l = SimdLayout::new(0x8000, 2);
        for op in VecOp::ALL {
            for planned in l.plan(op) {
                assert!(planned.is_compute(), "{planned:?}");
                for addr in planned.written_rows().row_addrs() {
                    assert!(
                        addr < 0x8000 + l.rows_needed() * ROW && addr >= 0x8000,
                        "{planned:?} writes outside the layout"
                    );
                }
            }
        }
    }
}
