//! Bounded single-producer / single-consumer rings, std-only.
//!
//! The shard-worker pipeline ([`crate::worker`]) feeds each worker
//! thread through one of these rings: the session thread pushes work
//! items, the worker pops them, and replies travel back over a second
//! ring pointing the other way. Like [`crate::executor`], this module
//! uses nothing beyond the standard library — a fixed ring of slots
//! with monotonically increasing head/tail counters, release/acquire
//! publication, and `thread::park` blocking with a short timed backstop
//! so a lost wakeup can only ever cost microseconds, never liveness.
//!
//! A ring of capacity ≥ 1 can never have both sides blocked at once
//! (full ⇒ non-empty, empty ⇒ non-full), so a single shared waiter
//! slot is enough for both directions.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, Thread};
use std::time::Duration;

/// Backstop park duration: if a wakeup is lost to the (benign) race of
/// both sides registering in the single waiter slot, the parked side
/// re-checks on its own after this long.
const PARK_BACKSTOP: Duration = Duration::from_micros(200);

/// The other side of the channel has been dropped; for sends the
/// rejected value is handed back.
#[derive(Debug, PartialEq, Eq)]
pub struct Disconnected<T>(pub T);

/// The ring is full (`try_send`) and the value is handed back.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// No free slot right now; retry or block.
    Full(T),
    /// The receiver is gone; the value can never be delivered.
    Disconnected(T),
}

struct Shared<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next index the consumer will read. Only the consumer advances it.
    head: AtomicUsize,
    /// Next index the producer will write. Only the producer advances it.
    tail: AtomicUsize,
    /// Set when either side is dropped.
    closed: AtomicBool,
    /// The currently blocked side's thread handle, if any.
    waiter: Mutex<Option<Thread>>,
}

// SAFETY: the producer only ever writes the slot at `tail` and the
// consumer only ever reads the slot at `head`; the release store of the
// advanced counter publishes the slot contents to the other side.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Shared<T> {
    fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Parks the calling thread until the other side wakes it (or the
    /// backstop fires). `ready` is re-checked after registration so a
    /// state change that raced the registration is never slept through.
    fn park_until(&self, ready: impl Fn() -> bool) {
        *self.waiter.lock().expect("spsc waiter poisoned") = Some(thread::current());
        if !ready() && !self.closed.load(Ordering::Acquire) {
            thread::park_timeout(PARK_BACKSTOP);
        }
        self.waiter.lock().expect("spsc waiter poisoned").take();
    }

    /// Wakes whichever side is blocked, if any.
    fn wake(&self) {
        if let Some(thread) = self.waiter.lock().expect("spsc waiter poisoned").take() {
            thread.unpark();
        }
    }
}

/// The producing half of a bounded SPSC ring.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half of a bounded SPSC ring.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded ring with room for `capacity` in-flight items.
///
/// # Panics
///
/// Panics if `capacity` is zero — a rendezvous channel would let both
/// sides block at once, which the single waiter slot does not support.
pub fn channel<T: Send>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "spsc ring capacity must be at least 1");
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        waiter: Mutex::new(None),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Attempts to push without blocking.
    pub fn try_send(&mut self, value: T) -> Result<(), TrySendError<T>> {
        let shared = &self.shared;
        if shared.closed.load(Ordering::Acquire) {
            return Err(TrySendError::Disconnected(value));
        }
        let tail = shared.tail.load(Ordering::Relaxed);
        let head = shared.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= shared.capacity() {
            return Err(TrySendError::Full(value));
        }
        let slot = shared.slots[tail % shared.capacity()].get();
        // SAFETY: `head..tail` never covers this slot (the ring is not
        // full), so the consumer is not reading it; only this producer
        // writes, and the release store below publishes the write.
        unsafe { (*slot).write(value) };
        shared.tail.store(tail.wrapping_add(1), Ordering::Release);
        shared.wake();
        Ok(())
    }

    /// Pushes, blocking while the ring is full.
    pub fn send(&mut self, value: T) -> Result<(), Disconnected<T>> {
        let mut value = value;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(v)) => return Err(Disconnected(v)),
                Err(TrySendError::Full(v)) => {
                    value = v;
                    let shared = Arc::clone(&self.shared);
                    let capacity = shared.capacity();
                    shared.park_until(|| {
                        let tail = shared.tail.load(Ordering::Relaxed);
                        let head = shared.head.load(Ordering::Acquire);
                        tail.wrapping_sub(head) < capacity
                    });
                }
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Attempts to pop without blocking. `None` means "empty right
    /// now", not "closed" — use [`recv`](Self::recv) to distinguish.
    pub fn try_recv(&mut self) -> Option<T> {
        let shared = &self.shared;
        let head = shared.head.load(Ordering::Relaxed);
        let tail = shared.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = shared.slots[head % shared.capacity()].get();
        // SAFETY: `head != tail`, so the producer has published this
        // slot (acquire on `tail`) and will not touch it again until
        // the head advance below frees it.
        let value = unsafe { (*slot).assume_init_read() };
        shared.head.store(head.wrapping_add(1), Ordering::Release);
        shared.wake();
        Some(value)
    }

    /// Pops, blocking while the ring is empty. Returns `None` only once
    /// the sender is gone *and* every queued item has been drained.
    pub fn recv(&mut self) -> Option<T> {
        loop {
            if let Some(value) = self.try_recv() {
                return Some(value);
            }
            if self.shared.closed.load(Ordering::Acquire) {
                // The close synchronized with the producer's final
                // push, so one more drain sees everything.
                return self.try_recv();
            }
            let shared = Arc::clone(&self.shared);
            shared.park_until(|| {
                shared.head.load(Ordering::Relaxed) != shared.tail.load(Ordering::Acquire)
            });
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        self.shared.wake();
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        self.shared.wake();
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let capacity = self.slots.len();
        for index in head..tail {
            // SAFETY: sole owner at drop time; `head..tail` holds the
            // initialized, undelivered items.
            unsafe { (*self.slots[index % capacity].get()).assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved_across_threads() {
        let (mut tx, mut rx) = channel::<u64>(8);
        let producer = thread::spawn(move || {
            for i in 0..10_000u64 {
                tx.send(i).expect("receiver alive");
            }
        });
        for expect in 0..10_000u64 {
            assert_eq!(rx.recv(), Some(expect));
        }
        producer.join().expect("producer thread");
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn try_send_respects_capacity_and_try_recv_drains() {
        let (mut tx, mut rx) = channel::<u32>(3);
        for i in 0..3 {
            tx.try_send(i).expect("room");
        }
        assert_eq!(tx.try_send(99), Err(TrySendError::Full(99)));
        assert_eq!(rx.try_recv(), Some(0));
        tx.try_send(3).expect("slot freed");
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.try_recv(), Some(2));
        assert_eq!(rx.try_recv(), Some(3));
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn dropping_the_receiver_fails_sends_with_the_value_back() {
        let (mut tx, rx) = channel::<String>(2);
        drop(rx);
        assert_eq!(
            tx.send("lost".to_string()),
            Err(Disconnected("lost".to_string()))
        );
        assert_eq!(
            tx.try_send("also lost".to_string()),
            Err(TrySendError::Disconnected("also lost".to_string()))
        );
    }

    #[test]
    fn dropping_the_sender_drains_queued_items_then_reports_closed() {
        let (mut tx, mut rx) = channel::<u32>(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn undelivered_items_are_dropped_with_the_ring() {
        let witness = Arc::new(());
        let (mut tx, rx) = channel::<Arc<()>>(4);
        for _ in 0..3 {
            tx.send(Arc::clone(&witness)).unwrap();
        }
        assert_eq!(Arc::strong_count(&witness), 4);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&witness), 1);
    }

    #[test]
    fn blocking_send_waits_for_the_consumer() {
        let (mut tx, mut rx) = channel::<u64>(2);
        let producer = thread::spawn(move || {
            for i in 0..1_000u64 {
                tx.send(i).expect("receiver alive");
            }
        });
        // Drain slowly from this thread; the producer must block on the
        // full ring rather than drop or reorder anything.
        for expect in 0..1_000u64 {
            loop {
                if let Some(got) = rx.try_recv() {
                    assert_eq!(got, expect);
                    break;
                }
                thread::yield_now();
            }
        }
        producer.join().expect("producer thread");
    }
}
