//! A CODIC command variant: a named signal-timing program.

use codic_circuit::{SignalSchedule, WINDOW_NS};

/// A CODIC command variant.
///
/// A variant is fully determined by its [`SignalSchedule`]: which of the
/// four internal signals pulse, and when. The name is for reporting only.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CodicVariant {
    name: String,
    schedule: SignalSchedule,
}

impl CodicVariant {
    /// Creates a variant from a name and schedule.
    #[must_use]
    pub fn new(name: impl Into<String>, schedule: SignalSchedule) -> Self {
        CodicVariant {
            name: name.into(),
            schedule,
        }
    }

    /// The variant's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The signal timing program.
    #[must_use]
    pub fn schedule(&self) -> &SignalSchedule {
        &self.schedule
    }

    /// Whether any internal signal remains asserted through the end of the
    /// CODIC window region used by activate-class commands (deasserting
    /// later than half the window). Early-terminating variants such as
    /// CODIC-sig-opt and precharge can release the bank sooner (§4.1.1,
    /// Table 2).
    #[must_use]
    pub fn occupies_full_window(&self) -> bool {
        self.schedule.last_deassert_ns() > WINDOW_NS / 2
    }
}

impl std::fmt::Display for CodicVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)?;
        let mut first = true;
        for (sig, pulse) in self.schedule.iter() {
            if first {
                write!(f, " [")?;
                first = false;
            } else {
                write!(f, " ")?;
            }
            let (a, b) = if sig.is_active_low() {
                ("\u{2193}", "\u{2191}") // ↓ then ↑, as Table 1 prints sense_p
            } else {
                ("\u{2191}", "\u{2193}")
            };
            write!(
                f,
                "{}[{}{a},{}{b}]",
                sig.name(),
                pulse.assert_ns(),
                pulse.deassert_ns()
            )?;
        }
        if !first {
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codic_circuit::Signal;

    #[test]
    fn display_prints_table1_style_edges() {
        let schedule = SignalSchedule::builder()
            .pulse(Signal::Wordline, 5, 22)
            .unwrap()
            .pulse(Signal::SenseP, 7, 22)
            .unwrap()
            .build();
        let v = CodicVariant::new("Activation", schedule);
        let s = v.to_string();
        assert!(s.contains("Activation"));
        assert!(s.contains("wl[5\u{2191},22\u{2193}]"), "{s}");
        assert!(s.contains("sense_p[7\u{2193},22\u{2191}]"), "{s}");
    }

    #[test]
    fn full_window_detection() {
        let long = CodicVariant::new(
            "long",
            SignalSchedule::builder()
                .pulse(Signal::Wordline, 5, 22)
                .unwrap()
                .build(),
        );
        let short = CodicVariant::new(
            "short",
            SignalSchedule::builder()
                .pulse(Signal::Equalize, 5, 11)
                .unwrap()
                .build(),
        );
        assert!(long.occupies_full_window());
        assert!(!short.occupies_full_window());
    }
}
