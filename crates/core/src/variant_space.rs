//! The combinatorics of the CODIC variant design space (§4.1.3).
//!
//! Each of the four signals admits `n = Σ_{i=1}^{w−1} i = 300` valid
//! (assert, deassert) pulses in the `w = 25` ns window, so the full space
//! holds `300⁴ ≈ 8.1 × 10⁹` variants. On top of pulses, a signal may also
//! stay idle, which the paper folds into command selection; we expose both
//! counts.

use codic_circuit::{Signal, SignalPulse, SignalSchedule};
use rand::Rng;

use crate::variant::CodicVariant;

/// Valid pulse count per signal (`n = 300`; paper footnote 2).
#[must_use]
pub fn pulses_per_signal() -> u64 {
    SignalPulse::valid_count()
}

/// Total CODIC variants with all four signals pulsing (`n⁴ = 300⁴`,
/// §4.1.3).
#[must_use]
pub fn total_variants() -> u64 {
    pulses_per_signal().pow(4)
}

/// Total programs including idle signals (`(n+1)⁴ − 1`, excluding the
/// all-idle no-op).
#[must_use]
pub fn total_programs_with_idle() -> u64 {
    (pulses_per_signal() + 1).pow(4) - 1
}

/// Draws a uniformly random variant where each signal independently either
/// idles (with probability `idle_prob`) or takes a uniformly random pulse.
pub fn random_variant<R: Rng + ?Sized>(rng: &mut R, idle_prob: f64) -> CodicVariant {
    let mut b = SignalSchedule::builder();
    for sig in Signal::ALL {
        if rng.gen::<f64>() < idle_prob {
            continue;
        }
        let pulse = random_pulse(rng);
        b = b.pulse_validated(sig, pulse);
    }
    CodicVariant::new("random", b.build())
}

/// Draws one uniformly random valid pulse.
pub fn random_pulse<R: Rng + ?Sized>(rng: &mut R) -> SignalPulse {
    let idx = rng.gen_range(0..pulses_per_signal());
    nth_pulse(idx).expect("index is within the valid pulse count")
}

/// The `idx`-th valid pulse in lexicographic (assert, deassert) order, or
/// `None` when out of range.
#[must_use]
pub fn nth_pulse(idx: u64) -> Option<SignalPulse> {
    SignalPulse::enumerate_all().nth(usize::try_from(idx).ok()?)
}

/// Iterates over every valid pulse for one signal (300 items).
pub fn enumerate_pulses() -> impl Iterator<Item = SignalPulse> {
    SignalPulse::enumerate_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn space_matches_paper_4_1_3() {
        assert_eq!(pulses_per_signal(), 300);
        assert_eq!(total_variants(), 300u64.pow(4)); // 8.1e9
        assert_eq!(total_variants(), 8_100_000_000);
    }

    #[test]
    fn idle_extended_space_is_larger() {
        assert!(total_programs_with_idle() > total_variants());
        assert_eq!(total_programs_with_idle(), 301u64.pow(4) - 1);
    }

    #[test]
    fn nth_pulse_covers_whole_range() {
        assert!(nth_pulse(0).is_some());
        assert!(nth_pulse(299).is_some());
        assert!(nth_pulse(300).is_none());
    }

    #[test]
    fn random_variants_are_valid_and_diverse() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = random_variant(&mut rng, 0.25);
            for (_, p) in v.schedule().iter() {
                assert!(p.assert_ns() < p.deassert_ns());
            }
            distinct.insert(format!("{v}"));
        }
        assert!(distinct.len() > 150, "only {} distinct", distinct.len());
    }

    #[test]
    fn random_pulse_is_uniformish() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut first_bucket = 0;
        let n = 3000;
        for _ in 0..n {
            if random_pulse(&mut rng).assert_ns() == 0 {
                first_bucket += 1;
            }
        }
        // P(assert = 0) = 24/300 = 8 %.
        let frac = f64::from(first_bucket) / f64::from(n);
        assert!((frac - 0.08).abs() < 0.03, "frac = {frac}");
    }
}
