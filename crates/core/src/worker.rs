//! Pipelined shard workers: the [`DevicePool`](crate::pool::DevicePool)
//! serving path spread across threads, bit-identical to the inline run.
//!
//! [`ShardWorkers`] owns one OS thread per shard. Each thread owns its
//! shard's [`CodicDevice`] outright and is fed through a bounded
//! [`spsc`] ring; replies come back over a second ring.
//! The coordinator (the session thread) keeps only what routing needs —
//! the block map, the healthy set, and a policy controller for the
//! all-or-nothing pre-flight — so decode, submission, engine stepping,
//! and completion encoding overlap across cores instead of serializing
//! in one thread.
//!
//! # Determinism
//!
//! Worker-driven completions are bit-identical (cycles, energy bits,
//! shard, outcome, attempts, fingerprint) to the same submission
//! sequence run inline through `DevicePool`, because nothing about the
//! engine is actually concurrent per shard:
//!
//! - device state is strictly per-shard, and each worker applies its
//!   ring items in FIFO order, so every shard sees exactly the op
//!   sequence the inline pool would have given it;
//! - [`ShardWorkers::step_all`] advances every busy shard by one engine
//!   event in lockstep — the same global round a
//!   [`DevicePool::step`](crate::pool::DevicePool::step) call makes —
//!   so backpressure loops replicate cycle-for-cycle;
//! - workers drain completed futures in per-shard seq order at barrier
//!   points only; when a serving layer merges shards and sorts by
//!   `(finish_cycle, seq)` — a total order, seq is unique — the emitted
//!   stream is independent of which thread resolved what first.
//!
//! The one documented divergence: a shard whose injected clock wedges
//! with a full queue *mid-batch* re-routes its stranded submissions to
//! survivors at the next barrier (the inline path re-routes at the
//! exact op), so re-routed operations may land later and finish at
//! different cycles. Fault-free and misfire/retry schedules — where
//! the clock always advances — are bit-identical, which the worker
//! determinism proptests pin.

use std::collections::VecDeque;
use std::thread::JoinHandle;

use codic_dram::geometry::DramGeometry;

use crate::device::{CodicDevice, DeviceConfig, OpCompletion};
use crate::error::CodicError;
use crate::executor::OpFuture;
use crate::fault::{FaultCause, FaultStats, HealthPolicy};
use crate::interface::CodicController;
use crate::ops::CodicOp;
use crate::pool::ShardHealth;
use crate::spsc;

/// Work items travelling coordinator → worker.
enum WorkItem {
    /// Submit one pre-flighted operation (policy already checked).
    Submit { seq: u64, op: CodicOp },
    /// Drain newly-completed futures and report status.
    Barrier,
    /// Advance the engine by one event (a lockstep round of the global
    /// backpressure loop); reports status, drains nothing.
    StepOne,
    /// Run the engine to idle, then drain and report.
    RunToIdle,
    /// Drain the shard if its clock still advances, fail what cannot
    /// finish, and report the resulting failures.
    Quarantine {
        /// Why the shard is being condemned.
        cause: FaultCause,
    },
    /// Exit the worker loop.
    Shutdown,
}

/// One worker's state snapshot, refreshed on every reply.
#[derive(Debug, Clone, Copy)]
struct WorkerStatus {
    outstanding: usize,
    stalled: bool,
    stats: FaultStats,
    now: u64,
}

/// Reply to a synchronizing work item (everything but `Submit` and
/// `Shutdown` produces exactly one).
struct Reply {
    /// Newly-completed operations, in per-shard seq order.
    ready: Vec<(u64, OpCompletion)>,
    /// Operations the device refused because its clock wedged with a
    /// full queue; the coordinator re-routes them to survivors.
    deferred: Vec<(u64, CodicOp)>,
    status: WorkerStatus,
    /// Whether a `StepOne` advanced the engine.
    advanced: bool,
}

/// A completed operation drained from a worker, tagged with its seq
/// number and the shard that executed it.
#[derive(Debug, Clone, Copy)]
pub struct DrainedOp {
    /// The caller-assigned sequence number.
    pub seq: u64,
    /// The shard that executed the operation.
    pub shard: u16,
    /// The typed completion, bit-identical to the inline run.
    pub completion: OpCompletion,
}

struct WorkerLink {
    tx: spsc::Sender<WorkItem>,
    rx: spsc::Receiver<Reply>,
    thread: Option<JoinHandle<()>>,
}

impl WorkerLink {
    fn send(&mut self, item: WorkItem) {
        assert!(
            self.tx.send(item).is_ok(),
            "shard worker thread exited early"
        );
    }

    fn recv(&mut self) -> Reply {
        self.rx.recv().expect("shard worker thread exited early")
    }
}

/// The pipelined twin of [`DevicePool`](crate::pool::DevicePool): one
/// thread per shard, fed by SPSC rings, drained at explicit barriers.
///
/// See the [module docs](self) for the determinism contract.
pub struct ShardWorkers {
    workers: Vec<WorkerLink>,
    /// Last-known per-worker status, refreshed on every reply.
    status: Vec<WorkerStatus>,
    /// Completions produced outside a drain (quarantine fallout),
    /// delivered with the next [`ShardWorkers::drain_ready`].
    stash: Vec<DrainedOp>,
    health: Vec<ShardHealth>,
    healthy: Vec<usize>,
    health_policy: HealthPolicy,
    /// Session-side policy twin for the all-or-nothing pre-flight —
    /// every shard runs the identical config, so one controller answers
    /// for all of them.
    policy: CodicController,
    block_rows: u64,
    compute_base: Option<u64>,
}

impl ShardWorkers {
    /// Launches `shards` worker threads, each owning one
    /// [`CodicDevice`] built exactly as
    /// [`DevicePool::new`](crate::pool::DevicePool::new) would build it
    /// (per-shard derived fault plans included).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or a worker thread cannot spawn.
    #[must_use]
    pub fn launch(shards: usize, config: &DeviceConfig) -> Self {
        assert!(shards > 0, "a worker pool needs at least one shard");
        let workers = (0..shards)
            .map(|shard| {
                let mut config = config.clone();
                config.fault = config.fault.map(|plan| plan.for_shard(shard));
                let device = CodicDevice::new(config);
                let (tx, work_rx) = spsc::channel::<WorkItem>(1024);
                let (reply_tx, rx) = spsc::channel::<Reply>(4);
                let thread = std::thread::Builder::new()
                    .name(format!("codic-shard-{shard}"))
                    .spawn(move || worker_loop(device, work_rx, reply_tx))
                    .expect("spawn shard worker");
                WorkerLink {
                    tx,
                    rx,
                    thread: Some(thread),
                }
            })
            .collect();
        let compute_range = config.compute_range();
        ShardWorkers {
            workers,
            status: vec![
                WorkerStatus {
                    outstanding: 0,
                    stalled: false,
                    stats: FaultStats::default(),
                    now: 0,
                };
                shards
            ],
            stash: Vec::new(),
            health: vec![ShardHealth::Healthy; shards],
            healthy: (0..shards).collect(),
            health_policy: HealthPolicy::default(),
            policy: CodicController::new(config.safe_range.clone())
                .with_compute_range(compute_range.clone()),
            block_rows: u64::from(config.geometry.total_banks()).max(1),
            compute_base: (!compute_range.is_empty()).then_some(compute_range.start),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Per-shard health states, indexed by shard.
    #[must_use]
    pub fn health(&self) -> &[ShardHealth] {
        &self.health
    }

    /// Replaces the self-quarantine policy (defaults to
    /// [`HealthPolicy::default`]).
    pub fn set_health_policy(&mut self, policy: HealthPolicy) {
        self.health_policy = policy;
    }

    /// The shard that owns `op` — the same block-interleaved map, with
    /// the same deterministic quarantine re-route, as
    /// [`DevicePool::shard_of`](crate::pool::DevicePool::shard_of).
    #[must_use]
    pub fn shard_of(&self, op: CodicOp) -> usize {
        let addr = match self.compute_base {
            Some(base) if op.is_compute() => base,
            _ => op.row_addr(),
        };
        let block = addr / DramGeometry::ROW_BYTES / self.block_rows;
        let primary = (block % self.workers.len() as u64) as usize;
        if self.health[primary].is_healthy() || self.healthy.is_empty() {
            primary
        } else {
            self.healthy[(block % self.healthy.len() as u64) as usize]
        }
    }

    /// Routes and enqueues a batch, all-or-nothing: every operation is
    /// policy-checked *before* anything is sent to any worker. Ops are
    /// numbered `seq_base..seq_base + ops.len()` in input order; the
    /// shard each landed on is returned per op. Returns immediately
    /// after enqueuing — completions surface at the next barrier.
    ///
    /// # Errors
    ///
    /// Returns the first policy error without enqueuing anything, or
    /// [`CodicError::NoHealthyShards`] when every shard is quarantined.
    pub fn submit_batch(&mut self, seq_base: u64, ops: &[CodicOp]) -> Result<Vec<u16>, CodicError> {
        if self.healthy.is_empty() && !ops.is_empty() {
            return Err(CodicError::NoHealthyShards);
        }
        for &op in ops {
            self.policy.check_safe_range(op)?;
        }
        let mut shards = Vec::with_capacity(ops.len());
        for (index, &op) in ops.iter().enumerate() {
            let shard = self.shard_of(op);
            self.workers[shard].send(WorkItem::Submit {
                seq: seq_base + index as u64,
                op,
            });
            shards.push(shard as u16);
        }
        Ok(shards)
    }

    /// Barrier: synchronizes with every worker, refreshes statuses, and
    /// returns everything newly completed (stashed quarantine fallout
    /// included), unsorted — callers merge shards by sorting on
    /// `(finish_cycle, seq)`.
    pub fn drain_ready(&mut self) -> Vec<DrainedOp> {
        let replies = self.sync_all(|| WorkItem::Barrier);
        self.absorb(replies)
    }

    /// Advances every busy shard by one engine event, in lockstep — one
    /// global round of
    /// [`DevicePool::step`](crate::pool::DevicePool::step). Returns
    /// `false` when no shard could advance.
    pub fn step_all(&mut self) -> bool {
        let replies = self.sync_all(|| WorkItem::StepOne);
        replies.iter().any(|reply| reply.advanced)
    }

    /// Runs every shard to idle and drains — the worker-mode flush.
    /// Returns completions unsorted, like
    /// [`ShardWorkers::drain_ready`].
    pub fn flush(&mut self) -> Vec<DrainedOp> {
        let replies = self.sync_all(|| WorkItem::RunToIdle);
        self.absorb(replies)
    }

    /// Applies the health policy to the statuses gathered at the last
    /// barrier/step — the same rules, at the same loop points, as
    /// [`DevicePool::check_health`](crate::pool::DevicePool::check_health).
    /// Quarantine fallout (typed failures) lands in the stash for the
    /// next drain. Returns the number of shards newly quarantined.
    pub fn check_health(&mut self) -> usize {
        let mut condemned = 0;
        for shard in 0..self.workers.len() {
            if !self.health[shard].is_healthy() {
                continue;
            }
            let status = self.status[shard];
            let cause = if status.stalled {
                Some(FaultCause::ClockStuck)
            } else {
                let breached = status.stats.delivered() >= self.health_policy.min_ops
                    && status.stats.failed_per_64k() > self.health_policy.max_failed_per_64k;
                breached.then_some(FaultCause::Quarantined)
            };
            if let Some(cause) = cause {
                self.quarantine(shard, cause);
                condemned += 1;
            }
        }
        condemned
    }

    /// Quarantines `shard` exactly as the inline pool would: the worker
    /// drains what its clock can still finish, fails the rest with
    /// `cause`, and the shard leaves the routing table. The resulting
    /// failures surface with the next drain. Quarantining an
    /// already-quarantined shard is a no-op returning 0.
    pub fn quarantine(&mut self, shard: usize, cause: FaultCause) -> usize {
        if !self.health[shard].is_healthy() {
            return 0;
        }
        self.workers[shard].send(WorkItem::Quarantine { cause });
        let reply = self.workers[shard].recv();
        self.status[shard] = reply.status;
        let failed = reply.ready.len();
        self.stash.extend(tag(shard, reply.ready));
        let deferred = reply.deferred;
        self.health[shard] = ShardHealth::Quarantined { cause };
        self.healthy = (0..self.workers.len())
            .filter(|&s| self.health[s].is_healthy())
            .collect();
        self.reroute_deferred(deferred);
        failed
    }

    /// Total operations in flight across all shards, as of the last
    /// barrier or step — the backpressure signal. Every backpressure
    /// loop round refreshes it, so it is exact at the points it gates.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.status.iter().map(|s| s.outstanding).sum()
    }

    /// The most advanced shard clock, as of the last barrier or step.
    #[must_use]
    pub fn now_max(&self) -> u64 {
        self.status.iter().map(|s| s.now).max().unwrap_or(0)
    }

    /// Sends `item()` to every worker first, then collects every reply
    /// — all shards work concurrently instead of round-robin blocking.
    fn sync_all(&mut self, item: impl Fn() -> WorkItem) -> Vec<Reply> {
        for worker in &mut self.workers {
            worker.send(item());
        }
        let replies: Vec<Reply> = self.workers.iter_mut().map(WorkerLink::recv).collect();
        for (shard, reply) in replies.iter().enumerate() {
            self.status[shard] = reply.status;
        }
        replies
    }

    /// Folds a round of replies into the stash-inclusive drain result.
    fn absorb(&mut self, replies: Vec<Reply>) -> Vec<DrainedOp> {
        let mut out = std::mem::take(&mut self.stash);
        let mut deferred = Vec::new();
        for (shard, reply) in replies.into_iter().enumerate() {
            out.extend(tag(shard, reply.ready));
            deferred.extend(reply.deferred);
        }
        self.reroute_deferred(deferred);
        out
    }

    /// Re-routes operations a wedged shard could not accept. The shard
    /// that deferred them is condemned (it reported `DeviceStalled`),
    /// then each op re-routes through the updated healthy set — the
    /// barrier-time twin of the inline pool's at-the-op re-route. With
    /// no survivors left the ops are dropped, matching the inline
    /// path's dropped futures when a whole batch loses its pool.
    fn reroute_deferred(&mut self, deferred: Vec<(u64, CodicOp)>) {
        if deferred.is_empty() {
            return;
        }
        for shard in 0..self.workers.len() {
            if self.health[shard].is_healthy() && self.status[shard].stalled {
                self.quarantine(shard, FaultCause::ClockStuck);
            }
        }
        if self.healthy.is_empty() {
            return;
        }
        for (seq, op) in deferred {
            let shard = self.shard_of(op);
            self.workers[shard].send(WorkItem::Submit { seq, op });
        }
    }
}

impl Drop for ShardWorkers {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // The ring may already be closed if the thread panicked;
            // either way the join below surfaces the worker's fate.
            let _ = worker.tx.send(WorkItem::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(thread) = worker.thread.take() {
                thread.join().expect("shard worker panicked");
            }
        }
    }
}

/// Tags a worker's drained `(seq, completion)` pairs with its shard.
fn tag(shard: usize, ready: Vec<(u64, OpCompletion)>) -> impl Iterator<Item = DrainedOp> {
    ready.into_iter().map(move |(seq, completion)| DrainedOp {
        seq,
        shard: shard as u16,
        completion,
    })
}

/// The worker thread: applies ring items in FIFO order against its own
/// device; never touches the device between items, so the engine
/// advances only when the coordinator says so (the determinism rule).
fn worker_loop(
    mut device: CodicDevice,
    mut rx: spsc::Receiver<WorkItem>,
    mut tx: spsc::Sender<Reply>,
) {
    // In-flight futures in submission (= seq) order; drains scan from
    // the front so `ready` is always in per-shard seq order.
    let mut pending: VecDeque<(u64, OpFuture)> = VecDeque::new();
    // Ops refused by a wedged device, handed back at the next reply.
    let mut deferred: Vec<(u64, CodicOp)> = Vec::new();
    let status = |device: &CodicDevice| WorkerStatus {
        outstanding: device.outstanding(),
        stalled: device.is_stalled(),
        stats: device.fault_stats(),
        now: device.now(),
    };
    let drain = |pending: &mut VecDeque<(u64, OpFuture)>| {
        let mut ready = Vec::new();
        pending.retain_mut(|(seq, future)| match future.try_take() {
            Some(completion) => {
                ready.push((*seq, completion));
                false
            }
            None => true,
        });
        ready
    };
    while let Some(item) = rx.recv() {
        let reply = match item {
            WorkItem::Submit { seq, op } => {
                // A wedged device (stuck clock, full queue) defers this
                // and everything after it; the coordinator re-routes.
                if deferred.is_empty() {
                    match device.submit_async_prechecked(op) {
                        Ok(future) => pending.push_back((seq, future)),
                        Err(_) => deferred.push((seq, op)),
                    }
                } else {
                    deferred.push((seq, op));
                }
                continue;
            }
            WorkItem::Barrier => Reply {
                ready: drain(&mut pending),
                deferred: std::mem::take(&mut deferred),
                status: status(&device),
                advanced: false,
            },
            WorkItem::StepOne => {
                let advanced = device.next_event_cycle() != u64::MAX && device.step();
                Reply {
                    ready: Vec::new(),
                    deferred: Vec::new(),
                    status: status(&device),
                    advanced,
                }
            }
            WorkItem::RunToIdle => {
                if device.next_event_cycle() != u64::MAX {
                    device.run_to_idle();
                }
                Reply {
                    ready: drain(&mut pending),
                    deferred: std::mem::take(&mut deferred),
                    status: status(&device),
                    advanced: false,
                }
            }
            WorkItem::Quarantine { cause } => {
                if !device.is_stalled() {
                    device.run_to_idle();
                }
                device.fail_all_pending(cause);
                Reply {
                    ready: drain(&mut pending),
                    deferred: std::mem::take(&mut deferred),
                    status: status(&device),
                    advanced: false,
                }
            }
            WorkItem::Shutdown => break,
        };
        if tx.send(reply).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codic_dram::timing::TimingParams;

    use crate::fault::{FaultPlan, RetryPolicy};
    use crate::ops::VariantId;
    use crate::pool::DevicePool;

    fn config() -> DeviceConfig {
        DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
            .with_refresh(false)
    }

    fn mixed_ops(n: u64) -> Vec<CodicOp> {
        (0..n)
            .map(|i| {
                let addr = (i % 4096) * DramGeometry::ROW_BYTES;
                match i % 4 {
                    0 => CodicOp::command(VariantId::DetZero, addr),
                    1 => CodicOp::read(addr),
                    2 => CodicOp::command(VariantId::Sig, addr),
                    _ => CodicOp::write(addr),
                }
            })
            .collect()
    }

    /// The inline reference: same batches through `DevicePool`, futures
    /// tracked per seq, drained at the end.
    fn inline_reference(shards: usize, config: &DeviceConfig, ops: &[CodicOp]) -> Vec<DrainedOp> {
        let mut pool = DevicePool::new(shards, config);
        let mut pending = Vec::new();
        for (chunk_index, chunk) in ops.chunks(64).enumerate() {
            let routed = pool.submit_all_async_routed(chunk).expect("submit");
            for (offset, (shard, future)) in routed.into_iter().enumerate() {
                pending.push(((chunk_index * 64 + offset) as u64, shard as u16, future));
            }
        }
        pool.drive();
        pending
            .into_iter()
            .map(|(seq, shard, mut future)| DrainedOp {
                seq,
                shard,
                completion: future.try_take().expect("driven to idle"),
            })
            .collect()
    }

    fn worker_run(shards: usize, config: &DeviceConfig, ops: &[CodicOp]) -> Vec<DrainedOp> {
        let mut workers = ShardWorkers::launch(shards, config);
        let mut seq = 0u64;
        let mut out = Vec::new();
        for chunk in ops.chunks(64) {
            workers.submit_batch(seq, chunk).expect("submit");
            seq += chunk.len() as u64;
            out.extend(workers.drain_ready());
        }
        out.extend(workers.flush());
        out
    }

    fn sorted(mut ops: Vec<DrainedOp>) -> Vec<DrainedOp> {
        ops.sort_by_key(|d| d.seq);
        ops
    }

    #[test]
    fn worker_completions_match_the_inline_pool_bit_for_bit() {
        let config = config();
        let ops = mixed_ops(512);
        let inline = sorted(inline_reference(4, &config, &ops));
        let workers = sorted(worker_run(4, &config, &ops));
        assert_eq!(inline.len(), workers.len());
        for (a, b) in inline.iter().zip(&workers) {
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.shard, b.shard, "seq {}", a.seq);
            assert_eq!(a.completion, b.completion, "seq {}", a.seq);
        }
    }

    #[test]
    fn worker_completions_match_inline_under_misfire_faults() {
        let config = config()
            .with_faults(FaultPlan::new(7).with_misfires(600))
            .with_retry(RetryPolicy {
                max_attempts: 3,
                backoff_cycles: 64,
                backoff_cap_cycles: 4096,
            });
        let ops = mixed_ops(384);
        let inline = sorted(inline_reference(2, &config, &ops));
        let workers = sorted(worker_run(2, &config, &ops));
        assert_eq!(inline.len(), workers.len());
        for (a, b) in inline.iter().zip(&workers) {
            assert_eq!(a.shard, b.shard, "seq {}", a.seq);
            assert_eq!(a.completion, b.completion, "seq {}", a.seq);
        }
    }

    #[test]
    fn worker_drains_preserve_per_shard_seq_order() {
        let mut workers = ShardWorkers::launch(4, &config());
        let ops = mixed_ops(256);
        workers.submit_batch(0, &ops).expect("submit");
        let drained = workers.flush();
        let mut last_per_shard = std::collections::HashMap::new();
        for d in &drained {
            if let Some(&last) = last_per_shard.get(&d.shard) {
                assert!(d.seq > last, "shard {} drained out of seq order", d.shard);
            }
            last_per_shard.insert(d.shard, d.seq);
        }
        assert_eq!(drained.len(), ops.len());
    }

    #[test]
    fn explicit_quarantine_fails_pending_and_reroutes_traffic() {
        let mut workers = ShardWorkers::launch(2, &config());
        let ops = mixed_ops(64);
        workers.submit_batch(0, &ops).expect("submit");
        workers.quarantine(1, FaultCause::Quarantined);
        let drained = workers.flush();
        assert_eq!(drained.len(), ops.len());
        assert!(!workers.health()[1].is_healthy());
        // Everything routed after the quarantine lands on shard 0.
        let shards = workers.submit_batch(64, &ops).expect("submit");
        assert!(shards.iter().all(|&s| s == 0));
        assert_eq!(workers.flush().len(), ops.len());
    }
}
