//! Deep-queue property tests: the indexed scheduler under sustained
//! backpressure.
//!
//! The O(1)-per-command refactor (slab + per-bank chains + ready-bank
//! index) must not change a single issued command even when the service
//! stream is far deeper than the controller's 64-entry queues. Each case
//! pushes **≥ 1024 mixed operations** (CODIC commands of every variant,
//! RowClone/LISA clones, plain reads and writes) through one device
//! twice — once drained by the horizon-free reference driver
//! ([`CodicDevice::tick_reference`]), once by the event engine with the
//! async future path — and requires bit-identical completion cycles,
//! accounted energy, command statistics, and final clocks.
//!
//! [`CodicDevice::tick_reference`]: codic_core::device::CodicDevice::tick_reference

use codic_core::device::{CodicDevice, DeviceConfig, OpCompletion};
use codic_core::executor::block_on;
use codic_core::ops::{CodicOp, VariantId};
use codic_dram::geometry::DramGeometry;
use codic_dram::timing::TimingParams;
use proptest::prelude::*;

/// The satellite floor: every generated stream is at least this deep.
const MIN_OUTSTANDING: usize = 1024;

/// Deterministically expands a small generated pattern into a deep
/// mixed stream: the pattern repeats with a row stride so the stream
/// walks banks and rows instead of hammering one address.
fn deep_ops(pattern: &[(u8, u8, u64)]) -> Vec<CodicOp> {
    (0..MIN_OUTSTANDING + pattern.len())
        .map(|i| {
            let (selector, variant_idx, row_seed) = pattern[i % pattern.len()];
            let row = (row_seed + i as u64 * 7) % 4096;
            let row_addr = row * DramGeometry::ROW_BYTES;
            match selector % 6 {
                0 => CodicOp::command(
                    VariantId::ALL[usize::from(variant_idx) % VariantId::ALL.len()],
                    row_addr,
                ),
                1 => CodicOp::RowCloneZero { row_addr },
                2 => CodicOp::LisaCloneZero { row_addr },
                3 => CodicOp::read(row_addr + 64),
                4 => CodicOp::write(row_addr + 128),
                _ => CodicOp::command(VariantId::DetZero, row_addr),
            }
        })
        .collect()
}

fn device(refresh: bool) -> CodicDevice {
    let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
        .with_refresh(refresh);
    CodicDevice::new(config)
}

/// The observable identity of a completion: everything but the token.
fn key(c: &OpCompletion) -> (u64, CodicOp, u32, u64) {
    (
        c.finish_cycle,
        c.op,
        c.cost.busy_cycles,
        c.cost.energy_nj.to_bits(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// ≥1024 outstanding mixed requests, reference-ticked vs
    /// event-driven: identical command stream (statistics), completion
    /// cycles, and per-operation energy.
    #[test]
    fn deep_mixed_queues_are_bit_identical_across_drivers(
        pattern in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), 0u64..4096), 16..48),
        refresh in any::<bool>(),
    ) {
        let ops = deep_ops(&pattern);
        prop_assert!(ops.len() >= MIN_OUTSTANDING);

        // Reference side: submission is shared machinery; the post-
        // submission drain runs on the horizon-free reference driver.
        let mut ticked = device(refresh);
        ticked.submit_all(&ops).unwrap();
        let mut guard = 0u64;
        while !ticked.is_idle() {
            ticked.tick_reference();
            guard += 1;
            prop_assert!(guard < 20_000_000, "tick engine livelock");
        }
        let tick_completions = ticked.take_completions();
        prop_assert_eq!(tick_completions.len(), ops.len());

        // Event side: the async serving path — every operation awaited
        // through the arena-backed futures.
        let mut evented = device(refresh);
        let futures: Vec<_> = ops
            .iter()
            .map(|&op| evented.submit_async(op).unwrap())
            .collect();
        evented.run_to_idle();
        prop_assert!(futures.iter().all(|f| f.is_ready()));
        let mut async_completions: Vec<OpCompletion> =
            futures.into_iter().map(block_on).collect();
        // Futures arrive in submission order; the polling buffer is in
        // completion order. Compare on the retirement order both share.
        async_completions.sort_by_key(|c| (c.finish_cycle, c.token));

        let a: Vec<_> = tick_completions.iter().map(key).collect();
        let b: Vec<_> = async_completions.iter().map(key).collect();
        prop_assert_eq!(a, b, "deep-queue completion streams diverge");
        prop_assert_eq!(ticked.stats(), evented.stats());
        prop_assert_eq!(ticked.now(), evented.now());

        let tick_energy: f64 = tick_completions.iter().map(|c| c.cost.energy_nj).sum();
        let event_energy: f64 = async_completions.iter().map(|c| c.cost.energy_nj).sum();
        prop_assert_eq!(tick_energy.to_bits(), event_energy.to_bits());
    }
}
