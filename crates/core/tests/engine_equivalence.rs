//! Property tests pinning the event-driven engine to the tick engine.
//!
//! The executor refactor's contract is that jumping the clock from event
//! to event ([`MemoryController::advance_to`] under
//! [`CodicDevice::run_to_idle`]) is *bit-identical* to advancing one
//! cycle at a time: same completion cycles, same accounted energy, same
//! command statistics — and that [`OpFuture`] resolution matches the
//! polling path completion for completion, in
//! [`CodicDevice::take_completions`] order.
//!
//! [`MemoryController::advance_to`]: codic_dram::MemoryController::advance_to
//! [`CodicDevice::run_to_idle`]: codic_core::device::CodicDevice::run_to_idle
//! [`CodicDevice::take_completions`]: codic_core::device::CodicDevice::take_completions
//! [`OpFuture`]: codic_core::executor::OpFuture

use codic_core::device::{CodicDevice, DeviceConfig, OpCompletion};
use codic_core::executor::block_on;
use codic_core::ops::{CodicOp, VariantId};
use codic_dram::geometry::DramGeometry;
use codic_dram::timing::TimingParams;
use proptest::prelude::*;

/// Deterministically picks a typed op (rows kept in-module for a 64 MB
/// device) — row operations of every kind plus plain read/write traffic.
fn arbitrary_op(selector: u8, variant_idx: u8, row: u64) -> CodicOp {
    let row_addr = (row % 4096) * DramGeometry::ROW_BYTES;
    match selector % 6 {
        0 => CodicOp::command(
            VariantId::ALL[usize::from(variant_idx) % VariantId::ALL.len()],
            row_addr,
        ),
        1 => CodicOp::RowCloneZero { row_addr },
        2 => CodicOp::LisaCloneZero { row_addr },
        3 => CodicOp::read(row_addr + 64),
        4 => CodicOp::write(row_addr + 128),
        _ => CodicOp::command(VariantId::DetZero, row_addr),
    }
}

fn device(refresh: bool) -> CodicDevice {
    let config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
        .with_refresh(refresh);
    CodicDevice::new(config)
}

fn ops_from(raw: &[(u8, u8, u64)]) -> Vec<CodicOp> {
    raw.iter().map(|&(s, v, r)| arbitrary_op(s, v, r)).collect()
}

/// The observable identity of a completion: everything but the token.
fn key(c: &OpCompletion) -> (u64, CodicOp, u32, u64) {
    (
        c.finish_cycle,
        c.op,
        c.cost.busy_cycles,
        c.cost.energy_nj.to_bits(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random `CodicOp` batches complete at bit-identical cycles with
    /// bit-identical energy whether the device is driven tick-by-tick or
    /// by `advance_to` jumps.
    #[test]
    fn event_and_tick_execution_agree(
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u64>()), 1..24),
        refresh in any::<bool>(),
    ) {
        let ops = ops_from(&raw);

        // The post-submission drain runs on the horizon-free reference
        // driver. (Submission internals — MRS drain barriers, queue-full
        // retries — are event-driven on both sides; the fully
        // horizon-free pin is the controller-level oracle in
        // codic_dram's tests.)
        let mut ticked = device(refresh);
        ticked.submit_all(&ops).unwrap();
        let mut guard = 0u64;
        while !ticked.is_idle() {
            ticked.tick_reference();
            guard += 1;
            prop_assert!(guard < 2_000_000, "tick engine livelock");
        }
        let tick_completions = ticked.take_completions();

        let mut jumped = device(refresh);
        jumped.submit_all(&ops).unwrap();
        jumped.run_to_idle();
        let jump_completions = jumped.take_completions();

        prop_assert_eq!(tick_completions.len(), ops.len());
        let a: Vec<_> = tick_completions.iter().map(key).collect();
        let b: Vec<_> = jump_completions.iter().map(key).collect();
        prop_assert_eq!(a, b, "completion streams diverge");
        prop_assert_eq!(ticked.stats(), jumped.stats());
        prop_assert_eq!(ticked.now(), jumped.now());
    }

    /// Awaited futures yield exactly the completions the polling path
    /// yields, resolved in `take_completions` order (ascending
    /// finish-cycle, ties broken by submission id).
    #[test]
    fn future_resolution_matches_take_completions_order(
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u64>()), 1..16),
    ) {
        let ops = ops_from(&raw);

        let mut sync_dev = device(false);
        sync_dev.submit_all(&ops).unwrap();
        sync_dev.run_to_idle();
        let sync_completions = sync_dev.take_completions();
        // The polling order is the retirement order: ascending
        // (finish_cycle, token).
        let mut sorted = sync_completions.clone();
        sorted.sort_by_key(|c| (c.finish_cycle, c.token));
        prop_assert_eq!(&sync_completions, &sorted);

        // The async twin, driven one event at a time by the clock driver.
        let mut async_dev = device(false);
        let futures: Vec<_> = ops
            .iter()
            .map(|&op| async_dev.submit_async(op).unwrap())
            .collect();
        // Sample readiness between events: once a future reports ready it
        // must stay ready, and the ready set grows in completion order.
        let mut resolved = vec![false; futures.len()];
        let mut resolution_rank = vec![usize::MAX; futures.len()];
        let mut wave = 0usize;
        while async_dev.step() {
            wave += 1;
            for (i, f) in futures.iter().enumerate() {
                if f.is_ready() {
                    if !resolved[i] {
                        resolved[i] = true;
                        resolution_rank[i] = wave;
                    }
                } else {
                    prop_assert!(!resolved[i], "future un-resolved itself");
                }
            }
        }
        let async_completions: Vec<_> = futures.into_iter().map(block_on).collect();
        // Identical completions, op for op (submission order is preserved
        // on both sides).
        let by_submission_sync = {
            let mut v = sync_completions.clone();
            v.sort_by_key(|c| c.token);
            v
        };
        let a: Vec<_> = by_submission_sync.iter().map(key).collect();
        let b: Vec<_> = async_completions.iter().map(key).collect();
        prop_assert_eq!(a, b);
        // Resolution order is completion order: ranking futures by the
        // event wave that resolved them must agree with the polling
        // order's (finish_cycle, token) sort.
        let mut order: Vec<usize> = (0..async_completions.len()).collect();
        order.sort_by_key(|&i| {
            // One event wave may retire several completions at once; the
            // unobservable intra-wave order is the heap's (finish, token).
            (
                resolution_rank[i],
                async_completions[i].finish_cycle,
                async_completions[i].token,
            )
        });
        let resolved_stream: Vec<_> = order.iter().map(|&i| key(&async_completions[i])).collect();
        let polled_stream: Vec<_> = sync_completions.iter().map(key).collect();
        prop_assert_eq!(resolved_stream, polled_stream);
    }
}
