//! Fault injection and recovery, pinned end to end at the device and
//! pool layers.
//!
//! The contracts under test:
//!
//! 1. **Disabled injection is free**: a device carrying a
//!    [`FaultPlan`] with every rate at zero is *bit-identical* to a
//!    device with no plan at all — same completion cycles, energy bits,
//!    and statistics.
//! 2. **Misfires perturb outcomes, not the timeline**: with retry
//!    disabled (`max_attempts = 1`), a misfired operation occupies
//!    exactly the DRAM time and energy of a successful one, so a faulted
//!    run and its fault-free twin agree on every cycle and differ only
//!    in the typed [`OpOutcome`] bits — and which ops fail is a pure
//!    function of the plan seed.
//! 3. **Retry recovers deterministically**: with `max_attempts > 1`,
//!    re-issues are scheduled with bounded cycle-domain backoff, the
//!    completion carries the attempt count, and two identical runs
//!    retire identical streams.
//! 4. **Stuck clocks are contained**: a shard whose clock freezes stops
//!    making progress without hanging any driver loop; its pending ops
//!    are failed with [`FaultCause::ClockStuck`] and the pool
//!    quarantines it, re-routing its rows to the survivors.

use codic_core::device::{CodicDevice, DeviceConfig, OpCompletion};
use codic_core::executor::OpFuture;
use codic_core::fault::{FaultCause, FaultPlan, OpOutcome, RetryPolicy};
use codic_core::ops::{CodicOp, VariantId};
use codic_core::pool::{DevicePool, ShardHealth};
use codic_core::CodicError;
use codic_dram::geometry::DramGeometry;
use codic_dram::timing::TimingParams;

fn base_config() -> DeviceConfig {
    DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
        .with_refresh(false)
}

/// A mixed workload: row operations of every kind plus plain data
/// accesses (which must never misfire).
fn mixed_ops(n: u64) -> Vec<CodicOp> {
    (0..n)
        .map(|i| {
            let row_addr = (i % 4096) * DramGeometry::ROW_BYTES;
            match i % 6 {
                0 => CodicOp::command(VariantId::DetZero, row_addr),
                1 => CodicOp::command(VariantId::Sig, row_addr),
                2 => CodicOp::RowCloneZero { row_addr },
                3 => CodicOp::LisaCloneZero { row_addr },
                4 => CodicOp::read(row_addr + 64),
                _ => CodicOp::write(row_addr + 128),
            }
        })
        .collect()
}

/// Everything observable about a completion except its outcome bits.
fn timeline_key(c: &OpCompletion) -> (u64, CodicOp, u32, u64) {
    (
        c.finish_cycle,
        c.op,
        c.cost.busy_cycles,
        c.cost.energy_nj.to_bits(),
    )
}

#[test]
fn disabled_fault_plan_changes_nothing() {
    let ops = mixed_ops(96);

    let mut plain = CodicDevice::new(base_config());
    plain.submit_all(&ops).unwrap();
    plain.run_to_idle();
    let reference = plain.take_completions();

    let mut armed = CodicDevice::new(base_config().with_faults(FaultPlan::new(0xdead_beef)));
    armed.submit_all(&ops).unwrap();
    armed.run_to_idle();
    let observed = armed.take_completions();

    assert_eq!(reference.len(), observed.len());
    for (a, b) in reference.iter().zip(&observed) {
        assert_eq!(timeline_key(a), timeline_key(b));
        assert_eq!(b.outcome, OpOutcome::Ok);
        assert_eq!(b.attempts, 1);
    }
    assert_eq!(plain.stats(), armed.stats());
    assert_eq!(plain.now(), armed.now());
    assert_eq!(armed.fault_stats().failed, 0);
}

#[test]
fn misfires_leave_the_timeline_bit_identical_without_retry() {
    let ops = mixed_ops(240);
    let plan = FaultPlan::new(1234).with_misfires(6554); // ~10% of row ops

    let mut clean = CodicDevice::new(base_config());
    clean.submit_all(&ops).unwrap();
    clean.run_to_idle();
    let clean_stream = clean.take_completions();

    // Two identical faulted runs, to pin determinism of the failure set.
    let run = || {
        let mut device = CodicDevice::new(base_config().with_faults(plan));
        device.submit_all(&ops).unwrap();
        device.run_to_idle();
        device.take_completions()
    };
    let faulted = run();
    let faulted_again = run();
    assert_eq!(faulted, faulted_again, "the failure set is seeded");

    // Identical timeline, completion for completion; outcomes may differ.
    assert_eq!(clean_stream.len(), faulted.len());
    let mut failed = 0usize;
    for (clean_c, faulted_c) in clean_stream.iter().zip(&faulted) {
        assert_eq!(timeline_key(clean_c), timeline_key(faulted_c));
        assert_eq!(faulted_c.attempts, 1);
        match faulted_c.outcome {
            OpOutcome::Ok => {}
            OpOutcome::Failed { cause } => {
                assert_eq!(cause, FaultCause::Misfire);
                assert!(
                    faulted_c.op.row_op_kind().is_some(),
                    "plain reads/writes never misfire"
                );
                failed += 1;
            }
        }
    }
    // 160 row ops at ~10%: the seeded schedule must actually fire.
    assert!(
        (4..=40).contains(&failed),
        "expected a ~10% misfire rate over 160 row ops, saw {failed}"
    );
    let mut audited = CodicDevice::new(base_config().with_faults(plan));
    audited.submit_all(&ops).unwrap();
    audited.run_to_idle();
    audited.take_completions();
    assert_eq!(audited.fault_stats().failed, failed as u64);
    assert_eq!(audited.fault_stats().retries, 0, "retry is disabled");
}

#[test]
fn retry_recovers_misfires_and_reports_attempts() {
    let ops = mixed_ops(240);
    let plan = FaultPlan::new(77).with_misfires(13107); // ~20% per attempt
    let retry = RetryPolicy::attempts(4).with_backoff(32, 512);

    let run = || {
        let mut device = CodicDevice::new(base_config().with_faults(plan).with_retry(retry));
        device.submit_all(&ops).unwrap();
        device.run_to_idle();
        (device.take_completions(), device.fault_stats())
    };
    let (stream, stats) = run();
    let (stream_b, stats_b) = run();
    assert_eq!(stream, stream_b, "retried runs are deterministic");
    assert_eq!(stats, stats_b);

    assert_eq!(stream.len(), ops.len(), "every op completes exactly once");
    let retried: Vec<&OpCompletion> = stream.iter().filter(|c| c.attempts > 1).collect();
    assert!(!retried.is_empty(), "a ~20% misfire rate forces retries");
    assert!(stats.retries > 0);
    assert!(
        retried.iter().any(|c| c.outcome.is_ok()),
        "some retries must succeed at a 20% per-attempt rate"
    );
    for c in &stream {
        assert!(c.attempts >= 1 && c.attempts <= 4);
        if c.attempts > 1 {
            assert!(c.op.row_op_kind().is_some(), "only row ops are retried");
        }
        if c.outcome.is_failed() {
            assert_eq!(c.attempts, 4, "a final failure exhausted its attempts");
        }
    }
    // ~20% per attempt with 4 attempts: final failure rate ~0.16%, so
    // the overwhelming majority of the 160 row ops must succeed.
    assert!(stats.ok >= 230, "retry must recover most misfires");
    assert_eq!(stats.ok + stats.failed, ops.len() as u64);
}

#[test]
fn stuck_clock_stalls_without_hanging_and_fails_pending() {
    let plan = FaultPlan::new(5).with_stuck_clock(100);
    let mut device = CodicDevice::new(base_config().with_faults(plan));

    // More work than fits in 100 cycles: the device wedges mid-batch.
    let ops = mixed_ops(32);
    let mut futures: Vec<OpFuture> = ops
        .iter()
        .map(|&op| device.submit_async(op).unwrap())
        .collect();

    // Every driver terminates despite the wedge.
    device.run_to_idle();
    while device.step() {}
    assert!(device.is_stalled());
    assert!(device.outstanding() > 0, "the wedge strands pending ops");
    let finished_early = futures.iter().filter(|f| f.is_ready()).count();

    // Failing the stranded ops resolves every remaining future with a
    // typed, zero-cost ClockStuck completion.
    let failed = device.fail_all_pending(FaultCause::ClockStuck);
    assert_eq!(failed + finished_early, ops.len());
    assert_eq!(device.outstanding(), 0);
    let mut stuck = 0usize;
    for f in &mut futures {
        let c = f.try_take().expect("every future resolves");
        match c.outcome {
            OpOutcome::Ok => assert!(c.cost.energy_nj > 0.0),
            OpOutcome::Failed { cause } => {
                assert_eq!(cause, FaultCause::ClockStuck);
                assert_eq!(c.cost.energy_nj.to_bits(), 0.0f64.to_bits());
                assert_eq!(c.cost.busy_cycles, 0);
                stuck += 1;
            }
        }
    }
    assert_eq!(stuck, failed);
}

#[test]
fn pool_quarantines_a_stuck_shard_and_reroutes_its_rows() {
    let plan = FaultPlan::new(9).with_stuck_shard(1, 50);
    let config = base_config().with_faults(plan);

    let run = |ops: &[CodicOp]| {
        let mut pool = DevicePool::new(4, &config);
        let futures = pool.submit_all_async(ops).unwrap();
        pool.drive();
        // The batch boundary: shard 1 wedged, so the health check
        // condemns it and fails its stranded ops.
        assert_eq!(pool.check_health(), 1);
        assert_eq!(
            pool.health()[1],
            ShardHealth::Quarantined {
                cause: FaultCause::ClockStuck
            }
        );
        assert!(pool.health()[0].is_healthy());
        (pool, futures)
    };

    let ops = mixed_ops(160);
    let (mut pool, mut futures) = run(&ops);
    let outcomes: Vec<OpOutcome> = futures
        .iter_mut()
        .map(|f| f.try_take().expect("resolved or failed").outcome)
        .collect();
    assert!(
        outcomes.iter().any(|o| o.is_failed()),
        "shard 1's stranded ops surface as typed failures"
    );
    assert!(outcomes.iter().any(|o| o.is_ok()));

    // Determinism: a twin run fails exactly the same ops.
    let (_, mut twin_futures) = run(&ops);
    let twin: Vec<OpOutcome> = twin_futures
        .iter_mut()
        .map(|f| f.try_take().expect("resolved or failed").outcome)
        .collect();
    assert_eq!(outcomes, twin);

    // Post-quarantine traffic lands only on survivors and re-routing is
    // the documented pure function of the quarantine set.
    let next = mixed_ops(64);
    for &op in &next {
        assert_ne!(pool.shard_of(op), 1, "no traffic routes to quarantine");
    }
    let tokens = pool.submit_all(&next).unwrap();
    pool.drive();
    assert!(tokens.iter().all(|t| t.shard != 1));
    assert_eq!(pool.take_completions().len(), next.len());

    // A fully quarantined pool turns traffic away with a typed error.
    pool.quarantine(0, FaultCause::Quarantined);
    pool.quarantine(2, FaultCause::Quarantined);
    pool.quarantine(3, FaultCause::Quarantined);
    assert_eq!(
        pool.submit_all(&next).unwrap_err(),
        CodicError::NoHealthyShards
    );
}
