//! Fairness properties of the shared fleet's deficit-round-robin
//! admission: a saturating tenant cannot starve paced tenants, waits
//! are bounded by the rotation, and QoS weights scale admission credit
//! proportionally.
//!
//! These are *scheduling* properties — they constrain host-side
//! admission order only. Device timing is pinned separately by
//! `fleet_isolation.rs`: however the rotation orders admissions, every
//! tenant's stream stays bit-identical to its solo run.

use codic_core::device::DeviceConfig;
use codic_core::fleet::{FleetConfig, SharedFleet, TenantId};
use codic_core::ops::CodicOp;
use codic_dram::geometry::DramGeometry;
use codic_dram::timing::TimingParams;
use proptest::prelude::*;

fn device_config() -> DeviceConfig {
    DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
        .with_refresh(false)
}

fn read_ops(count: usize) -> Vec<CodicOp> {
    (0..count as u64).map(|i| CodicOp::read(i * 8192)).collect()
}

/// A fleet of `paced + 1` single-shard slots: tenant 0 saturating with
/// `flood` batches of `batch` ops, every paced tenant holding exactly
/// one batch of at most `batch` ops. The quantum equals the largest
/// batch cost — the configuration whose starvation bound is one
/// rotation.
fn saturated_fleet(
    paced: usize,
    batch: usize,
    flood: usize,
    pace_len: usize,
) -> (SharedFleet, Vec<TenantId>, Vec<u64>) {
    let quantum = u32::try_from(batch).expect("batch fits u32");
    let mut fleet = SharedFleet::new(
        FleetConfig::new(paced + 1, 1, device_config())
            .with_quantum(quantum)
            .with_quota(usize::MAX >> 1),
    );
    let ids: Vec<TenantId> = (0..=paced)
        .map(|_| fleet.acquire().expect("free slot"))
        .collect();
    for chunk in read_ops(batch * flood).chunks(batch) {
        fleet.enqueue(ids[0], chunk);
    }
    let tickets: Vec<u64> = ids[1..]
        .iter()
        .map(|&id| fleet.enqueue(id, &read_ops(pace_len)))
        .collect();
    (fleet, ids, tickets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Starvation detector: with one saturating tenant and N paced
    /// tenants, one full rotation serves every pending tenant — no
    /// paced ticket is left unresolved once every slot has been visited.
    #[test]
    fn every_pending_tenant_is_served_within_one_rotation(
        paced in 1usize..6,
        batch in 1usize..64,
        flood in 2usize..12,
        pace_len_raw in 1usize..64,
    ) {
        let pace_len = pace_len_raw.min(batch);
        let (mut fleet, ids, tickets) = saturated_fleet(paced, batch, flood, pace_len);
        for _ in 0..fleet.slots() {
            fleet.pump_turn();
        }
        for (i, ticket) in tickets.iter().enumerate() {
            let receipt = fleet
                .take_ticket(*ticket)
                .unwrap_or_else(|| panic!("paced tenant {} starved past one rotation", i + 1))
                .expect("admission succeeds");
            prop_assert_eq!(receipt.accepted as usize, pace_len);
        }
        prop_assert!(
            fleet.admitted_batches(ids[0]) >= 1,
            "the saturating tenant is not starved either"
        );
        fleet.pump();
        for id in ids {
            fleet.flush(id);
            fleet.release(id);
        }
    }

    /// Wait bound: a paced tenant's batch, enqueued while a flood is in
    /// progress, resolves after at most `slots` pump turns — the DRR
    /// window — and `pump_until` never admits more than one flood batch
    /// per rotation visit beyond its credit.
    #[test]
    fn paced_waits_are_bounded_by_the_rotation(
        paced in 1usize..5,
        batch in 1usize..48,
        flood in 2usize..10,
    ) {
        let (mut fleet, ids, tickets) = saturated_fleet(paced, batch, flood, 1);
        let slots = fleet.slots();
        for ticket in tickets {
            let mut turns = 0usize;
            while fleet.take_ticket(ticket).is_none() {
                fleet.pump_turn();
                turns += 1;
                prop_assert!(
                    turns <= slots,
                    "ticket unresolved after {} turns (rotation is {})", turns, slots
                );
            }
        }
        fleet.pump();
        for id in ids {
            fleet.flush(id);
            fleet.release(id);
        }
    }

    /// QoS weights scale credit proportionally: over enough full
    /// rotations with both tenants backlogged, a weight-w tenant admits
    /// w× the batches of a weight-1 tenant (equal batch sizes).
    #[test]
    fn weights_scale_admissions_proportionally(
        weight in 2u32..6,
        batch in 1usize..32,
        rotations in 2usize..6,
    ) {
        let quantum = u32::try_from(batch).expect("fits");
        let mut fleet = SharedFleet::new(
            FleetConfig::new(2, 1, device_config())
                .with_quantum(quantum)
                .with_quota(usize::MAX >> 1),
        );
        let heavy = fleet.acquire_with(weight, usize::MAX >> 1).expect("heavy");
        let light = fleet.acquire_with(1, usize::MAX >> 1).expect("light");
        // Backlogs deep enough that neither queue empties mid-test.
        let backlog = batch * (weight as usize + 1) * (rotations + 1);
        for chunk in read_ops(backlog).chunks(batch) {
            fleet.enqueue(heavy, chunk);
            fleet.enqueue(light, chunk);
        }
        for _ in 0..rotations * fleet.slots() {
            fleet.pump_turn();
        }
        prop_assert_eq!(
            fleet.admitted_batches(heavy),
            u64::from(weight) * rotations as u64
        );
        prop_assert_eq!(fleet.admitted_batches(light), rotations as u64);
        fleet.pump();
        for id in [heavy, light] {
            fleet.flush(id);
            fleet.release(id);
        }
    }

    /// An idle visit forfeits accumulated credit: deficits measure
    /// backlog service, so a tenant that drained cannot bank credit to
    /// burst past its share later.
    #[test]
    fn drained_tenants_forfeit_banked_credit(
        batch in 1usize..32,
        quantum_factor in 2u32..8,
    ) {
        let quantum = u32::try_from(batch).expect("fits") * quantum_factor;
        let mut fleet = SharedFleet::new(
            FleetConfig::new(1, 1, device_config())
                .with_quantum(quantum)
                .with_quota(usize::MAX >> 1),
        );
        let t = fleet.acquire().expect("slot");
        let ticket = fleet.enqueue(t, &read_ops(batch));
        fleet.pump_until(ticket).expect("admit");
        prop_assert!(fleet.deficit(t) > 0, "credit remains after one batch");
        fleet.pump_turn(); // idle visit
        prop_assert_eq!(fleet.deficit(t), 0u64);
        fleet.flush(t);
        fleet.release(t);
    }
}
