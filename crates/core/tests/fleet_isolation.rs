//! The tenant-isolation pin: property tests asserting that a tenant's
//! demultiplexed event stream on a [`SharedFleet`] is **bit-identical**
//! to a solo run of the same operations on an equivalent private
//! [`DevicePool`] — sequence numbers, lease-local shards, finish
//! cycles, busy cycles, energy bits, outcomes, attempts, fingerprints —
//! for random tenant mixes, batch splits, quotas, and interleavings,
//! fault-free and under seeded misfire/stuck-clock injection.
//!
//! The solo reference is not the fleet run twice: it is the serving
//! layer's private-pool engine discipline written out by hand (routed
//! async submission, step-at-a-time quota backpressure, a health check
//! at every batch boundary, `(finish_cycle, seq)` drain order), run on
//! a `DevicePool` of the tenant's slot shape. If the fleet's carving,
//! scheduling, or fault seeding leaked any cross-tenant state, these
//! streams would diverge.

use codic_core::device::{DeviceConfig, OpCompletion};
use codic_core::executor::OpFuture;
use codic_core::fault::{FaultPlan, RetryPolicy};
use codic_core::fleet::{FleetConfig, FleetEvent, SharedFleet};
use codic_core::ops::{CodicOp, VariantId};
use codic_core::pool::DevicePool;
use codic_dram::geometry::DramGeometry;
use codic_dram::timing::TimingParams;
use proptest::prelude::*;

/// Deterministically picks a typed op (rows kept in-module for a 64 MB
/// device) — row operations of every kind plus plain read/write traffic.
fn arbitrary_op(selector: u8, variant_idx: u8, row: u64) -> CodicOp {
    let row_addr = (row % 4096) * DramGeometry::ROW_BYTES;
    match selector % 6 {
        0 => CodicOp::command(
            VariantId::ALL[usize::from(variant_idx) % VariantId::ALL.len()],
            row_addr,
        ),
        1 => CodicOp::RowCloneZero { row_addr },
        2 => CodicOp::LisaCloneZero { row_addr },
        3 => CodicOp::read(row_addr + 64),
        4 => CodicOp::write(row_addr + 128),
        _ => CodicOp::command(VariantId::DetZero, row_addr),
    }
}

fn device_config(fault: Option<FaultPlan>, retry: RetryPolicy) -> DeviceConfig {
    let mut config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
        .with_retry(retry);
    if let Some(plan) = fault {
        config = config.with_faults(plan);
    }
    config
}

/// Everything observable about one emitted completion.
type Emitted = (u64, u16, u64, CodicOp, u32, u64, bool, u8, u64);

fn key(seq: u64, shard: u16, c: &OpCompletion) -> Emitted {
    (
        seq,
        shard,
        c.finish_cycle,
        c.op,
        c.cost.busy_cycles,
        c.cost.energy_nj.to_bits(),
        c.outcome.is_ok(),
        c.attempts,
        c.fingerprint,
    )
}

fn emitted(events: &[FleetEvent]) -> Vec<Emitted> {
    events
        .iter()
        .map(|e| key(e.seq, e.shard, &e.completion))
        .collect()
}

/// The private-pool serving engine, reduced to its core calls — the
/// reference every tenant stream must match bit for bit.
fn solo_run(
    shards: usize,
    config: &DeviceConfig,
    ops: &[CodicOp],
    batch: usize,
    quota: usize,
) -> Vec<Emitted> {
    let mut pool = DevicePool::new(shards, config);
    let mut pending: Vec<(u64, u16, OpFuture)> = Vec::new();
    let mut next_seq = 0u64;
    let mut out = Vec::with_capacity(ops.len());
    let drain = |pending: &mut Vec<(u64, u16, OpFuture)>| {
        let mut ready = Vec::new();
        pending.retain_mut(|(seq, shard, future)| match future.try_take() {
            Some(completion) => {
                ready.push((*seq, *shard, completion));
                false
            }
            None => true,
        });
        ready.sort_by_key(|(seq, _, c)| (c.finish_cycle, *seq));
        ready
    };
    for chunk in ops.chunks(batch) {
        let routed = pool.submit_all_async_routed(chunk).expect("in range");
        for (shard, future) in routed {
            pending.push((next_seq, shard as u16, future));
            next_seq += 1;
        }
        while pool.outstanding() > quota {
            if !pool.step() {
                break;
            }
        }
        pool.check_health();
        out.extend(
            drain(&mut pending)
                .iter()
                .map(|(seq, shard, c)| key(*seq, *shard, c)),
        );
    }
    pool.drive();
    pool.check_health();
    out.extend(
        drain(&mut pending)
            .iter()
            .map(|(seq, shard, c)| key(*seq, *shard, c)),
    );
    out
}

/// One tenant's workload for a fleet run.
struct TenantLoad {
    ops: Vec<CodicOp>,
    batch: usize,
    quota: usize,
}

/// Runs every tenant's workload on one shared fleet, admitting batches
/// in the interleaving `order` dictates (each entry picks the next
/// unsubmitted batch of tenant `order[i] % tenants`; leftovers drain
/// round-robin), and returns each tenant's collected stream.
///
/// `check_quota` additionally asserts the tenant's outstanding-op bound
/// after every admission — sound whenever no clock can wedge.
fn fleet_run(
    tenants: &[TenantLoad],
    shards_per_slot: usize,
    device: &DeviceConfig,
    order: &[u8],
    check_quota: bool,
) -> Vec<Vec<Emitted>> {
    let mut fleet = SharedFleet::new(FleetConfig::new(
        tenants.len(),
        shards_per_slot,
        device.clone(),
    ));
    let ids: Vec<_> = tenants
        .iter()
        .map(|t| fleet.acquire_with(1, t.quota).expect("free slot"))
        .collect();
    let mut cursors = vec![0usize; tenants.len()];
    let mut streams: Vec<Vec<Emitted>> = tenants.iter().map(|_| Vec::new()).collect();
    let mut submit_next = |fleet: &mut SharedFleet, t: usize| -> bool {
        let load = &tenants[t];
        if cursors[t] >= load.ops.len() {
            return false;
        }
        let end = (cursors[t] + load.batch).min(load.ops.len());
        let chunk = &load.ops[cursors[t]..end];
        cursors[t] = end;
        let ticket = fleet.enqueue(ids[t], chunk);
        let receipt = fleet.pump_until(ticket).expect("in range");
        assert_eq!(receipt.accepted as usize, chunk.len());
        if check_quota {
            assert!(
                fleet.outstanding(ids[t]) <= load.quota,
                "tenant {t} quota violated after admission"
            );
        }
        streams[t].extend(emitted(&fleet.take_events(ids[t])));
        true
    };
    for &pick in order {
        submit_next(&mut fleet, usize::from(pick) % tenants.len());
    }
    // Whatever the interleaving didn't cover drains round-robin.
    loop {
        let mut any = false;
        for t in 0..tenants.len() {
            any |= submit_next(&mut fleet, t);
        }
        if !any {
            break;
        }
    }
    for (t, &id) in ids.iter().enumerate() {
        fleet.flush(id);
        streams[t].extend(emitted(&fleet.take_events(id)));
        if check_quota {
            assert_eq!(fleet.outstanding(id), 0, "flush drains tenant {t}");
        }
        fleet.release(id);
    }
    streams
}

/// Raw proptest tuple: (packed ops, batch size, quota).
type RawLoad = (Vec<(u8, u8, u64)>, usize, usize);

/// Expands proptest's raw tuples into tenant workloads.
fn loads(raw: &[RawLoad]) -> Vec<TenantLoad> {
    raw.iter()
        .map(|(ops, batch, quota)| TenantLoad {
            ops: ops.iter().map(|&(s, v, r)| arbitrary_op(s, v, r)).collect(),
            batch: *batch,
            quota: *quota,
        })
        .collect()
}

fn tenant_load_strategy(max_ops: usize) -> impl Strategy<Value = RawLoad> {
    (
        proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u64>()), 1..max_ops),
        1usize..32,
        1usize..64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fault-free isolation pin: for 1–3 tenants with independent
    /// workloads, batch splits, and quotas, admitted in a random
    /// interleaving, every tenant's stream is bit-identical to its solo
    /// run — and its quota holds after every admission step.
    #[test]
    fn tenant_streams_are_bit_identical_to_solo_runs(
        raw in proptest::collection::vec(tenant_load_strategy(80), 1..4),
        shards_per_slot in 1usize..3,
        order in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        let tenants = loads(&raw);
        let device = device_config(None, RetryPolicy::default());
        let streams = fleet_run(&tenants, shards_per_slot, &device, &order, true);
        for (t, load) in tenants.iter().enumerate() {
            let solo = solo_run(shards_per_slot, &device, &load.ops, load.batch, load.quota);
            prop_assert_eq!(solo.len(), load.ops.len());
            prop_assert_eq!(
                &streams[t], &solo,
                "tenant {} diverged from its solo run", t
            );
        }
    }

    /// The same pin under seeded misfire injection with retry: derived
    /// per-shard fault schedules, attempt counts, and typed failures
    /// must be seeded by *lease-local* shard index, or a tenant's slot
    /// position in the fleet would leak into its failure stream.
    #[test]
    fn faulted_tenant_streams_match_their_solo_runs(
        raw in proptest::collection::vec(tenant_load_strategy(60), 1..4),
        shards_per_slot in 1usize..3,
        order in proptest::collection::vec(any::<u8>(), 0..32),
        seed in any::<u64>(),
        per_64k in 1u32..16_000,
        attempts in 1u8..4,
    ) {
        let tenants = loads(&raw);
        let plan = FaultPlan::new(seed).with_misfires(per_64k);
        let retry = RetryPolicy::attempts(attempts).with_backoff(16, 256);
        let device = device_config(Some(plan), retry);
        let streams = fleet_run(&tenants, shards_per_slot, &device, &order, true);
        for (t, load) in tenants.iter().enumerate() {
            let solo = solo_run(shards_per_slot, &device, &load.ops, load.batch, load.quota);
            prop_assert_eq!(
                &streams[t], &solo,
                "faulted tenant {} diverged from its solo run", t
            );
        }
    }

    /// A wedged clock on every tenant's local shard 0 (the worst case:
    /// the *same* local index everywhere) quarantines and re-routes
    /// inside each lease exactly as it does on a private pool — no
    /// tenant's recovery perturbs another's stream. Quota assertions are
    /// off: a wedged clock legitimately strands outstanding ops, for
    /// fleet and solo alike.
    #[test]
    fn stuck_clock_recovery_is_solo_identical_per_tenant(
        raw in proptest::collection::vec(tenant_load_strategy(50), 2..4),
        order in proptest::collection::vec(any::<u8>(), 0..32),
        seed in any::<u64>(),
        stuck_cycle in 500u64..20_000,
    ) {
        let tenants = loads(&raw);
        let plan = FaultPlan::new(seed).with_stuck_shard(0, stuck_cycle);
        let device = device_config(Some(plan), RetryPolicy::default());
        // Two shards per slot so the survivor can absorb re-routes.
        let streams = fleet_run(&tenants, 2, &device, &order, false);
        for (t, load) in tenants.iter().enumerate() {
            let solo = solo_run(2, &device, &load.ops, load.batch, load.quota);
            prop_assert_eq!(
                &streams[t], &solo,
                "tenant {} diverged from its solo run under a stuck clock", t
            );
        }
    }
}
