//! Property-based tests of the CODIC substrate invariants.

use codic_circuit::SignalPulse;
use codic_core::mode_register::{ModeRegister, ModeRegisterFile, IDLE_ENCODING};
use codic_core::variant_space;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mode_register_round_trips_every_valid_pulse(idx in 0u64..300) {
        let pulse = variant_space::nth_pulse(idx).unwrap();
        let mr = ModeRegister::encode(pulse);
        prop_assert!(mr.raw() < (1 << 10), "10-bit field");
        prop_assert_eq!(mr.decode().unwrap(), Some(pulse));
        prop_assert_eq!(ModeRegister::from_raw(mr.raw()).unwrap(), mr);
    }

    #[test]
    fn raw_values_never_panic(raw in any::<u16>()) {
        match ModeRegister::from_raw(raw) {
            Ok(mr) => {
                // Valid encodings decode to idle or a valid pulse.
                match mr.decode().unwrap() {
                    None => prop_assert_eq!(raw, IDLE_ENCODING),
                    Some(p) => prop_assert!(p.assert_ns() < p.deassert_ns()),
                }
            }
            Err(_) => {
                // Rejected values are wide or encode invalid pulses.
                let wide = raw > IDLE_ENCODING;
                let a = (raw & 0x1F) as u8;
                let d = (raw >> 5) as u8;
                prop_assert!(wide || SignalPulse::new(a, d).is_err());
            }
        }
    }

    #[test]
    fn programming_random_variants_round_trips(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let v = variant_space::random_variant(&mut rng, 0.3);
        let mut mrf = ModeRegisterFile::new();
        mrf.program(&v);
        prop_assert_eq!(&mrf.schedule().unwrap(), v.schedule());
        // Re-programming the same variant writes nothing.
        prop_assert_eq!(mrf.program(&v), 0);
    }
}
