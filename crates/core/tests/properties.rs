//! Property-based tests of the CODIC substrate invariants.

use codic_circuit::SignalPulse;
use codic_core::device::{CodicDevice, DeviceConfig};
use codic_core::interface::CodicController;
use codic_core::mode_register::{ModeRegister, ModeRegisterFile, IDLE_ENCODING};
use codic_core::ops::{CodicOp, VariantId};
use codic_core::variant_space;
use codic_core::CodicError;
use codic_dram::{DramGeometry, TimingParams};
use proptest::prelude::*;

/// Deterministically picks one of the typed ops from two raw draws.
fn arbitrary_op(selector: u8, variant_idx: u8, row_addr: u64) -> CodicOp {
    match selector % 3 {
        0 => CodicOp::command(
            VariantId::ALL[usize::from(variant_idx) % VariantId::ALL.len()],
            row_addr,
        ),
        1 => CodicOp::RowCloneZero { row_addr },
        _ => CodicOp::LisaCloneZero { row_addr },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mode_register_round_trips_every_valid_pulse(idx in 0u64..300) {
        let pulse = variant_space::nth_pulse(idx).unwrap();
        let mr = ModeRegister::encode(pulse);
        prop_assert!(mr.raw() < (1 << 10), "10-bit field");
        prop_assert_eq!(mr.decode().unwrap(), Some(pulse));
        prop_assert_eq!(ModeRegister::from_raw(mr.raw()).unwrap(), mr);
    }

    #[test]
    fn raw_values_never_panic(raw in any::<u16>()) {
        match ModeRegister::from_raw(raw) {
            Ok(mr) => {
                // Valid encodings decode to idle or a valid pulse.
                match mr.decode().unwrap() {
                    None => prop_assert_eq!(raw, IDLE_ENCODING),
                    Some(p) => prop_assert!(p.assert_ns() < p.deassert_ns()),
                }
            }
            Err(_) => {
                // Rejected values are wide or encode invalid pulses.
                let wide = raw > IDLE_ENCODING;
                let a = (raw & 0x1F) as u8;
                let d = (raw >> 5) as u8;
                prop_assert!(wide || SignalPulse::new(a, d).is_err());
            }
        }
    }

    #[test]
    fn programming_random_variants_round_trips(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let v = variant_space::random_variant(&mut rng, 0.3);
        let mut mrf = ModeRegisterFile::new();
        mrf.program(&v);
        prop_assert_eq!(&mrf.schedule().unwrap(), v.schedule());
        // Re-programming the same variant writes nothing.
        prop_assert_eq!(mrf.program(&v), 0);
    }

    #[test]
    fn destructive_ops_outside_the_safe_range_never_reach_the_bus(
        selector in any::<u8>(),
        variant_idx in any::<u8>(),
        row_addr in any::<u64>(),
        range_start in 0u64..(1 << 20),
        range_len in 1u64..(1 << 20),
    ) {
        let safe_range = range_start..range_start.saturating_add(range_len);
        let op = arbitrary_op(selector, variant_idx, row_addr);
        let config = DeviceConfig::new(
            DramGeometry::module_mib(64),
            TimingParams::ddr3_1600_11(),
        )
        .with_safe_range(safe_range.clone())
        .with_refresh(false);
        let mut device = CodicDevice::new(config);
        let result = device.submit(op);
        let allowed = !op.is_destructive() || safe_range.contains(&op.row_addr());
        if allowed {
            prop_assert!(result.is_ok());
            prop_assert_eq!(device.stats().row_ops + device.stats().queue_rejections, 0,
                "accepted ops sit queued until ticked");
            device.run_to_idle();
            prop_assert_eq!(device.stats().row_ops, 1);
            prop_assert_eq!(device.take_completions().len(), 1);
        } else {
            // The policy rejects BEFORE enqueue: nothing is queued, nothing
            // executes, no command was logged for the bus.
            prop_assert!(matches!(result, Err(CodicError::AddressOutOfRange { .. })));
            prop_assert!(device.is_idle());
            prop_assert_eq!(device.stats().row_ops, 0);
            prop_assert!(device.controller().issued().is_empty());
            prop_assert!(device.take_completions().is_empty());
        }
    }

    #[test]
    fn mode_register_install_uninstall_round_trips(
        variant_idx in 0usize..VariantId::ALL.len(),
        other_idx in 0usize..VariantId::ALL.len(),
    ) {
        let variant = VariantId::ALL[variant_idx];
        let other = VariantId::ALL[other_idx];
        let mut c = CodicController::new(0..1 << 20);
        let fresh_writes = c.install(variant);
        prop_assert_eq!(c.installed(), Some(variant));
        prop_assert_eq!(c.registers().schedule().unwrap(), variant.variant().schedule().clone());
        // Uninstall resets exactly the registers the install programmed …
        let cleared = c.uninstall();
        prop_assert_eq!(cleared, fresh_writes);
        prop_assert_eq!(c.installed(), None);
        prop_assert_eq!(c.registers().schedule().unwrap().programmed_signals(), 0);
        // … and a fresh install after uninstall costs the same MRS count
        // as installing into a fresh register file.
        let mut fresh = CodicController::new(0..1 << 20);
        prop_assert_eq!(c.install(other), fresh.install(other));
        prop_assert_eq!(c.registers().schedule().unwrap(), other.variant().schedule().clone());
    }
}
