//! Property-based tests of the bit-serial SIMD planner: every planned
//! vector operation must compute exactly what the scalar reference
//! computes, over arbitrary operands and lane widths, and every plan
//! must stay inside the compute region that authorizes it.

use codic_core::data::DataPlane;
use codic_core::device::{CodicDevice, DeviceConfig};
use codic_core::simd::{reference, SimdLayout, VecOp};
use codic_core::CodicError;
use codic_dram::DramGeometry;
use proptest::prelude::*;

const ROW: u64 = DramGeometry::ROW_BYTES;

/// Runs `seed(a, b)` then `plan(op)` through a bare data plane and
/// returns the first word of each result row.
fn execute(layout: &SimdLayout, op: VecOp, a: &[u64], b: &[u64]) -> Vec<u64> {
    let mut plane = DataPlane::new(layout.base()..layout.base() + layout.rows_needed() * ROW);
    for op in layout.seed(a, b).into_iter().chain(layout.plan(op)) {
        plane.apply(op);
    }
    (0..layout.bits())
        .map(|bit| plane.row(layout.d_row(bit))[0])
        .collect()
}

fn vec_op(selector: u8) -> VecOp {
    VecOp::ALL[usize::from(selector) % VecOp::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn planned_vector_ops_match_the_scalar_reference(
        selector in any::<u8>(),
        operands in proptest::collection::vec((any::<u64>(), any::<u64>()), 1..=16),
    ) {
        let op = vec_op(selector);
        let (a, b): (Vec<u64>, Vec<u64>) = operands.into_iter().unzip();
        let layout = SimdLayout::new(0x40_0000, a.len() as u32);
        prop_assert_eq!(execute(&layout, op, &a, &b), reference(op, &a, &b));
    }

    #[test]
    fn plans_write_only_inside_their_layout(
        selector in any::<u8>(),
        bits in 1u32..=16,
        base_row in 0u64..1024,
    ) {
        let op = vec_op(selector);
        let layout = SimdLayout::new(base_row * ROW, bits);
        let end = base_row * ROW + layout.rows_needed() * ROW;
        for planned in layout.plan(op) {
            prop_assert!(planned.is_compute());
            for addr in planned.written_rows().row_addrs() {
                prop_assert!(
                    (base_row * ROW..end).contains(&addr),
                    "{:?} writes row {:#x} outside [{:#x}, {:#x})",
                    planned, addr, base_row * ROW, end
                );
            }
        }
    }

    #[test]
    fn compute_ops_outside_the_region_never_reach_the_bus(
        selector in any::<u8>(),
        bits in 1u32..=8,
        offset_rows in 0u64..64,
    ) {
        // A device whose compute region is its top 64 rows: plans inside
        // the region execute, while the same plan shifted to start below
        // the region is rejected pre-bus with a typed policy error.
        let config = DeviceConfig::paper_default().with_compute_rows(64);
        let region = config.compute_range();
        let mut device = CodicDevice::new(config.clone());
        let inside = SimdLayout::new(region.start, bits);
        prop_assume!(inside.rows_needed() <= 64);
        let inside_plan = inside.plan(vec_op(selector));
        let planned_ops = inside_plan.len() as u64;
        for planned in inside_plan {
            device.submit(planned).expect("authorized compute op");
        }
        device.run_to_idle();
        prop_assert_eq!(device.stats().row_ops, planned_ops);

        // Shift the layout so its first row falls below the region.
        let outside = SimdLayout::new(
            region.start - (offset_rows + 1) * ROW,
            bits,
        );
        // Ops of the straddling plan that land fully inside the region
        // are legitimately accepted; the first op touching a row below
        // the region must be rejected and reach the bus never.
        let mut accepted = 0u64;
        let mut rejected = None;
        for op in outside.plan(vec_op(selector)) {
            match device.submit(op) {
                Ok(_) => accepted += 1,
                Err(e) => {
                    rejected = Some(e);
                    break;
                }
            }
        }
        let err = rejected.expect("a straddling plan must be rejected");
        prop_assert!(matches!(err, CodicError::ComputeOutsideRegion { .. }));
        device.run_to_idle();
        prop_assert_eq!(
            device.stats().row_ops,
            planned_ops + accepted,
            "rejected compute ops must not reach the command bus"
        );
    }
}
