//! Property tests pinning the pipelined [`ShardWorkers`] path to the
//! inline [`DevicePool`] path, bit for bit.
//!
//! The worker refactor's contract is that spreading the shards across
//! threads changes *throughput only*: the same submission sequence,
//! batched the same way under the same backpressure window, emits the
//! identical completion stream — sequence numbers, shards, finish
//! cycles, busy cycles, energy bits, outcomes, attempts, fingerprints —
//! once both sides merge shards by the `(finish_cycle, seq)` total
//! order. This holds under deterministic misfire injection with retry,
//! because per-shard the engines see identical op sequences and
//! identical lockstep step rounds (the documented exception is a clock
//! wedged mid-batch, whose barrier-time re-route is pinned separately
//! by the server's chaos tests).

use codic_core::device::{DeviceConfig, OpCompletion};
use codic_core::executor::OpFuture;
use codic_core::fault::{FaultPlan, RetryPolicy};
use codic_core::ops::{CodicOp, VariantId};
use codic_core::pool::DevicePool;
use codic_core::worker::ShardWorkers;
use codic_dram::geometry::DramGeometry;
use codic_dram::timing::TimingParams;
use proptest::prelude::*;

/// Deterministically picks a typed op (rows kept in-module for a 64 MB
/// device) — row operations of every kind plus plain read/write traffic.
fn arbitrary_op(selector: u8, variant_idx: u8, row: u64) -> CodicOp {
    let row_addr = (row % 4096) * DramGeometry::ROW_BYTES;
    match selector % 6 {
        0 => CodicOp::command(
            VariantId::ALL[usize::from(variant_idx) % VariantId::ALL.len()],
            row_addr,
        ),
        1 => CodicOp::RowCloneZero { row_addr },
        2 => CodicOp::LisaCloneZero { row_addr },
        3 => CodicOp::read(row_addr + 64),
        4 => CodicOp::write(row_addr + 128),
        _ => CodicOp::command(VariantId::DetZero, row_addr),
    }
}

fn config(fault: Option<FaultPlan>, retry: RetryPolicy) -> DeviceConfig {
    let mut config = DeviceConfig::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11())
        .with_retry(retry);
    if let Some(plan) = fault {
        config = config.with_faults(plan);
    }
    config
}

/// Everything observable about one emitted completion.
type Emitted = (u64, u16, u64, CodicOp, u32, u64, bool, u8, u64);

fn key(seq: u64, shard: u16, c: &OpCompletion) -> Emitted {
    (
        seq,
        shard,
        c.finish_cycle,
        c.op,
        c.cost.busy_cycles,
        c.cost.energy_nj.to_bits(),
        c.outcome.is_ok(),
        c.attempts,
        c.fingerprint,
    )
}

/// The serving layer's inline engine loop, reduced to its core calls:
/// routed async submission, a step-at-a-time backpressure window, a
/// health check at every batch boundary, and a `(finish_cycle, seq)`
/// merge of whatever drained.
fn inline_run(
    shards: usize,
    config: &DeviceConfig,
    ops: &[CodicOp],
    batch: usize,
    window: usize,
) -> Vec<Emitted> {
    let mut pool = DevicePool::new(shards, config);
    let mut pending: Vec<(u64, u16, OpFuture)> = Vec::new();
    let mut next_seq = 0u64;
    let mut emitted = Vec::with_capacity(ops.len());
    let drain = |pending: &mut Vec<(u64, u16, OpFuture)>| {
        let mut ready = Vec::new();
        pending.retain_mut(|(seq, shard, future)| match future.try_take() {
            Some(completion) => {
                ready.push((*seq, *shard, completion));
                false
            }
            None => true,
        });
        ready.sort_by_key(|(seq, _, c)| (c.finish_cycle, *seq));
        ready
    };
    for chunk in ops.chunks(batch) {
        let routed = pool.submit_all_async_routed(chunk).expect("in range");
        for (shard, future) in routed {
            pending.push((next_seq, shard as u16, future));
            next_seq += 1;
        }
        while pool.outstanding() > window {
            if !pool.step() {
                break;
            }
        }
        pool.check_health();
        emitted.extend(
            drain(&mut pending)
                .iter()
                .map(|(seq, shard, c)| key(*seq, *shard, c)),
        );
    }
    pool.drive();
    pool.check_health();
    emitted.extend(
        drain(&mut pending)
            .iter()
            .map(|(seq, shard, c)| key(*seq, *shard, c)),
    );
    emitted
}

/// The serving layer's worker-mode loop: ring submission, a barrier
/// drain on each side of the lockstep backpressure window, and the same
/// `(finish_cycle, seq)` merge.
fn worker_run(
    shards: usize,
    config: &DeviceConfig,
    ops: &[CodicOp],
    batch: usize,
    window: usize,
) -> Vec<Emitted> {
    let mut workers = ShardWorkers::launch(shards, config);
    let mut next_seq = 0u64;
    let mut emitted = Vec::with_capacity(ops.len());
    let merge = |mut drained: Vec<codic_core::worker::DrainedOp>| {
        drained.sort_by_key(|d| (d.completion.finish_cycle, d.seq));
        drained
            .into_iter()
            .map(|d| key(d.seq, d.shard, &d.completion))
            .collect::<Vec<_>>()
    };
    for chunk in ops.chunks(batch) {
        workers.submit_batch(next_seq, chunk).expect("in range");
        next_seq += chunk.len() as u64;
        let mut drained = workers.drain_ready();
        while workers.outstanding() > window {
            if !workers.step_all() {
                break;
            }
        }
        workers.check_health();
        drained.extend(workers.drain_ready());
        emitted.extend(merge(drained));
    }
    let mut drained = workers.flush();
    workers.check_health();
    drained.extend(workers.drain_ready());
    emitted.extend(merge(drained));
    emitted
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fault-free: random op sequences under random batch splits and
    /// backpressure windows emit bit-identical streams from the worker
    /// pool and the inline pool.
    #[test]
    fn worker_pool_is_bit_identical_to_inline_pool(
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u64>()), 1..160),
        shards in 1usize..5,
        batch in 1usize..48,
        window in 1usize..96,
    ) {
        let ops: Vec<CodicOp> =
            raw.iter().map(|&(s, v, r)| arbitrary_op(s, v, r)).collect();
        let config = config(None, RetryPolicy::default());
        let inline = inline_run(shards, &config, &ops, batch, window);
        let worker = worker_run(shards, &config, &ops, batch, window);
        prop_assert_eq!(inline.len(), ops.len());
        prop_assert_eq!(inline, worker);
    }

    /// Misfire injection with retry enabled: the derived per-shard fault
    /// plans, attempt counts, and recovered completions replicate
    /// exactly across the thread boundary.
    #[test]
    fn worker_pool_matches_inline_under_misfires_and_retry(
        raw in proptest::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u64>()), 1..120),
        shards in 1usize..4,
        batch in 1usize..40,
        window in 1usize..64,
        seed in any::<u64>(),
        per_64k in 1u32..16_000,
        attempts in 1u8..4,
    ) {
        let ops: Vec<CodicOp> =
            raw.iter().map(|&(s, v, r)| arbitrary_op(s, v, r)).collect();
        let plan = FaultPlan::new(seed).with_misfires(per_64k);
        let retry = RetryPolicy::attempts(attempts).with_backoff(16, 256);
        let config = config(Some(plan), retry);
        let inline = inline_run(shards, &config, &ops, batch, window);
        let worker = worker_run(shards, &config, &ops, batch, window);
        prop_assert_eq!(inline.len(), ops.len());
        prop_assert_eq!(inline, worker);
    }
}
