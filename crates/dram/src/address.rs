//! Physical-address to DRAM-coordinate mapping.

use crate::geometry::{DramGeometry, LINE_BYTES};

/// A fully decoded DRAM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DramAddress {
    /// Rank index on the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// 64 B line slot within the row.
    pub line: u32,
}

impl DramAddress {
    /// A global bank identifier (`rank × banks_per_rank + bank`).
    #[must_use]
    pub fn bank_id(&self, geometry: &DramGeometry) -> u32 {
        self.rank * geometry.banks_per_rank + self.bank
    }
}

/// Maps physical byte addresses to DRAM coordinates with the
/// row:rank:bank:column layout (row bits on top, line bits at the bottom).
///
/// Consecutive lines walk a row (maximizing row-buffer hits for streaming
/// accesses) and consecutive rows walk the banks (maximizing bank-level
/// parallelism for row-granularity sweeps) — the address layout assumed by
/// the paper's destruction and deallocation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapper {
    geometry: DramGeometry,
}

impl AddressMapper {
    /// Creates a mapper for `geometry`.
    #[must_use]
    pub fn new(geometry: DramGeometry) -> Self {
        AddressMapper { geometry }
    }

    /// The geometry this mapper targets.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        &self.geometry
    }

    /// Decodes a physical byte address. Addresses beyond the module wrap.
    #[must_use]
    pub fn decode(&self, phys_addr: u64) -> DramAddress {
        let g = &self.geometry;
        let line_in_module = (phys_addr / LINE_BYTES) % g.total_lines();
        let line = (line_in_module % u64::from(g.lines_per_row)) as u32;
        let row_global = line_in_module / u64::from(g.lines_per_row);
        let bank = (row_global % u64::from(g.banks_per_rank)) as u32;
        let rank_row = row_global / u64::from(g.banks_per_rank);
        let rank = (rank_row % u64::from(g.ranks)) as u32;
        let row = (rank_row / u64::from(g.ranks)) as u32;
        DramAddress {
            rank,
            bank,
            row,
            line,
        }
    }

    /// Encodes a DRAM coordinate back into a physical byte address
    /// (inverse of [`AddressMapper::decode`]).
    #[must_use]
    pub fn encode(&self, addr: DramAddress) -> u64 {
        let g = &self.geometry;
        let rank_row = u64::from(addr.row) * u64::from(g.ranks) + u64::from(addr.rank);
        let row_global = rank_row * u64::from(g.banks_per_rank) + u64::from(addr.bank);
        let line_in_module = row_global * u64::from(g.lines_per_row) + u64::from(addr.line);
        line_in_module * LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_round_trips() {
        let m = AddressMapper::new(DramGeometry::module_mib(64));
        for phys in [0u64, 64, 8192, 8192 * 3 + 128, 64 * 1024 * 1024 - 64] {
            let d = m.decode(phys);
            assert_eq!(m.encode(d), phys, "addr {phys:#x}");
        }
    }

    #[test]
    fn consecutive_lines_share_a_row() {
        let m = AddressMapper::new(DramGeometry::module_mib(64));
        let a = m.decode(0);
        let b = m.decode(64);
        assert_eq!((a.rank, a.bank, a.row), (b.rank, b.bank, b.row));
        assert_eq!(b.line, a.line + 1);
    }

    #[test]
    fn consecutive_rows_rotate_banks() {
        let m = AddressMapper::new(DramGeometry::module_mib(64));
        let a = m.decode(0);
        let b = m.decode(DramGeometry::ROW_BYTES);
        assert_eq!(a.row, b.row);
        assert_eq!(b.bank, a.bank + 1);
        // After all 8 banks, the row index advances.
        let c = m.decode(DramGeometry::ROW_BYTES * 8);
        assert_eq!(c.bank, 0);
        assert_eq!(c.row, 1);
    }

    #[test]
    fn addresses_wrap_at_module_size() {
        let g = DramGeometry::module_mib(64);
        let m = AddressMapper::new(g);
        assert_eq!(m.decode(0), m.decode(g.total_bytes()));
    }

    #[test]
    fn bank_id_is_globally_unique() {
        let mut g = DramGeometry::module_mib(64);
        g.ranks = 2;
        let mut seen = std::collections::HashSet::new();
        for rank in 0..2 {
            for bank in 0..8 {
                let a = DramAddress {
                    rank,
                    bank,
                    row: 0,
                    line: 0,
                };
                assert!(seen.insert(a.bank_id(&g)));
            }
        }
    }
}
