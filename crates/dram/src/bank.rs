//! Per-bank state machine enforcing intra-bank JEDEC timing.

use crate::timing::TimingParams;

/// One DRAM bank: its open row (if any) and the earliest cycle at which
/// each command class may next be issued to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bank {
    open_row: Option<u32>,
    next_act: u64,
    next_pre: u64,
    next_rd: u64,
    next_wr: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

impl Bank {
    /// A precharged bank, ready to activate at cycle 0.
    #[must_use]
    pub fn new() -> Self {
        Bank {
            open_row: None,
            next_act: 0,
            next_pre: 0,
            next_rd: 0,
            next_wr: 0,
        }
    }

    /// The currently open row, if the bank is active.
    #[inline]
    #[must_use]
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Whether an activate may issue at `now`.
    #[inline]
    #[must_use]
    pub fn can_activate(&self, now: u64) -> bool {
        self.open_row.is_none() && now >= self.next_act
    }

    /// Whether a precharge may issue at `now`.
    #[inline]
    #[must_use]
    pub fn can_precharge(&self, now: u64) -> bool {
        self.open_row.is_some() && now >= self.next_pre
    }

    /// Whether a read to `row` may issue at `now`.
    #[inline]
    #[must_use]
    pub fn can_read(&self, row: u32, now: u64) -> bool {
        self.open_row == Some(row) && now >= self.next_rd
    }

    /// Whether a write to `row` may issue at `now`.
    #[inline]
    #[must_use]
    pub fn can_write(&self, row: u32, now: u64) -> bool {
        self.open_row == Some(row) && now >= self.next_wr
    }

    /// Whether a row operation may issue at `now` (requires a precharged
    /// bank, like an activate).
    #[inline]
    #[must_use]
    pub fn can_row_op(&self, now: u64) -> bool {
        self.can_activate(now)
    }

    /// The earliest cycle an activate could issue (ignoring rank windows).
    #[inline]
    #[must_use]
    pub fn next_act_at(&self) -> u64 {
        self.next_act
    }

    /// The earliest cycle a precharge could issue (meaningful only while a
    /// row is open).
    #[inline]
    #[must_use]
    pub fn next_pre_at(&self) -> u64 {
        self.next_pre
    }

    /// The earliest cycle a read could issue to the open row.
    #[inline]
    #[must_use]
    pub fn next_rd_at(&self) -> u64 {
        self.next_rd
    }

    /// The earliest cycle a write could issue to the open row.
    #[inline]
    #[must_use]
    pub fn next_wr_at(&self) -> u64 {
        self.next_wr
    }

    /// Issues an activate for `row` at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if the timing constraints are violated; the controller must
    /// check [`Bank::can_activate`] first.
    pub fn activate(&mut self, row: u32, now: u64, t: &TimingParams) {
        assert!(self.can_activate(now), "activate violates bank timing");
        self.open_row = Some(row);
        self.next_rd = now + u64::from(t.t_rcd);
        self.next_wr = now + u64::from(t.t_rcd);
        self.next_pre = now + u64::from(t.t_ras);
        self.next_act = now + u64::from(t.t_rc);
    }

    /// Issues a precharge at cycle `now`.
    ///
    /// # Panics
    ///
    /// Panics if the timing constraints are violated.
    pub fn precharge(&mut self, now: u64, t: &TimingParams) {
        assert!(self.can_precharge(now), "precharge violates bank timing");
        self.open_row = None;
        self.next_act = self.next_act.max(now + u64::from(t.t_rp));
    }

    /// Issues a read burst at cycle `now`; returns the cycle at which the
    /// data has fully returned.
    ///
    /// # Panics
    ///
    /// Panics if the timing constraints are violated.
    pub fn read(&mut self, now: u64, t: &TimingParams) -> u64 {
        assert!(
            self.open_row.is_some() && now >= self.next_rd,
            "read violates bank timing"
        );
        self.next_rd = now + u64::from(t.t_ccd);
        self.next_wr = now + u64::from(t.t_cl) + u64::from(t.t_bl) + 2 - u64::from(t.t_cwl);
        self.next_pre = self.next_pre.max(now + u64::from(t.t_rtp));
        now + u64::from(t.t_cl) + u64::from(t.t_bl)
    }

    /// Issues a write burst at cycle `now`; returns the cycle at which the
    /// write data has been fully transferred.
    ///
    /// # Panics
    ///
    /// Panics if the timing constraints are violated.
    pub fn write(&mut self, now: u64, t: &TimingParams) -> u64 {
        assert!(
            self.open_row.is_some() && now >= self.next_wr,
            "write violates bank timing"
        );
        let data_end = now + u64::from(t.t_cwl) + u64::from(t.t_bl);
        self.next_wr = now + u64::from(t.t_ccd);
        self.next_rd = data_end + u64::from(t.t_wtr);
        self.next_pre = self.next_pre.max(data_end + u64::from(t.t_wr));
        data_end
    }

    /// Issues a bank-occupying row operation at `now` lasting
    /// `busy_cycles`; the bank returns to the precharged state afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not precharged and past its tRC window.
    pub fn row_op(&mut self, now: u64, busy_cycles: u32) {
        assert!(self.can_row_op(now), "row op violates bank timing");
        self.open_row = None;
        self.next_act = now + u64::from(busy_cycles);
    }

    /// Blocks the bank until `until` (used for refresh).
    pub fn block_until(&mut self, until: u64) {
        self.next_act = self.next_act.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600_11()
    }

    #[test]
    fn activate_read_precharge_sequence_obeys_trcd_tras_trp() {
        let t = t();
        let mut b = Bank::new();
        b.activate(7, 0, &t);
        assert!(!b.can_read(7, u64::from(t.t_rcd) - 1));
        assert!(b.can_read(7, u64::from(t.t_rcd)));
        assert!(!b.can_precharge(u64::from(t.t_ras) - 1));
        let done = b.read(u64::from(t.t_rcd), &t);
        assert_eq!(done, u64::from(t.t_rcd + t.t_cl + t.t_bl));
        assert!(b.can_precharge(u64::from(t.t_ras)));
        b.precharge(u64::from(t.t_ras), &t);
        assert!(!b.can_activate(u64::from(t.t_rc) - 1));
        assert!(b.can_activate(u64::from(t.t_rc)));
    }

    #[test]
    fn reads_to_wrong_row_are_refused() {
        let t = t();
        let mut b = Bank::new();
        b.activate(3, 0, &t);
        assert!(!b.can_read(4, 100));
        assert!(b.can_read(3, 100));
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let t = t();
        let mut b = Bank::new();
        b.activate(0, 0, &t);
        let issue = u64::from(t.t_rcd);
        let data_end = b.write(issue, &t);
        assert_eq!(data_end, issue + u64::from(t.t_cwl + t.t_bl));
        let earliest_pre = data_end + u64::from(t.t_wr);
        assert!(!b.can_precharge(earliest_pre - 1));
        assert!(b.can_precharge(earliest_pre));
    }

    #[test]
    fn write_to_read_turnaround_is_enforced() {
        let t = t();
        let mut b = Bank::new();
        b.activate(0, 0, &t);
        let issue = u64::from(t.t_rcd);
        let data_end = b.write(issue, &t);
        assert!(!b.can_read(0, data_end + u64::from(t.t_wtr) - 1));
        assert!(b.can_read(0, data_end + u64::from(t.t_wtr)));
    }

    #[test]
    fn row_op_occupies_then_releases_bank() {
        let t = t();
        let mut b = Bank::new();
        b.row_op(0, t.t_rc);
        assert_eq!(b.open_row(), None);
        assert!(!b.can_activate(u64::from(t.t_rc) - 1));
        assert!(b.can_activate(u64::from(t.t_rc)));
    }

    #[test]
    fn back_to_back_reads_respect_tccd() {
        let t = t();
        let mut b = Bank::new();
        b.activate(0, 0, &t);
        let first = u64::from(t.t_rcd);
        let _ = b.read(first, &t);
        assert!(!b.can_read(0, first + u64::from(t.t_ccd) - 1));
        assert!(b.can_read(0, first + u64::from(t.t_ccd)));
    }

    #[test]
    #[should_panic(expected = "activate violates")]
    fn double_activate_panics() {
        let t = t();
        let mut b = Bank::new();
        b.activate(0, 0, &t);
        b.activate(1, 1, &t);
    }
}
