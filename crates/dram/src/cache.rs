//! Set-associative write-back, write-allocate cache with CLFLUSH support.

use crate::geometry::LINE_BYTES;

/// Cache shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    /// The paper's L1 data cache: 32 KB (Table 5), 8-way.
    #[must_use]
    pub fn l1() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
        }
    }

    /// The paper's L2 cache: 512 KB (Table 5), 8-way.
    #[must_use]
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            ways: 8,
        }
    }

    fn sets(&self) -> u64 {
        self.size_bytes / (LINE_BYTES * u64::from(self.ways))
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LineMeta {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was present.
    Hit,
    /// The line was absent and has been allocated; if the victim was dirty
    /// its line address must be written back to memory.
    Miss {
        /// Dirty victim line address, if any.
        writeback: Option<u64>,
    },
}

/// Counters for one cache instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back (evictions plus flushes).
    pub writebacks: u64,
}

/// A single cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<LineMeta>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not yield at least one set.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets >= 1, "cache too small for its associativity");
        Cache {
            config,
            sets: vec![LineMeta::default(); (sets * u64::from(config.ways)) as usize],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Access statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_range(&self, addr: u64) -> (usize, u64) {
        let line = addr / LINE_BYTES;
        let set = (line % self.config.sets()) as usize;
        let tag = line / self.config.sets();
        (set * self.config.ways as usize, tag)
    }

    /// Looks up `addr` without modifying state.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let (base, tag) = self.set_range(addr);
        self.sets[base..base + self.config.ways as usize]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Accesses `addr`, allocating on miss; `is_write` marks the line dirty.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.tick += 1;
        let (base, tag) = self.set_range(addr);
        let ways = self.config.ways as usize;
        for i in base..base + ways {
            if self.sets[i].valid && self.sets[i].tag == tag {
                self.sets[i].lru = self.tick;
                self.sets[i].dirty |= is_write;
                self.stats.hits += 1;
                return AccessResult::Hit;
            }
        }
        self.stats.misses += 1;
        // Choose victim: first invalid way, else least recently used.
        let victim = (base..base + ways)
            .min_by_key(|&i| {
                if self.sets[i].valid {
                    (1, self.sets[i].lru)
                } else {
                    (0, 0)
                }
            })
            .expect("cache set is non-empty");
        let writeback = if self.sets[victim].valid && self.sets[victim].dirty {
            self.stats.writebacks += 1;
            Some(self.line_addr(victim, base, self.sets[victim].tag))
        } else {
            None
        };
        self.sets[victim] = LineMeta {
            tag,
            valid: true,
            dirty: is_write,
            lru: self.tick,
        };
        AccessResult::Miss { writeback }
    }

    /// Invalidates the line containing `addr` (CLFLUSH semantics); returns
    /// the line address if it was dirty and must be written back.
    pub fn flush_line(&mut self, addr: u64) -> Option<u64> {
        let (base, tag) = self.set_range(addr);
        let ways = self.config.ways as usize;
        for i in base..base + ways {
            if self.sets[i].valid && self.sets[i].tag == tag {
                let was_dirty = self.sets[i].dirty;
                self.sets[i].valid = false;
                self.sets[i].dirty = false;
                if was_dirty {
                    self.stats.writebacks += 1;
                    return Some(addr / LINE_BYTES * LINE_BYTES);
                }
                return None;
            }
        }
        None
    }

    fn line_addr(&self, way_index: usize, set_base: usize, tag: u64) -> u64 {
        let set = (set_base / self.config.ways as usize) as u64;
        let _ = way_index;
        (tag * self.config.sets() + set) * LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets × 2 ways × 64 B = 256 B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        assert_eq!(c.access(0, false), AccessResult::Miss { writeback: None });
        assert_eq!(c.access(0, false), AccessResult::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = small();
        // Set 0 holds lines 0, 128, 256, ... (2 sets); fill both ways.
        c.access(0, false);
        c.access(128, false);
        c.access(0, false); // touch line 0: line 128 becomes LRU
        c.access(256, false); // evicts 128
        assert!(c.contains(0));
        assert!(!c.contains(128));
        assert!(c.contains(256));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0, true);
        c.access(128, false);
        let r = c.access(256, false); // evicts dirty line 0
        assert_eq!(r, AccessResult::Miss { writeback: Some(0) });
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn flush_returns_dirty_line_and_invalidates() {
        let mut c = small();
        c.access(64, true);
        assert_eq!(c.flush_line(64), Some(64));
        assert!(!c.contains(64));
        // Second flush is a no-op.
        assert_eq!(c.flush_line(64), None);
    }

    #[test]
    fn flush_clean_line_needs_no_writeback() {
        let mut c = small();
        c.access(64, false);
        assert_eq!(c.flush_line(64), None);
        assert!(!c.contains(64));
    }

    #[test]
    fn writeback_address_round_trips_through_line_math() {
        // 64 sets -> tag/set split exercised beyond set 0.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 8192,
            ways: 2,
        });
        let addr = 3 * 8192 + 5 * 64; // tag 3, set 5
        c.access(addr, true);
        c.access(7 * 8192 + 5 * 64, false);
        let r = c.access(9 * 8192 + 5 * 64, false);
        assert_eq!(
            r,
            AccessResult::Miss {
                writeback: Some(addr)
            }
        );
    }

    #[test]
    fn l1_l2_presets_match_table_5() {
        assert_eq!(CacheConfig::l1().size_bytes, 32 * 1024);
        assert_eq!(CacheConfig::l2().size_bytes, 512 * 1024);
    }
}
