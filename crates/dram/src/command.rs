//! DRAM bus commands.

use crate::address::DramAddress;

/// The command types the memory controller can place on the command bus.
///
/// `RowOp` covers bank-occupying in-DRAM operations (CODIC variants,
/// RowClone, LISA-clone): the bank is busy for a caller-specified duration
/// and the operation counts a caller-specified number of row activations
/// toward the tFAW/tRRD windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Activate (open) a row.
    Act,
    /// Precharge (close) the open row of one bank.
    Pre,
    /// Read one burst from the open row.
    Rd,
    /// Write one burst to the open row.
    Wr,
    /// All-bank auto refresh.
    Ref,
    /// A bank-occupying row operation (CODIC / RowClone / LISA-clone).
    RowOp {
        /// Bank-busy duration in cycles.
        busy_cycles: u32,
        /// Row activations this operation contributes to tFAW/tRRD.
        activations: u8,
    },
}

/// A command with its target coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Command {
    /// What to do.
    pub kind: CommandKind,
    /// Where to do it. For `Ref` only the rank matters.
    pub addr: DramAddress,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commands_are_comparable() {
        let a = Command {
            kind: CommandKind::Act,
            addr: DramAddress {
                rank: 0,
                bank: 1,
                row: 2,
                line: 3,
            },
        };
        assert_eq!(a, a);
        assert_ne!(
            CommandKind::Act,
            CommandKind::RowOp {
                busy_cycles: 28,
                activations: 1
            }
        );
    }
}
