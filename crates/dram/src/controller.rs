//! FR-FCFS memory controller with read/write queues, write draining,
//! open-page policy, refresh, and row-operation support.
//!
//! Matches the paper's evaluation configuration (Tables 5 and 7):
//! 64-entry read and write queues with FR-FCFS scheduling
//! (first-ready, first-come-first-served).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use crate::address::{AddressMapper, DramAddress};
use crate::bank::Bank;
use crate::geometry::DramGeometry;
use crate::rank::Rank;
use crate::request::{MemRequest, QueueFull, ReqId, ReqKind};
use crate::stats::MemStats;
use crate::timing::TimingParams;

/// Capacity of each of the read and write queues (Table 5).
pub const QUEUE_DEPTH: usize = 64;

/// Write-queue occupancy that starts a write drain.
const DRAIN_HIGH: usize = 48;

/// Write-queue occupancy that ends a write drain.
const DRAIN_LOW: usize = 16;

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: ReqId,
    addr: DramAddress,
    kind: ReqKind,
}

/// A completed request: its id and the cycle its data (or operation)
/// finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request id handed out by [`MemoryController::push`].
    pub id: ReqId,
    /// Memory cycle at which the request completed.
    pub finish_cycle: u64,
}

/// The cycle-level DDR3 memory controller.
#[derive(Debug)]
pub struct MemoryController {
    mapper: AddressMapper,
    timing: TimingParams,
    banks: Vec<Bank>,
    ranks: Vec<Rank>,
    read_q: VecDeque<Pending>,
    write_q: VecDeque<Pending>,
    rowop_q: VecDeque<Pending>,
    in_flight: BinaryHeap<Reverse<(u64, u64)>>,
    completed: Vec<Completion>,
    last_finish: u64,
    now: u64,
    data_bus_free: u64,
    write_drain: bool,
    refresh_enabled: bool,
    refresh_pending: bool,
    next_refresh: u64,
    next_id: u64,
    stats: MemStats,
}

impl MemoryController {
    /// Creates a controller for a module of the given geometry and timing.
    #[must_use]
    pub fn new(geometry: DramGeometry, timing: TimingParams) -> Self {
        let total_banks = geometry.total_banks() as usize;
        MemoryController {
            mapper: AddressMapper::new(geometry),
            timing,
            banks: vec![Bank::new(); total_banks],
            ranks: (0..geometry.ranks).map(|_| Rank::new()).collect(),
            read_q: VecDeque::with_capacity(QUEUE_DEPTH),
            write_q: VecDeque::with_capacity(QUEUE_DEPTH),
            rowop_q: VecDeque::with_capacity(QUEUE_DEPTH),
            in_flight: BinaryHeap::new(),
            completed: Vec::new(),
            last_finish: 0,
            now: 0,
            data_bus_free: 0,
            write_drain: false,
            refresh_enabled: true,
            refresh_pending: false,
            next_refresh: u64::from(timing.t_refi),
            next_id: 0,
            stats: MemStats::default(),
        }
    }

    /// The current memory cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The timing parameters in use.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The module geometry in use.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        self.mapper.geometry()
    }

    /// Accumulated command statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Enables or disables the refresh engine (enabled by default).
    /// The paper's PUF methodology disables refresh (§6.1).
    pub fn set_refresh_enabled(&mut self, enabled: bool) {
        self.refresh_enabled = enabled;
    }

    /// Whether a request of `kind` can currently be accepted.
    #[must_use]
    pub fn can_accept(&self, kind: ReqKind) -> bool {
        match kind {
            ReqKind::Read => self.read_q.len() < QUEUE_DEPTH,
            ReqKind::Write => self.write_q.len() < QUEUE_DEPTH,
            ReqKind::RowOp { .. } => self.rowop_q.len() < QUEUE_DEPTH,
        }
    }

    /// Enqueues a request.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] (with the request) if the target queue is at
    /// capacity; the caller should retry after ticking.
    pub fn push(&mut self, request: MemRequest) -> Result<ReqId, QueueFull> {
        if !self.can_accept(request.kind) {
            self.stats.queue_rejections += 1;
            return Err(QueueFull { request });
        }
        let id = ReqId(self.next_id);
        self.next_id += 1;
        let pending = Pending {
            id,
            addr: self.mapper.decode(request.addr),
            kind: request.kind,
        };
        match request.kind {
            ReqKind::Read => self.read_q.push_back(pending),
            ReqKind::Write => self.write_q.push_back(pending),
            ReqKind::RowOp { .. } => self.rowop_q.push_back(pending),
        }
        Ok(id)
    }

    /// True when no request is queued or in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty()
            && self.write_q.is_empty()
            && self.rowop_q.is_empty()
            && self.in_flight.is_empty()
    }

    /// Removes and returns all completions that have finished by now.
    ///
    /// Completions accumulate until taken; long-running callers must call
    /// this (directly or through their tick loop) to bound the buffer.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completed)
    }

    /// Advances one memory cycle, issuing at most one command.
    ///
    /// Equivalent to [`MemoryController::advance_to`]`(now + 1)`: the
    /// cycle-by-cycle driver and the event-driven driver share one engine
    /// and produce bit-identical command streams.
    pub fn tick(&mut self) {
        self.advance_to(self.now + 1);
    }

    /// Advances one memory cycle through the *reference* driver: retire,
    /// refresh, and schedule run unconditionally, with no consultation of
    /// [`MemoryController::next_event_cycle`] — the pre-event-engine
    /// `tick` body, byte for byte.
    ///
    /// This is the oracle the engine-equivalence tests (and the
    /// `bench_device` tick-engine baseline) pin the event engine against:
    /// because it never reads the horizon, a horizon bug that delays
    /// events cannot cancel out of the comparison the way it would if
    /// both sides shared [`MemoryController::tick`]'s gating.
    pub fn tick_reference(&mut self) {
        self.step_cycle();
        self.now += 1;
    }

    /// The earliest cycle `>= now()` at which the controller may act —
    /// retire an in-flight request, start or service a refresh, or issue
    /// a command for a queued request — or `u64::MAX` when no future
    /// cycle can ever be actionable (idle with refresh disabled).
    ///
    /// The horizon is conservative: it never skips past an actionable
    /// cycle, but may name a cycle at which, on inspection, nothing can
    /// issue yet (the engine then recomputes from there). Every cycle in
    /// `(now(), next_event_cycle())` is guaranteed to be a no-op, which
    /// is what lets [`MemoryController::advance_to`] jump the clock.
    #[must_use]
    pub fn next_event_cycle(&self) -> u64 {
        let mut e = u64::MAX;
        if let Some(&Reverse((cycle, _))) = self.in_flight.peek() {
            e = e.min(cycle);
        }
        if self.refresh_enabled && !self.refresh_pending {
            e = e.min(self.next_refresh);
        }
        if self.refresh_pending {
            // While a refresh is pending the scheduler is blocked: the
            // only command-bus events are the close-banks/refresh steps.
            match self.banks.iter().find(|b| b.open_row().is_some()) {
                Some(bank) => e = e.min(bank.next_pre_at()),
                None => {
                    let all_ready = self.banks.iter().map(Bank::next_act_at).max().unwrap_or(0);
                    e = e.min(all_ready);
                }
            }
        } else {
            // The rank activation gate is independent of the bank it
            // applies to, so compute it once per (rank, activation count)
            // instead of per queue entry — in a stack buffer, since this
            // runs once per event on the engine's hottest path.
            let mut gate_buf = [[0u64; 2]; 8];
            let memo_ranks = self.ranks.len().min(gate_buf.len());
            for (slot, rank) in gate_buf.iter_mut().zip(&self.ranks) {
                *slot = self.act_gates_of(rank);
            }
            for queue in [&self.read_q, &self.write_q, &self.rowop_q] {
                for p in queue {
                    e = e.min(self.request_candidate(p, &gate_buf[..memo_ranks]));
                    if e <= self.now {
                        // A candidate at (or before) the floor cannot be
                        // beaten: the controller can act this cycle.
                        return self.now;
                    }
                }
            }
        }
        e.max(self.now)
    }

    /// The rank's activation gates for 1 and 2 activations: the earliest
    /// cycles its tRRD/tFAW windows allow, independent of any bank state.
    fn act_gates_of(&self, rank: &Rank) -> [u64; 2] {
        [
            rank.earliest_activate(0, 1, &self.timing),
            rank.earliest_activate(0, 2, &self.timing),
        ]
    }

    /// Cycles from `now()` until [`MemoryController::next_event_cycle`] —
    /// zero when the controller can act this cycle. Callers composing the
    /// controller with other clocked components (e.g. trace-driven cores)
    /// may safely skip this many cycles without losing events.
    #[must_use]
    pub fn cycles_until_next_event(&self) -> u64 {
        self.next_event_cycle().saturating_sub(self.now)
    }

    /// The earliest cycle at which a pending request could be issued a
    /// command (column access, precharge, or activate), given current
    /// bank/rank/bus state. `act_gates[rank]` holds the precomputed rank
    /// activation gates for 1 and 2 activations. Exact for single
    /// requests; the scheduler's one-command-per-cycle arbitration is
    /// applied when the cycle is actually processed.
    fn request_candidate(&self, p: &Pending, act_gates: &[[u64; 2]]) -> u64 {
        let bank = &self.banks[self.bank_index(&p.addr)];
        // Ranks beyond the memo buffer (more than 8 — unusual geometries)
        // compute their gates directly.
        let gates = &act_gates
            .get(p.addr.rank as usize)
            .copied()
            .unwrap_or_else(|| self.act_gates_of(&self.ranks[p.addr.rank as usize]));
        match p.kind {
            ReqKind::Read => match bank.open_row() {
                Some(row) if row == p.addr.row => bank.next_rd_at().max(
                    self.data_bus_free
                        .saturating_sub(u64::from(self.timing.t_cl)),
                ),
                Some(_) => bank.next_pre_at(),
                None => bank.next_act_at().max(gates[0]),
            },
            ReqKind::Write => match bank.open_row() {
                Some(row) if row == p.addr.row => bank.next_wr_at().max(
                    self.data_bus_free
                        .saturating_sub(u64::from(self.timing.t_cwl)),
                ),
                Some(_) => bank.next_pre_at(),
                None => bank.next_act_at().max(gates[0]),
            },
            ReqKind::RowOp { op, .. } => match bank.open_row() {
                Some(_) => bank.next_pre_at(),
                None => bank
                    .next_act_at()
                    .max(gates[usize::from(op.activations().clamp(1, 2)) - 1]),
            },
        }
    }

    /// Advances the clock to exactly `target`, processing every
    /// actionable cycle in `[now, target)` and jumping over the quiet
    /// gaps in between — the event-driven core. Calling this is
    /// bit-identical (same commands at the same cycles, same completions,
    /// same statistics) to calling [`MemoryController::tick`]
    /// `target - now()` times; wall-clock cost scales with *events*
    /// rather than with simulated cycles.
    pub fn advance_to(&mut self, target: u64) {
        while self.now < target {
            let event = self.next_event_cycle().min(target);
            if event > self.now {
                self.now = event;
                if self.now >= target {
                    break;
                }
            }
            self.step_cycle();
            self.now += 1;
        }
    }

    /// One tick's worth of work at the current cycle (without advancing
    /// the clock): retire, then refresh or schedule.
    fn step_cycle(&mut self) {
        self.retire_in_flight();
        if self.refresh_enabled && !self.refresh_pending && self.now >= self.next_refresh {
            self.refresh_pending = true;
        }
        if self.refresh_pending {
            let _ = self.service_refresh();
        } else {
            self.update_drain_mode();
            self.schedule();
        }
    }

    /// Jumps the clock to the next event and processes that one cycle —
    /// the single-event driver. Returns `false` (and leaves the clock
    /// untouched) when no future cycle can ever be actionable.
    ///
    /// Equivalent to ticking up to and through the event cycle; callers
    /// interleaving their own work per event (queue refills, completion
    /// harvesting) use this instead of a fixed [`MemoryController::advance_to`]
    /// target.
    pub fn step_event(&mut self) -> bool {
        let event = self.next_event_cycle();
        if event == u64::MAX {
            return false;
        }
        self.now = self.now.max(event);
        self.step_cycle();
        self.now += 1;
        true
    }

    /// Runs until idle, returning the cycle at which the last request
    /// completed (or the current cycle when already idle). Completions
    /// stay buffered for [`MemoryController::take_completions`]; callers
    /// that only need the finish cycle can discard them afterwards.
    ///
    /// Event-driven: the clock jumps from event to event instead of
    /// ticking through quiet cycles, with results bit-identical to the
    /// tick-by-tick loop.
    pub fn run_to_idle(&mut self) -> u64 {
        let last = self.now;
        while !self.is_idle() && self.step_event() {}
        last.max(self.last_finish)
    }

    fn retire_in_flight(&mut self) {
        while let Some(&Reverse((cycle, id))) = self.in_flight.peek() {
            if cycle > self.now {
                break;
            }
            self.in_flight.pop();
            self.last_finish = self.last_finish.max(cycle);
            self.completed.push(Completion {
                id: ReqId(id),
                finish_cycle: cycle,
            });
        }
    }

    fn update_drain_mode(&mut self) {
        if self.write_q.len() >= DRAIN_HIGH {
            self.write_drain = true;
        } else if self.write_q.len() <= DRAIN_LOW {
            self.write_drain = false;
        }
    }

    /// Attempts to make refresh progress; returns true if a command was
    /// issued this cycle.
    fn service_refresh(&mut self) -> bool {
        // Close any open bank first.
        for i in 0..self.banks.len() {
            if self.banks[i].open_row().is_some() {
                if self.banks[i].can_precharge(self.now) {
                    self.banks[i].precharge(self.now, &self.timing);
                    self.stats.precharges += 1;
                    return true;
                }
                return false;
            }
        }
        // All banks closed; wait until every bank can accept an activate
        // (i.e. tRP has elapsed) then refresh all ranks.
        if self.banks.iter().all(|b| b.can_activate(self.now)) {
            let until = self.now + u64::from(self.timing.t_rfc);
            for b in &mut self.banks {
                b.block_until(until);
            }
            self.stats.refreshes += self.ranks.len() as u64;
            self.refresh_pending = false;
            self.next_refresh += u64::from(self.timing.t_refi);
            return true;
        }
        false
    }

    // The branches differ in short-circuit order (write-drain priority),
    // which clippy's structural comparison does not see.
    #[allow(clippy::if_same_then_else)]
    fn schedule(&mut self) {
        // Row operations are scheduled like reads but take precedence over
        // the data queues only when no column command is ready: they never
        // need the data bus.
        let serve_writes_first = self.write_drain || self.read_q.is_empty();
        let issued = if serve_writes_first {
            self.try_queue(Queue::Write)
                || self.try_queue(Queue::Read)
                || self.try_queue(Queue::RowOp)
        } else {
            self.try_queue(Queue::Read)
                || self.try_queue(Queue::Write)
                || self.try_queue(Queue::RowOp)
        };
        let _ = issued;
    }

    fn try_queue(&mut self, which: Queue) -> bool {
        // Pass 1 (first-ready): issue any request whose row is open and
        // whose column command is timing-clean.
        if let Some(idx) = self.find_ready(which) {
            self.issue_column(which, idx);
            return true;
        }
        // Pass 2 (FCFS): for the oldest request per bank, advance the bank
        // state with a precharge or activate.
        self.advance_oldest(which)
    }

    fn queue(&self, which: Queue) -> &VecDeque<Pending> {
        match which {
            Queue::Read => &self.read_q,
            Queue::Write => &self.write_q,
            Queue::RowOp => &self.rowop_q,
        }
    }

    fn find_ready(&self, which: Queue) -> Option<usize> {
        let q = self.queue(which);
        for (i, p) in q.iter().enumerate() {
            let bank = &self.banks[self.bank_index(&p.addr)];
            match p.kind {
                ReqKind::Read => {
                    if bank.can_read(p.addr.row, self.now) && self.column_bus_ok(true) {
                        return Some(i);
                    }
                }
                ReqKind::Write => {
                    if bank.can_write(p.addr.row, self.now) && self.column_bus_ok(false) {
                        return Some(i);
                    }
                }
                ReqKind::RowOp { op, .. } => {
                    let rank = &self.ranks[p.addr.rank as usize];
                    if bank.can_row_op(self.now)
                        && rank.can_activate(self.now, op.activations(), &self.timing)
                    {
                        return Some(i);
                    }
                }
            }
        }
        None
    }

    fn column_bus_ok(&self, is_read: bool) -> bool {
        let start = self.now
            + u64::from(if is_read {
                self.timing.t_cl
            } else {
                self.timing.t_cwl
            });
        start >= self.data_bus_free
    }

    fn issue_column(&mut self, which: Queue, idx: usize) {
        let p = match which {
            Queue::Read => self.read_q.remove(idx),
            Queue::Write => self.write_q.remove(idx),
            Queue::RowOp => self.rowop_q.remove(idx),
        }
        .expect("index returned by find_ready is valid");
        let bank_idx = self.bank_index(&p.addr);
        match p.kind {
            ReqKind::Read => {
                let done = self.banks[bank_idx].read(self.now, &self.timing);
                self.data_bus_free = done;
                self.stats.reads += 1;
                self.stats.row_hits += 1;
                self.in_flight.push(Reverse((done, p.id.0)));
            }
            ReqKind::Write => {
                let done = self.banks[bank_idx].write(self.now, &self.timing);
                self.data_bus_free = done;
                self.stats.writes += 1;
                self.stats.row_hits += 1;
                self.in_flight.push(Reverse((done, p.id.0)));
            }
            ReqKind::RowOp { op, busy_cycles } => {
                self.banks[bank_idx].row_op(self.now, busy_cycles);
                self.ranks[p.addr.rank as usize].record_activate(
                    self.now,
                    op.activations(),
                    &self.timing,
                );
                self.stats.row_ops += 1;
                self.stats.row_op_activations += u64::from(op.activations());
                self.in_flight
                    .push(Reverse((self.now + u64::from(busy_cycles), p.id.0)));
            }
        }
    }

    fn advance_oldest(&mut self, which: Queue) -> bool {
        let mut touched_banks = Vec::new();
        let q_len = self.queue(which).len();
        for i in 0..q_len {
            let p = self.queue(which)[i];
            let bank_idx = self.bank_index(&p.addr);
            if touched_banks.contains(&bank_idx) {
                continue;
            }
            touched_banks.push(bank_idx);
            let is_rowop = matches!(p.kind, ReqKind::RowOp { .. });
            match self.banks[bank_idx].open_row() {
                Some(row)
                    if (is_rowop || row != p.addr.row)
                        && self.banks[bank_idx].can_precharge(self.now) =>
                {
                    self.banks[bank_idx].precharge(self.now, &self.timing);
                    self.stats.precharges += 1;
                    if !is_rowop {
                        self.stats.row_misses += 1;
                    }
                    return true;
                }
                Some(_) => {
                    // Either the correct row is open (waiting on a column
                    // timing or the data bus), or the wrong row is open but
                    // its precharge window (tRAS) has not elapsed yet.
                    // Nothing to do for this bank this cycle.
                }
                None if !is_rowop => {
                    let rank = &self.ranks[p.addr.rank as usize];
                    if self.banks[bank_idx].can_activate(self.now)
                        && rank.can_activate(self.now, 1, &self.timing)
                    {
                        self.banks[bank_idx].activate(p.addr.row, self.now, &self.timing);
                        self.ranks[p.addr.rank as usize].record_activate(self.now, 1, &self.timing);
                        self.stats.activates += 1;
                        return true;
                    }
                }
                None => {
                    // Row ops issue directly from pass 1 when the bank and
                    // rank windows allow; nothing to prepare here.
                }
            }
        }
        false
    }

    fn bank_index(&self, addr: &DramAddress) -> usize {
        addr.bank_id(self.mapper.geometry()) as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Queue {
    Read,
    Write,
    RowOp,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::LINE_BYTES;
    use crate::request::RowOpKind;

    fn mc() -> MemoryController {
        let mut mc =
            MemoryController::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11());
        mc.set_refresh_enabled(false);
        mc
    }

    fn run_until_idle(mc: &mut MemoryController) -> u64 {
        mc.run_to_idle()
    }

    #[test]
    fn single_read_latency_is_act_plus_cas_plus_burst() {
        let mut m = mc();
        m.push(MemRequest::new(0, ReqKind::Read)).unwrap();
        let finish = run_until_idle(&mut m);
        let t = m.timing();
        // ACT at cycle 0 is not possible before the scheduler sees the
        // request (1 cycle), then tRCD + tCL + tBL.
        let ideal = u64::from(t.t_rcd + t.t_cl + t.t_bl);
        assert!(finish >= ideal && finish <= ideal + 4, "finish {finish}");
        assert_eq!(m.stats().activates, 1);
        assert_eq!(m.stats().reads, 1);
    }

    #[test]
    fn row_hits_avoid_new_activates() {
        let mut m = mc();
        for i in 0..8u64 {
            m.push(MemRequest::new(i * LINE_BYTES, ReqKind::Read))
                .unwrap();
        }
        run_until_idle(&mut m);
        assert_eq!(m.stats().activates, 1, "sequential lines share one row");
        assert_eq!(m.stats().reads, 8);
        assert_eq!(m.stats().row_hit_rate(), Some(8.0 / 8.0));
    }

    #[test]
    fn row_conflict_precharges_and_reactivates() {
        let mut m = mc();
        let row_bytes = DramGeometry::ROW_BYTES;
        // Same bank, different rows: rows in the same bank are
        // banks_per_rank rows apart in physical address space.
        m.push(MemRequest::new(0, ReqKind::Read)).unwrap();
        m.push(MemRequest::new(row_bytes * 8, ReqKind::Read))
            .unwrap();
        run_until_idle(&mut m);
        assert_eq!(m.stats().activates, 2);
        assert_eq!(m.stats().precharges, 1);
        assert_eq!(m.stats().row_misses, 1);
    }

    #[test]
    fn reads_prioritized_over_writes_until_drain() {
        let mut m = mc();
        for i in 0..4u64 {
            m.push(MemRequest::new(i * LINE_BYTES, ReqKind::Write))
                .unwrap();
        }
        m.push(MemRequest::new(4 * LINE_BYTES, ReqKind::Read))
            .unwrap();
        let mut read_done = None;
        let mut writes_done = 0;
        while !m.is_idle() {
            m.tick();
            for c in m.take_completions() {
                if c.id == ReqId(4) {
                    read_done = Some(c.finish_cycle);
                } else {
                    writes_done += 1;
                    let _ = writes_done;
                }
            }
        }
        let read_done = read_done.expect("read completed");
        assert!(
            read_done < u64::from(m.timing().t_rc) + 20,
            "read finished at {read_done}, should not wait for all writes"
        );
    }

    #[test]
    fn bank_parallel_rowops_sustain_tfaw_rate() {
        // Issue one CODIC row op per row over all 8 banks; the steady-state
        // rate must be tFAW-limited: 4 ops per tFAW.
        let mut m = mc();
        let rows = 64u64;
        let mut next_row = 0u64;
        let mut finish = 0;
        loop {
            while next_row < rows {
                let addr = next_row * DramGeometry::ROW_BYTES;
                let t_rc = m.timing().t_rc;
                let req = MemRequest::new(
                    addr,
                    ReqKind::RowOp {
                        op: RowOpKind::Codic,
                        busy_cycles: t_rc,
                    },
                );
                if m.push(req).is_err() {
                    break;
                }
                next_row += 1;
            }
            if m.is_idle() && next_row >= rows {
                break;
            }
            m.tick();
            for c in m.take_completions() {
                finish = finish.max(c.finish_cycle);
            }
        }
        let t = m.timing();
        let per_op = finish as f64 / rows as f64;
        let faw_bound = f64::from(t.t_faw) / 4.0;
        assert!(
            (per_op - faw_bound).abs() < 2.0,
            "per-op {per_op} cycles vs tFAW/4 = {faw_bound}"
        );
        assert_eq!(m.stats().row_ops, rows);
    }

    #[test]
    fn refresh_blocks_and_counts() {
        let mut m =
            MemoryController::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11());
        let refi = u64::from(m.timing().t_refi);
        for _ in 0..refi + 300 {
            m.tick();
        }
        assert!(m.stats().refreshes >= 1);
    }

    #[test]
    fn queue_full_is_reported() {
        let mut m = mc();
        for i in 0..QUEUE_DEPTH as u64 {
            m.push(MemRequest::new(i * LINE_BYTES, ReqKind::Read))
                .unwrap();
        }
        let err = m
            .push(MemRequest::new(0, ReqKind::Read))
            .expect_err("queue must be full");
        assert_eq!(err.request.addr, 0);
        assert_eq!(m.stats().queue_rejections, 1);
    }

    /// Mixed workload driven tick-by-tick and by event jumps must agree
    /// on every completion, statistic, and the final clock.
    #[test]
    fn event_jumps_are_bit_identical_to_ticking() {
        let build = |refresh: bool| {
            let mut m =
                MemoryController::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11());
            m.set_refresh_enabled(refresh);
            for i in 0..10u64 {
                m.push(MemRequest::new(i * LINE_BYTES, ReqKind::Read))
                    .unwrap();
                m.push(MemRequest::new(
                    DramGeometry::ROW_BYTES * 8 + i * LINE_BYTES,
                    ReqKind::Write,
                ))
                .unwrap();
            }
            m.push(MemRequest::new(
                DramGeometry::ROW_BYTES,
                ReqKind::RowOp {
                    op: RowOpKind::Codic,
                    busy_cycles: TimingParams::ddr3_1600_11().t_rc,
                },
            ))
            .unwrap();
            m
        };
        for refresh in [false, true] {
            // The reference driver never consults the horizon, so a
            // too-late next_event_cycle() cannot cancel out of this
            // comparison.
            let mut ticked = build(refresh);
            let mut jumped = build(refresh);
            while !ticked.is_idle() {
                ticked.tick_reference();
            }
            jumped.run_to_idle();
            assert_eq!(ticked.take_completions(), jumped.take_completions());
            assert_eq!(ticked.stats(), jumped.stats(), "refresh={refresh}");
            assert_eq!(ticked.now(), jumped.now(), "refresh={refresh}");
        }
    }

    #[test]
    fn next_event_cycle_never_skips_an_actionable_cycle() {
        // Drive with the reference driver (which acts regardless of the
        // horizon): whenever the horizon claims the current cycle is
        // quiet, the reference step over that cycle must change nothing.
        // A too-late horizon fails here — the reference would issue or
        // retire inside the claimed-quiet gap.
        let mut m = mc();
        for i in 0..6u64 {
            m.push(MemRequest::new(
                i * DramGeometry::ROW_BYTES * 8,
                ReqKind::Read,
            ))
            .unwrap();
        }
        let mut quiet_claims = 0;
        while !m.is_idle() {
            let horizon = m.next_event_cycle();
            let before = (*m.stats(), m.take_completions().len());
            m.tick_reference();
            if m.now() <= horizon {
                // The stepped cycle was claimed quiet: no command may
                // have issued and nothing may have retired.
                quiet_claims += 1;
                let after = (*m.stats(), m.take_completions().len());
                assert_eq!(before.0, after.0);
                assert_eq!(after.1, 0);
            }
        }
        assert!(quiet_claims > 0, "the workload must exercise quiet gaps");
    }

    #[test]
    fn advance_to_lands_exactly_on_target() {
        let mut m = mc();
        m.push(MemRequest::new(0, ReqKind::Read)).unwrap();
        m.advance_to(5);
        assert_eq!(m.now(), 5);
        m.advance_to(100_000);
        assert_eq!(m.now(), 100_000);
        assert!(m.is_idle());
    }

    #[test]
    fn completions_report_monotone_ids_for_fifo_reads_to_one_bank() {
        let mut m = mc();
        for i in 0..4u64 {
            m.push(MemRequest::new(i * LINE_BYTES, ReqKind::Read))
                .unwrap();
        }
        let mut ids = Vec::new();
        while !m.is_idle() {
            m.tick();
            ids.extend(m.take_completions().into_iter().map(|c| c.id));
        }
        let sorted = {
            let mut s = ids.clone();
            s.sort();
            s
        };
        assert_eq!(ids, sorted, "same-row reads complete in order");
    }
}
