//! FR-FCFS memory controller with read/write queues, write draining,
//! open-page policy, refresh, and row-operation support.
//!
//! Matches the paper's evaluation configuration (Tables 5 and 7):
//! 64-entry read and write queues with FR-FCFS scheduling
//! (first-ready, first-come-first-served).
//!
//! # Scheduling internals: indexed queues over a request slab
//!
//! The serving hot path is O(1)-amortized per command rather than
//! O(queued requests) per command:
//!
//! - **Request slab.** Every accepted request lives in a slot of a
//!   freelist-recycled slab (`Slot`); slots have stable indices, so no
//!   issue ever shifts queue memory (`VecDeque::remove` is gone).
//! - **Per-bank FIFO chains.** Each queue class (read / write / row-op)
//!   keeps one doubly-linked chain *per bank* through the slab, in global
//!   arrival order (`BankChain`). The oldest request of a bank is its
//!   chain head; issue unlinks in O(1).
//! - **Ready-bank index.** A bitmask per queue class (`BankSet`) names
//!   the banks with a non-empty chain, so every scheduler pass and the
//!   event horizon iterate *banks*, not requests. Per chain, two caches
//!   make bank-level readiness O(1): `match_head`/`match_len` track the
//!   earliest (and count of) queued column accesses targeting the bank's
//!   open row, rebuilt only when the bank's open row changes; row-op
//!   chains track the earliest request per activation weight
//!   (`act_head`), because the rank tRRD/tFAW gate differs for one-,
//!   two-, and triple-activation operations.
//! - **Arrival-sequence tiebreak.** First-ready selection takes, among
//!   all ready banks, the candidate with the minimal global arrival
//!   sequence (the [`ReqId`] handed out by [`MemoryController::push`]).
//!   Within a class this equals queue order, so the issued command
//!   stream is **bit-identical** to a full FR-FCFS scan of global
//!   arrival-ordered queues — the invariant the engine-equivalence and
//!   legacy-scheduler property tests pin.
//!
//! [`MemoryController::next_event_cycle`] derives its horizon from the
//! same index: one conservative candidate per non-empty (class, bank)
//! pair instead of one per queued request.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::address::{AddressMapper, DramAddress};
use crate::bank::Bank;
use crate::geometry::DramGeometry;
use crate::rank::Rank;
use crate::request::{MemRequest, QueueFull, ReqId, ReqKind, RowOpKind};
use crate::stats::MemStats;
use crate::timing::TimingParams;

/// Capacity of each of the read and write queues (Table 5).
pub const QUEUE_DEPTH: usize = 64;

/// Write-queue occupancy that starts a write drain.
const DRAIN_HIGH: usize = 48;

/// Write-queue occupancy that ends a write drain.
const DRAIN_LOW: usize = 16;

/// Null link / absent-slot marker in the request slab.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: ReqId,
    addr: DramAddress,
    kind: ReqKind,
}

/// One slab entry: a pending request threaded into its bank's chain.
#[derive(Debug, Clone, Copy)]
struct Slot {
    pending: Pending,
    prev: u32,
    next: u32,
}

/// One bank's FIFO chain through the slab for one queue class, plus the
/// O(1)-readiness caches (see the module docs).
#[derive(Debug, Clone, Copy)]
struct BankChain {
    head: u32,
    tail: u32,
    len: u32,
    /// Earliest queued column access targeting the bank's open row
    /// (read/write chains only; [`NIL`] while the bank is closed or no
    /// queued access matches).
    match_head: u32,
    /// Number of queued column accesses targeting the bank's open row.
    match_len: u32,
    /// Earliest queued row operation per activation weight (index 0: one
    /// activation, index 1: two, index 2: triple-row activation) — row-op
    /// chains only.
    act_head: [u32; 3],
}

impl BankChain {
    const EMPTY: BankChain = BankChain {
        head: NIL,
        tail: NIL,
        len: 0,
        match_head: NIL,
        match_len: 0,
        act_head: [NIL, NIL, NIL],
    };
}

/// A dense bitmask over bank indices: the ready-bank occupancy index.
#[derive(Debug, Clone)]
struct BankSet {
    words: Vec<u64>,
}

impl BankSet {
    fn new(banks: usize) -> Self {
        BankSet {
            words: vec![0; banks.div_ceil(64).max(1)],
        }
    }

    fn insert(&mut self, bank: usize) {
        self.words[bank / 64] |= 1 << (bank % 64);
    }

    fn remove(&mut self, bank: usize) {
        self.words[bank / 64] &= !(1 << (bank % 64));
    }

    fn iter(&self) -> BankSetIter<'_> {
        BankSetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words[0],
        }
    }
}

struct BankSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BankSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

/// The activation-weight cache index of a row operation (0: single
/// activation, 1: double, 2: triple-row activation).
fn act_weight(op: RowOpKind) -> usize {
    usize::from(op.activations().clamp(1, 3)) - 1
}

/// A completed request: its id and the cycle its data (or operation)
/// finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request id handed out by [`MemoryController::push`].
    pub id: ReqId,
    /// Memory cycle at which the request completed.
    pub finish_cycle: u64,
}

/// The cycle-level DDR3 memory controller.
#[derive(Debug)]
pub struct MemoryController {
    mapper: AddressMapper,
    timing: TimingParams,
    banks: Vec<Bank>,
    ranks: Vec<Rank>,
    slab: Vec<Slot>,
    free_slots: Vec<u32>,
    /// Per-class, per-bank chains (indexed `[Queue][bank]`).
    chains: [Vec<BankChain>; Queue::COUNT],
    /// Per-class occupancy: which banks have a non-empty chain.
    occupied: [BankSet; Queue::COUNT],
    /// Per-class queued-request totals (queue caps, drain hysteresis).
    queued: [usize; Queue::COUNT],
    /// Reused (arrival, bank) buffer for the FCFS pass — no per-cycle
    /// allocation.
    oldest_scratch: Vec<(u64, u32)>,
    in_flight: BinaryHeap<Reverse<(u64, u64)>>,
    completed: Vec<Completion>,
    last_finish: u64,
    now: u64,
    data_bus_free: u64,
    write_drain: bool,
    refresh_enabled: bool,
    refresh_pending: bool,
    next_refresh: u64,
    next_id: u64,
    stats: MemStats,
    /// Injected clock fault: the controller never processes an event
    /// after this cycle (`None` — the default — means no fault, and the
    /// engine behaves exactly as if the field did not exist).
    clock_ceiling: Option<u64>,
}

impl MemoryController {
    /// Creates a controller for a module of the given geometry and timing.
    #[must_use]
    pub fn new(geometry: DramGeometry, timing: TimingParams) -> Self {
        let total_banks = geometry.total_banks() as usize;
        MemoryController {
            mapper: AddressMapper::new(geometry),
            timing,
            banks: vec![Bank::new(); total_banks],
            ranks: (0..geometry.ranks).map(|_| Rank::new()).collect(),
            slab: Vec::with_capacity(Queue::COUNT * QUEUE_DEPTH),
            free_slots: Vec::with_capacity(Queue::COUNT * QUEUE_DEPTH),
            chains: std::array::from_fn(|_| vec![BankChain::EMPTY; total_banks]),
            occupied: std::array::from_fn(|_| BankSet::new(total_banks)),
            queued: [0; Queue::COUNT],
            oldest_scratch: Vec::with_capacity(total_banks),
            in_flight: BinaryHeap::new(),
            completed: Vec::new(),
            last_finish: 0,
            now: 0,
            data_bus_free: 0,
            write_drain: false,
            refresh_enabled: true,
            refresh_pending: false,
            next_refresh: u64::from(timing.t_refi),
            next_id: 0,
            stats: MemStats::default(),
            clock_ceiling: None,
        }
    }

    /// Injects a stuck-clock fault: the controller will never process an
    /// event after `cycle`. Requests already queued or in flight with
    /// finish times beyond the ceiling simply never retire; new pushes
    /// are still accepted while queue slots last. Detection is
    /// [`MemoryController::clock_stalled`].
    pub fn set_clock_fault(&mut self, cycle: u64) {
        self.clock_ceiling = Some(cycle);
    }

    /// The injected clock ceiling, if any.
    #[must_use]
    pub fn clock_fault(&self) -> Option<u64> {
        self.clock_ceiling
    }

    /// True when work is pending but the next event lies beyond the
    /// injected clock ceiling — the device can make no further progress.
    /// Always `false` without an injected fault.
    #[must_use]
    pub fn clock_stalled(&self) -> bool {
        match self.clock_ceiling {
            Some(ceiling) => !self.is_idle() && self.next_event_cycle() > ceiling,
            None => false,
        }
    }

    /// The current memory cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The timing parameters in use.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The module geometry in use.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        self.mapper.geometry()
    }

    /// Accumulated command statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Enables or disables the refresh engine (enabled by default).
    /// The paper's PUF methodology disables refresh (§6.1).
    pub fn set_refresh_enabled(&mut self, enabled: bool) {
        self.refresh_enabled = enabled;
    }

    /// Whether a request of `kind` can currently be accepted.
    #[must_use]
    pub fn can_accept(&self, kind: ReqKind) -> bool {
        self.queued[Queue::of(kind).idx()] < QUEUE_DEPTH
    }

    /// Enqueues a request.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] (with the request) if the target queue is at
    /// capacity; the caller should retry after ticking.
    pub fn push(&mut self, request: MemRequest) -> Result<ReqId, QueueFull> {
        if !self.can_accept(request.kind) {
            self.stats.queue_rejections += 1;
            return Err(QueueFull { request });
        }
        let id = ReqId(self.next_id);
        self.next_id += 1;
        let pending = Pending {
            id,
            addr: self.mapper.decode(request.addr),
            kind: request.kind,
        };
        self.enqueue(pending);
        Ok(id)
    }

    /// Threads `pending` onto the tail of its bank's chain, updating the
    /// occupancy index and readiness caches.
    fn enqueue(&mut self, pending: Pending) {
        let class = Queue::of(pending.kind);
        let bank_idx = self.bank_index(&pending.addr);
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Slot {
                    pending,
                    prev: NIL,
                    next: NIL,
                };
                slot
            }
            None => {
                self.slab.push(Slot {
                    pending,
                    prev: NIL,
                    next: NIL,
                });
                (self.slab.len() - 1) as u32
            }
        };
        let chain = &mut self.chains[class.idx()][bank_idx];
        if chain.tail == NIL {
            chain.head = slot;
            self.occupied[class.idx()].insert(bank_idx);
        } else {
            self.slab[chain.tail as usize].next = slot;
            self.slab[slot as usize].prev = chain.tail;
        }
        let chain = &mut self.chains[class.idx()][bank_idx];
        chain.tail = slot;
        chain.len += 1;
        self.queued[class.idx()] += 1;
        match pending.kind {
            ReqKind::Read | ReqKind::Write => {
                if self.banks[bank_idx].open_row() == Some(pending.addr.row) {
                    let chain = &mut self.chains[class.idx()][bank_idx];
                    chain.match_len += 1;
                    if chain.match_head == NIL {
                        chain.match_head = slot;
                    }
                }
            }
            ReqKind::RowOp { op, .. } => {
                let chain = &mut self.chains[class.idx()][bank_idx];
                let w = act_weight(op);
                if chain.act_head[w] == NIL {
                    chain.act_head[w] = slot;
                }
            }
        }
    }

    /// Unlinks `slot` from its chain in O(1), repairing the readiness
    /// caches (a forward scan bounded by the bank's own chain when the
    /// removed slot was a cache head), and recycles it on the freelist.
    fn unlink(&mut self, class: Queue, slot: u32) -> Pending {
        let Slot {
            pending,
            prev,
            next,
        } = self.slab[slot as usize];
        let bank_idx = self.bank_index(&pending.addr);
        match pending.kind {
            ReqKind::Read | ReqKind::Write => {
                if self.banks[bank_idx].open_row() == Some(pending.addr.row) {
                    let chain = &self.chains[class.idx()][bank_idx];
                    let new_len = chain.match_len - 1;
                    let new_head = if chain.match_head != slot {
                        chain.match_head
                    } else if new_len == 0 {
                        NIL
                    } else {
                        // The removed slot was the earliest match, so the
                        // next one is strictly after it in the chain.
                        let row = pending.addr.row;
                        let mut cur = next;
                        loop {
                            let s = &self.slab[cur as usize];
                            if s.pending.addr.row == row {
                                break cur;
                            }
                            cur = s.next;
                        }
                    };
                    let chain = &mut self.chains[class.idx()][bank_idx];
                    chain.match_head = new_head;
                    chain.match_len = new_len;
                }
            }
            ReqKind::RowOp { op, .. } => {
                let w = act_weight(op);
                if self.chains[class.idx()][bank_idx].act_head[w] == slot {
                    let mut cur = next;
                    let new_head = loop {
                        if cur == NIL {
                            break NIL;
                        }
                        let s = &self.slab[cur as usize];
                        if let ReqKind::RowOp { op: other, .. } = s.pending.kind {
                            if act_weight(other) == w {
                                break cur;
                            }
                        }
                        cur = s.next;
                    };
                    self.chains[class.idx()][bank_idx].act_head[w] = new_head;
                }
            }
        }
        if prev == NIL {
            self.chains[class.idx()][bank_idx].head = next;
        } else {
            self.slab[prev as usize].next = next;
        }
        if next == NIL {
            self.chains[class.idx()][bank_idx].tail = prev;
        } else {
            self.slab[next as usize].prev = prev;
        }
        let chain = &mut self.chains[class.idx()][bank_idx];
        chain.len -= 1;
        if chain.len == 0 {
            self.occupied[class.idx()].remove(bank_idx);
        }
        self.queued[class.idx()] -= 1;
        self.free_slots.push(slot);
        pending
    }

    /// True when no request is queued or in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queued.iter().all(|&n| n == 0) && self.in_flight.is_empty()
    }

    /// Removes and returns all completions that have finished by now.
    ///
    /// Completions accumulate until taken; long-running callers must call
    /// this (directly or through their tick loop) to bound the buffer.
    /// Allocation-sensitive callers should prefer
    /// [`MemoryController::drain_completions`].
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completed)
    }

    /// Drains every buffered completion through `f`, in retirement order,
    /// retaining the buffer's capacity — the allocation-free twin of
    /// [`MemoryController::take_completions`] for steady-state serving
    /// loops.
    pub fn drain_completions(&mut self, mut f: impl FnMut(Completion)) {
        for completion in self.completed.drain(..) {
            f(completion);
        }
    }

    /// Advances one memory cycle, issuing at most one command.
    ///
    /// Equivalent to [`MemoryController::advance_to`]`(now + 1)`: the
    /// cycle-by-cycle driver and the event-driven driver share one engine
    /// and produce bit-identical command streams.
    pub fn tick(&mut self) {
        self.advance_to(self.now + 1);
    }

    /// Advances one memory cycle through the *reference* driver: retire,
    /// refresh, and schedule run unconditionally, with no consultation of
    /// [`MemoryController::next_event_cycle`] — the pre-event-engine
    /// `tick` body, byte for byte.
    ///
    /// This is the oracle the engine-equivalence tests (and the
    /// `bench_device` tick-engine baseline) pin the event engine against:
    /// because it never reads the horizon, a horizon bug that delays
    /// events cannot cancel out of the comparison the way it would if
    /// both sides shared [`MemoryController::tick`]'s gating.
    pub fn tick_reference(&mut self) {
        self.step_cycle();
        self.now += 1;
    }

    /// The earliest cycle `>= now()` at which the controller may act —
    /// retire an in-flight request, start or service a refresh, or issue
    /// a command for a queued request — or `u64::MAX` when no future
    /// cycle can ever be actionable (idle with refresh disabled).
    ///
    /// The horizon is conservative: it never skips past an actionable
    /// cycle, but may name a cycle at which, on inspection, nothing can
    /// issue yet (the engine then recomputes from there). Every cycle in
    /// `(now(), next_event_cycle())` is guaranteed to be a no-op, which
    /// is what lets [`MemoryController::advance_to`] jump the clock.
    ///
    /// Derived from the ready-bank index: one candidate per non-empty
    /// (class, bank) pair, not one per queued request.
    #[must_use]
    pub fn next_event_cycle(&self) -> u64 {
        let mut e = u64::MAX;
        if let Some(&Reverse((cycle, _))) = self.in_flight.peek() {
            e = e.min(cycle);
        }
        if self.refresh_enabled && !self.refresh_pending {
            e = e.min(self.next_refresh);
        }
        if self.refresh_pending {
            // While a refresh is pending the scheduler is blocked: the
            // only command-bus events are the close-banks/refresh steps.
            match self.banks.iter().find(|b| b.open_row().is_some()) {
                Some(bank) => e = e.min(bank.next_pre_at()),
                None => {
                    let all_ready = self.banks.iter().map(Bank::next_act_at).max().unwrap_or(0);
                    e = e.min(all_ready);
                }
            }
        } else {
            // The rank activation gate is independent of the bank it
            // applies to, so compute it once per (rank, activation count)
            // instead of per candidate — in a stack buffer, since this
            // runs once per event on the engine's hottest path.
            let mut gate_buf = [[0u64; 3]; 8];
            let memo_ranks = self.ranks.len().min(gate_buf.len());
            for (slot, rank) in gate_buf.iter_mut().zip(&self.ranks) {
                *slot = self.act_gates_of(rank);
            }
            for class in [Queue::Read, Queue::Write, Queue::RowOp] {
                for bank_idx in self.occupied[class.idx()].iter() {
                    e = e.min(self.bank_candidate(class, bank_idx, &gate_buf[..memo_ranks]));
                    if e <= self.now {
                        // A candidate at (or before) the floor cannot be
                        // beaten: the controller can act this cycle.
                        return self.now;
                    }
                }
            }
        }
        e.max(self.now)
    }

    /// The rank's activation gates for 1, 2, and 3 activations: the
    /// earliest cycles its tRRD/tFAW windows allow, independent of any
    /// bank state.
    fn act_gates_of(&self, rank: &Rank) -> [u64; 3] {
        [
            rank.earliest_activate(0, 1, &self.timing),
            rank.earliest_activate(0, 2, &self.timing),
            rank.earliest_activate(0, 3, &self.timing),
        ]
    }

    /// Cycles from `now()` until [`MemoryController::next_event_cycle`] —
    /// zero when the controller can act this cycle. Callers composing the
    /// controller with other clocked components (e.g. trace-driven cores)
    /// may safely skip this many cycles without losing events.
    #[must_use]
    pub fn cycles_until_next_event(&self) -> u64 {
        self.next_event_cycle().saturating_sub(self.now)
    }

    /// The earliest cycle at which any request queued on `bank_idx` in
    /// `class` could be issued a command (column access, precharge, or
    /// activate), given current bank/rank/bus state — the per-bank
    /// aggregation of the old per-request candidate scan, made O(1) by
    /// the chain caches. `act_gates[rank]` holds the precomputed rank
    /// activation gates for 1, 2, and 3 activations. Exact per bank; the
    /// scheduler's one-command-per-cycle arbitration is applied when the
    /// cycle is actually processed.
    fn bank_candidate(&self, class: Queue, bank_idx: usize, act_gates: &[[u64; 3]]) -> u64 {
        let bank = &self.banks[bank_idx];
        let chain = &self.chains[class.idx()][bank_idx];
        let rank_idx = self.rank_of_bank(bank_idx);
        // Ranks beyond the memo buffer (more than 8 — unusual geometries)
        // compute their gates directly.
        let gates = act_gates
            .get(rank_idx)
            .copied()
            .unwrap_or_else(|| self.act_gates_of(&self.ranks[rank_idx]));
        match class {
            Queue::Read | Queue::Write => match bank.open_row() {
                Some(_) => {
                    let mut cand = u64::MAX;
                    if chain.match_len > 0 {
                        let (col_gate, bus_lead) = if class == Queue::Read {
                            (bank.next_rd_at(), self.timing.t_cl)
                        } else {
                            (bank.next_wr_at(), self.timing.t_cwl)
                        };
                        cand = cand.min(
                            col_gate.max(self.data_bus_free.saturating_sub(u64::from(bus_lead))),
                        );
                    }
                    if chain.len > chain.match_len {
                        cand = cand.min(bank.next_pre_at());
                    }
                    cand
                }
                None => bank.next_act_at().max(gates[0]),
            },
            Queue::RowOp => match bank.open_row() {
                Some(_) => bank.next_pre_at(),
                None => {
                    let mut cand = u64::MAX;
                    for (w, &slot) in chain.act_head.iter().enumerate() {
                        if slot != NIL {
                            cand = cand.min(bank.next_act_at().max(gates[w]));
                        }
                    }
                    cand
                }
            },
        }
    }

    /// Advances the clock to exactly `target`, processing every
    /// actionable cycle in `[now, target)` and jumping over the quiet
    /// gaps in between — the event-driven core. Calling this is
    /// bit-identical (same commands at the same cycles, same completions,
    /// same statistics) to calling [`MemoryController::tick`]
    /// `target - now()` times; wall-clock cost scales with *events*
    /// rather than with simulated cycles.
    pub fn advance_to(&mut self, target: u64) {
        // A stuck clock (injected fault) caps how far the engine will
        // walk: events at the ceiling itself may still process, nothing
        // after it.
        let target = match self.clock_ceiling {
            Some(ceiling) => target.min(ceiling.saturating_add(1)),
            None => target,
        };
        while self.now < target {
            let event = self.next_event_cycle().min(target);
            if event > self.now {
                self.now = event;
                if self.now >= target {
                    break;
                }
            }
            self.step_cycle();
            self.now += 1;
        }
    }

    /// One tick's worth of work at the current cycle (without advancing
    /// the clock): retire, then refresh or schedule.
    fn step_cycle(&mut self) {
        self.retire_in_flight();
        if self.refresh_enabled && !self.refresh_pending && self.now >= self.next_refresh {
            self.refresh_pending = true;
        }
        if self.refresh_pending {
            let _ = self.service_refresh();
        } else {
            self.update_drain_mode();
            self.schedule();
        }
    }

    /// Jumps the clock to the next event and processes that one cycle —
    /// the single-event driver. Returns `false` (and leaves the clock
    /// untouched) when no future cycle can ever be actionable.
    ///
    /// Equivalent to ticking up to and through the event cycle; callers
    /// interleaving their own work per event (queue refills, completion
    /// harvesting) use this instead of a fixed [`MemoryController::advance_to`]
    /// target.
    pub fn step_event(&mut self) -> bool {
        let event = self.next_event_cycle();
        if event == u64::MAX {
            return false;
        }
        // An injected stuck clock refuses any event past its ceiling.
        if let Some(ceiling) = self.clock_ceiling {
            if event > ceiling {
                return false;
            }
        }
        self.now = self.now.max(event);
        self.step_cycle();
        self.now += 1;
        true
    }

    /// Runs until idle, returning the cycle at which the last request
    /// completed (or the current cycle when already idle). Completions
    /// stay buffered for [`MemoryController::take_completions`]; callers
    /// that only need the finish cycle can discard them afterwards.
    ///
    /// Event-driven: the clock jumps from event to event instead of
    /// ticking through quiet cycles, with results bit-identical to the
    /// tick-by-tick loop.
    pub fn run_to_idle(&mut self) -> u64 {
        let last = self.now;
        while !self.is_idle() && self.step_event() {}
        last.max(self.last_finish)
    }

    fn retire_in_flight(&mut self) {
        while let Some(&Reverse((cycle, id))) = self.in_flight.peek() {
            if cycle > self.now {
                break;
            }
            self.in_flight.pop();
            self.last_finish = self.last_finish.max(cycle);
            self.completed.push(Completion {
                id: ReqId(id),
                finish_cycle: cycle,
            });
        }
    }

    fn update_drain_mode(&mut self) {
        if self.queued[Queue::Write.idx()] >= DRAIN_HIGH {
            self.write_drain = true;
        } else if self.queued[Queue::Write.idx()] <= DRAIN_LOW {
            self.write_drain = false;
        }
    }

    /// Attempts to make refresh progress; returns true if a command was
    /// issued this cycle.
    fn service_refresh(&mut self) -> bool {
        // Close any open bank first.
        for i in 0..self.banks.len() {
            if self.banks[i].open_row().is_some() {
                if self.banks[i].can_precharge(self.now) {
                    self.precharge_bank(i);
                    return true;
                }
                return false;
            }
        }
        // All banks closed; wait until every bank can accept an activate
        // (i.e. tRP has elapsed) then refresh all ranks.
        if self.banks.iter().all(|b| b.can_activate(self.now)) {
            let until = self.now + u64::from(self.timing.t_rfc);
            for b in &mut self.banks {
                b.block_until(until);
            }
            self.stats.refreshes += self.ranks.len() as u64;
            self.refresh_pending = false;
            self.next_refresh += u64::from(self.timing.t_refi);
            return true;
        }
        false
    }

    fn schedule(&mut self) {
        // Row operations are scheduled like reads but take precedence over
        // the data queues only when no column command is ready: they never
        // need the data bus. Reads lead unless a write drain is active or
        // no read is queued.
        const READS_FIRST: [Queue; Queue::COUNT] = [Queue::Read, Queue::Write, Queue::RowOp];
        const WRITES_FIRST: [Queue; Queue::COUNT] = [Queue::Write, Queue::Read, Queue::RowOp];
        let order = if self.write_drain || self.queued[Queue::Read.idx()] == 0 {
            WRITES_FIRST
        } else {
            READS_FIRST
        };
        for class in order {
            if self.try_queue(class) {
                break;
            }
        }
    }

    fn try_queue(&mut self, which: Queue) -> bool {
        // Pass 1 (first-ready): issue any request whose row is open and
        // whose column command is timing-clean.
        if let Some(slot) = self.find_ready(which) {
            self.issue_column(which, slot);
            return true;
        }
        // Pass 2 (FCFS): for the oldest request per bank, advance the bank
        // state with a precharge or activate.
        self.advance_oldest(which)
    }

    /// First-ready selection over the ready-bank index: among all banks
    /// whose caches name an issuable request, the one with the minimal
    /// global arrival sequence — identical to scanning the class's
    /// arrival-ordered queue front to back.
    fn find_ready(&self, which: Queue) -> Option<u32> {
        let mut best: Option<(u64, u32)> = None;
        match which {
            Queue::Read | Queue::Write => {
                let is_read = which == Queue::Read;
                if !self.column_bus_ok(is_read) {
                    return None;
                }
                for bank_idx in self.occupied[which.idx()].iter() {
                    let chain = &self.chains[which.idx()][bank_idx];
                    if chain.match_head == NIL {
                        continue;
                    }
                    let bank = &self.banks[bank_idx];
                    let gate = if is_read {
                        bank.next_rd_at()
                    } else {
                        bank.next_wr_at()
                    };
                    if self.now < gate {
                        continue;
                    }
                    let arrival = self.slab[chain.match_head as usize].pending.id.0;
                    if best.is_none_or(|(b, _)| arrival < b) {
                        best = Some((arrival, chain.match_head));
                    }
                }
            }
            Queue::RowOp => {
                for bank_idx in self.occupied[Queue::RowOp.idx()].iter() {
                    if !self.banks[bank_idx].can_row_op(self.now) {
                        continue;
                    }
                    let rank = &self.ranks[self.rank_of_bank(bank_idx)];
                    let chain = &self.chains[Queue::RowOp.idx()][bank_idx];
                    for (w, &slot) in chain.act_head.iter().enumerate() {
                        if slot == NIL {
                            continue;
                        }
                        if !rank.can_activate(self.now, w as u8 + 1, &self.timing) {
                            continue;
                        }
                        let arrival = self.slab[slot as usize].pending.id.0;
                        if best.is_none_or(|(b, _)| arrival < b) {
                            best = Some((arrival, slot));
                        }
                    }
                }
            }
        }
        best.map(|(_, slot)| slot)
    }

    fn column_bus_ok(&self, is_read: bool) -> bool {
        let start = self.now
            + u64::from(if is_read {
                self.timing.t_cl
            } else {
                self.timing.t_cwl
            });
        start >= self.data_bus_free
    }

    fn issue_column(&mut self, which: Queue, slot: u32) {
        let p = self.unlink(which, slot);
        let bank_idx = self.bank_index(&p.addr);
        match p.kind {
            ReqKind::Read => {
                let done = self.banks[bank_idx].read(self.now, &self.timing);
                self.data_bus_free = done;
                self.stats.reads += 1;
                self.stats.row_hits += 1;
                self.in_flight.push(Reverse((done, p.id.0)));
            }
            ReqKind::Write => {
                let done = self.banks[bank_idx].write(self.now, &self.timing);
                self.data_bus_free = done;
                self.stats.writes += 1;
                self.stats.row_hits += 1;
                self.in_flight.push(Reverse((done, p.id.0)));
            }
            ReqKind::RowOp { op, busy_cycles } => {
                self.banks[bank_idx].row_op(self.now, busy_cycles);
                self.ranks[p.addr.rank as usize].record_activate(
                    self.now,
                    op.activations(),
                    &self.timing,
                );
                self.stats.row_ops += 1;
                self.stats.row_op_activations += u64::from(op.activations());
                self.in_flight
                    .push(Reverse((self.now + u64::from(busy_cycles), p.id.0)));
            }
        }
    }

    /// The FCFS pass: for each bank's oldest request — banks visited in
    /// ascending arrival order of those oldest requests, exactly the
    /// order a front-to-back queue scan discovers them — advance the bank
    /// state with a precharge or activate. First success wins the cycle.
    fn advance_oldest(&mut self, which: Queue) -> bool {
        let mut order = std::mem::take(&mut self.oldest_scratch);
        order.clear();
        for bank_idx in self.occupied[which.idx()].iter() {
            let head = self.chains[which.idx()][bank_idx].head;
            order.push((self.slab[head as usize].pending.id.0, bank_idx as u32));
        }
        order.sort_unstable();
        let is_rowop = which == Queue::RowOp;
        let mut issued = false;
        for &(_, bank) in order.iter() {
            let bank_idx = bank as usize;
            let head = self.chains[which.idx()][bank_idx].head;
            let p = self.slab[head as usize].pending;
            match self.banks[bank_idx].open_row() {
                Some(row)
                    if (is_rowop || row != p.addr.row)
                        && self.banks[bank_idx].can_precharge(self.now) =>
                {
                    self.precharge_bank(bank_idx);
                    if !is_rowop {
                        self.stats.row_misses += 1;
                    }
                    issued = true;
                    break;
                }
                Some(_) => {
                    // Either the correct row is open (waiting on a column
                    // timing or the data bus), or the wrong row is open but
                    // its precharge window (tRAS) has not elapsed yet.
                    // Nothing to do for this bank this cycle.
                }
                None if !is_rowop => {
                    let rank_idx = p.addr.rank as usize;
                    if self.banks[bank_idx].can_activate(self.now)
                        && self.ranks[rank_idx].can_activate(self.now, 1, &self.timing)
                    {
                        self.activate_bank(bank_idx, p.addr.row, rank_idx);
                        issued = true;
                        break;
                    }
                }
                None => {
                    // Row ops issue directly from pass 1 when the bank and
                    // rank windows allow; nothing to prepare here.
                }
            }
        }
        self.oldest_scratch = order;
        issued
    }

    /// Precharges `bank_idx` and invalidates its open-row match caches —
    /// the single choke point every precharge (scheduler or refresh) goes
    /// through, so the caches can never go stale.
    fn precharge_bank(&mut self, bank_idx: usize) {
        self.banks[bank_idx].precharge(self.now, &self.timing);
        self.stats.precharges += 1;
        for class in [Queue::Read, Queue::Write] {
            let chain = &mut self.chains[class.idx()][bank_idx];
            chain.match_head = NIL;
            chain.match_len = 0;
        }
    }

    /// Activates `row` on `bank_idx` and rebuilds its open-row match
    /// caches with one pass over the bank's own (bounded) chains.
    fn activate_bank(&mut self, bank_idx: usize, row: u32, rank_idx: usize) {
        self.banks[bank_idx].activate(row, self.now, &self.timing);
        self.ranks[rank_idx].record_activate(self.now, 1, &self.timing);
        self.stats.activates += 1;
        for class in [Queue::Read, Queue::Write] {
            let mut head = NIL;
            let mut len = 0u32;
            let mut cur = self.chains[class.idx()][bank_idx].head;
            while cur != NIL {
                let s = &self.slab[cur as usize];
                if s.pending.addr.row == row {
                    if head == NIL {
                        head = cur;
                    }
                    len += 1;
                }
                cur = s.next;
            }
            let chain = &mut self.chains[class.idx()][bank_idx];
            chain.match_head = head;
            chain.match_len = len;
        }
    }

    fn bank_index(&self, addr: &DramAddress) -> usize {
        addr.bank_id(self.mapper.geometry()) as usize
    }

    fn rank_of_bank(&self, bank_idx: usize) -> usize {
        bank_idx / self.mapper.geometry().banks_per_rank as usize
    }
}

/// The three FR-FCFS queue classes, in slab-index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Queue {
    Read = 0,
    Write = 1,
    RowOp = 2,
}

impl Queue {
    const COUNT: usize = 3;

    fn of(kind: ReqKind) -> Queue {
        match kind {
            ReqKind::Read => Queue::Read,
            ReqKind::Write => Queue::Write,
            ReqKind::RowOp { .. } => Queue::RowOp,
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::LINE_BYTES;
    use crate::request::RowOpKind;

    fn mc() -> MemoryController {
        let mut mc =
            MemoryController::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11());
        mc.set_refresh_enabled(false);
        mc
    }

    fn run_until_idle(mc: &mut MemoryController) -> u64 {
        mc.run_to_idle()
    }

    #[test]
    fn single_read_latency_is_act_plus_cas_plus_burst() {
        let mut m = mc();
        m.push(MemRequest::new(0, ReqKind::Read)).unwrap();
        let finish = run_until_idle(&mut m);
        let t = m.timing();
        // ACT at cycle 0 is not possible before the scheduler sees the
        // request (1 cycle), then tRCD + tCL + tBL.
        let ideal = u64::from(t.t_rcd + t.t_cl + t.t_bl);
        assert!(finish >= ideal && finish <= ideal + 4, "finish {finish}");
        assert_eq!(m.stats().activates, 1);
        assert_eq!(m.stats().reads, 1);
    }

    #[test]
    fn stuck_clock_freezes_the_engine_at_its_ceiling() {
        // Reference: the same request stream without a fault.
        let mut healthy = mc();
        healthy.push(MemRequest::new(0, ReqKind::Read)).unwrap();
        let healthy_finish = run_until_idle(&mut healthy);

        let mut m = mc();
        m.set_clock_fault(2);
        assert!(!m.clock_stalled(), "an idle faulted device is not stalled");
        m.push(MemRequest::new(0, ReqKind::Read)).unwrap();
        let finish = run_until_idle(&mut m);
        assert!(healthy_finish > 2, "the op needs cycles past the ceiling");
        assert!(finish <= 3, "the clock never walked past the ceiling");
        assert!(!m.is_idle(), "the request is wedged, not completed");
        assert!(m.clock_stalled());
        assert!(m.take_completions().is_empty());
        // Every driver respects the ceiling: step_event refuses, tick and
        // advance_to clamp.
        assert!(!m.step_event());
        let now = m.now();
        m.advance_to(now + 10_000);
        m.tick();
        assert!(m.now() <= 3);
        assert_eq!(m.clock_fault(), Some(2));
    }

    #[test]
    fn row_hits_avoid_new_activates() {
        let mut m = mc();
        for i in 0..8u64 {
            m.push(MemRequest::new(i * LINE_BYTES, ReqKind::Read))
                .unwrap();
        }
        run_until_idle(&mut m);
        assert_eq!(m.stats().activates, 1, "sequential lines share one row");
        assert_eq!(m.stats().reads, 8);
        assert_eq!(m.stats().row_hit_rate(), Some(8.0 / 8.0));
    }

    #[test]
    fn row_conflict_precharges_and_reactivates() {
        let mut m = mc();
        let row_bytes = DramGeometry::ROW_BYTES;
        // Same bank, different rows: rows in the same bank are
        // banks_per_rank rows apart in physical address space.
        m.push(MemRequest::new(0, ReqKind::Read)).unwrap();
        m.push(MemRequest::new(row_bytes * 8, ReqKind::Read))
            .unwrap();
        run_until_idle(&mut m);
        assert_eq!(m.stats().activates, 2);
        assert_eq!(m.stats().precharges, 1);
        assert_eq!(m.stats().row_misses, 1);
    }

    #[test]
    fn reads_prioritized_over_writes_until_drain() {
        let mut m = mc();
        for i in 0..4u64 {
            m.push(MemRequest::new(i * LINE_BYTES, ReqKind::Write))
                .unwrap();
        }
        m.push(MemRequest::new(4 * LINE_BYTES, ReqKind::Read))
            .unwrap();
        let mut read_done = None;
        let mut writes_done = 0;
        while !m.is_idle() {
            m.tick();
            for c in m.take_completions() {
                if c.id == ReqId(4) {
                    read_done = Some(c.finish_cycle);
                } else {
                    writes_done += 1;
                    let _ = writes_done;
                }
            }
        }
        let read_done = read_done.expect("read completed");
        assert!(
            read_done < u64::from(m.timing().t_rc) + 20,
            "read finished at {read_done}, should not wait for all writes"
        );
    }

    #[test]
    fn bank_parallel_rowops_sustain_tfaw_rate() {
        // Issue one CODIC row op per row over all 8 banks; the steady-state
        // rate must be tFAW-limited: 4 ops per tFAW.
        let mut m = mc();
        let rows = 64u64;
        let mut next_row = 0u64;
        let mut finish = 0;
        loop {
            while next_row < rows {
                let addr = next_row * DramGeometry::ROW_BYTES;
                let t_rc = m.timing().t_rc;
                let req = MemRequest::new(
                    addr,
                    ReqKind::RowOp {
                        op: RowOpKind::Codic,
                        busy_cycles: t_rc,
                    },
                );
                if m.push(req).is_err() {
                    break;
                }
                next_row += 1;
            }
            if m.is_idle() && next_row >= rows {
                break;
            }
            m.tick();
            for c in m.take_completions() {
                finish = finish.max(c.finish_cycle);
            }
        }
        let t = m.timing();
        let per_op = finish as f64 / rows as f64;
        let faw_bound = f64::from(t.t_faw) / 4.0;
        assert!(
            (per_op - faw_bound).abs() < 2.0,
            "per-op {per_op} cycles vs tFAW/4 = {faw_bound}"
        );
        assert_eq!(m.stats().row_ops, rows);
    }

    #[test]
    fn refresh_blocks_and_counts() {
        let mut m =
            MemoryController::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11());
        let refi = u64::from(m.timing().t_refi);
        for _ in 0..refi + 300 {
            m.tick();
        }
        assert!(m.stats().refreshes >= 1);
    }

    #[test]
    fn queue_full_is_reported() {
        let mut m = mc();
        for i in 0..QUEUE_DEPTH as u64 {
            m.push(MemRequest::new(i * LINE_BYTES, ReqKind::Read))
                .unwrap();
        }
        let err = m
            .push(MemRequest::new(0, ReqKind::Read))
            .expect_err("queue must be full");
        assert_eq!(err.request.addr, 0);
        assert_eq!(m.stats().queue_rejections, 1);
    }

    /// Mixed workload driven tick-by-tick and by event jumps must agree
    /// on every completion, statistic, and the final clock.
    #[test]
    fn event_jumps_are_bit_identical_to_ticking() {
        let build = |refresh: bool| {
            let mut m =
                MemoryController::new(DramGeometry::module_mib(64), TimingParams::ddr3_1600_11());
            m.set_refresh_enabled(refresh);
            for i in 0..10u64 {
                m.push(MemRequest::new(i * LINE_BYTES, ReqKind::Read))
                    .unwrap();
                m.push(MemRequest::new(
                    DramGeometry::ROW_BYTES * 8 + i * LINE_BYTES,
                    ReqKind::Write,
                ))
                .unwrap();
            }
            m.push(MemRequest::new(
                DramGeometry::ROW_BYTES,
                ReqKind::RowOp {
                    op: RowOpKind::Codic,
                    busy_cycles: TimingParams::ddr3_1600_11().t_rc,
                },
            ))
            .unwrap();
            m
        };
        for refresh in [false, true] {
            // The reference driver never consults the horizon, so a
            // too-late next_event_cycle() cannot cancel out of this
            // comparison.
            let mut ticked = build(refresh);
            let mut jumped = build(refresh);
            while !ticked.is_idle() {
                ticked.tick_reference();
            }
            jumped.run_to_idle();
            assert_eq!(ticked.take_completions(), jumped.take_completions());
            assert_eq!(ticked.stats(), jumped.stats(), "refresh={refresh}");
            assert_eq!(ticked.now(), jumped.now(), "refresh={refresh}");
        }
    }

    #[test]
    fn next_event_cycle_never_skips_an_actionable_cycle() {
        // Drive with the reference driver (which acts regardless of the
        // horizon): whenever the horizon claims the current cycle is
        // quiet, the reference step over that cycle must change nothing.
        // A too-late horizon fails here — the reference would issue or
        // retire inside the claimed-quiet gap.
        let mut m = mc();
        for i in 0..6u64 {
            m.push(MemRequest::new(
                i * DramGeometry::ROW_BYTES * 8,
                ReqKind::Read,
            ))
            .unwrap();
        }
        let mut quiet_claims = 0;
        while !m.is_idle() {
            let horizon = m.next_event_cycle();
            let before = (*m.stats(), m.take_completions().len());
            m.tick_reference();
            if m.now() <= horizon {
                // The stepped cycle was claimed quiet: no command may
                // have issued and nothing may have retired.
                quiet_claims += 1;
                let after = (*m.stats(), m.take_completions().len());
                assert_eq!(before.0, after.0);
                assert_eq!(after.1, 0);
            }
        }
        assert!(quiet_claims > 0, "the workload must exercise quiet gaps");
    }

    #[test]
    fn advance_to_lands_exactly_on_target() {
        let mut m = mc();
        m.push(MemRequest::new(0, ReqKind::Read)).unwrap();
        m.advance_to(5);
        assert_eq!(m.now(), 5);
        m.advance_to(100_000);
        assert_eq!(m.now(), 100_000);
        assert!(m.is_idle());
    }

    #[test]
    fn completions_report_monotone_ids_for_fifo_reads_to_one_bank() {
        let mut m = mc();
        for i in 0..4u64 {
            m.push(MemRequest::new(i * LINE_BYTES, ReqKind::Read))
                .unwrap();
        }
        let mut ids = Vec::new();
        while !m.is_idle() {
            m.tick();
            ids.extend(m.take_completions().into_iter().map(|c| c.id));
        }
        let sorted = {
            let mut s = ids.clone();
            s.sort();
            s
        };
        assert_eq!(ids, sorted, "same-row reads complete in order");
    }

    #[test]
    fn slab_recycles_slots_across_batches() {
        // Queue capacity bounds the live slots, so the slab must stop
        // growing after the first full batch no matter how many requests
        // stream through.
        let mut m = mc();
        for batch in 0..4u64 {
            let mut pushed = 0u64;
            while pushed < 256 {
                let addr = (batch * 256 + pushed) * DramGeometry::ROW_BYTES;
                if m.push(MemRequest::new(addr, ReqKind::Read)).is_ok() {
                    pushed += 1;
                } else {
                    m.step_event();
                }
            }
            m.run_to_idle();
            assert!(
                m.slab.len() <= Queue::COUNT * QUEUE_DEPTH,
                "slab grew to {} slots",
                m.slab.len()
            );
        }
        assert_eq!(m.stats().reads, 4 * 256);
        assert_eq!(m.free_slots.len(), m.slab.len(), "all slots recycled");
    }

    #[test]
    fn eligible_single_activation_rowop_overtakes_blocked_double() {
        // Saturate the rank's tFAW window so that a two-activation row op
        // is gated while a one-activation op is not: the younger Codic op
        // must issue first even though the RowClone op is ahead of it in
        // arrival order (first-READY, then FCFS).
        let mut m = mc();
        let t_rc = m.timing().t_rc;
        // Three single-activation ops on banks 0-2 fill 3 of the 4 tFAW
        // slots back to back.
        for bank in 0..3u64 {
            m.push(MemRequest::new(
                bank * DramGeometry::ROW_BYTES,
                ReqKind::RowOp {
                    op: RowOpKind::Codic,
                    busy_cycles: t_rc,
                },
            ))
            .unwrap();
        }
        // An older double-activation op on bank 3, then a younger single
        // on bank 4.
        let double = m
            .push(MemRequest::new(
                3 * DramGeometry::ROW_BYTES,
                ReqKind::RowOp {
                    op: RowOpKind::RowClone,
                    busy_cycles: t_rc,
                },
            ))
            .unwrap();
        let single = m
            .push(MemRequest::new(
                4 * DramGeometry::ROW_BYTES,
                ReqKind::RowOp {
                    op: RowOpKind::Codic,
                    busy_cycles: t_rc,
                },
            ))
            .unwrap();
        m.run_to_idle();
        let completions = m.take_completions();
        let finish_of = |id: ReqId| {
            completions
                .iter()
                .find(|c| c.id == id)
                .expect("completed")
                .finish_cycle
        };
        assert!(
            finish_of(single) < finish_of(double),
            "single-activation op (finish {}) must overtake the \
             tFAW-blocked double (finish {})",
            finish_of(single),
            finish_of(double)
        );
        assert_eq!(m.stats().row_ops, 5);
        assert_eq!(m.stats().row_op_activations, 6);
    }

    #[test]
    fn triple_activation_rowops_respect_the_rank_windows() {
        // A back-to-back stream of triple-row activations: each op takes
        // 3 of the 4 tFAW slots, so the scheduler must gate every op on
        // the full 3-activation rank window (a 2-activation gate would
        // trip the rank assertion). Mixing banks exercises the per-weight
        // ready cache under rank pressure.
        let mut m = mc();
        let t_rc = m.timing().t_rc;
        let t_faw = u64::from(m.timing().t_faw);
        let n = 8u64;
        for i in 0..n {
            m.push(MemRequest::new(
                (i % 4) * DramGeometry::ROW_BYTES,
                ReqKind::RowOp {
                    op: RowOpKind::TripleAct,
                    busy_cycles: t_rc,
                },
            ))
            .unwrap();
        }
        let finish = m.run_to_idle();
        assert_eq!(m.stats().row_ops, n);
        assert_eq!(m.stats().row_op_activations, 3 * n);
        // 3 activations per op leave one tFAW slot spare: consecutive ops
        // cannot land in the same window, so the stream needs at least
        // one full window per op beyond the first.
        assert!(
            finish >= (n - 1) * t_faw,
            "{n} triple-activation ops finished at {finish}, before the \
             tFAW bound {}",
            (n - 1) * t_faw
        );
    }

    #[test]
    fn drain_completions_is_allocation_free_at_steady_state() {
        let mut m = mc();
        m.push(MemRequest::new(0, ReqKind::Read)).unwrap();
        m.run_to_idle();
        let mut seen = Vec::new();
        m.drain_completions(|c| seen.push(c));
        assert_eq!(seen.len(), 1);
        let warm_capacity = m.completed.capacity();
        assert!(warm_capacity >= 1, "buffer capacity is retained");
        // A second batch reuses the drained buffer: capacity unchanged.
        m.push(MemRequest::new(LINE_BYTES, ReqKind::Read)).unwrap();
        m.run_to_idle();
        m.drain_completions(|c| seen.push(c));
        assert_eq!(seen.len(), 2);
        assert_eq!(m.completed.capacity(), warm_capacity);
        assert!(m.take_completions().is_empty());
    }

    #[test]
    fn match_caches_follow_the_open_row() {
        // Interleave hits and conflicts on one bank: the scheduler must
        // keep serving open-row hits that arrived *after* a conflicting
        // request was already queued, exactly like a full queue scan.
        let mut m = mc();
        let other_row = DramGeometry::ROW_BYTES * 8; // same bank, row 1
        m.push(MemRequest::new(0, ReqKind::Read)).unwrap(); // opens row 0
        m.push(MemRequest::new(other_row, ReqKind::Read)).unwrap(); // conflict
        m.push(MemRequest::new(LINE_BYTES, ReqKind::Read)).unwrap(); // row-0 hit
        m.run_to_idle();
        let completions = m.take_completions();
        assert_eq!(completions.len(), 3);
        // The row-0 hit (id 2) must complete before the row-1 conflict
        // (id 1): first-ready beats FCFS while row 0 is open.
        let finish_of = |raw: u64| {
            completions
                .iter()
                .find(|c| c.id == ReqId(raw))
                .expect("completed")
                .finish_cycle
        };
        assert!(finish_of(2) < finish_of(1));
        // Every issued column access counts as a hit; the conflict is
        // charged as a miss at its precharge.
        assert_eq!(m.stats().row_hits, 3);
        assert_eq!(m.stats().row_misses, 1);
    }
}
