//! Trace-driven in-order core with a private L1/L2 hierarchy.
//!
//! Matches the paper's evaluation CPU (Tables 5 and 7): in-order, one
//! instruction per cycle, blocking on cache misses. The core runs at the
//! memory bus clock (one core cycle per memory cycle), which is sufficient
//! for the relative comparisons the paper makes.

use crate::cache::{AccessResult, Cache, CacheConfig};
use crate::request::{MemRequest, ReqId, ReqKind};
use crate::trace::TraceOp;

/// L2 hit latency in cycles (L1 hits are single-cycle and folded into the
/// 1-IPC issue rate).
const L2_HIT_CYCLES: u32 = 4;

/// What the core wants from the memory system this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreRequest {
    /// Nothing to issue.
    None,
    /// Issue this request and stall the core until it completes.
    Blocking(MemRequest),
    /// Issue this request without stalling (posted write-back).
    Posted(MemRequest),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Running,
    /// Stalled for a fixed number of cycles (L2 hit).
    FixedStall(u32),
    /// Waiting for a memory request to complete.
    WaitingMem,
    /// A blocking request is ready to be issued (queue was full last try).
    PendingIssue,
    Finished,
}

/// A single in-order core executing a [`TraceOp`] stream.
#[derive(Debug)]
pub struct Core {
    l1: Cache,
    l2: Cache,
    trace: Vec<TraceOp>,
    pc: usize,
    bubbles_left: u32,
    state: State,
    pending_req: Option<MemRequest>,
    waiting_on: Option<ReqId>,
    /// Posted write-backs that could not be accepted yet.
    posted_backlog: Vec<MemRequest>,
    retired: u64,
    cycles: u64,
}

impl Core {
    /// Creates a core with the paper's cache configuration and a trace to
    /// run.
    #[must_use]
    pub fn new(trace: Vec<TraceOp>) -> Self {
        Core::with_caches(trace, CacheConfig::l1(), CacheConfig::l2())
    }

    /// Creates a core with explicit cache configurations.
    #[must_use]
    pub fn with_caches(trace: Vec<TraceOp>, l1: CacheConfig, l2: CacheConfig) -> Self {
        Core {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
            trace,
            pc: 0,
            bubbles_left: 0,
            state: State::Running,
            pending_req: None,
            waiting_on: None,
            posted_backlog: Vec::new(),
            retired: 0,
            cycles: 0,
        }
    }

    /// Whether the core has retired its whole trace.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.state == State::Finished && self.posted_backlog.is_empty()
    }

    /// Instructions retired so far (bubbles count individually).
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Cycles this core has executed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of upcoming cycles for which [`Core::tick`] is guaranteed to
    /// be a pure countdown — no memory request issued, no trace op
    /// executed — so a system-level driver may skip them in one jump with
    /// [`Core::skip`]. `u64::MAX` means the core is blocked until a
    /// completion arrives (or is finished) and has no self-generated
    /// events at all.
    #[must_use]
    pub fn quiet_cycles(&self) -> u64 {
        if !self.posted_backlog.is_empty() {
            // One backlogged posted write drains per cycle.
            return 0;
        }
        match self.state {
            State::WaitingMem | State::Finished => u64::MAX,
            State::FixedStall(n) => u64::from(n),
            State::Running if self.bubbles_left > 0 => u64::from(self.bubbles_left),
            State::Running | State::PendingIssue => 0,
        }
    }

    /// Skips `cycles` quiet cycles in one jump, with state and counters
    /// exactly as if [`Core::tick`] had been called that many times.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` exceeds [`Core::quiet_cycles`] — skipping a
    /// non-quiet cycle would lose a memory request (and silently wrap
    /// the stall counters), so the contract fails fast in every build.
    pub fn skip(&mut self, cycles: u64) {
        assert!(cycles <= self.quiet_cycles(), "skip over a core event");
        self.cycles += cycles;
        match self.state {
            State::FixedStall(n) => {
                let left = n - u32::try_from(cycles).expect("bounded by quiet_cycles");
                self.state = if left == 0 {
                    State::Running
                } else {
                    State::FixedStall(left)
                };
            }
            State::Running if self.bubbles_left > 0 => {
                let skipped = u32::try_from(cycles).expect("bounded by quiet_cycles");
                self.bubbles_left -= skipped;
                self.retired += u64::from(skipped);
            }
            _ => {}
        }
    }

    /// Notifies the core that the memory request it was waiting on
    /// completed.
    pub fn on_complete(&mut self, id: ReqId) {
        if self.waiting_on == Some(id) {
            self.waiting_on = None;
            if self.state == State::WaitingMem {
                self.state = State::Running;
            }
        }
    }

    /// Records that a blocking request was accepted by the controller under
    /// the given id.
    pub fn on_issued(&mut self, id: ReqId) {
        debug_assert_eq!(self.state, State::PendingIssue);
        self.waiting_on = Some(id);
        self.pending_req = None;
        self.state = State::WaitingMem;
    }

    /// Records that the controller could not accept the blocking request;
    /// the core retries next cycle.
    pub fn on_rejected(&mut self) {
        debug_assert_eq!(self.state, State::PendingIssue);
    }

    /// Re-queues a posted write that the controller rejected.
    pub fn on_posted_rejected(&mut self, request: MemRequest) {
        self.posted_backlog.push(request);
    }

    /// Advances the core by one cycle and reports what it needs from the
    /// memory system.
    pub fn tick(&mut self) -> CoreRequest {
        self.cycles += 1;
        // Drain one backlogged posted write per cycle before making new
        // progress.
        if let Some(req) = self.posted_backlog.pop() {
            return CoreRequest::Posted(req);
        }
        match self.state {
            State::Finished | State::WaitingMem => CoreRequest::None,
            State::PendingIssue => {
                let req = self.pending_req.expect("pending request exists");
                CoreRequest::Blocking(req)
            }
            State::FixedStall(n) => {
                if n <= 1 {
                    self.state = State::Running;
                } else {
                    self.state = State::FixedStall(n - 1);
                }
                CoreRequest::None
            }
            State::Running => self.execute_next(),
        }
    }

    fn execute_next(&mut self) -> CoreRequest {
        if self.bubbles_left > 0 {
            self.bubbles_left -= 1;
            self.retired += 1;
            return CoreRequest::None;
        }
        let Some(&op) = self.trace.get(self.pc) else {
            self.state = State::Finished;
            return CoreRequest::None;
        };
        self.pc += 1;
        match op {
            TraceOp::Bubble(n) => {
                if n > 0 {
                    self.bubbles_left = n - 1;
                    self.retired += 1;
                }
                CoreRequest::None
            }
            TraceOp::Read(addr) => {
                self.retired += 1;
                self.access(addr, false)
            }
            TraceOp::Write(addr) => {
                self.retired += 1;
                self.access(addr, true)
            }
            TraceOp::RowOp {
                addr,
                op,
                busy_cycles,
            } => {
                self.retired += 1;
                CoreRequest::Posted(MemRequest::new(addr, ReqKind::RowOp { op, busy_cycles }))
            }
            TraceOp::Flush(addr) => {
                self.retired += 1;
                let dirty_l1 = self.l1.flush_line(addr);
                let dirty_l2 = self.l2.flush_line(addr);
                match dirty_l1.or(dirty_l2) {
                    Some(line) => {
                        // CLFLUSH is serializing: wait for the write to
                        // reach DRAM.
                        let req = MemRequest::new(line, ReqKind::Write);
                        self.pending_req = Some(req);
                        self.state = State::PendingIssue;
                        CoreRequest::Blocking(req)
                    }
                    None => CoreRequest::None,
                }
            }
        }
    }

    fn access(&mut self, addr: u64, is_write: bool) -> CoreRequest {
        if self.l1.access(addr, is_write) == AccessResult::Hit {
            return CoreRequest::None;
        }
        // L1 miss: consult L2. The L1 victim write-back is absorbed by L2
        // (inclusive-ish simplification): dirty L1 victims are installed
        // into L2 as dirty lines.
        match self.l2.access(addr, false) {
            AccessResult::Hit => {
                self.state = State::FixedStall(L2_HIT_CYCLES);
                CoreRequest::None
            }
            AccessResult::Miss { writeback } => {
                let fill = MemRequest::new(addr, ReqKind::Read);
                self.pending_req = Some(fill);
                self.state = State::PendingIssue;
                if let Some(line) = writeback {
                    self.posted_backlog
                        .push(MemRequest::new(line, ReqKind::Write));
                }
                CoreRequest::Blocking(fill)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bubbles_retire_one_per_cycle() {
        let mut c = Core::new(vec![TraceOp::Bubble(3)]);
        for _ in 0..3 {
            assert!(!c.is_finished());
            assert_eq!(c.tick(), CoreRequest::None);
        }
        let _ = c.tick();
        assert!(c.is_finished());
        assert_eq!(c.retired(), 3);
    }

    #[test]
    fn first_read_misses_to_memory_and_blocks() {
        let mut c = Core::new(vec![TraceOp::Read(0), TraceOp::Bubble(1)]);
        let r = c.tick();
        let CoreRequest::Blocking(req) = r else {
            panic!("expected blocking fill, got {r:?}");
        };
        assert_eq!(req.kind, ReqKind::Read);
        c.on_issued(ReqId(9));
        assert_eq!(c.tick(), CoreRequest::None, "stalled while waiting");
        c.on_complete(ReqId(9));
        assert_eq!(c.tick(), CoreRequest::None); // bubble retires
        let _ = c.tick();
        assert!(c.is_finished());
    }

    #[test]
    fn second_access_to_same_line_hits() {
        let mut c = Core::new(vec![TraceOp::Read(0), TraceOp::Read(8)]);
        let CoreRequest::Blocking(_) = c.tick() else {
            panic!("miss expected");
        };
        c.on_issued(ReqId(1));
        c.on_complete(ReqId(1));
        assert_eq!(c.tick(), CoreRequest::None, "same-line read hits in L1");
        let _ = c.tick();
        assert!(c.is_finished());
    }

    #[test]
    fn flush_of_dirty_line_blocks_until_written() {
        let mut c = Core::new(vec![TraceOp::Write(0), TraceOp::Flush(0)]);
        // The write first misses and fetches the line.
        let CoreRequest::Blocking(fill) = c.tick() else {
            panic!("write-allocate fill expected");
        };
        assert_eq!(fill.kind, ReqKind::Read);
        c.on_issued(ReqId(1));
        c.on_complete(ReqId(1));
        // Now the flush must produce a blocking write of the dirty line.
        let CoreRequest::Blocking(wb) = c.tick() else {
            panic!("flush write expected");
        };
        assert_eq!(wb.kind, ReqKind::Write);
        assert_eq!(wb.addr, 0);
        c.on_issued(ReqId(2));
        assert_eq!(c.tick(), CoreRequest::None);
        c.on_complete(ReqId(2));
        let _ = c.tick();
        assert!(c.is_finished());
    }

    #[test]
    fn flush_of_clean_or_absent_line_is_free() {
        let mut c = Core::new(vec![TraceOp::Flush(128)]);
        assert_eq!(c.tick(), CoreRequest::None);
        let _ = c.tick();
        assert!(c.is_finished());
    }

    #[test]
    fn skip_matches_ticking_through_quiet_cycles() {
        let mk = || Core::new(vec![TraceOp::Bubble(5), TraceOp::Read(0)]);
        let mut ticked = mk();
        let mut skipped = mk();
        assert_eq!(ticked.tick(), CoreRequest::None);
        assert_eq!(skipped.tick(), CoreRequest::None);
        let quiet = skipped.quiet_cycles();
        assert_eq!(quiet, 4, "four bubbles left to retire");
        for _ in 0..quiet {
            assert_eq!(ticked.tick(), CoreRequest::None);
        }
        skipped.skip(quiet);
        assert_eq!(ticked.retired(), skipped.retired());
        assert_eq!(ticked.cycles(), skipped.cycles());
        let (a, b) = (ticked.tick(), skipped.tick());
        assert_eq!(a, b);
        assert!(matches!(a, CoreRequest::Blocking(_)));
    }

    #[test]
    fn blocked_cores_are_quiet_until_woken() {
        let mut c = Core::new(vec![TraceOp::Read(0)]);
        let CoreRequest::Blocking(_) = c.tick() else {
            panic!("miss expected");
        };
        assert_eq!(c.quiet_cycles(), 0, "pending issue retries every cycle");
        c.on_issued(ReqId(1));
        assert_eq!(c.quiet_cycles(), u64::MAX);
        c.skip(1000);
        c.on_complete(ReqId(1));
        assert_eq!(c.quiet_cycles(), 0);
    }

    #[test]
    fn rejected_blocking_request_is_retried() {
        let mut c = Core::new(vec![TraceOp::Read(0)]);
        let CoreRequest::Blocking(req) = c.tick() else {
            panic!("miss expected");
        };
        c.on_rejected();
        let r2 = c.tick();
        assert_eq!(r2, CoreRequest::Blocking(req), "same request retried");
    }
}
