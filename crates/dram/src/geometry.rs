//! DRAM organization: channels, ranks, banks, rows, columns.

/// Cache-line / DRAM burst granularity in bytes (64-bit bus × burst of 8).
pub const LINE_BYTES: u64 = 64;

/// Physical organization of one DRAM channel.
///
/// The defaults follow the paper's evaluation configuration (Table 5):
/// a single channel of DDR3 x8 devices, eight banks per rank, 8 KB rows
/// at rank level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Ranks on the channel.
    pub ranks: u32,
    /// Banks per rank (8 for DDR3).
    pub banks_per_rank: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Column (cache-line) slots per row: `row_bytes / 64`.
    pub lines_per_row: u32,
    /// DRAM devices (chips) ganged per rank (8 × x8 = 64-bit bus).
    pub devices_per_rank: u32,
}

impl Default for DramGeometry {
    /// A 1 GB single-rank module (Table 5 uses DDR3-1600 x8).
    fn default() -> Self {
        DramGeometry::module_mib(1024)
    }
}

impl DramGeometry {
    /// Row size at rank level in bytes (8 KB: 1 KB per x8 device × 8
    /// devices).
    pub const ROW_BYTES: u64 = 8192;

    /// Builds the geometry of a single-rank module of `capacity_mib`
    /// mebibytes, as used in the paper's Figure 7 sweep (64 MB – 64 GB).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not divisible into 8 banks of 8 KB rows.
    #[must_use]
    pub fn module_mib(capacity_mib: u64) -> Self {
        let bytes = capacity_mib * 1024 * 1024;
        let banks = 8u64;
        let row_bytes = Self::ROW_BYTES;
        assert!(
            bytes.is_multiple_of(banks * row_bytes),
            "capacity {capacity_mib} MiB is not divisible into {banks} banks of {row_bytes} B rows"
        );
        let rows_per_bank = bytes / (banks * row_bytes);
        assert!(
            rows_per_bank >= 1,
            "capacity {capacity_mib} MiB is not divisible into at least one row per bank"
        );
        assert!(rows_per_bank <= u64::from(u32::MAX), "module too large");
        DramGeometry {
            ranks: 1,
            banks_per_rank: banks as u32,
            rows_per_bank: rows_per_bank as u32,
            lines_per_row: (row_bytes / LINE_BYTES) as u32,
            devices_per_rank: 8,
        }
    }

    /// Total module capacity in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.ranks)
            * u64::from(self.banks_per_rank)
            * u64::from(self.rows_per_bank)
            * Self::ROW_BYTES
    }

    /// Total number of rows across all ranks and banks.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        u64::from(self.ranks) * u64::from(self.banks_per_rank) * u64::from(self.rows_per_bank)
    }

    /// Total banks across all ranks.
    #[must_use]
    pub fn total_banks(&self) -> u32 {
        self.ranks * self.banks_per_rank
    }

    /// Total 64 B lines in the module.
    #[must_use]
    pub fn total_lines(&self) -> u64 {
        self.total_bytes() / LINE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_presets_have_expected_capacity() {
        for (mib, rows_per_bank) in [
            (64, 1024),
            (256, 4096),
            (1024, 16384),
            (4096, 65536),
            (8192, 131072),
            (16384, 262144),
            (65536, 1_048_576),
        ] {
            let g = DramGeometry::module_mib(mib);
            assert_eq!(g.total_bytes(), mib * 1024 * 1024, "capacity {mib} MiB");
            assert_eq!(g.rows_per_bank, rows_per_bank, "capacity {mib} MiB");
        }
    }

    #[test]
    fn row_and_line_accounting_are_consistent() {
        let g = DramGeometry::module_mib(64);
        assert_eq!(g.total_rows() * DramGeometry::ROW_BYTES, g.total_bytes());
        assert_eq!(g.total_lines() * LINE_BYTES, g.total_bytes());
        assert_eq!(
            u64::from(g.lines_per_row) * LINE_BYTES,
            DramGeometry::ROW_BYTES
        );
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn odd_capacity_is_rejected() {
        // 3 KB is far below one bank of rows.
        let _ = DramGeometry {
            ..DramGeometry::module_mib(0)
        };
    }

    #[test]
    fn default_is_one_gib() {
        assert_eq!(DramGeometry::default().total_bytes(), 1024 * 1024 * 1024);
    }
}
