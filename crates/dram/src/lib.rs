//! Cycle-level DDR3 DRAM simulator, substituting for the customized
//! Ramulator the CODIC paper uses (§6.2, Appendix A).
//!
//! The crate models:
//!
//! - DRAM organization: channel → rank → bank → row/column
//!   ([`geometry::DramGeometry`]), with module presets from 64 MB to 64 GB;
//! - JEDEC DDR3 timing (tRCD, tRP, tRAS, tRC, tRRD, tFAW, tWR, tWTR, tRTP,
//!   tCCD, tRFC, tREFI, …) via [`timing::TimingParams`], enforced by
//!   per-bank state machines ([`bank::Bank`]) and per-rank activation
//!   windows ([`rank::Rank`]);
//! - an FR-FCFS memory controller with separate read/write queues, write
//!   draining, open-page policy, and refresh
//!   ([`controller::MemoryController`]);
//! - write-back caches with CLFLUSH support ([`cache::Cache`]);
//! - trace-driven in-order cores ([`cpu::Core`]) combined into a full
//!   [`system::System`] matching the paper's Tables 5 and 7.
//!
//! "Row operations" — bank-occupying commands such as CODIC, RowClone and
//! LISA-clone — are first-class requests ([`request::ReqKind::RowOp`]), so
//! the cold-boot and secure-deallocation studies reuse the same scheduler
//! the ordinary reads and writes go through.
//!
//! # Example
//!
//! ```
//! use codic_dram::geometry::DramGeometry;
//! use codic_dram::timing::TimingParams;
//! use codic_dram::controller::MemoryController;
//! use codic_dram::request::{MemRequest, ReqKind};
//!
//! let geometry = DramGeometry::module_mib(64);
//! let timing = TimingParams::ddr3_1600_11();
//! let mut mc = MemoryController::new(geometry, timing);
//! mc.push(MemRequest::new(0, ReqKind::Read)).unwrap();
//! let mut cycles = 0u64;
//! while !mc.is_idle() {
//!     mc.tick();
//!     cycles += 1;
//! }
//! // tRCD + tCL + burst, plus controller overhead.
//! assert!(cycles > 20 && cycles < 60, "read took {cycles} cycles");
//! ```

pub mod address;
pub mod bank;
pub mod cache;
pub mod command;
pub mod controller;
pub mod cpu;
pub mod geometry;
pub mod rank;
pub mod request;
pub mod stats;
pub mod system;
pub mod timing;
pub mod trace;

pub use address::DramAddress;
pub use command::CommandKind;
pub use controller::MemoryController;
pub use geometry::DramGeometry;
pub use request::{MemRequest, ReqKind, RowOpKind};
pub use stats::MemStats;
pub use system::System;
pub use timing::TimingParams;
