//! Per-rank activation-window tracking (tRRD and tFAW).

use std::collections::VecDeque;

use crate::timing::TimingParams;

/// Tracks the rank-level constraints that span banks: the minimum spacing
/// between activates (`tRRD`) and the sliding four-activate window
/// (`tFAW`). Row operations count their declared number of activations.
#[derive(Debug, Clone, Default)]
pub struct Rank {
    /// Issue cycles of recent (possibly weighted) activations, newest last.
    recent_acts: VecDeque<u64>,
    last_act: Option<u64>,
}

impl Rank {
    /// A rank with no activation history.
    #[must_use]
    pub fn new() -> Self {
        Rank::default()
    }

    /// Whether `count` new activations may issue at `now` without violating
    /// tRRD or tFAW.
    #[must_use]
    pub fn can_activate(&self, now: u64, count: u8, t: &TimingParams) -> bool {
        if let Some(last) = self.last_act {
            if now < last + u64::from(t.t_rrd) {
                return false;
            }
        }
        // tFAW allows at most 4 activations in any window. With `count` new
        // activations at `now`, the one that would become the 5th-most
        // recent is the (5 - count)-th most recent previous activation; it
        // must be at least tFAW old.
        let needed_from_history = 5usize.saturating_sub(usize::from(count.min(4)));
        if self.recent_acts.len() < needed_from_history {
            return true;
        }
        let idx = self.recent_acts.len() - needed_from_history;
        let gate = self.recent_acts[idx];
        now >= gate + u64::from(t.t_faw)
    }

    /// Records `count` activations issued at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the constraint check fails; call
    /// [`Rank::can_activate`] first.
    pub fn record_activate(&mut self, now: u64, count: u8, t: &TimingParams) {
        assert!(
            self.can_activate(now, count, t),
            "activate violates rank timing (tRRD/tFAW)"
        );
        for _ in 0..count {
            self.recent_acts.push_back(now);
        }
        while self.recent_acts.len() > 4 {
            self.recent_acts.pop_front();
        }
        self.last_act = Some(now);
    }

    /// The earliest cycle at which `count` activations could issue, at or
    /// after `now`.
    #[must_use]
    pub fn earliest_activate(&self, now: u64, count: u8, t: &TimingParams) -> u64 {
        let mut earliest = now;
        if let Some(last) = self.last_act {
            earliest = earliest.max(last + u64::from(t.t_rrd));
        }
        let needed_from_history = 5usize.saturating_sub(usize::from(count.min(4)));
        if self.recent_acts.len() >= needed_from_history {
            let idx = self.recent_acts.len() - needed_from_history;
            earliest = earliest.max(self.recent_acts[idx] + u64::from(t.t_faw));
        }
        earliest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600_11()
    }

    #[test]
    fn trrd_spaces_consecutive_activates() {
        let t = t();
        let mut r = Rank::new();
        r.record_activate(0, 1, &t);
        assert!(!r.can_activate(u64::from(t.t_rrd) - 1, 1, &t));
        assert!(r.can_activate(u64::from(t.t_rrd), 1, &t));
    }

    #[test]
    fn tfaw_limits_fifth_activate() {
        let t = t();
        let mut r = Rank::new();
        let rrd = u64::from(t.t_rrd);
        for i in 0..4 {
            let at = i * rrd;
            assert!(r.can_activate(at, 1, &t), "act {i}");
            r.record_activate(at, 1, &t);
        }
        // Fifth activate must wait until tFAW after the first.
        let faw_gate = u64::from(t.t_faw);
        assert!(!r.can_activate(4 * rrd, 1, &t));
        assert!(r.can_activate(faw_gate, 1, &t));
        assert_eq!(r.earliest_activate(4 * rrd, 1, &t), faw_gate);
    }

    #[test]
    fn double_activation_row_ops_consume_window_faster() {
        let t = t();
        let mut r = Rank::new();
        // Two RowClone-style ops (2 activations each) fill the window.
        r.record_activate(0, 2, &t);
        let next = r.earliest_activate(0, 2, &t);
        r.record_activate(next, 2, &t);
        // A third double-op must wait on tFAW relative to the first pair.
        let gate = r.earliest_activate(next, 2, &t);
        assert!(gate >= u64::from(t.t_faw));
    }

    #[test]
    fn steady_state_activate_rate_is_tfaw_limited() {
        // Issuing single activates as fast as allowed must converge to
        // 4 activates per tFAW window, the bound that shapes the paper's
        // Figure 7 destruction times.
        let t = t();
        let mut r = Rank::new();
        let mut now = 0u64;
        let n = 64;
        for _ in 0..n {
            now = r.earliest_activate(now, 1, &t);
            r.record_activate(now, 1, &t);
        }
        let per_act = now as f64 / (n - 1) as f64;
        let bound = f64::from(t.t_faw) / 4.0;
        assert!((per_act - bound).abs() < 1.0, "rate {per_act} vs {bound}");
    }

    #[test]
    fn fresh_rank_allows_immediate_activates() {
        let t = t();
        let r = Rank::new();
        assert!(r.can_activate(0, 1, &t));
        assert!(r.can_activate(0, 4, &t));
        assert_eq!(r.earliest_activate(5, 1, &t), 5);
    }
}
