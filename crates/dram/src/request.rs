//! Memory requests as seen by the controller.

/// Identifier assigned to each accepted request; completion notifications
/// carry it back to the issuer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u64);

/// The in-DRAM row operations the CODIC studies schedule through the
/// controller (paper §5.2, §6.2, Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOpKind {
    /// A CODIC command: one activation-class operation per row.
    Codic,
    /// RowClone FPM copy: two back-to-back activations (Seshadri et al.).
    RowClone,
    /// LISA row-buffer-movement clone: two activations plus an extra
    /// row-buffer movement step (Chang et al.).
    LisaClone,
    /// Triple-row activation: three wordlines raised simultaneously so the
    /// bitlines charge-share to the majority value (Ambit/SIMDRAM-style
    /// bulk-bitwise MAJ/AND/OR).
    TripleAct,
    /// Dual-contact negation: the source row is sensed and the inverted
    /// sense-amplifier side drives the destination row (Ambit-style NOT),
    /// two back-to-back activations.
    DualContact,
}

impl RowOpKind {
    /// Number of row activations the operation contributes to the rank's
    /// tRRD/tFAW windows.
    #[must_use]
    pub fn activations(self) -> u8 {
        match self {
            RowOpKind::Codic => 1,
            RowOpKind::RowClone | RowOpKind::LisaClone | RowOpKind::DualContact => 2,
            RowOpKind::TripleAct => 3,
        }
    }
}

/// What a request asks the DRAM to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqKind {
    /// Read one 64 B line.
    Read,
    /// Write one 64 B line.
    Write,
    /// Execute a bank-occupying row operation on the row containing the
    /// address. `busy_cycles` is supplied by the mechanism model.
    RowOp {
        /// Which operation (for accounting).
        op: RowOpKind,
        /// Bank-occupancy duration in memory cycles.
        busy_cycles: u32,
    },
}

/// A request entering the memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRequest {
    /// Physical byte address (line-aligned addresses address the line;
    /// others are truncated).
    pub addr: u64,
    /// Operation.
    pub kind: ReqKind,
}

impl MemRequest {
    /// Creates a request.
    #[must_use]
    pub fn new(addr: u64, kind: ReqKind) -> Self {
        MemRequest { addr, kind }
    }
}

/// Error returned by the controller when the target queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull {
    /// The rejected request, handed back to the caller.
    pub request: MemRequest,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory controller queue full for {:?}",
            self.request.kind
        )
    }
}

impl std::error::Error for QueueFull {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_counts_match_mechanisms() {
        assert_eq!(RowOpKind::Codic.activations(), 1);
        assert_eq!(RowOpKind::RowClone.activations(), 2);
        assert_eq!(RowOpKind::LisaClone.activations(), 2);
        assert_eq!(RowOpKind::TripleAct.activations(), 3);
        assert_eq!(RowOpKind::DualContact.activations(), 2);
    }

    #[test]
    fn queue_full_preserves_request() {
        let r = MemRequest::new(128, ReqKind::Read);
        let e = QueueFull { request: r };
        assert_eq!(e.request, r);
        assert!(e.to_string().contains("queue full"));
    }
}
