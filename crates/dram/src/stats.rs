//! Command and event counters exposed by the memory controller, consumed by
//! the `codic-power` energy model.

/// Counters accumulated over a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Activate commands issued.
    pub activates: u64,
    /// Precharge commands issued.
    pub precharges: u64,
    /// Read bursts issued.
    pub reads: u64,
    /// Write bursts issued.
    pub writes: u64,
    /// All-bank refresh commands issued (per rank).
    pub refreshes: u64,
    /// Row operations issued (CODIC / RowClone / LISA-clone).
    pub row_ops: u64,
    /// Total activations contributed by row operations.
    pub row_op_activations: u64,
    /// Column accesses that hit the open row.
    pub row_hits: u64,
    /// Column accesses that required opening a row.
    pub row_misses: u64,
    /// Requests rejected because a queue was full.
    pub queue_rejections: u64,
}

impl MemStats {
    /// Total commands issued on the command bus (activates, precharges,
    /// column bursts, refreshes, and row operations) — the unit the
    /// O(1)-per-command scheduler's host cost scales with.
    #[must_use]
    pub fn total_commands(&self) -> u64 {
        self.activates + self.precharges + self.reads + self.writes + self.refreshes + self.row_ops
    }

    /// Row-buffer hit rate over all column accesses, or `None` when no
    /// column access was made.
    #[must_use]
    pub fn row_hit_rate(&self) -> Option<f64> {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            None
        } else {
            Some(self.row_hits as f64 / total as f64)
        }
    }

    /// The counter delta accumulated since `earlier` was snapshotted —
    /// scoping one workload's command counts on a long-running
    /// controller.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via underflow) if `earlier` is not an
    /// earlier snapshot of the same counter set.
    #[must_use]
    pub fn since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            activates: self.activates - earlier.activates,
            precharges: self.precharges - earlier.precharges,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            refreshes: self.refreshes - earlier.refreshes,
            row_ops: self.row_ops - earlier.row_ops,
            row_op_activations: self.row_op_activations - earlier.row_op_activations,
            row_hits: self.row_hits - earlier.row_hits,
            row_misses: self.row_misses - earlier.row_misses,
            queue_rejections: self.queue_rejections - earlier.queue_rejections,
        }
    }

    /// Adds another counter set into this one (multi-controller runs).
    pub fn merge(&mut self, other: &MemStats) {
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
        self.row_ops += other.row_ops;
        self.row_op_activations += other.row_op_activations;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.queue_rejections += other.queue_rejections;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_is_none_without_accesses() {
        assert_eq!(MemStats::default().row_hit_rate(), None);
    }

    #[test]
    fn hit_rate_computes_fraction() {
        let s = MemStats {
            row_hits: 3,
            row_misses: 1,
            ..MemStats::default()
        };
        assert_eq!(s.row_hit_rate(), Some(0.75));
    }

    #[test]
    fn total_commands_sums_bus_traffic() {
        let s = MemStats {
            activates: 2,
            precharges: 1,
            reads: 3,
            writes: 4,
            refreshes: 5,
            row_ops: 6,
            row_op_activations: 99, // not a bus command
            row_hits: 99,           // derived, not a bus command
            ..MemStats::default()
        };
        assert_eq!(s.total_commands(), 21);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = MemStats {
            activates: 1,
            reads: 2,
            ..MemStats::default()
        };
        let b = MemStats {
            activates: 10,
            writes: 5,
            ..MemStats::default()
        };
        a.merge(&b);
        assert_eq!(a.activates, 11);
        assert_eq!(a.reads, 2);
        assert_eq!(a.writes, 5);
    }
}
