//! Full-system composition: cores + caches + memory controller + DRAM.

use std::collections::HashMap;

use crate::controller::MemoryController;
use crate::cpu::{Core, CoreRequest};
use crate::geometry::DramGeometry;
use crate::request::ReqId;
use crate::stats::MemStats;
use crate::timing::TimingParams;
use crate::trace::TraceOp;

/// Result of a completed system simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemStats {
    /// Total memory cycles simulated.
    pub cycles: u64,
    /// Instructions retired per core.
    pub retired: Vec<u64>,
    /// Memory controller counters.
    pub mem: MemStats,
}

impl SystemStats {
    /// Nanoseconds simulated, given the timing used.
    #[must_use]
    pub fn elapsed_ns(&self, timing: &TimingParams) -> f64 {
        timing.ns(self.cycles)
    }
}

/// A system of one or more trace-driven cores sharing a memory controller,
/// matching the paper's Tables 5 and 7 configurations.
#[derive(Debug)]
pub struct System {
    cores: Vec<Core>,
    mc: MemoryController,
    owners: HashMap<ReqId, usize>,
}

impl System {
    /// Builds a system with one core per trace.
    #[must_use]
    pub fn new(geometry: DramGeometry, timing: TimingParams, traces: Vec<Vec<TraceOp>>) -> Self {
        System {
            cores: traces.into_iter().map(Core::new).collect(),
            mc: MemoryController::new(geometry, timing),
            owners: HashMap::new(),
        }
    }

    /// Access to the memory controller (e.g. to disable refresh).
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.mc
    }

    /// Whether every core finished and memory drained.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.cores.iter().all(Core::is_finished) && self.mc.is_idle()
    }

    /// Advances the whole system one memory cycle.
    pub fn tick(&mut self) {
        for i in 0..self.cores.len() {
            match self.cores[i].tick() {
                CoreRequest::None => {}
                CoreRequest::Blocking(req) => match self.mc.push(req) {
                    Ok(id) => {
                        self.cores[i].on_issued(id);
                        self.owners.insert(id, i);
                    }
                    Err(_) => self.cores[i].on_rejected(),
                },
                CoreRequest::Posted(req) => {
                    if self.mc.push(req).is_err() {
                        self.cores[i].on_posted_rejected(req);
                    }
                }
            }
        }
        self.mc.tick();
        for c in self.mc.take_completions() {
            if let Some(core) = self.owners.remove(&c.id) {
                self.cores[core].on_complete(c.id);
            }
        }
    }

    /// Runs to completion (or until `max_cycles`) and reports statistics.
    pub fn run(&mut self, max_cycles: u64) -> SystemStats {
        let mut cycles = 0;
        while !self.is_done() && cycles < max_cycles {
            self.tick();
            cycles += 1;
        }
        SystemStats {
            cycles,
            retired: self.cores.iter().map(Core::retired).collect(),
            mem: *self.mc.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::LINE_BYTES;
    use crate::trace::zero_fill_trace;

    fn small_system(traces: Vec<Vec<TraceOp>>) -> System {
        let mut s = System::new(
            DramGeometry::module_mib(64),
            TimingParams::ddr3_1600_11(),
            traces,
        );
        s.controller_mut().set_refresh_enabled(false);
        s
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let mut s = small_system(vec![vec![]]);
        let stats = s.run(1000);
        assert!(s.is_done());
        assert!(stats.cycles < 5);
    }

    #[test]
    fn zero_fill_writes_every_line_to_dram() {
        let lines = 32u64;
        let trace = zero_fill_trace(0, lines * LINE_BYTES);
        let mut s = small_system(vec![trace]);
        let stats = s.run(1_000_000);
        assert!(s.is_done());
        // Every line: one fill read (write-allocate) + one flush write.
        assert_eq!(stats.mem.writes, lines);
        assert_eq!(stats.mem.reads, lines);
    }

    #[test]
    fn two_cores_make_progress_together() {
        let t1 = vec![TraceOp::Read(0), TraceOp::Bubble(10)];
        let t2 = vec![TraceOp::Read(1024 * 1024), TraceOp::Bubble(10)];
        let mut s = small_system(vec![t1, t2]);
        let stats = s.run(100_000);
        assert!(s.is_done());
        assert_eq!(stats.retired, vec![11, 11]);
        assert_eq!(stats.mem.reads, 2);
    }

    #[test]
    fn memory_bound_trace_is_slower_than_compute_bound() {
        // Strided reads (one per line, distinct rows) vs pure bubbles.
        let mut strided = Vec::new();
        for i in 0..64u64 {
            strided.push(TraceOp::Read(i * DramGeometry::ROW_BYTES * 8));
        }
        let mut s1 = small_system(vec![strided]);
        let mem_stats = s1.run(10_000_000);
        let mut s2 = small_system(vec![vec![TraceOp::Bubble(64)]]);
        let cpu_stats = s2.run(10_000_000);
        assert!(mem_stats.cycles > cpu_stats.cycles * 5);
    }

    #[test]
    fn elapsed_ns_scales_with_clock() {
        let stats = SystemStats {
            cycles: 800,
            retired: vec![],
            mem: MemStats::default(),
        };
        assert!((stats.elapsed_ns(&TimingParams::ddr3_1600_11()) - 1000.0).abs() < 1e-9);
    }
}
