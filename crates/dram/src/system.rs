//! Full-system composition: cores + caches + memory controller + DRAM.

use std::collections::HashMap;

use crate::controller::MemoryController;
use crate::cpu::{Core, CoreRequest};
use crate::geometry::DramGeometry;
use crate::request::ReqId;
use crate::stats::MemStats;
use crate::timing::TimingParams;
use crate::trace::TraceOp;

/// Result of a completed system simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemStats {
    /// Total memory cycles simulated.
    pub cycles: u64,
    /// Instructions retired per core.
    pub retired: Vec<u64>,
    /// Memory controller counters.
    pub mem: MemStats,
}

impl SystemStats {
    /// Nanoseconds simulated, given the timing used.
    #[must_use]
    pub fn elapsed_ns(&self, timing: &TimingParams) -> f64 {
        timing.ns(self.cycles)
    }
}

/// A system of one or more trace-driven cores sharing a memory controller,
/// matching the paper's Tables 5 and 7 configurations.
#[derive(Debug)]
pub struct System {
    cores: Vec<Core>,
    mc: MemoryController,
    owners: HashMap<ReqId, usize>,
}

impl System {
    /// Builds a system with one core per trace.
    #[must_use]
    pub fn new(geometry: DramGeometry, timing: TimingParams, traces: Vec<Vec<TraceOp>>) -> Self {
        System {
            cores: traces.into_iter().map(Core::new).collect(),
            mc: MemoryController::new(geometry, timing),
            owners: HashMap::new(),
        }
    }

    /// Access to the memory controller (e.g. to disable refresh).
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.mc
    }

    /// Whether every core finished and memory drained.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.cores.iter().all(Core::is_finished) && self.mc.is_idle()
    }

    /// Advances the whole system one memory cycle.
    pub fn tick(&mut self) {
        self.tick_with(false);
    }

    /// One composite cycle, driving the controller either through the
    /// shared engine (`tick`) or through the horizon-free reference
    /// driver (`tick_reference`) — the latter is the equivalence oracle.
    fn tick_with(&mut self, reference: bool) {
        for i in 0..self.cores.len() {
            match self.cores[i].tick() {
                CoreRequest::None => {}
                CoreRequest::Blocking(req) => match self.mc.push(req) {
                    Ok(id) => {
                        self.cores[i].on_issued(id);
                        self.owners.insert(id, i);
                    }
                    Err(_) => self.cores[i].on_rejected(),
                },
                CoreRequest::Posted(req) => {
                    if self.mc.push(req).is_err() {
                        self.cores[i].on_posted_rejected(req);
                    }
                }
            }
        }
        if reference {
            self.mc.tick_reference();
        } else {
            self.mc.tick();
        }
        for c in self.mc.take_completions() {
            if let Some(core) = self.owners.remove(&c.id) {
                self.cores[core].on_complete(c.id);
            }
        }
    }

    /// Cycles from now for which provably neither a core nor the memory
    /// controller can act: every core is counting down a stall/bubble (or
    /// blocked on memory) and the controller's next event — including the
    /// completion that would wake a blocked core — is that far away.
    fn quiet_gap(&self) -> u64 {
        self.cores
            .iter()
            .map(Core::quiet_cycles)
            .min()
            .unwrap_or(u64::MAX)
            .min(self.mc.cycles_until_next_event())
    }

    /// Runs to completion (or until `max_cycles`) and reports statistics.
    ///
    /// Event-driven: after each simulated cycle the system jumps the
    /// clock over the quiet gap where no core and no controller event can
    /// occur, so wall-clock cost scales with events rather than with
    /// simulated cycles. Results (cycle counts, retired instructions,
    /// memory statistics) are bit-identical to ticking every cycle, and
    /// the run stops exactly at the first cycle `>= max_cycles` — jumps
    /// are clamped, so the reported [`SystemStats::cycles`] never
    /// overshoots `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> SystemStats {
        let mut cycles = 0;
        while !self.is_done() && cycles < max_cycles {
            self.tick();
            cycles += 1;
            if self.is_done() {
                break;
            }
            let gap = self.quiet_gap().min(max_cycles - cycles);
            if gap > 0 {
                self.mc.advance_to(self.mc.now() + gap);
                for core in &mut self.cores {
                    core.skip(gap);
                }
                cycles += gap;
            }
        }
        SystemStats {
            cycles,
            retired: self.cores.iter().map(Core::retired).collect(),
            mem: *self.mc.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::LINE_BYTES;
    use crate::trace::zero_fill_trace;

    fn small_system(traces: Vec<Vec<TraceOp>>) -> System {
        let mut s = System::new(
            DramGeometry::module_mib(64),
            TimingParams::ddr3_1600_11(),
            traces,
        );
        s.controller_mut().set_refresh_enabled(false);
        s
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let mut s = small_system(vec![vec![]]);
        let stats = s.run(1000);
        assert!(s.is_done());
        assert!(stats.cycles < 5);
    }

    #[test]
    fn zero_fill_writes_every_line_to_dram() {
        let lines = 32u64;
        let trace = zero_fill_trace(0, lines * LINE_BYTES);
        let mut s = small_system(vec![trace]);
        let stats = s.run(1_000_000);
        assert!(s.is_done());
        // Every line: one fill read (write-allocate) + one flush write.
        assert_eq!(stats.mem.writes, lines);
        assert_eq!(stats.mem.reads, lines);
    }

    #[test]
    fn two_cores_make_progress_together() {
        let t1 = vec![TraceOp::Read(0), TraceOp::Bubble(10)];
        let t2 = vec![TraceOp::Read(1024 * 1024), TraceOp::Bubble(10)];
        let mut s = small_system(vec![t1, t2]);
        let stats = s.run(100_000);
        assert!(s.is_done());
        assert_eq!(stats.retired, vec![11, 11]);
        assert_eq!(stats.mem.reads, 2);
    }

    #[test]
    fn memory_bound_trace_is_slower_than_compute_bound() {
        // Strided reads (one per line, distinct rows) vs pure bubbles.
        let mut strided = Vec::new();
        for i in 0..64u64 {
            strided.push(TraceOp::Read(i * DramGeometry::ROW_BYTES * 8));
        }
        let mut s1 = small_system(vec![strided]);
        let mem_stats = s1.run(10_000_000);
        let mut s2 = small_system(vec![vec![TraceOp::Bubble(64)]]);
        let cpu_stats = s2.run(10_000_000);
        assert!(mem_stats.cycles > cpu_stats.cycles * 5);
    }

    /// The old engine, cycle by cycle: the reference the event-driven
    /// `run` must match bit-for-bit. Cores tick directly and the
    /// controller runs through its horizon-free reference driver, so
    /// neither a `quiet_cycles` nor a `next_event_cycle` bug can cancel
    /// out of the comparison.
    fn run_ticked(s: &mut System, max_cycles: u64) -> SystemStats {
        let mut cycles = 0;
        while !s.is_done() && cycles < max_cycles {
            s.tick_with(true);
            cycles += 1;
        }
        SystemStats {
            cycles,
            retired: s.cores.iter().map(Core::retired).collect(),
            mem: *s.mc.stats(),
        }
    }

    #[test]
    fn event_run_is_bit_identical_to_ticked_run() {
        let mk = |refresh: bool| {
            let mut t1 = vec![TraceOp::Bubble(40)];
            for i in 0..24u64 {
                t1.push(TraceOp::Read(i * DramGeometry::ROW_BYTES * 8));
                t1.push(TraceOp::Bubble(7));
            }
            let t2 = zero_fill_trace(1 << 20, 24 * LINE_BYTES);
            let mut s = System::new(
                DramGeometry::module_mib(64),
                TimingParams::ddr3_1600_11(),
                vec![t1, t2],
            );
            s.controller_mut().set_refresh_enabled(refresh);
            s
        };
        for refresh in [false, true] {
            for max_cycles in [u64::MAX, 777] {
                let reference = run_ticked(&mut mk(refresh), max_cycles);
                let event = mk(refresh).run(max_cycles);
                assert_eq!(reference, event, "refresh={refresh} max={max_cycles}");
            }
        }
    }

    #[test]
    fn run_stops_exactly_at_max_cycles_without_overshoot() {
        // A memory-bound trace nowhere near finished at the cutoff: the
        // quiet-gap jumps must clamp to the cycle budget.
        let mut trace = Vec::new();
        for i in 0..64u64 {
            trace.push(TraceOp::Read(i * DramGeometry::ROW_BYTES * 8));
        }
        let mut s = small_system(vec![trace]);
        let stats = s.run(777);
        assert!(!s.is_done(), "cutoff must hit mid-run");
        assert_eq!(stats.cycles, 777, "no overshoot under event jumps");
    }

    #[test]
    fn elapsed_ns_scales_with_clock() {
        let stats = SystemStats {
            cycles: 800,
            retired: vec![],
            mem: MemStats::default(),
        };
        assert!((stats.elapsed_ns(&TimingParams::ddr3_1600_11()) - 1000.0).abs() < 1e-9);
    }
}
