//! JEDEC DDR3 timing parameters (JESD79-3F), expressed in memory-clock
//! cycles.

/// DDR3 timing parameter set. All values except [`TimingParams::t_ck_ns`]
/// are in memory-clock cycles.
///
/// Field names follow the JEDEC specification; see the paper's §2 and
/// Table 5 ("DDR3-1600 x8 11/11/11").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingParams {
    /// Clock period in nanoseconds.
    pub t_ck_ns: f64,
    /// Activate to internal read/write delay (row-to-column delay).
    pub t_rcd: u32,
    /// Precharge period.
    pub t_rp: u32,
    /// CAS (read) latency.
    pub t_cl: u32,
    /// CAS write latency.
    pub t_cwl: u32,
    /// Activate to precharge (minimum row-open time).
    pub t_ras: u32,
    /// Activate to activate on the same bank (`tRAS + tRP`).
    pub t_rc: u32,
    /// Activate to activate on different banks of the same rank.
    pub t_rrd: u32,
    /// Four-activate window per rank.
    pub t_faw: u32,
    /// Write recovery (end of write data to precharge).
    pub t_wr: u32,
    /// Write-to-read turnaround.
    pub t_wtr: u32,
    /// Read to precharge.
    pub t_rtp: u32,
    /// Column-to-column (burst-to-burst) delay.
    pub t_ccd: u32,
    /// Data burst duration on the bus (BL8 = 4 clocks).
    pub t_bl: u32,
    /// Refresh cycle time (all-bank refresh duration).
    pub t_rfc: u32,
    /// Average refresh interval.
    pub t_refi: u32,
}

impl TimingParams {
    /// DDR3-1600 11-11-11 (tCK = 1.25 ns), the paper's Table 5
    /// configuration.
    #[must_use]
    pub fn ddr3_1600_11() -> Self {
        TimingParams {
            t_ck_ns: 1.25,
            t_rcd: 11,
            t_rp: 11,
            t_cl: 11,
            t_cwl: 8,
            t_ras: 28,
            t_rc: 39,
            t_rrd: 5,
            t_faw: 24, // 30 ns: x8 devices with 1 KB device pages (2 KB-page class)
            t_wr: 12,
            t_wtr: 6,
            t_rtp: 6,
            t_ccd: 4,
            t_bl: 4,
            t_rfc: 208, // 260 ns for a 4 Gb device
            t_refi: 6240,
        }
    }

    /// DDR3-1333 9-9-9 (tCK = 1.5 ns), matching the vendor-B modules of the
    /// paper's Table 12.
    #[must_use]
    pub fn ddr3_1333_9() -> Self {
        TimingParams {
            t_ck_ns: 1.5,
            t_rcd: 9,
            t_rp: 9,
            t_cl: 9,
            t_cwl: 7,
            t_ras: 24,
            t_rc: 33,
            t_rrd: 4,
            t_faw: 20,
            t_wr: 10,
            t_wtr: 5,
            t_rtp: 5,
            t_ccd: 4,
            t_bl: 4,
            t_rfc: 107, // 160 ns for a 2 Gb device
            t_refi: 5200,
        }
    }

    /// Adjusts refresh timing for device density, following vendor
    /// datasheets: tRFC grows with capacity (90 ns @ 1 Gb, 160 ns @ 2 Gb,
    /// 260 ns @ 4 Gb, 350 ns @ 8 Gb). Sub-gigabit and oversized densities
    /// are clamped, mirroring the paper's parameter extrapolation for the
    /// 64 MB and 64 GB points of Figure 7.
    #[must_use]
    pub fn with_density_gbit(mut self, gbit: u32) -> Self {
        let rfc_ns = match gbit {
            0..=1 => 90.0,
            2 => 160.0,
            3..=4 => 260.0,
            5..=8 => 350.0,
            _ => 350.0 + 90.0 * ((gbit as f64) / 8.0).log2(),
        };
        self.t_rfc = self.cycles_from_ns(rfc_ns);
        self
    }

    /// Converts a cycle count to nanoseconds.
    #[must_use]
    pub fn ns(&self, cycles: u64) -> f64 {
        cycles as f64 * self.t_ck_ns
    }

    /// Converts nanoseconds to cycles, rounding up.
    #[must_use]
    pub fn cycles_from_ns(&self, ns: f64) -> u32 {
        (ns / self.t_ck_ns).ceil() as u32
    }

    /// The row-cycle time in nanoseconds (`tRC × tCK`).
    #[must_use]
    pub fn row_cycle_ns(&self) -> f64 {
        self.ns(u64::from(self.t_rc))
    }

    /// Peak data-bus bandwidth in bytes per nanosecond (both clock edges,
    /// 8-byte bus).
    #[must_use]
    pub fn peak_bandwidth_bytes_per_ns(&self) -> f64 {
        16.0 / self.t_ck_ns
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr3_1600_11()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_1600_matches_headline_latencies() {
        let t = TimingParams::ddr3_1600_11();
        // 11-11-11 at 1.25 ns: tRCD = tRP = tCL = 13.75 ns.
        assert!((t.ns(u64::from(t.t_rcd)) - 13.75).abs() < 1e-9);
        // tRAS = 35 ns: the latency the paper reports for activate-class
        // CODIC commands in Table 2.
        assert!((t.ns(u64::from(t.t_ras)) - 35.0).abs() < 1e-9);
        // tRC = tRAS + tRP.
        assert_eq!(t.t_rc, t.t_ras + t.t_rp);
    }

    #[test]
    fn ddr3_1333_is_slower_per_clock_but_fewer_cycles() {
        let fast = TimingParams::ddr3_1600_11();
        let slow = TimingParams::ddr3_1333_9();
        assert!(slow.t_ck_ns > fast.t_ck_ns);
        assert!(slow.t_rcd < fast.t_rcd);
        assert_eq!(slow.t_rc, slow.t_ras + slow.t_rp);
    }

    #[test]
    fn density_scaling_increases_trfc() {
        let base = TimingParams::ddr3_1600_11();
        let small = base.with_density_gbit(1);
        let big = base.with_density_gbit(8);
        let huge = base.with_density_gbit(64);
        assert!(small.t_rfc < big.t_rfc);
        assert!(big.t_rfc < huge.t_rfc);
    }

    #[test]
    fn cycle_ns_round_trip() {
        let t = TimingParams::ddr3_1600_11();
        assert_eq!(t.cycles_from_ns(35.0), 28);
        assert_eq!(t.cycles_from_ns(13.75), 11);
        assert_eq!(t.cycles_from_ns(13.8), 12, "rounds up");
    }

    #[test]
    fn peak_bandwidth_is_12_8_gbps_at_1600() {
        let t = TimingParams::ddr3_1600_11();
        assert!((t.peak_bandwidth_bytes_per_ns() - 12.8).abs() < 1e-9);
    }
}
