//! Instruction-trace format driving the in-order cores.
//!
//! This plays the role of Ramulator's CPU trace front end (paper §6.2,
//! Appendix A): each entry is a number of non-memory instructions followed
//! by one memory operation.

/// One operation of a core trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// `n` non-memory instructions (1 per cycle on the in-order core).
    Bubble(u32),
    /// A load from the physical address.
    Read(u64),
    /// A store to the physical address.
    Write(u64),
    /// CLFLUSH: write the line back to DRAM (if dirty) and invalidate it,
    /// stalling until the write is globally visible — the paper's TCG
    /// baseline relies on this (§6.2).
    Flush(u64),
    /// An in-DRAM row operation (CODIC / RowClone / LISA-clone) initiated
    /// at this point of the instruction stream, posted to the memory
    /// controller without stalling the core — how the secure-deallocation
    /// study models hardware-assisted zeroing (Appendix A).
    RowOp {
        /// Physical address selecting the target row.
        addr: u64,
        /// The operation.
        op: crate::request::RowOpKind,
        /// Bank-busy duration in memory cycles.
        busy_cycles: u32,
    },
}

/// Builds the store + CLFLUSH sequence that overwrites `[start, start+len)`
/// with zeros, as the TCG firmware baseline does (§6.2): one store and one
/// flush per 64 B line.
#[must_use]
pub fn zero_fill_trace(start: u64, len: u64) -> Vec<TraceOp> {
    let mut ops = Vec::new();
    let first = start / crate::geometry::LINE_BYTES;
    let last = (start + len).div_ceil(crate::geometry::LINE_BYTES);
    for line in first..last {
        let addr = line * crate::geometry::LINE_BYTES;
        ops.push(TraceOp::Write(addr));
        ops.push(TraceOp::Flush(addr));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_emits_store_flush_pairs() {
        let t = zero_fill_trace(0, 256);
        assert_eq!(t.len(), 8); // 4 lines × (write + flush)
        assert_eq!(t[0], TraceOp::Write(0));
        assert_eq!(t[1], TraceOp::Flush(0));
        assert_eq!(t[6], TraceOp::Write(192));
    }

    #[test]
    fn zero_fill_rounds_partial_lines_up() {
        let t = zero_fill_trace(0, 65);
        assert_eq!(t.len(), 4); // 2 lines
    }

    #[test]
    fn zero_fill_handles_unaligned_start() {
        let t = zero_fill_trace(32, 64);
        assert_eq!(t[0], TraceOp::Write(0));
        assert_eq!(t[2], TraceOp::Write(64));
    }
}
