//! Property-based tests of the DRAM simulator's invariants.

use codic_dram::address::AddressMapper;
use codic_dram::geometry::{DramGeometry, LINE_BYTES};
use codic_dram::request::RowOpKind;
use codic_dram::{MemRequest, MemoryController, ReqKind, TimingParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn address_mapping_round_trips(addr in any::<u64>()) {
        let g = DramGeometry::module_mib(256);
        let m = AddressMapper::new(g);
        let line_addr = (addr % g.total_bytes()) / LINE_BYTES * LINE_BYTES;
        prop_assert_eq!(m.encode(m.decode(line_addr)), line_addr);
    }

    #[test]
    fn decoded_coordinates_are_in_range(addr in any::<u64>()) {
        let g = DramGeometry::module_mib(64);
        let d = AddressMapper::new(g).decode(addr);
        prop_assert!(d.rank < g.ranks);
        prop_assert!(d.bank < g.banks_per_rank);
        prop_assert!(d.row < g.rows_per_bank);
        prop_assert!(d.line < g.lines_per_row);
    }

    #[test]
    fn every_accepted_request_eventually_completes(
        addrs in proptest::collection::vec(0u64..(16 << 20), 1..40),
        writes in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let mut mc = MemoryController::new(
            DramGeometry::module_mib(64),
            TimingParams::ddr3_1600_11(),
        );
        mc.set_refresh_enabled(false);
        let mut accepted = 0usize;
        let mut completed = 0usize;
        for (i, addr) in addrs.iter().enumerate() {
            let kind = if writes[i % writes.len()] { ReqKind::Write } else { ReqKind::Read };
            if mc.push(MemRequest::new(*addr, kind)).is_ok() {
                accepted += 1;
            }
            mc.tick();
            completed += mc.take_completions().len();
        }
        let mut guard = 0u64;
        while !mc.is_idle() {
            mc.tick();
            completed += mc.take_completions().len();
            guard += 1;
            prop_assert!(guard < 2_000_000, "controller livelock");
        }
        completed += mc.take_completions().len();
        prop_assert_eq!(completed, accepted, "conservation of requests");
    }

    #[test]
    fn event_engine_matches_tick_engine(
        addrs in proptest::collection::vec(0u64..(16 << 20), 1..48),
        kinds in proptest::collection::vec(0u8..3, 48),
        refresh in any::<bool>(),
    ) {
        let build = || {
            let mut mc = MemoryController::new(
                DramGeometry::module_mib(64),
                TimingParams::ddr3_1600_11(),
            );
            mc.set_refresh_enabled(refresh);
            for (i, addr) in addrs.iter().enumerate() {
                let kind = match kinds[i % kinds.len()] {
                    0 => ReqKind::Read,
                    1 => ReqKind::Write,
                    _ => ReqKind::RowOp { op: RowOpKind::Codic, busy_cycles: 39 },
                };
                let _ = mc.push(MemRequest::new(*addr, kind));
            }
            mc
        };
        // The reference driver acts unconditionally every cycle (never
        // consulting the event horizon), so a horizon bug cannot cancel
        // out of the comparison.
        let mut ticked = build();
        let mut guard = 0u64;
        while !ticked.is_idle() {
            ticked.tick_reference();
            guard += 1;
            prop_assert!(guard < 2_000_000, "tick engine livelock");
        }
        let mut jumped = build();
        let finish = jumped.run_to_idle();
        prop_assert_eq!(ticked.take_completions(), jumped.take_completions());
        prop_assert_eq!(ticked.stats(), jumped.stats());
        prop_assert_eq!(ticked.now(), jumped.now());
        prop_assert!(finish < jumped.now() || finish == 0);
    }

    #[test]
    fn command_counts_are_consistent(
        lines in proptest::collection::vec(0u64..4096, 1..50),
    ) {
        let mut mc = MemoryController::new(
            DramGeometry::module_mib(64),
            TimingParams::ddr3_1600_11(),
        );
        mc.set_refresh_enabled(false);
        let mut pushed = 0u64;
        for l in &lines {
            if mc.push(MemRequest::new(l * LINE_BYTES, ReqKind::Read)).is_ok() {
                pushed += 1;
            }
            mc.tick();
        }
        mc.run_to_idle();
        let s = *mc.stats();
        prop_assert_eq!(s.reads, pushed);
        // Every activate eventually matches at most one precharge, and
        // column accesses equal hits (opened rows are charged to misses).
        prop_assert!(s.precharges <= s.activates);
        prop_assert_eq!(s.row_hits + s.row_misses, s.reads + s.row_misses);
    }
}
