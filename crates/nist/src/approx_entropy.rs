//! Test 12: Approximate entropy — SP 800-22 §2.12.

use crate::special::igamc;
use crate::TestResult;

/// Default pattern length.
pub const DEFAULT_M: u32 = 10;

/// φ(m): Σ π_i · ln(π_i) over overlapping m-bit patterns (with
/// wraparound).
fn phi(bits: &[u8], m: u32) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len();
    let mut counts = vec![0u64; 1usize << m];
    let mask = (1usize << m) - 1;
    let mut pattern = 0usize;
    for &b in bits.iter().take(m as usize - 1) {
        pattern = ((pattern << 1) | b as usize) & mask;
    }
    for i in 0..n {
        let b = bits[(i + m as usize - 1) % n];
        pattern = ((pattern << 1) | b as usize) & mask;
        counts[pattern] += 1;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let pi = c as f64 / n as f64;
            pi * pi.ln()
        })
        .sum()
}

/// Runs the approximate-entropy test with pattern length chosen to satisfy
/// `m < log2(n) − 5`.
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    let m = DEFAULT_M.min(((bits.len().max(2) as f64).log2() - 6.0).max(2.0) as u32);
    test_with_m(bits, m)
}

/// Runs the test with an explicit pattern length.
#[must_use]
pub fn test_with_m(bits: &[u8], m: u32) -> TestResult {
    let name = "approximate_entropy";
    if bits.is_empty() {
        return TestResult {
            name,
            p_value: f64::NAN,
        };
    }
    let n = bits.len() as f64;
    let ap_en = phi(bits, m) - phi(bits, m + 1);
    let chi2 = 2.0 * n * (std::f64::consts::LN_2 - ap_en);
    TestResult {
        name,
        p_value: igamc(2f64.powi(m as i32 - 1), chi2 / 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bits_from_str;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn nist_example_2_12_8() {
        // ε = 0100110101, m = 3: ApEn = 0.502193, χ² = 4.817417,
        // P-value = 0.261961.
        let bits = bits_from_str("0100110101");
        let r = test_with_m(&bits, 3);
        assert!((r.p_value - 0.261_961).abs() < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn random_stream_passes() {
        let mut rng = SmallRng::seed_from_u64(43);
        let bits: Vec<u8> = (0..262_144).map(|_| rng.gen_range(0..2) as u8).collect();
        let r = test(&bits);
        assert!(r.passed(), "p = {}", r.p_value);
    }

    #[test]
    fn constant_stream_fails() {
        let r = test(&[1; 100_000]);
        assert!(!r.passed());
    }

    #[test]
    fn empty_stream_is_not_applicable() {
        assert!(test(&[]).p_value.is_nan());
    }
}
