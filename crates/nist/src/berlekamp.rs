//! Berlekamp–Massey algorithm over GF(2), used by the linear-complexity
//! test.

/// Returns the linear complexity (shortest LFSR length) of a bit sequence.
#[must_use]
pub fn linear_complexity(bits: &[u8]) -> usize {
    let n = bits.len();
    let mut c = vec![0u8; n + 1];
    let mut b = vec![0u8; n + 1];
    c[0] = 1;
    b[0] = 1;
    let mut l = 0usize;
    let mut m: isize = -1;
    for i in 0..n {
        // Discrepancy.
        let mut d = bits[i];
        for j in 1..=l {
            d ^= c[j] & bits[i - j];
        }
        if d == 1 {
            let t = c.clone();
            let shift = (i as isize - m) as usize;
            for j in 0..n + 1 - shift {
                c[j + shift] ^= b[j];
            }
            if 2 * l <= i {
                l = i + 1 - l;
                m = i as isize;
                b = t;
            }
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sequence_has_zero_complexity() {
        assert_eq!(linear_complexity(&[0, 0, 0, 0, 0]), 0);
    }

    #[test]
    fn single_one_has_full_complexity() {
        // 0001: needs an LFSR as long as the prefix of zeros + 1.
        assert_eq!(linear_complexity(&[0, 0, 0, 1]), 4);
    }

    #[test]
    fn nist_example_sequence() {
        // SP 800-22 §2.10.8 example: 1101011110001 has complexity 4.
        let bits = [1, 1, 0, 1, 0, 1, 1, 1, 1, 0, 0, 0, 1];
        assert_eq!(linear_complexity(&bits), 4);
    }

    #[test]
    fn lfsr_output_recovers_register_length() {
        // x^4 + x + 1 maximal LFSR (period 15): complexity must be 4.
        let mut state = [1u8, 0, 0, 0];
        let mut seq = Vec::new();
        for _ in 0..30 {
            seq.push(state[3]);
            let fb = state[3] ^ state[0];
            state.rotate_right(1);
            state[0] = fb;
        }
        assert_eq!(linear_complexity(&seq), 4);
    }

    #[test]
    fn alternating_sequence_has_complexity_two() {
        // 101010…: s_i = s_{i-2}.
        let seq: Vec<u8> = (0..20).map(|i| (i % 2 == 0) as u8).collect();
        assert_eq!(linear_complexity(&seq), 2);
    }

    #[test]
    fn complexity_is_at_most_length() {
        let seq = [1, 0, 0, 1, 1, 0, 1];
        assert!(linear_complexity(&seq) <= seq.len());
    }
}
