//! Test 5: Binary matrix rank — SP 800-22 §2.5.

use crate::matrix::{pack_32x32, rank_gf2};
use crate::special::igamc;
use crate::TestResult;

/// Probability of a random 32×32 GF(2) matrix having full rank (§2.5.4).
const P_FULL: f64 = 0.288_8;
/// Probability of rank 31.
const P_MINUS1: f64 = 0.577_6;
/// Probability of rank ≤ 30.
const P_REST: f64 = 0.133_6;

/// Runs the binary matrix rank test with 32×32 matrices.
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    let n_matrices = bits.len() / 1024;
    if n_matrices < 38 {
        // SP 800-22 requires n ≥ 38 matrices for the χ² approximation.
        return TestResult {
            name: "binary_matrix_rank",
            p_value: f64::NAN,
        };
    }
    let mut counts = [0u64; 3];
    for i in 0..n_matrices {
        let rows = pack_32x32(&bits[i * 1024..(i + 1) * 1024]);
        let rank = rank_gf2(&rows, 32);
        let bucket = match rank {
            32 => 0,
            31 => 1,
            _ => 2,
        };
        counts[bucket] += 1;
    }
    let n = n_matrices as f64;
    let expected = [P_FULL * n, P_MINUS1 * n, P_REST * n];
    let chi2: f64 = counts
        .iter()
        .zip(expected.iter())
        .map(|(&c, &e)| (c as f64 - e) * (c as f64 - e) / e)
        .sum();
    TestResult {
        name: "binary_matrix_rank",
        p_value: igamc(1.0, chi2 / 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn random_stream_passes() {
        let mut rng = SmallRng::seed_from_u64(17);
        let bits: Vec<u8> = (0..100_000).map(|_| rng.gen_range(0..2) as u8).collect();
        let r = test(&bits);
        assert!(r.passed(), "p = {}", r.p_value);
    }

    #[test]
    fn structured_stream_fails() {
        // Every matrix row identical: rank 1 for every matrix.
        let bits: Vec<u8> = (0..100_000).map(|i| ((i % 32) % 2) as u8).collect();
        let r = test(&bits);
        assert!(!r.passed(), "p = {}", r.p_value);
    }

    #[test]
    fn short_stream_is_not_applicable() {
        assert!(test(&[1; 1024]).p_value.is_nan());
    }

    #[test]
    fn rank_probabilities_sum_to_one() {
        assert!((P_FULL + P_MINUS1 + P_REST - 1.0).abs() < 1e-9);
    }
}
