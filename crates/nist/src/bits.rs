//! Bit-stream helpers: the suite's tests take `&[u8]` slices whose elements
//! are 0 or 1.

/// Unpacks bytes into bits, most significant bit first.
#[must_use]
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            bits.push((b >> i) & 1);
        }
    }
    bits
}

/// Parses an ASCII "0101…" string into bits, ignoring whitespace.
///
/// # Panics
///
/// Panics on characters other than `0`, `1`, or whitespace (intended for
/// literals in tests and examples).
#[must_use]
pub fn bits_from_str(s: &str) -> Vec<u8> {
    s.chars()
        .filter(|c| !c.is_whitespace())
        .map(|c| match c {
            '0' => 0,
            '1' => 1,
            other => panic!("invalid bit character {other:?}"),
        })
        .collect()
}

/// Number of ones in the stream.
#[must_use]
pub fn ones(bits: &[u8]) -> u64 {
    bits.iter().map(|&b| u64::from(b)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_unpack_msb_first() {
        assert_eq!(bytes_to_bits(&[0b1010_0001]), vec![1, 0, 1, 0, 0, 0, 0, 1]);
        assert_eq!(bytes_to_bits(&[]).len(), 0);
    }

    #[test]
    fn str_parsing_skips_whitespace() {
        assert_eq!(bits_from_str("10 1\n1"), vec![1, 0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "invalid bit character")]
    fn str_parsing_rejects_garbage() {
        let _ = bits_from_str("10x");
    }

    #[test]
    fn ones_counts() {
        assert_eq!(ones(&[1, 0, 1, 1]), 3);
        assert_eq!(ones(&[]), 0);
    }
}
