//! Test 2: Frequency within a block — SP 800-22 §2.2.

use crate::special::igamc;
use crate::TestResult;

/// Default block size for long streams.
pub const DEFAULT_BLOCK: usize = 128;

/// Runs the block-frequency test with block size `m`.
#[must_use]
pub fn test_with_block(bits: &[u8], m: usize) -> TestResult {
    let n_blocks = bits.len() / m;
    if n_blocks == 0 {
        return TestResult {
            name: "frequency_within_block",
            p_value: f64::NAN,
        };
    }
    let mut chi2 = 0.0;
    for block in bits.chunks_exact(m) {
        let pi = f64::from(crate::bits::ones(block) as u32) / m as f64;
        chi2 += (pi - 0.5) * (pi - 0.5);
    }
    chi2 *= 4.0 * m as f64;
    TestResult {
        name: "frequency_within_block",
        p_value: igamc(n_blocks as f64 / 2.0, chi2 / 2.0),
    }
}

/// Runs the block-frequency test with the default block size.
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    test_with_block(bits, DEFAULT_BLOCK)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bits_from_str;

    #[test]
    fn nist_example_2_2_8() {
        // ε = 0110011010, M = 3: χ² = 1, P-value = igamc(3/2, 1/2) = 0.801252.
        let r = test_with_block(&bits_from_str("0110011010"), 3);
        assert!((r.p_value - 0.801_252).abs() < 1e-5, "p = {}", r.p_value);
    }

    #[test]
    fn balanced_blocks_pass() {
        let bits: Vec<u8> = (0..12_800).map(|i| (i % 2) as u8).collect();
        assert!(test(&bits).passed());
    }

    #[test]
    fn clustered_bits_fail() {
        // Alternating all-ones / all-zeros blocks.
        let bits: Vec<u8> = (0..12_800)
            .map(|i| u8::from((i / DEFAULT_BLOCK).is_multiple_of(2)))
            .collect();
        assert!(!test(&bits).passed());
    }

    #[test]
    fn too_short_stream_is_not_applicable() {
        assert!(test(&[1, 0, 1]).p_value.is_nan());
    }
}
