//! Test 13: Cumulative sums — SP 800-22 §2.13.

use crate::special::normal_cdf;
use crate::TestResult;

fn p_value(n: usize, z: i64) -> f64 {
    let n = n as f64;
    let z = z as f64;
    let sqrt_n = n.sqrt();
    // Summation bounds truncate toward zero, matching the NIST reference
    // implementation's integer arithmetic.
    let mut sum1 = 0.0;
    let k_lo = ((-n / z + 1.0) / 4.0).trunc() as i64;
    let k_hi = ((n / z - 1.0) / 4.0).trunc() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        sum1 += normal_cdf((4.0 * k + 1.0) * z / sqrt_n) - normal_cdf((4.0 * k - 1.0) * z / sqrt_n);
    }
    let mut sum2 = 0.0;
    let k_lo = ((-n / z - 3.0) / 4.0).trunc() as i64;
    let k_hi = ((n / z - 1.0) / 4.0).trunc() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        sum2 += normal_cdf((4.0 * k + 3.0) * z / sqrt_n) - normal_cdf((4.0 * k + 1.0) * z / sqrt_n);
    }
    1.0 - sum1 + sum2
}

/// Runs the cumulative-sums test in both modes; returns the smaller
/// p-value (both must pass in the original suite; the minimum is the
/// conservative single-number summary).
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    if bits.is_empty() {
        return TestResult {
            name: "cumulative_sums",
            p_value: f64::NAN,
        };
    }
    let steps: Vec<i64> = bits.iter().map(|&b| if b == 1 { 1 } else { -1 }).collect();
    let z_forward = max_partial_sum(steps.iter().copied());
    let z_backward = max_partial_sum(steps.iter().rev().copied());
    let p_f = p_value(bits.len(), z_forward.max(1));
    let p_b = p_value(bits.len(), z_backward.max(1));
    TestResult {
        name: "cumulative_sums",
        p_value: p_f.min(p_b),
    }
}

fn max_partial_sum(steps: impl Iterator<Item = i64>) -> i64 {
    let mut s = 0i64;
    let mut z = 0i64;
    for step in steps {
        s += step;
        z = z.max(s.abs());
    }
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bits_from_str;

    #[test]
    fn nist_example_2_13_8() {
        // ε = 1011010111, n = 10, forward z = 4: P-value = 0.4116588.
        let bits = bits_from_str("1011010111");
        let steps: Vec<i64> = bits.iter().map(|&b| if b == 1 { 1 } else { -1 }).collect();
        assert_eq!(max_partial_sum(steps.iter().copied()), 4);
        let p = p_value(10, 4);
        assert!((p - 0.411_658_8).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn balanced_alternating_stream_passes() {
        let bits: Vec<u8> = (0..10_000).map(|i| (i % 2) as u8).collect();
        assert!(test(&bits).passed());
    }

    #[test]
    fn drifting_stream_fails() {
        // 55 % ones: the walk drifts far from the origin.
        let bits: Vec<u8> = (0..10_000).map(|i| u8::from(i % 20 < 11)).collect();
        assert!(!test(&bits).passed());
    }

    #[test]
    fn empty_stream_is_not_applicable() {
        assert!(test(&[]).p_value.is_nan());
    }
}
