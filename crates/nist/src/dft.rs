//! Test 6: Discrete Fourier transform (spectral) — SP 800-22 §2.6.
//!
//! Deviation from the reference implementation: we transform the largest
//! power-of-two prefix of the stream (our FFT is radix-2). The statistic is
//! computed over that prefix; for the multi-hundred-kilobit streams the
//! paper tests, the truncation is immaterial.

use crate::fft::fft_in_place;
use crate::special::erfc;
use crate::TestResult;

/// Runs the spectral test.
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    let n = if bits.is_empty() {
        0
    } else {
        1usize << (usize::BITS - 1 - bits.len().leading_zeros())
    };
    if n < 32 {
        return TestResult {
            name: "dft",
            p_value: f64::NAN,
        };
    }
    let mut re: Vec<f64> = bits[..n]
        .iter()
        .map(|&b| if b == 1 { 1.0 } else { -1.0 })
        .collect();
    let mut im = vec![0.0; n];
    fft_in_place(&mut re, &mut im);
    let threshold = ((1.0f64 / 0.05).ln() * n as f64).sqrt();
    let below = (0..n / 2)
        .filter(|&k| (re[k] * re[k] + im[k] * im[k]).sqrt() < threshold)
        .count();
    let n0 = 0.95 * n as f64 / 2.0;
    let d = (below as f64 - n0) / (n as f64 * 0.95 * 0.05 / 4.0).sqrt();
    TestResult {
        name: "dft",
        p_value: erfc(d.abs() / std::f64::consts::SQRT_2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn random_stream_passes() {
        let mut rng = SmallRng::seed_from_u64(21);
        let bits: Vec<u8> = (0..65_536).map(|_| rng.gen_range(0..2) as u8).collect();
        let r = test(&bits);
        assert!(r.passed(), "p = {}", r.p_value);
    }

    #[test]
    fn periodic_stream_fails() {
        // Strong tone: period-8 square wave concentrates spectral energy.
        let bits: Vec<u8> = (0..65_536).map(|i| u8::from(i % 8 < 4)).collect();
        assert!(!test(&bits).passed());
    }

    #[test]
    fn short_stream_is_not_applicable() {
        assert!(test(&[1, 0, 1]).p_value.is_nan());
    }

    #[test]
    fn non_power_of_two_lengths_are_truncated() {
        let mut rng = SmallRng::seed_from_u64(3);
        let bits: Vec<u8> = (0..100_000).map(|_| rng.gen_range(0..2) as u8).collect();
        // Must not panic despite 100 000 not being a power of two.
        let r = test(&bits);
        assert!(r.p_value.is_finite());
    }
}
