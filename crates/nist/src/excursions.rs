//! Test 14: Random excursions — SP 800-22 §2.14.

use crate::special::igamc;
use crate::TestResult;

/// The eight states the test considers.
pub const STATES: [i64; 8] = [-4, -3, -2, -1, 1, 2, 3, 4];

/// π_k(x): probability that state x is visited exactly k times in a cycle
/// (k capped at 5), from §3.14.
fn pi_k(x: i64, k: usize) -> f64 {
    let x = x.unsigned_abs() as f64;
    match k {
        0 => 1.0 - 1.0 / (2.0 * x),
        5 => (1.0 / (2.0 * x)) * (1.0 - 1.0 / (2.0 * x)).powi(4),
        _ => {
            let half_x = 1.0 / (2.0 * x);
            (1.0 / (4.0 * x * x)) * (1.0 - half_x).powi(k as i32 - 1)
        }
    }
}

/// Splits the ±1 random walk into zero-crossing cycles and counts visits
/// to each state per cycle. Returns `(J, visit_counts[state][k])`.
fn cycle_visits(bits: &[u8]) -> (usize, [[u64; 6]; 8]) {
    let mut counts = [[0u64; 6]; 8];
    let mut visits_this_cycle = [0u64; 8];
    let mut s = 0i64;
    let mut j = 0usize;
    let close_cycle = |visits: &mut [u64; 8], counts: &mut [[u64; 6]; 8]| {
        for (idx, &v) in visits.iter().enumerate() {
            counts[idx][(v as usize).min(5)] += 1;
        }
        *visits = [0; 8];
    };
    for &b in bits {
        s += if b == 1 { 1 } else { -1 };
        if s == 0 {
            j += 1;
            close_cycle(&mut visits_this_cycle, &mut counts);
        } else if let Some(idx) = STATES.iter().position(|&x| x == s) {
            visits_this_cycle[idx] += 1;
        }
    }
    // The final partial walk counts as one more cycle (§2.14.4 appends a
    // zero).
    if s != 0 {
        j += 1;
        close_cycle(&mut visits_this_cycle, &mut counts);
    }
    (j, counts)
}

/// Runs the random-excursions test; the reported p-value is the mean over
/// the eight states (Table 10 reports one number). Returns NaN when the
/// walk has too few cycles for the χ² approximation (J < 500).
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    let name = "random_excursion";
    let (j, counts) = cycle_visits(bits);
    if j < 500 {
        return TestResult {
            name,
            p_value: f64::NAN,
        };
    }
    let mut ps = Vec::with_capacity(8);
    for (idx, &x) in STATES.iter().enumerate() {
        let mut chi2 = 0.0;
        for (k, &count) in counts[idx].iter().enumerate() {
            let expected = j as f64 * pi_k(x, k);
            if expected > 0.0 {
                let obs = count as f64;
                chi2 += (obs - expected) * (obs - expected) / expected;
            }
        }
        ps.push(igamc(2.5, chi2 / 2.0));
    }
    TestResult {
        name,
        p_value: ps.iter().sum::<f64>() / ps.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pi_distributions_sum_to_one() {
        for &x in &STATES {
            let total: f64 = (0..6).map(|k| pi_k(x, k)).sum();
            assert!((total - 1.0).abs() < 1e-6, "state {x}: {total}");
        }
    }

    #[test]
    fn cycle_counting_on_small_example() {
        // SP 800-22 §2.14.4 example: ε = 0110110101, walk crosses zero…
        // S = -1, 0, 1, 0, 1, 2, 1, 2, 1, 2 → J = 3 (2 crossings + final).
        let bits = crate::bits::bits_from_str("0110110101");
        let (j, _) = cycle_visits(&bits);
        assert_eq!(j, 3);
    }

    #[test]
    fn random_stream_passes() {
        // Seed 29 yields a recurrent walk (J = 2047 zero crossings ≥ 500).
        let mut rng = SmallRng::seed_from_u64(29);
        let bits: Vec<u8> = (0..1_000_000).map(|_| rng.gen_range(0..2) as u8).collect();
        let r = test(&bits);
        assert!(r.p_value.is_finite(), "needs ≥ 500 cycles");
        assert!(r.passed(), "p = {}", r.p_value);
    }

    #[test]
    fn short_stream_is_not_applicable() {
        assert!(test(&[1, 0, 1, 0]).p_value.is_nan());
    }

    #[test]
    fn biased_walk_fails() {
        // A walk that hugs +1/+2 visits states with the wrong frequencies.
        let pattern = [1u8, 1, 0, 0];
        let bits: Vec<u8> = (0..1_000_000).map(|i| pattern[i % 4]).collect();
        let r = test(&bits);
        assert!(r.p_value.is_nan() || r.p_value < 0.01, "p = {}", r.p_value);
    }
}
