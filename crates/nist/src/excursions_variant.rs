//! Test 15: Random excursions variant — SP 800-22 §2.15.

use crate::special::erfc;
use crate::TestResult;

/// The eighteen states −9..−1, 1..9.
#[must_use]
pub fn states() -> Vec<i64> {
    (-9..=9).filter(|&x| x != 0).collect()
}

/// Runs the random-excursions-variant test; the reported p-value is the
/// mean over the eighteen states. Returns NaN for walks with fewer than
/// 500 zero crossings.
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    let name = "random_excursion_variant";
    let mut s = 0i64;
    let mut j = 0u64;
    let mut visits = std::collections::HashMap::new();
    for &b in bits {
        s += if b == 1 { 1 } else { -1 };
        if s == 0 {
            j += 1;
        } else if (-9..=9).contains(&s) {
            *visits.entry(s).or_insert(0u64) += 1;
        }
    }
    if s != 0 {
        j += 1;
    }
    if j < 500 {
        return TestResult {
            name,
            p_value: f64::NAN,
        };
    }
    let mut ps = Vec::with_capacity(18);
    for x in states() {
        let xi = *visits.get(&x).unwrap_or(&0) as f64;
        let jf = j as f64;
        // p = erfc(|ξ − J| / sqrt(2J(4|x|−2))) per §2.15.4.
        let denom = (2.0 * jf * (4.0 * (x.abs() as f64) - 2.0)).sqrt();
        ps.push(erfc((xi - jf).abs() / denom));
    }
    let p = ps.iter().sum::<f64>() / ps.len() as f64;
    TestResult { name, p_value: p }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn there_are_eighteen_states() {
        assert_eq!(states().len(), 18);
        assert!(!states().contains(&0));
    }

    #[test]
    fn random_stream_passes() {
        // Seed 29 yields a recurrent walk (J = 2047 zero crossings ≥ 500).
        let mut rng = SmallRng::seed_from_u64(29);
        let bits: Vec<u8> = (0..1_000_000).map(|_| rng.gen_range(0..2) as u8).collect();
        let r = test(&bits);
        assert!(r.p_value.is_finite());
        assert!(r.passed(), "p = {}", r.p_value);
    }

    #[test]
    fn short_stream_is_not_applicable() {
        assert!(test(&[1, 0]).p_value.is_nan());
    }

    #[test]
    fn heavily_visiting_walk_fails() {
        // Period-40 sawtooth: climbs to +10 and returns, visiting low
        // states every cycle — ξ(x) far above J for small x.
        let bits: Vec<u8> = (0..1_000_000).map(|i| u8::from(i % 40 < 20)).collect();
        let r = test(&bits);
        assert!(r.p_value.is_nan() || r.p_value < 0.05, "p = {}", r.p_value);
    }
}
