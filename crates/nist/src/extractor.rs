//! Von Neumann randomness extractor (debiaser).
//!
//! The paper whitens CODIC-sig response streams with a Von Neumann
//! extractor before the NIST analysis (§6.1.3).

/// Applies the Von Neumann extractor: consume non-overlapping bit pairs,
/// emit 0 for `01`, 1 for `10`, nothing for `00`/`11`.
#[must_use]
pub fn von_neumann(bits: &[u8]) -> Vec<u8> {
    bits.chunks_exact(2)
        .filter_map(|pair| match (pair[0], pair[1]) {
            (0, 1) => Some(0),
            (1, 0) => Some(1),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn constant_input_extracts_nothing() {
        assert!(von_neumann(&[1; 100]).is_empty());
        assert!(von_neumann(&[0; 100]).is_empty());
    }

    #[test]
    fn transitions_map_to_bits() {
        assert_eq!(von_neumann(&[0, 1, 1, 0, 0, 0, 1, 1]), vec![0, 1]);
    }

    #[test]
    fn odd_trailing_bit_is_ignored() {
        assert_eq!(von_neumann(&[1, 0, 1]), vec![1]);
    }

    #[test]
    fn biased_stream_becomes_balanced() {
        let mut rng = SmallRng::seed_from_u64(99);
        // 80 % ones.
        let biased: Vec<u8> = (0..100_000)
            .map(|_| u8::from(rng.gen::<f64>() < 0.8))
            .collect();
        let out = von_neumann(&biased);
        assert!(!out.is_empty());
        let ones: u64 = out.iter().map(|&b| u64::from(b)).sum();
        let frac = ones as f64 / out.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "post-extraction bias {frac}");
        // Expected yield for p = 0.8: p(1-p) per pair = 16 % of pairs.
        let yield_frac = out.len() as f64 / (biased.len() / 2) as f64;
        assert!((yield_frac - 0.32).abs() < 0.05, "yield {yield_frac}");
    }
}
