//! Iterative radix-2 complex FFT for the spectral (DFT) test.

/// In-place radix-2 decimation-in-time FFT over interleaved complex values.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_in_place(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    assert_eq!(n, im.len(), "mismatched component lengths");
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits);
        let j = j as usize;
        if j > i {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (w_re, w_im) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_re, mut cur_im) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (a, b) = (i + k, i + k + len / 2);
                let t_re = re[b] * cur_re - im[b] * cur_im;
                let t_im = re[b] * cur_im + im[b] * cur_re;
                re[b] = re[a] - t_re;
                im[b] = im[a] - t_im;
                re[a] += t_re;
                im[a] += t_im;
                let next_re = cur_re * w_re - cur_im * w_im;
                cur_im = cur_re * w_im + cur_im * w_re;
                cur_re = next_re;
            }
            i += len;
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft_in_place(&mut re, &mut im);
        for k in 0..8 {
            assert!((re[k] - 1.0).abs() < 1e-12);
            assert!(im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn constant_transforms_to_single_bin() {
        let mut re = vec![1.0; 8];
        let mut im = vec![0.0; 8];
        fft_in_place(&mut re, &mut im);
        assert!((re[0] - 8.0).abs() < 1e-12);
        for k in 1..8 {
            assert!(re[k].abs() < 1e-12 && im[k].abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_its_bin() {
        let n = 64;
        let f = 5.0;
        let mut re: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f * i as f64 / n as f64).cos())
            .collect();
        let mut im = vec![0.0; n];
        fft_in_place(&mut re, &mut im);
        let mag: Vec<f64> = (0..n)
            .map(|k| (re[k] * re[k] + im[k] * im[k]).sqrt())
            .collect();
        let peak = mag
            .iter()
            .enumerate()
            .take(n / 2)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 5);
    }

    #[test]
    fn parseval_holds() {
        let n = 32;
        let mut re: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let mut im = vec![0.0; n];
        let time_energy: f64 = re.iter().map(|x| x * x).sum();
        fft_in_place(&mut re, &mut im);
        let freq_energy: f64 =
            (0..n).map(|k| re[k] * re[k] + im[k] * im[k]).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut re = vec![0.0; 6];
        let mut im = vec![0.0; 6];
        fft_in_place(&mut re, &mut im);
    }
}
