//! The NIST SP 800-22 statistical test suite for random and pseudorandom
//! number generators, implemented from scratch (all 15 tests), plus the
//! Von Neumann extractor the CODIC paper uses to whiten PUF streams before
//! testing (§6.1.3, Table 10, Appendix B).
//!
//! Each test takes a slice of bits (`&[u8]` with values 0/1) and returns a
//! [`TestResult`] with the NIST p-value; a stream passes a test when
//! `p ≥ 0.01` ([`ALPHA`]).
//!
//! # Example
//!
//! ```
//! use codic_nist::suite::run_suite;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let bits: Vec<u8> = (0..200_000).map(|_| rng.gen_range(0..2) as u8).collect();
//! let results = run_suite(&bits);
//! assert_eq!(results.rows.len(), 15);
//! assert!(results.all_pass());
//! ```

pub mod approx_entropy;
pub mod berlekamp;
pub mod binary_rank;
pub mod bits;
pub mod block_frequency;
pub mod cusum;
pub mod dft;
pub mod excursions;
pub mod excursions_variant;
pub mod extractor;
pub mod fft;
pub mod linear_complexity;
pub mod longest_run;
pub mod matrix;
pub mod monobit;
pub mod non_overlapping;
pub mod overlapping;
pub mod runs;
pub mod serial;
pub mod special;
pub mod suite;
pub mod templates;
pub mod universal;

/// Significance level: a p-value below this fails the test (SP 800-22 §1.1.5).
pub const ALPHA: f64 = 0.01;

/// Outcome of one statistical test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// Test name as printed in the paper's Table 10.
    pub name: &'static str,
    /// The NIST p-value (`NaN` when the test is not applicable, e.g. too
    /// few cycles for the random-excursions tests).
    pub p_value: f64,
}

impl TestResult {
    /// Whether the stream passes this test at [`ALPHA`].
    #[must_use]
    pub fn passed(&self) -> bool {
        self.p_value.is_nan() || self.p_value >= ALPHA
    }
}
