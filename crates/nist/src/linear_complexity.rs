//! Test 10: Linear complexity — SP 800-22 §2.10.

use crate::berlekamp::linear_complexity;
use crate::special::igamc;
use crate::TestResult;

/// Block length (SP 800-22 recommends 500 ≤ M ≤ 5000).
pub const BLOCK: usize = 500;

/// Class probabilities for the T statistic (§2.10.4 step 5).
const PI: [f64; 7] = [0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833];

/// Runs the linear-complexity test with block length [`BLOCK`].
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    test_with_block(bits, BLOCK)
}

/// Runs the linear-complexity test with an explicit block length.
#[must_use]
pub fn test_with_block(bits: &[u8], m: usize) -> TestResult {
    let name = "linear_complexity";
    let n_blocks = bits.len() / m;
    if n_blocks < 20 {
        return TestResult {
            name,
            p_value: f64::NAN,
        };
    }
    let m_f = m as f64;
    let sign = if m.is_multiple_of(2) { 1.0 } else { -1.0 };
    let mu = m_f / 2.0 + (9.0 - sign) / 36.0 - (m_f / 3.0 + 2.0 / 9.0) / 2f64.powi(m as i32);
    let mut counts = [0u64; 7];
    for block in bits.chunks_exact(m).take(n_blocks) {
        let l = linear_complexity(block) as f64;
        // T = (−1)^M · (L − μ) + 2/9 (§2.10.4 step 4).
        let t = sign * (l - mu) + 2.0 / 9.0;
        let idx = if t <= -2.5 {
            0
        } else if t <= -1.5 {
            1
        } else if t <= -0.5 {
            2
        } else if t <= 0.5 {
            3
        } else if t <= 1.5 {
            4
        } else if t <= 2.5 {
            5
        } else {
            6
        };
        counts[idx] += 1;
    }
    let n = n_blocks as f64;
    let chi2: f64 = counts
        .iter()
        .zip(PI.iter())
        .map(|(&c, &p)| (c as f64 - n * p) * (c as f64 - n * p) / (n * p))
        .sum();
    TestResult {
        name,
        p_value: igamc(3.0, chi2 / 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn random_stream_passes() {
        let mut rng = SmallRng::seed_from_u64(31);
        let bits: Vec<u8> = (0..100_000).map(|_| rng.gen_range(0..2) as u8).collect();
        let r = test(&bits);
        assert!(r.passed(), "p = {}", r.p_value);
    }

    #[test]
    fn lfsr_stream_fails() {
        // A 16-bit LFSR has complexity 16 in every block: far from M/2.
        let mut state: u16 = 0xACE1;
        let bits: Vec<u8> = (0..100_000)
            .map(|_| {
                let bit = (state & 1) as u8;
                let fb = (state ^ (state >> 2) ^ (state >> 3) ^ (state >> 5)) & 1;
                state = (state >> 1) | (fb << 15);
                bit
            })
            .collect();
        let r = test(&bits);
        assert!(!r.passed(), "p = {}", r.p_value);
    }

    #[test]
    fn class_probabilities_sum_to_one() {
        assert!((PI.iter().sum::<f64>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn short_stream_is_not_applicable() {
        assert!(test(&[1; 100]).p_value.is_nan());
    }
}
