//! Test 4: Longest run of ones in a block — SP 800-22 §2.4.

use crate::special::igamc;
use crate::TestResult;

struct Config {
    m: usize,
    categories: &'static [u32],
    pi: &'static [f64],
}

/// Parameter selection per SP 800-22 §2.4.2 / §2.4.4.
fn config(n: usize) -> Option<Config> {
    if n >= 750_000 {
        Some(Config {
            m: 10_000,
            categories: &[10, 11, 12, 13, 14, 15],
            pi: &[0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727],
        })
    } else if n >= 6_272 {
        Some(Config {
            m: 128,
            categories: &[4, 5, 6, 7, 8],
            pi: &[0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124],
        })
    } else if n >= 128 {
        Some(Config {
            m: 8,
            categories: &[1, 2, 3],
            pi: &[0.2148, 0.3672, 0.2305, 0.1875],
        })
    } else {
        None
    }
}

fn longest_run(block: &[u8]) -> u32 {
    let mut best = 0u32;
    let mut current = 0u32;
    for &b in block {
        if b == 1 {
            current += 1;
            best = best.max(current);
        } else {
            current = 0;
        }
    }
    best
}

/// Runs the longest-run-of-ones test.
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    let Some(cfg) = config(bits.len()) else {
        return TestResult {
            name: "longest_run_ones_in_a_block",
            p_value: f64::NAN,
        };
    };
    let k = cfg.pi.len() - 1;
    let mut counts = vec![0u64; k + 1];
    let mut n_blocks = 0u64;
    for block in bits.chunks_exact(cfg.m) {
        n_blocks += 1;
        let run = longest_run(block);
        // Bucket: below/equal first category → 0; above last → k.
        let lo = cfg.categories[0];
        let hi = *cfg.categories.last().expect("categories non-empty");
        let idx = if run <= lo {
            0
        } else if run > hi {
            k
        } else {
            (run - lo) as usize
        };
        counts[idx] += 1;
    }
    let mut chi2 = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        let expected = n_blocks as f64 * cfg.pi[i];
        chi2 += (c as f64 - expected) * (c as f64 - expected) / expected;
    }
    TestResult {
        name: "longest_run_ones_in_a_block",
        p_value: igamc(k as f64 / 2.0, chi2 / 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn longest_run_helper() {
        assert_eq!(longest_run(&[1, 1, 0, 1, 1, 1, 0]), 3);
        assert_eq!(longest_run(&[0, 0, 0]), 0);
        assert_eq!(longest_run(&[1; 5]), 5);
    }

    #[test]
    fn random_stream_passes_all_regimes() {
        let mut rng = SmallRng::seed_from_u64(5);
        for n in [10_000, 800_000] {
            let bits: Vec<u8> = (0..n).map(|_| rng.gen_range(0..2) as u8).collect();
            let r = test(&bits);
            assert!(r.passed(), "n = {n}: p = {}", r.p_value);
        }
    }

    #[test]
    fn alternating_stream_fails() {
        // Longest run is always 1: far below expectation.
        let bits: Vec<u8> = (0..10_000).map(|i| (i % 2) as u8).collect();
        assert!(!test(&bits).passed());
    }

    #[test]
    fn short_stream_is_not_applicable() {
        assert!(test(&[1, 0, 1]).p_value.is_nan());
    }

    #[test]
    fn parameter_regimes_follow_the_spec() {
        assert_eq!(config(128).unwrap().m, 8);
        assert_eq!(config(6_272).unwrap().m, 128);
        assert_eq!(config(750_000).unwrap().m, 10_000);
        assert!(config(100).is_none());
    }
}
