//! Binary matrix rank over GF(2), used by the rank test.

/// Computes the rank of a bit matrix given as rows of u64 words (up to 64
/// columns).
#[must_use]
pub fn rank_gf2(rows: &[u64], cols: u32) -> u32 {
    debug_assert!(cols <= 64);
    let mut rows = rows.to_vec();
    let mut rank = 0u32;
    for col in (0..cols).rev() {
        let mask = 1u64 << col;
        // Find a pivot row at or below `rank`.
        let Some(pivot) = (rank as usize..rows.len()).find(|&r| rows[r] & mask != 0) else {
            continue;
        };
        rows.swap(rank as usize, pivot);
        let pivot_row = rows[rank as usize];
        for (r, row) in rows.iter_mut().enumerate() {
            if r != rank as usize && *row & mask != 0 {
                *row ^= pivot_row;
            }
        }
        rank += 1;
        if rank as usize == rows.len() {
            break;
        }
    }
    rank
}

/// Packs a 32×32 block of bits (row-major) into 32 row words.
///
/// # Panics
///
/// Panics if fewer than 1024 bits are supplied.
#[must_use]
pub fn pack_32x32(bits: &[u8]) -> Vec<u64> {
    assert!(bits.len() >= 1024, "need 1024 bits for a 32×32 matrix");
    (0..32)
        .map(|r| {
            let mut word = 0u64;
            for c in 0..32 {
                word = (word << 1) | u64::from(bits[r * 32 + c]);
            }
            word
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_full_rank() {
        let rows: Vec<u64> = (0..32).map(|i| 1u64 << i).collect();
        assert_eq!(rank_gf2(&rows, 32), 32);
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        assert_eq!(rank_gf2(&[0; 8], 8), 0);
    }

    #[test]
    fn duplicate_rows_reduce_rank() {
        let rows = [0b1010, 0b1010, 0b0110];
        assert_eq!(rank_gf2(&rows, 4), 2);
    }

    #[test]
    fn xor_dependent_rows_reduce_rank() {
        // r3 = r1 XOR r2.
        let rows = [0b1100, 0b0110, 0b1010];
        assert_eq!(rank_gf2(&rows, 4), 2);
    }

    #[test]
    fn pack_roundtrip() {
        let mut bits = vec![0u8; 1024];
        // Identity: bit (r, r) set.
        for r in 0..32 {
            bits[r * 32 + r] = 1;
        }
        let rows = pack_32x32(&bits);
        assert_eq!(rank_gf2(&rows, 32), 32);
    }
}
