//! Test 1: Frequency (monobit) — SP 800-22 §2.1.

use crate::special::erfc;
use crate::TestResult;

/// Runs the monobit test.
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    let n = bits.len() as f64;
    let s: i64 = bits.iter().map(|&b| if b == 1 { 1i64 } else { -1 }).sum();
    let s_obs = (s.abs() as f64) / n.sqrt();
    TestResult {
        name: "monobit",
        p_value: erfc(s_obs / std::f64::consts::SQRT_2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bits_from_str;

    #[test]
    fn nist_example_2_1_8() {
        // ε = 1011010101, n = 10: P-value = 0.527089.
        let r = test(&bits_from_str("1011010101"));
        assert!((r.p_value - 0.527_089).abs() < 1e-5, "p = {}", r.p_value);
    }

    #[test]
    fn balanced_stream_passes() {
        let bits: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        assert!((test(&bits).p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_stream_fails() {
        let r = test(&[1; 1000]);
        assert!(r.p_value < 1e-10);
        assert!(!r.passed());
    }

    #[test]
    fn slight_bias_fails_at_scale() {
        // 52 % ones over 100k bits is a 12-sigma deviation.
        let bits: Vec<u8> = (0..100_000).map(|i| u8::from(i % 100 < 52)).collect();
        assert!(!test(&bits).passed());
    }
}
