//! Test 7: Non-overlapping template matching — SP 800-22 §2.7.

use crate::special::igamc;
use crate::templates::standard_m9_templates;
use crate::TestResult;

/// Number of blocks the stream is split into (§2.7.2 recommends N = 8).
pub const N_BLOCKS: usize = 8;

/// Counts non-overlapping occurrences of `template` in `block` (on a
/// match, the scan skips the whole template).
fn count_non_overlapping(block: &[u8], template: &[u8]) -> u64 {
    let m = template.len();
    let mut count = 0;
    let mut i = 0;
    while i + m <= block.len() {
        if &block[i..i + m] == template {
            count += 1;
            i += m;
        } else {
            i += 1;
        }
    }
    count
}

/// p-value for one template over the stream's N blocks.
#[must_use]
pub fn template_p_value(bits: &[u8], template: &[u8]) -> f64 {
    let m = template.len();
    let block_len = bits.len() / N_BLOCKS;
    if block_len < 2 * m {
        return f64::NAN;
    }
    let mu = (block_len - m + 1) as f64 / 2f64.powi(m as i32);
    let sigma2 = block_len as f64
        * (1.0 / 2f64.powi(m as i32) - (2.0 * m as f64 - 1.0) / 2f64.powi(2 * m as i32));
    let mut chi2 = 0.0;
    for b in 0..N_BLOCKS {
        let w = count_non_overlapping(&bits[b * block_len..(b + 1) * block_len], template) as f64;
        chi2 += (w - mu) * (w - mu) / sigma2;
    }
    igamc(N_BLOCKS as f64 / 2.0, chi2 / 2.0)
}

/// Runs the non-overlapping template test over the standard 148-template
/// m = 9 set; the reported p-value is the mean over templates (the paper's
/// Table 10 reports a single number per test).
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    let name = "non_overlapping_template_matching";
    if bits.len() < N_BLOCKS * 64 {
        return TestResult {
            name,
            p_value: f64::NAN,
        };
    }
    let templates = standard_m9_templates();
    let ps: Vec<f64> = templates
        .iter()
        .map(|t| template_p_value(bits, t))
        .filter(|p| p.is_finite())
        .collect();
    if ps.is_empty() {
        return TestResult {
            name,
            p_value: f64::NAN,
        };
    }
    TestResult {
        name,
        p_value: ps.iter().sum::<f64>() / ps.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn counting_skips_matched_region() {
        // "111" in "1111110": matches at 0 and 3 only.
        assert_eq!(count_non_overlapping(&[1, 1, 1, 1, 1, 1, 0], &[1, 1, 1]), 2);
        assert_eq!(count_non_overlapping(&[0, 0, 0], &[1]), 0);
    }

    #[test]
    fn nist_example_2_7_8_counts() {
        // ε = 10100100101110010110, template 001, two blocks of 10:
        // W1 = 2 (matches at offsets 3 and 6), W2 = 1 (offset 3).
        let bits = crate::bits::bits_from_str("10100100101110010110");
        assert_eq!(count_non_overlapping(&bits[..10], &[0, 0, 1]), 2);
        assert_eq!(count_non_overlapping(&bits[10..], &[0, 0, 1]), 1);
    }

    #[test]
    fn random_stream_passes() {
        let mut rng = SmallRng::seed_from_u64(47);
        let bits: Vec<u8> = (0..200_000).map(|_| rng.gen_range(0..2) as u8).collect();
        let r = test(&bits);
        assert!(r.passed(), "p = {}", r.p_value);
        // Mean of many uniform p-values concentrates near 0.5.
        assert!((r.p_value - 0.5).abs() < 0.15, "p = {}", r.p_value);
    }

    #[test]
    fn template_flood_fails_that_template() {
        // A stream of repeated 000000001 contains template 000000001 in
        // every position of every block: far above expectation.
        let bits: Vec<u8> = (0..200_000).map(|i| u8::from(i % 9 == 8)).collect();
        let p = template_p_value(&bits, &[0, 0, 0, 0, 0, 0, 0, 0, 1]);
        assert!(p < 0.01, "p = {p}");
    }

    #[test]
    fn short_stream_is_not_applicable() {
        assert!(test(&[1; 100]).p_value.is_nan());
    }
}
