//! Test 8: Overlapping template matching — SP 800-22 §2.8.

use crate::special::igamc;
use crate::TestResult;

/// Template length (all-ones template of length 9, §2.8.2).
pub const M: usize = 9;

/// Block length (§2.8.8 example parameters for n = 10⁶).
pub const BLOCK: usize = 1032;

/// Class probabilities π₀..π₅ for K = 5 (§2.8.4, Hamano–Kaneko values).
const PI: [f64; 6] = [
    0.364_091,
    0.185_659,
    0.139_381,
    0.100_571,
    0.070_432_3,
    0.139_865,
];

/// Counts overlapping occurrences of the all-ones template in a block.
fn count_overlapping(block: &[u8]) -> u64 {
    block
        .windows(M)
        .filter(|w| w.iter().all(|&b| b == 1))
        .count() as u64
}

/// Runs the overlapping template test.
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    let name = "overlapping_template_matching";
    let n_blocks = bits.len() / BLOCK;
    if n_blocks < 5 {
        return TestResult {
            name,
            p_value: f64::NAN,
        };
    }
    let mut counts = [0u64; 6];
    for block in bits.chunks_exact(BLOCK).take(n_blocks) {
        let occurrences = count_overlapping(block).min(5) as usize;
        counts[occurrences] += 1;
    }
    let n = n_blocks as f64;
    let chi2: f64 = counts
        .iter()
        .zip(PI.iter())
        .map(|(&c, &p)| (c as f64 - n * p) * (c as f64 - n * p) / (n * p))
        .sum();
    TestResult {
        name,
        p_value: igamc(2.5, chi2 / 2.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn overlapping_count_includes_overlaps() {
        let mut block = vec![0u8; 20];
        for b in block.iter_mut().take(11) {
            *b = 1;
        }
        // Eleven ones hold 3 overlapping length-9 windows.
        assert_eq!(count_overlapping(&block), 3);
    }

    #[test]
    fn class_probabilities_sum_to_one() {
        assert!((PI.iter().sum::<f64>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn random_stream_passes() {
        let mut rng = SmallRng::seed_from_u64(53);
        let bits: Vec<u8> = (0..1_000_000).map(|_| rng.gen_range(0..2) as u8).collect();
        let r = test(&bits);
        assert!(r.passed(), "p = {}", r.p_value);
    }

    #[test]
    fn ones_flood_fails() {
        let bits = vec![1u8; 200_000];
        assert!(!test(&bits).passed());
    }

    #[test]
    fn short_stream_is_not_applicable() {
        assert!(test(&[1; 1000]).p_value.is_nan());
    }
}
