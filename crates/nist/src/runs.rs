//! Test 3: Runs — SP 800-22 §2.3.

use crate::special::erfc;
use crate::TestResult;

/// Runs the runs test.
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    let n = bits.len() as f64;
    if bits.is_empty() {
        return TestResult {
            name: "runs",
            p_value: f64::NAN,
        };
    }
    let pi = crate::bits::ones(bits) as f64 / n;
    // Prerequisite frequency check (§2.3.4 step 2).
    if (pi - 0.5).abs() >= 2.0 / n.sqrt() {
        return TestResult {
            name: "runs",
            p_value: 0.0,
        };
    }
    let v_obs = 1 + bits.windows(2).filter(|w| w[0] != w[1]).count();
    let num = (v_obs as f64 - 2.0 * n * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi);
    TestResult {
        name: "runs",
        p_value: erfc(num / den),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bits_from_str;

    #[test]
    fn nist_example_2_3_8() {
        // ε = 1001101011, n = 10: V = 7, P-value = 0.147232.
        let r = test(&bits_from_str("1001101011"));
        assert!((r.p_value - 0.147_232).abs() < 1e-5, "p = {}", r.p_value);
    }

    #[test]
    fn alternating_stream_fails_with_too_many_runs() {
        let bits: Vec<u8> = (0..10_000).map(|i| (i % 2) as u8).collect();
        assert!(!test(&bits).passed());
    }

    #[test]
    fn long_runs_fail() {
        // Balanced ones count but clustered: half ones then half zeros.
        let mut bits = vec![1u8; 5000];
        bits.extend(vec![0u8; 5000]);
        assert!(!test(&bits).passed());
    }

    #[test]
    fn biased_stream_short_circuits_to_zero() {
        let r = test(&[1; 10_000]);
        assert_eq!(r.p_value, 0.0);
    }

    #[test]
    fn empty_stream_is_not_applicable() {
        assert!(test(&[]).p_value.is_nan());
    }
}
