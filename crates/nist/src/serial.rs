//! Test 11: Serial — SP 800-22 §2.11.

use crate::special::igamc;
use crate::TestResult;

/// Default pattern length (must satisfy `m < log2(n) − 2`).
pub const DEFAULT_M: u32 = 16;

/// ψ²_m statistic: overlapping m-bit pattern frequencies with wraparound.
fn psi_squared(bits: &[u8], m: u32) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len();
    let mut counts = vec![0u64; 1usize << m];
    let mask = (1usize << m) - 1;
    let mut pattern = 0usize;
    // Prime the first m−1 bits (with wraparound bits from the start).
    for &b in bits.iter().take(m as usize - 1) {
        pattern = ((pattern << 1) | b as usize) & mask;
    }
    for i in 0..n {
        let b = bits[(i + m as usize - 1) % n];
        pattern = ((pattern << 1) | b as usize) & mask;
        counts[pattern] += 1;
    }
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    (1usize << m) as f64 / n as f64 * sum_sq - n as f64
}

/// Runs the serial test; returns the smaller of the two p-values
/// (`∇ψ²` and `∇²ψ²`), the conservative single-number summary.
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    let m = DEFAULT_M.min(((bits.len() as f64).log2() - 3.0).max(2.0) as u32);
    test_with_m(bits, m)
}

/// Runs the serial test with an explicit pattern length.
#[must_use]
pub fn test_with_m(bits: &[u8], m: u32) -> TestResult {
    let name = "serial";
    if bits.is_empty() || m < 2 {
        return TestResult {
            name,
            p_value: f64::NAN,
        };
    }
    let psi_m = psi_squared(bits, m);
    let psi_m1 = psi_squared(bits, m - 1);
    let psi_m2 = psi_squared(bits, m.saturating_sub(2));
    let d1 = psi_m - psi_m1;
    let d2 = psi_m - 2.0 * psi_m1 + psi_m2;
    let p1 = igamc(2f64.powi(m as i32 - 2), d1 / 2.0);
    let p2 = igamc(2f64.powi(m as i32 - 3), d2 / 2.0);
    TestResult {
        name,
        p_value: p1.min(p2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::bits_from_str;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn nist_example_psi_values() {
        // SP 800-22 §2.11.8: ε = 0011011101, m = 3:
        // ψ²₃ = 2.8, ψ²₂ = 1.2, ψ²₁ = 0.4.
        let bits = bits_from_str("0011011101");
        assert!((psi_squared(&bits, 3) - 2.8).abs() < 1e-9);
        assert!((psi_squared(&bits, 2) - 1.2).abs() < 1e-9);
        assert!((psi_squared(&bits, 1) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn nist_example_p_values() {
        // ∇ψ² = 1.6, ∇²ψ² = 0.8 → P1 = igamc(2, 0.8) = 0.808792,
        // P2 = igamc(1, 0.4) = 0.670320; we report the min.
        let bits = bits_from_str("0011011101");
        let r = test_with_m(&bits, 3);
        assert!((r.p_value - 0.670_320).abs() < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn random_stream_passes() {
        let mut rng = SmallRng::seed_from_u64(41);
        let bits: Vec<u8> = (0..524_288).map(|_| rng.gen_range(0..2) as u8).collect();
        let r = test(&bits);
        assert!(r.passed(), "p = {}", r.p_value);
    }

    #[test]
    fn periodic_stream_fails() {
        let bits: Vec<u8> = (0..524_288).map(|i| u8::from(i % 4 < 2)).collect();
        assert!(!test(&bits).passed());
    }

    #[test]
    fn empty_stream_is_not_applicable() {
        assert!(test(&[]).p_value.is_nan());
    }
}
