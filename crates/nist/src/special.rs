//! Special functions needed by SP 800-22: the complementary error function,
//! the regularized incomplete gamma functions, and the standard normal CDF.

use std::f64::consts::PI;

/// Natural log of the gamma function (Lanczos approximation, g = 7).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = 0.999_999_999_999_809_9;
    for (i, &c) in COEFFS.iter().enumerate() {
        a += c / (x + (i as f64) + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
#[must_use]
pub fn igam(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        igam_series(a, x)
    } else {
        1.0 - igamc_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)` —
/// the function SP 800-22 calls `igamc`.
#[must_use]
pub fn igamc(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - igam_series(a, x)
    } else {
        igamc_cf(a, x)
    }
}

/// Series expansion for P(a, x), valid for x < a + 1.
fn igam_series(a: f64, x: f64) -> f64 {
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction for Q(a, x), valid for x ≥ a + 1 (Lentz's method).
fn igamc_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * ((i as f64) - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Complementary error function, via the incomplete gamma relation
/// `erfc(x) = Q(1/2, x²)` for `x ≥ 0` and the reflection `erfc(−x) = 2 − erfc(x)`.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else {
        igamc(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function.
#[must_use]
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-10);
        close(ln_gamma(0.5), PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn erfc_known_values() {
        close(erfc(0.0), 1.0, 1e-12);
        close(erfc(1.0), 0.157_299_207, 1e-7);
        close(erfc(2.0), 0.004_677_735, 1e-8);
        close(erfc(-1.0), 2.0 - 0.157_299_207, 1e-7);
    }

    #[test]
    fn igamc_known_values() {
        // Q(1, x) = e^{-x}.
        close(igamc(1.0, 2.0), (-2.0f64).exp(), 1e-10);
        // Q(0.5, x) = erfc(sqrt(x)).
        close(igamc(0.5, 4.0), erfc(2.0), 1e-10);
        // P + Q = 1.
        close(igam(3.0, 2.5) + igamc(3.0, 2.5), 1.0, 1e-12);
    }

    #[test]
    fn igamc_nist_example() {
        // SP 800-22 block-frequency example: igamc(3/2, 1/2) = 0.801252.
        close(igamc(1.5, 0.5), 0.801_252, 1e-5);
    }

    #[test]
    fn normal_cdf_is_symmetric() {
        close(normal_cdf(0.0), 0.5, 1e-12);
        close(normal_cdf(1.96), 0.975, 1e-3);
        close(normal_cdf(-1.96) + normal_cdf(1.96), 1.0, 1e-12);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(igamc(1.0, 0.0), 1.0);
        assert_eq!(igam(1.0, 0.0), 0.0);
    }
}
