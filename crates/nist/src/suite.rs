//! Running the full 15-test suite (the paper's Table 10).

use crate::TestResult;

/// Results of a full suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResult {
    /// One row per test, in Table 10 order.
    pub rows: Vec<TestResult>,
}

impl SuiteResult {
    /// Whether every applicable test passed.
    #[must_use]
    pub fn all_pass(&self) -> bool {
        self.rows.iter().all(TestResult::passed)
    }

    /// Number of tests that produced a finite p-value.
    #[must_use]
    pub fn applicable(&self) -> usize {
        self.rows.iter().filter(|r| r.p_value.is_finite()).count()
    }
}

/// Runs all 15 SP 800-22 tests in the order of the paper's Table 10.
#[must_use]
pub fn run_suite(bits: &[u8]) -> SuiteResult {
    SuiteResult {
        rows: vec![
            crate::monobit::test(bits),
            crate::block_frequency::test(bits),
            crate::runs::test(bits),
            crate::longest_run::test(bits),
            crate::binary_rank::test(bits),
            crate::dft::test(bits),
            crate::non_overlapping::test(bits),
            crate::overlapping::test(bits),
            crate::universal::test(bits),
            crate::linear_complexity::test(bits),
            crate::serial::test(bits),
            crate::approx_entropy::test(bits),
            crate::cusum::test(bits),
            crate::excursions::test(bits),
            crate::excursions_variant::test(bits),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn suite_has_fifteen_tests_in_table10_order() {
        let r = run_suite(&[1, 0, 1, 0]);
        assert_eq!(r.rows.len(), 15);
        assert_eq!(r.rows[0].name, "monobit");
        assert_eq!(r.rows[14].name, "random_excursion_variant");
    }

    #[test]
    fn good_rng_passes_every_applicable_test() {
        // 2 Mbit, as the paper's 250 KB streams (§6.1.3).
        let mut rng = SmallRng::seed_from_u64(0xC0D1C);
        let bits: Vec<u8> = (0..2_000_000).map(|_| rng.gen_range(0..2) as u8).collect();
        let r = run_suite(&bits);
        for row in &r.rows {
            assert!(row.passed(), "{} failed with p = {}", row.name, row.p_value);
        }
        // Every test except possibly the two random-excursions tests
        // (which require >= 500 zero crossings of this particular walk)
        // is applicable at this length.
        assert!(r.applicable() >= 13, "applicable = {}", r.applicable());
    }

    #[test]
    fn constant_stream_fails_many_tests() {
        let r = run_suite(&vec![1u8; 200_000]);
        let failures = r.rows.iter().filter(|t| !t.passed()).count();
        assert!(failures >= 5, "only {failures} failures");
        assert!(!r.all_pass());
    }
}
