//! Aperiodic template generation for the non-overlapping template test.

/// Returns true when the template cannot overlap a shifted copy of itself:
/// for every shift `1 ≤ j < m`, the last `m − j` bits differ from the first
/// `m − j` bits.
#[must_use]
pub fn is_aperiodic(template: &[u8]) -> bool {
    let m = template.len();
    (1..m).all(|j| template[j..] != template[..m - j])
}

/// All aperiodic templates of length `m` in lexicographic order.
#[must_use]
pub fn aperiodic_templates(m: u32) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for value in 0..(1u32 << m) {
        let bits: Vec<u8> = (0..m).rev().map(|i| ((value >> i) & 1) as u8).collect();
        if is_aperiodic(&bits) {
            out.push(bits);
        }
    }
    out
}

/// The standard template set for the non-overlapping test at `m = 9`:
/// NIST's suite ships 148 templates; we use the first 148 aperiodic
/// templates in lexicographic order (a fixed, documented choice — the test
/// statistic does not depend on which aperiodic templates are used).
#[must_use]
pub fn standard_m9_templates() -> Vec<Vec<u8>> {
    let mut all = aperiodic_templates(9);
    all.truncate(148);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_templates_are_rejected() {
        assert!(!is_aperiodic(&[1, 0, 1])); // "101" overlaps itself at shift 2
        assert!(!is_aperiodic(&[1, 1])); // "11" overlaps at shift 1
        assert!(!is_aperiodic(&[1, 0, 1, 0])); // period 2
    }

    #[test]
    fn known_aperiodic_templates() {
        assert!(is_aperiodic(&[0, 0, 1])); // NIST lists 001 for m = 3
        assert!(is_aperiodic(&[0, 1, 1]));
        assert!(is_aperiodic(&[1, 0, 0]));
        assert!(is_aperiodic(&[1, 1, 0]));
    }

    #[test]
    fn m3_has_four_aperiodic_templates() {
        // NIST SP 800-22 Table: 4 templates for m = 3.
        assert_eq!(aperiodic_templates(3).len(), 4);
    }

    #[test]
    fn m9_standard_set_has_148_templates() {
        let t = standard_m9_templates();
        assert_eq!(t.len(), 148);
        assert!(t.iter().all(|b| b.len() == 9 && is_aperiodic(b)));
        // Deterministic order: first template is 000000001.
        assert_eq!(t[0], vec![0, 0, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn aperiodic_count_grows_with_length() {
        assert!(aperiodic_templates(5).len() > aperiodic_templates(3).len());
    }
}
