//! Test 9: Maurer's "universal statistical" test — SP 800-22 §2.9.

use crate::special::erfc;
use crate::TestResult;

/// `(L, expected value, variance)` rows from SP 800-22 Table 2.9.1.
const TABLE: [(u32, f64, f64); 11] = [
    (6, 5.217_705_2, 2.954),
    (7, 6.196_250_7, 3.125),
    (8, 7.183_665_6, 3.238),
    (9, 8.176_424_8, 3.311),
    (10, 9.172_324_3, 3.356),
    (11, 10.170_032, 3.384),
    (12, 11.168_765, 3.401),
    (13, 12.168_070, 3.410),
    (14, 13.167_693, 3.416),
    (15, 14.167_488, 3.419),
    (16, 15.167_379, 3.421),
];

/// Chooses the block length L from the stream length (§2.9.7).
fn choose_l(n: usize) -> Option<u32> {
    let thresholds: [(usize, u32); 11] = [
        (387_840, 6),
        (904_960, 7),
        (2_068_480, 8),
        (4_654_080, 9),
        (10_342_400, 10),
        (22_753_280, 11),
        (49_643_520, 12),
        (107_560_960, 13),
        (231_669_760, 14),
        (496_435_200, 15),
        (1_059_061_760, 16),
    ];
    let mut l = None;
    for (min_n, candidate) in thresholds {
        if n >= min_n {
            l = Some(candidate);
        }
    }
    l
}

/// Runs Maurer's universal test with automatic parameter selection.
#[must_use]
pub fn test(bits: &[u8]) -> TestResult {
    let Some(l) = choose_l(bits.len()) else {
        return TestResult {
            name: "maurers_universal",
            p_value: f64::NAN,
        };
    };
    test_with_l(bits, l)
}

/// Runs the test with an explicit block length `L` (6–16); `Q = 10·2^L`
/// initialization blocks.
#[must_use]
pub fn test_with_l(bits: &[u8], l: u32) -> TestResult {
    let name = "maurers_universal";
    let Some(&(_, expected, variance)) = TABLE.iter().find(|row| row.0 == l) else {
        return TestResult {
            name,
            p_value: f64::NAN,
        };
    };
    let q = 10 * (1usize << l);
    let total_blocks = bits.len() / l as usize;
    if total_blocks <= q {
        return TestResult {
            name,
            p_value: f64::NAN,
        };
    }
    let k = total_blocks - q;
    let mut last_seen = vec![0u64; 1 << l];
    let block_value = |i: usize| -> usize {
        let mut v = 0usize;
        for j in 0..l as usize {
            v = (v << 1) | bits[i * l as usize + j] as usize;
        }
        v
    };
    for i in 0..q {
        last_seen[block_value(i)] = (i + 1) as u64;
    }
    let mut sum = 0.0;
    for i in q..total_blocks {
        let v = block_value(i);
        let distance = (i + 1) as u64 - last_seen[v];
        sum += (distance as f64).log2();
        last_seen[v] = (i + 1) as u64;
    }
    let fn_stat = sum / k as f64;
    let c = 0.7 - 0.8 / f64::from(l)
        + (4.0 + 32.0 / f64::from(l)) * (k as f64).powf(-3.0 / f64::from(l)) / 15.0;
    let sigma = c * (variance / k as f64).sqrt();
    TestResult {
        name,
        p_value: erfc(((fn_stat - expected) / sigma).abs() / std::f64::consts::SQRT_2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn l_selection_follows_spec() {
        assert_eq!(choose_l(100_000), None);
        assert_eq!(choose_l(400_000), Some(6));
        assert_eq!(choose_l(1_000_000), Some(7));
        assert_eq!(choose_l(2_100_000), Some(8));
    }

    #[test]
    fn random_stream_passes() {
        let mut rng = SmallRng::seed_from_u64(23);
        let bits: Vec<u8> = (0..400_000).map(|_| rng.gen_range(0..2) as u8).collect();
        let r = test(&bits);
        assert!(r.passed(), "p = {}", r.p_value);
    }

    #[test]
    fn repetitive_stream_fails() {
        // A short repeating pattern makes block distances tiny.
        let pattern = [1u8, 1, 0, 1, 0, 0, 1, 0, 1, 1, 0, 0];
        let bits: Vec<u8> = (0..400_000).map(|i| pattern[i % pattern.len()]).collect();
        let r = test(&bits);
        assert!(!r.passed(), "p = {}", r.p_value);
    }

    #[test]
    fn short_stream_is_not_applicable() {
        assert!(test(&[1; 1000]).p_value.is_nan());
    }
}
