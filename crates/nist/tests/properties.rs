//! Property-based tests of the NIST suite's structural invariants.

use codic_nist::extractor::von_neumann;
use codic_nist::special::{erfc, igam, igamc};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn p_values_are_probabilities(bits in proptest::collection::vec(0u8..2, 10..2000)) {
        for result in [
            codic_nist::monobit::test(&bits),
            codic_nist::runs::test(&bits),
            codic_nist::cusum::test(&bits),
            codic_nist::serial::test(&bits),
            codic_nist::approx_entropy::test(&bits),
        ] {
            if result.p_value.is_finite() {
                prop_assert!(
                    (-1e-9..=1.0 + 1e-9).contains(&result.p_value),
                    "{}: p = {}",
                    result.name,
                    result.p_value
                );
            }
        }
    }

    #[test]
    fn von_neumann_output_is_shorter_and_binary(bits in proptest::collection::vec(0u8..2, 0..4000)) {
        let out = von_neumann(&bits);
        prop_assert!(out.len() <= bits.len() / 2);
        prop_assert!(out.iter().all(|&b| b <= 1));
    }

    #[test]
    fn incomplete_gamma_halves_sum_to_one(a in 0.1f64..50.0, x in 0.0f64..100.0) {
        let sum = igam(a, x) + igamc(a, x);
        prop_assert!((sum - 1.0).abs() < 1e-9, "P + Q = {sum}");
    }

    #[test]
    fn erfc_is_monotone_decreasing(x in -5.0f64..5.0) {
        prop_assert!(erfc(x) >= erfc(x + 0.01) - 1e-12);
        prop_assert!((0.0..=2.0).contains(&erfc(x)));
    }
}
