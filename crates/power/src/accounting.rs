//! Shared per-row-operation latency/energy accounting.
//!
//! One place for the bank-occupancy and energy cost of every in-DRAM row
//! operation the studies schedule (CODIC, RowClone FPM, LISA-clone), so the
//! cold-boot sweep, the secure-deallocation trace splicer, and the device
//! service layer all charge identical costs:
//!
//! - **CODIC**: one activation-class command, tRC of bank occupancy and one
//!   activate–precharge cycle of energy (§4.3, §6.2).
//! - **RowClone FPM**: a back-to-back activation pair plus precharge
//!   (2·tRAS + tRP), two activations of energy (Seshadri et al.).
//! - **LISA-clone**: the activation pair plus the row-buffer-movement
//!   sequence and its restore (≈ 70 ns of extra occupancy, ≈ 11 nJ of extra
//!   bitline energy per row, calibrated so the occupancy-bound sweep lands
//!   on the paper's 2.5× CODIC destruction time).

use codic_dram::request::RowOpKind;
use codic_dram::TimingParams;

use crate::energy::EnergyModel;

/// Extra bank-occupancy of LISA's row-buffer-movement sequence and its
/// restore, in nanoseconds.
pub const LISA_MOVEMENT_NS: f64 = 70.0;

/// Extra per-row energy of LISA's row-buffer movement (the full row of
/// bitlines swings one extra time), in nanojoules.
pub const LISA_MOVEMENT_ENERGY_NJ: f64 = 11.0;

/// Extra bank-occupancy of a triple-row activation beyond tRC: the three
/// cells charge-share onto the bitlines before the sense amplifiers can be
/// enabled, and the restore must recharge three cells instead of one
/// (Ambit/SIMDRAM charge-sharing settle), in nanoseconds.
pub const TRA_CHARGE_SHARE_NS: f64 = 6.0;

/// Extra per-row energy of a triple-row activation beyond the three
/// activations' worth of bitline energy: the simultaneous wordline drive
/// and deeper restore, in nanojoules.
pub const TRA_SHARE_ENERGY_NJ: f64 = 4.0;

/// Extra per-row energy of a dual-contact negation: the inverted
/// sense-amplifier side drives the destination row's bitlines one extra
/// half-swing, in nanojoules.
pub const DCC_NOT_ENERGY_NJ: f64 = 2.0;

/// The full accounted cost of one row operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowOpCost {
    /// Which operation the cost describes.
    pub kind: RowOpKind,
    /// Bank-occupancy duration in memory cycles.
    pub busy_cycles: u32,
    /// Activations charged against the rank's tRRD/tFAW windows.
    pub activations: u8,
    /// Total energy of the operation in nanojoules.
    pub energy_nj: f64,
}

/// Bank-occupancy duration of one row operation of `kind`, in memory
/// cycles.
#[must_use]
pub fn row_op_busy_cycles(kind: RowOpKind, t: &TimingParams) -> u32 {
    match kind {
        RowOpKind::Codic => t.t_rc,
        RowOpKind::RowClone => 2 * t.t_ras + t.t_rp,
        RowOpKind::LisaClone => 2 * t.t_ras + t.t_rp + t.cycles_from_ns(LISA_MOVEMENT_NS),
        RowOpKind::TripleAct => t.t_rc + t.cycles_from_ns(TRA_CHARGE_SHARE_NS),
        RowOpKind::DualContact => 2 * t.t_ras + t.t_rp,
    }
}

/// Per-row energy beyond the activations [`EnergyModel::row_op_nj`]
/// already charges, in nanojoules.
#[must_use]
pub fn row_op_extra_energy_nj(kind: RowOpKind) -> f64 {
    match kind {
        RowOpKind::LisaClone => LISA_MOVEMENT_ENERGY_NJ,
        RowOpKind::TripleAct => TRA_SHARE_ENERGY_NJ,
        RowOpKind::DualContact => DCC_NOT_ENERGY_NJ,
        RowOpKind::Codic | RowOpKind::RowClone => 0.0,
    }
}

/// The full cost of one row operation of `kind` under `timing` and the
/// energy model.
#[must_use]
pub fn row_op_cost(kind: RowOpKind, timing: &TimingParams, energy: &EnergyModel) -> RowOpCost {
    RowOpCost {
        kind,
        busy_cycles: row_op_busy_cycles(kind, timing),
        activations: kind.activations(),
        energy_nj: energy.row_op_nj(u64::from(kind.activations())) + row_op_extra_energy_nj(kind),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600_11()
    }

    #[test]
    fn codic_occupies_one_row_cycle() {
        assert_eq!(row_op_busy_cycles(RowOpKind::Codic, &t()), t().t_rc);
    }

    #[test]
    fn occupancy_ordering_matches_the_paper() {
        let t = t();
        let codic = row_op_busy_cycles(RowOpKind::Codic, &t);
        let rc = row_op_busy_cycles(RowOpKind::RowClone, &t);
        let lisa = row_op_busy_cycles(RowOpKind::LisaClone, &t);
        assert!(codic < rc && rc < lisa);
    }

    #[test]
    fn only_lisa_pays_movement_energy() {
        assert_eq!(row_op_extra_energy_nj(RowOpKind::Codic), 0.0);
        assert_eq!(row_op_extra_energy_nj(RowOpKind::RowClone), 0.0);
        assert_eq!(
            row_op_extra_energy_nj(RowOpKind::LisaClone),
            LISA_MOVEMENT_ENERGY_NJ
        );
    }

    #[test]
    fn cost_combines_activation_energy_and_extras() {
        let t = t();
        let model = EnergyModel::paper_default();
        let codic = row_op_cost(RowOpKind::Codic, &t, &model);
        assert_eq!(codic.activations, 1);
        assert!((codic.energy_nj - model.act_pre_nj()).abs() < 1e-9);
        let lisa = row_op_cost(RowOpKind::LisaClone, &t, &model);
        assert_eq!(lisa.activations, 2);
        assert!(
            (lisa.energy_nj - (2.0 * model.act_pre_nj() + LISA_MOVEMENT_ENERGY_NJ)).abs() < 1e-9
        );
    }

    #[test]
    fn triple_activation_pays_charge_sharing_over_a_plain_codic_cycle() {
        let t = t();
        let model = EnergyModel::paper_default();
        let tra = row_op_cost(RowOpKind::TripleAct, &t, &model);
        assert_eq!(tra.activations, 3);
        assert_eq!(
            tra.busy_cycles,
            t.t_rc + t.cycles_from_ns(TRA_CHARGE_SHARE_NS)
        );
        assert!(
            (tra.energy_nj - (3.0 * model.act_pre_nj() + TRA_SHARE_ENERGY_NJ)).abs() < 1e-9,
            "three activations of bitline energy plus the charge-sharing extra"
        );
        let codic = row_op_cost(RowOpKind::Codic, &t, &model);
        assert!(tra.busy_cycles > codic.busy_cycles && tra.energy_nj > codic.energy_nj);
    }

    #[test]
    fn dual_contact_costs_an_activation_pair_plus_the_inverter_swing() {
        let t = t();
        let model = EnergyModel::paper_default();
        let not = row_op_cost(RowOpKind::DualContact, &t, &model);
        assert_eq!(not.activations, 2);
        assert_eq!(
            not.busy_cycles,
            row_op_busy_cycles(RowOpKind::RowClone, &t),
            "same activation pair as a RowClone copy"
        );
        assert!((not.energy_nj - (2.0 * model.act_pre_nj() + DCC_NOT_ENERGY_NJ)).abs() < 1e-9);
    }
}
