//! Per-command and whole-run energy computation.

use codic_dram::{MemStats, TimingParams};

use crate::idd::IddValues;

/// Rank-level DRAM energy model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    idd: IddValues,
    timing: TimingParams,
    devices: u32,
}

/// Energy attributed to each command class over a run, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Activate + precharge row cycles.
    pub act_pre_nj: f64,
    /// Read and write bursts.
    pub read_write_nj: f64,
    /// Refresh operations.
    pub refresh_nj: f64,
    /// Row operations (CODIC / RowClone / LISA-clone).
    pub row_op_nj: f64,
    /// Background (standby) energy over the elapsed time.
    pub background_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    #[must_use]
    pub fn total_nj(&self) -> f64 {
        self.act_pre_nj + self.read_write_nj + self.refresh_nj + self.row_op_nj + self.background_nj
    }

    /// Total energy in millijoules.
    #[must_use]
    pub fn total_mj(&self) -> f64 {
        self.total_nj() * 1e-6
    }
}

impl EnergyModel {
    /// Creates a model for a rank of `devices` chips.
    #[must_use]
    pub fn new(idd: IddValues, timing: TimingParams, devices: u32) -> Self {
        EnergyModel {
            idd,
            timing,
            devices,
        }
    }

    /// The default paper configuration: DDR3-1600, 8 × x8 devices.
    #[must_use]
    pub fn paper_default() -> Self {
        EnergyModel::new(IddValues::ddr3_1600(), TimingParams::ddr3_1600_11(), 8)
    }

    fn rank_factor(&self) -> f64 {
        self.idd.vdd * f64::from(self.devices) * 1e-3 // mA → A
    }

    /// Energy of one full activate–precharge row cycle in nanojoules
    /// (DRAMPower's `E_act + E_pre`): the IDD0 charge over tRC minus the
    /// background charge that would have flowed anyway.
    #[must_use]
    pub fn act_pre_nj(&self) -> f64 {
        let t = &self.timing;
        let t_rc = t.ns(u64::from(t.t_rc));
        let t_ras = t.ns(u64::from(t.t_ras));
        let t_rp = t_rc - t_ras;
        let charge_nc =
            self.idd.idd0_ma * t_rc - (self.idd.idd3n_ma * t_ras + self.idd.idd2n_ma * t_rp);
        charge_nc * self.rank_factor()
    }

    /// Energy of one read burst in nanojoules.
    #[must_use]
    pub fn read_burst_nj(&self) -> f64 {
        let dt = self.timing.ns(u64::from(self.timing.t_bl));
        (self.idd.idd4r_ma - self.idd.idd3n_ma) * dt * self.rank_factor()
    }

    /// Energy of one write burst in nanojoules.
    #[must_use]
    pub fn write_burst_nj(&self) -> f64 {
        let dt = self.timing.ns(u64::from(self.timing.t_bl));
        (self.idd.idd4w_ma - self.idd.idd3n_ma) * dt * self.rank_factor()
    }

    /// Energy of one all-bank refresh in nanojoules.
    #[must_use]
    pub fn refresh_nj(&self) -> f64 {
        let dt = self.timing.ns(u64::from(self.timing.t_rfc));
        (self.idd.idd5_ma - self.idd.idd3n_ma) * dt * self.rank_factor()
    }

    /// Energy of one row operation in nanojoules. Each activation a row
    /// operation performs costs one activate–precharge cycle; this is how
    /// the paper charges CODIC (1 activation), RowClone and LISA-clone
    /// (2 activations) per row (§6.2).
    #[must_use]
    pub fn row_op_nj(&self, activations: u64) -> f64 {
        self.act_pre_nj() * activations as f64
    }

    /// Background (standby) energy over `cycles`, with `active_fraction`
    /// of the time spent with at least one bank open.
    #[must_use]
    pub fn background_nj(&self, cycles: u64, active_fraction: f64) -> f64 {
        let f = active_fraction.clamp(0.0, 1.0);
        let dt = self.timing.ns(cycles);
        let ma = self.idd.idd3n_ma * f + self.idd.idd2n_ma * (1.0 - f);
        ma * dt * self.rank_factor()
    }

    /// Full-run energy from controller statistics.
    ///
    /// The active fraction for background energy is estimated from the
    /// activate count (each activate keeps a bank open for at least tRAS),
    /// capped at 1.
    #[must_use]
    pub fn breakdown(&self, stats: &MemStats, cycles: u64) -> EnergyBreakdown {
        let t = &self.timing;
        let act_busy = (stats.activates * u64::from(t.t_ras)) as f64;
        let banks = 8.0;
        let active_fraction = if cycles == 0 {
            0.0
        } else {
            (act_busy / banks / cycles as f64).min(1.0)
        };
        EnergyBreakdown {
            act_pre_nj: self.act_pre_nj() * stats.activates as f64,
            read_write_nj: self.read_burst_nj() * stats.reads as f64
                + self.write_burst_nj() * stats.writes as f64,
            refresh_nj: self.refresh_nj() * stats.refreshes as f64,
            row_op_nj: self.row_op_nj(stats.row_op_activations),
            background_nj: self.background_nj(cycles, active_fraction),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::paper_default()
    }

    #[test]
    fn act_pre_is_calibrated_to_17_3_nj() {
        let e = model().act_pre_nj();
        assert!((e - 17.3).abs() < 0.1, "act+pre = {e} nJ");
    }

    #[test]
    fn bursts_cost_single_digit_nanojoules() {
        let r = model().read_burst_nj();
        let w = model().write_burst_nj();
        assert!(r > 1.0 && r < 10.0, "read = {r} nJ");
        assert!(w > r, "writes draw more current than reads");
    }

    #[test]
    fn refresh_costs_hundreds_of_nanojoules() {
        let e = model().refresh_nj();
        assert!(e > 100.0 && e < 2000.0, "refresh = {e} nJ");
    }

    #[test]
    fn row_ops_scale_with_activations() {
        let m = model();
        assert!((m.row_op_nj(2) - 2.0 * m.act_pre_nj()).abs() < 1e-9);
        assert_eq!(m.row_op_nj(0), 0.0);
    }

    #[test]
    fn background_interpolates_between_standby_currents() {
        let m = model();
        let idle = m.background_nj(800, 0.0);
        let active = m.background_nj(800, 1.0);
        let half = m.background_nj(800, 0.5);
        assert!(idle < active);
        assert!((half - (idle + active) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_totals_all_components() {
        let stats = MemStats {
            activates: 10,
            reads: 5,
            writes: 5,
            refreshes: 1,
            row_op_activations: 4,
            ..MemStats::default()
        };
        let b = model().breakdown(&stats, 10_000);
        assert!(b.act_pre_nj > 0.0);
        assert!(b.read_write_nj > 0.0);
        assert!(b.refresh_nj > 0.0);
        assert!(b.row_op_nj > 0.0);
        assert!(b.background_nj > 0.0);
        let sum = b.act_pre_nj + b.read_write_nj + b.refresh_nj + b.row_op_nj + b.background_nj;
        assert!((b.total_nj() - sum).abs() < 1e-9);
        assert!((b.total_mj() - b.total_nj() * 1e-6).abs() < 1e-15);
    }

    #[test]
    fn ddr3l_consumes_less_than_ddr3() {
        let l = EnergyModel::new(
            crate::IddValues::ddr3l_1600(),
            TimingParams::ddr3_1600_11(),
            8,
        );
        assert!(l.act_pre_nj() < model().act_pre_nj());
    }

    #[test]
    fn zero_cycles_has_zero_background() {
        let b = model().breakdown(&MemStats::default(), 0);
        assert_eq!(b.background_nj, 0.0);
        assert_eq!(b.total_nj(), 0.0);
    }
}
