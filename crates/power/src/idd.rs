//! Datasheet IDD current values (per device).

/// Per-device IDD currents in milliamperes plus the supply voltage, as
/// found in DDR3 datasheets.
///
/// `idd0` is calibrated (71.75 mA) so the rank-level activate–precharge
/// energy lands on the paper's ≈ 17.3 nJ (§4.1.1, Table 2); the remaining
/// values are typical Micron DDR3-1600 4 Gb numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IddValues {
    /// One-bank activate–precharge current.
    pub idd0_ma: f64,
    /// Precharge standby current.
    pub idd2n_ma: f64,
    /// Active standby current.
    pub idd3n_ma: f64,
    /// Burst read current.
    pub idd4r_ma: f64,
    /// Burst write current.
    pub idd4w_ma: f64,
    /// Refresh current.
    pub idd5_ma: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
}

impl IddValues {
    /// DDR3-1600 values (1.5 V).
    #[must_use]
    pub fn ddr3_1600() -> Self {
        IddValues {
            idd0_ma: 71.75,
            idd2n_ma: 35.0,
            idd3n_ma: 45.0,
            idd4r_ma: 140.0,
            idd4w_ma: 145.0,
            idd5_ma: 215.0,
            vdd: 1.5,
        }
    }

    /// DDR3L-1600 values (1.35 V): same currents at the lower rail.
    #[must_use]
    pub fn ddr3l_1600() -> Self {
        IddValues {
            vdd: 1.35,
            ..IddValues::ddr3_1600()
        }
    }
}

impl Default for IddValues {
    fn default() -> Self {
        IddValues::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_currents_exceed_standby() {
        let i = IddValues::ddr3_1600();
        assert!(i.idd4r_ma > i.idd3n_ma);
        assert!(i.idd4w_ma > i.idd3n_ma);
        assert!(i.idd3n_ma > i.idd2n_ma);
        assert!(i.idd5_ma > i.idd3n_ma);
    }

    #[test]
    fn ddr3l_runs_at_lower_voltage() {
        assert!(IddValues::ddr3l_1600().vdd < IddValues::ddr3_1600().vdd);
    }
}
