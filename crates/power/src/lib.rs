//! IDD-based DRAM energy model, substituting for the customized DRAMPower
//! tool the CODIC paper uses (§4.3, §6.2, Appendix A).
//!
//! Energy is computed the way DRAMPower does it: per-command charge from
//! datasheet IDD currents minus the background current, times the supply
//! voltage, times the number of devices in the rank.
//!
//! The IDD values are calibrated so a full activate-precharge row cycle on
//! an 8-device DDR3-1600 rank costs ~17.3 nJ, the number the paper reports
//! for a standard activation (4.1.1: "~17 nJ") and for CODIC-activate in
//! Table 2.
//!
//! # Example
//!
//! ```
//! use codic_power::{EnergyModel, IddValues};
//! use codic_dram::TimingParams;
//!
//! let model = EnergyModel::new(IddValues::ddr3_1600(), TimingParams::ddr3_1600_11(), 8);
//! let act_pre = model.act_pre_nj();
//! assert!((act_pre - 17.3).abs() < 0.1, "row cycle = {act_pre} nJ");
//! ```

pub mod accounting;
pub mod energy;
pub mod idd;

pub use accounting::{row_op_cost, RowOpCost};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use idd::IddValues;
