//! Naive challenge-response authentication on top of the CODIC-sig PUF
//! (§6.1.1: FRR 0.64 %, FAR 0.00 % with exact-match verification).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::challenge::{Challenge, Response};
use crate::chip::ChipModel;
use crate::mechanisms::{Environment, PufMechanism};
use crate::population::Module;

/// An enrolled challenge-response pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Enrollment {
    /// The challenge presented at verification time.
    pub challenge: Challenge,
    /// The exact response expected.
    pub expected: Response,
}

/// Enrolls a device: evaluates the challenge once and stores the response.
pub fn enroll(
    mechanism: &dyn PufMechanism,
    chip: &ChipModel,
    challenge: Challenge,
    env: &Environment,
) -> Enrollment {
    Enrollment {
        challenge,
        expected: mechanism.evaluate(chip, &challenge, env, 0),
    }
}

/// Enrolls a device over a whole challenge set at once, evaluating the
/// responses in parallel via [`PufMechanism::evaluate_many`]. Challenge
/// `i` is enrolled under nonce `i` (any fixed nonce works — the stored
/// response is the reference later verifications are compared against).
pub fn enroll_many(
    mechanism: &dyn PufMechanism,
    chip: &ChipModel,
    challenges: &[Challenge],
    env: &Environment,
) -> Vec<Enrollment> {
    challenges
        .iter()
        .zip(mechanism.evaluate_many(chip, challenges, env, 0))
        .map(|(&challenge, expected)| Enrollment {
            challenge,
            expected,
        })
        .collect()
}

/// Verifies a device with exact-match comparison (no filtering).
pub fn verify(
    mechanism: &dyn PufMechanism,
    chip: &ChipModel,
    enrollment: &Enrollment,
    env: &Environment,
    nonce: u64,
) -> bool {
    mechanism.evaluate(chip, &enrollment.challenge, env, nonce) == enrollment.expected
}

/// False rejection / false acceptance rates over a population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuthRates {
    /// Fraction of genuine verifications rejected.
    pub frr: f64,
    /// Fraction of impostor verifications accepted.
    pub far: f64,
}

/// Measures FRR (genuine device re-verification) and FAR (a different chip
/// answering the same challenge) over `trials` random cases.
pub fn measure_rates(
    population: &[Module],
    mechanism: &dyn PufMechanism,
    env: &Environment,
    trials: usize,
    seed: u64,
) -> AuthRates {
    let chips: Vec<_> = population.iter().flat_map(|m| m.chips.iter()).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut false_rejects = 0usize;
    let mut false_accepts = 0usize;
    for t in 0..trials {
        let genuine = chips[rng.gen_range(0..chips.len())];
        let challenge = Challenge::segment(rng.gen_range(0..64));
        let enrollment = enroll(mechanism, genuine, challenge, env);
        if !verify(mechanism, genuine, &enrollment, env, 1 + t as u64) {
            false_rejects += 1;
        }
        let impostor = loop {
            let c = chips[rng.gen_range(0..chips.len())];
            if c.id != genuine.id {
                break c;
            }
        };
        if verify(mechanism, impostor, &enrollment, env, 2 + t as u64) {
            false_accepts += 1;
        }
    }
    AuthRates {
        frr: false_rejects as f64 / trials as f64,
        far: false_accepts as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::CodicSigPuf;
    use crate::population::paper_population;

    #[test]
    fn genuine_device_almost_always_verifies() {
        let pop = paper_population(0xC0D1C);
        let rates = measure_rates(&pop, &CodicSigPuf, &Environment::nominal(), 150, 7);
        // Paper: FRR 0.64 % on average. Allow generous statistical slack.
        assert!(rates.frr < 0.06, "FRR = {}", rates.frr);
    }

    #[test]
    fn impostors_are_always_rejected() {
        let pop = paper_population(0xC0D1C);
        let rates = measure_rates(&pop, &CodicSigPuf, &Environment::nominal(), 100, 8);
        assert_eq!(rates.far, 0.0, "FAR must be 0.00 %");
    }

    #[test]
    fn enroll_many_matches_per_challenge_evaluation() {
        let pop = paper_population(1);
        let chip = &pop[0].chips[0];
        let env = Environment::nominal();
        let challenges: Vec<Challenge> = (0..6).map(Challenge::segment).collect();
        let enrollments = enroll_many(&CodicSigPuf, chip, &challenges, &env);
        assert_eq!(enrollments.len(), 6);
        for (i, e) in enrollments.iter().enumerate() {
            assert_eq!(e.challenge, challenges[i]);
            assert_eq!(
                e.expected,
                CodicSigPuf.evaluate(chip, &challenges[i], &env, i as u64)
            );
            // A genuine device still verifies against the batch enrollment.
            assert!(verify(&CodicSigPuf, chip, e, &env, 1000 + i as u64));
        }
    }

    #[test]
    fn enrollment_round_trip() {
        let pop = paper_population(1);
        let chip = &pop[0].chips[0];
        let e = enroll(
            &CodicSigPuf,
            chip,
            Challenge::segment(3),
            &Environment::nominal(),
        );
        assert_eq!(e.challenge, Challenge::segment(3));
        assert!(!e.expected.is_empty());
    }
}
