//! Turning CODIC-sig responses into random bit streams for the NIST
//! analysis (§6.1.3, Appendix B).
//!
//! Each challenge's response is read as a segment bitmap (one bit per
//! cell, set for responding cells); bitmaps from many challenges across
//! the population are concatenated and whitened with the Von Neumann
//! extractor, exactly as the paper does.

use codic_nist::extractor::von_neumann;
use rayon::prelude::*;

use crate::challenge::Challenge;
use crate::mechanisms::{Environment, PufMechanism};
use crate::population::Module;

/// Renders one response as its segment bitmap.
#[must_use]
pub fn response_bitmap(
    mechanism: &dyn PufMechanism,
    chip: &crate::chip::ChipModel,
    challenge: &Challenge,
    env: &Environment,
    nonce: u64,
) -> Vec<u8> {
    let response = mechanism.evaluate(chip, challenge, env, nonce);
    let mut bitmap = vec![0u8; challenge.cells() as usize];
    for &cell in response.cells() {
        bitmap[cell as usize] = 1;
    }
    bitmap
}

/// Chips evaluated per parallel dispatch of [`whitened_stream`]. Bounds
/// the work discarded when the target length lands mid-population.
const STREAM_CHUNK_CHIPS: usize = 32;

/// Builds a whitened random stream of at least `target_bits` bits from
/// responses to distinct challenges across the whole population, applying
/// the Von Neumann extractor.
///
/// Chips are evaluated and whitened in parallel, `STREAM_CHUNK_CHIPS`
/// (32) at a time; dispatch stops at the first chunk that crosses the target,
/// so at most one chunk of work is discarded. Chunking and evaluation
/// order are fixed, so the stream is identical to the serial chip-by-chip
/// construction for every thread count.
#[must_use]
pub fn whitened_stream(
    population: &[Module],
    mechanism: &dyn PufMechanism,
    env: &Environment,
    target_bits: usize,
) -> Vec<u8> {
    let chips: Vec<_> = population.iter().flat_map(|m| m.chips.iter()).collect();
    let mut out = Vec::with_capacity(target_bits);
    let mut round = 0u64;
    while out.len() < target_bits {
        let challenge = Challenge::segment(round);
        for chunk in chips.chunks(STREAM_CHUNK_CHIPS) {
            if out.len() >= target_bits {
                break;
            }
            let whitened: Vec<Vec<u8>> = chunk
                .par_iter()
                .map(|chip| {
                    von_neumann(&response_bitmap(
                        mechanism,
                        chip,
                        &challenge,
                        env,
                        round + 1,
                    ))
                })
                .collect();
            for bits in whitened {
                if out.len() >= target_bits {
                    break;
                }
                out.extend(bits);
            }
        }
        round += 1;
        assert!(
            round < 10_000,
            "population cannot yield the requested stream length"
        );
    }
    out.truncate(target_bits);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::CodicSigPuf;
    use crate::population::paper_population;

    #[test]
    fn bitmap_is_sparse_and_sized() {
        let pop = paper_population(1);
        let chip = &pop[0].chips[0];
        let ch = Challenge::segment(0);
        let bm = response_bitmap(&CodicSigPuf, chip, &ch, &Environment::nominal(), 1);
        assert_eq!(bm.len(), 65536);
        let ones: u32 = bm.iter().map(|&b| u32::from(b)).sum();
        assert!(ones > 0 && ones < 2000, "ones = {ones}");
    }

    #[test]
    fn whitened_stream_reaches_target_and_is_balanced() {
        let pop = paper_population(2);
        let bits = whitened_stream(&pop, &CodicSigPuf, &Environment::nominal(), 20_000);
        assert_eq!(bits.len(), 20_000);
        let ones: u32 = bits.iter().map(|&b| u32::from(b)).sum();
        let frac = f64::from(ones) / 20_000.0;
        assert!((frac - 0.5).abs() < 0.02, "bias {frac}");
    }

    #[test]
    fn whitened_stream_passes_basic_nist_tests() {
        let pop = paper_population(3);
        let bits = whitened_stream(&pop, &CodicSigPuf, &Environment::nominal(), 50_000);
        assert!(codic_nist::monobit::test(&bits).passed());
        assert!(codic_nist::runs::test(&bits).passed());
        assert!(codic_nist::block_frequency::test(&bits).passed());
        assert!(codic_nist::cusum::test(&bits).passed());
    }
}
