//! Challenges and responses.
//!
//! As in the paper (§5.1), a challenge is the address and size of a memory
//! segment; the response is the set of cells that exhibit the mechanism's
//! failure/signature behaviour within that segment.

/// A PUF challenge: an 8 KB-aligned segment of one chip's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Challenge {
    /// Segment start as a byte offset into the chip.
    pub segment_addr: u64,
    /// Segment length in bytes (the paper uses 8 KB).
    pub size_bytes: u32,
}

impl Challenge {
    /// Creates a challenge.
    #[must_use]
    pub fn new(segment_addr: u64, size_bytes: u32) -> Self {
        Challenge {
            segment_addr,
            size_bytes,
        }
    }

    /// The paper's standard 8 KB challenge at segment index `i`.
    #[must_use]
    pub fn segment(i: u64) -> Self {
        Challenge::new(i * 8192, 8192)
    }

    /// Number of cells (bits) the challenge covers.
    #[must_use]
    pub fn cells(&self) -> u64 {
        u64::from(self.size_bytes) * 8
    }

    /// Global index of the first cell.
    #[must_use]
    pub fn first_cell(&self) -> u64 {
        self.segment_addr * 8
    }
}

/// A PUF response: the sorted set of responding cells, as segment-relative
/// indices.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Response {
    cells: Vec<u32>,
}

impl Response {
    /// Builds a response from segment-relative cell indices (sorted and
    /// deduplicated internally).
    #[must_use]
    pub fn new(mut cells: Vec<u32>) -> Self {
        cells.sort_unstable();
        cells.dedup();
        Response { cells }
    }

    /// The responding cells, sorted ascending.
    #[must_use]
    pub fn cells(&self) -> &[u32] {
        &self.cells
    }

    /// Number of responding cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cell responded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Jaccard index `|A∩B| / |A∪B|` against another response — the
    /// paper's similarity/uniqueness metric (§6.1.1). Two empty responses
    /// have index 1 by convention.
    #[must_use]
    pub fn jaccard(&self, other: &Response) -> f64 {
        let (mut i, mut j) = (0usize, 0usize);
        let mut intersection = 0u64;
        while i < self.cells.len() && j < other.cells.len() {
            match self.cells[i].cmp(&other.cells[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    intersection += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = self.cells.len() as u64 + other.cells.len() as u64 - intersection;
        if union == 0 {
            1.0
        } else {
            intersection as f64 / union as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_challenge_is_8kb() {
        let c = Challenge::segment(3);
        assert_eq!(c.segment_addr, 3 * 8192);
        assert_eq!(c.cells(), 65536);
        assert_eq!(c.first_cell(), 3 * 65536);
    }

    #[test]
    fn responses_sort_and_dedup() {
        let r = Response::new(vec![5, 1, 5, 3]);
        assert_eq!(r.cells(), &[1, 3, 5]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn jaccard_identical_is_one() {
        let r = Response::new(vec![1, 2, 3]);
        assert_eq!(r.jaccard(&r.clone()), 1.0);
    }

    #[test]
    fn jaccard_disjoint_is_zero() {
        let a = Response::new(vec![1, 2]);
        let b = Response::new(vec![3, 4]);
        assert_eq!(a.jaccard(&b), 0.0);
    }

    #[test]
    fn jaccard_partial_overlap() {
        let a = Response::new(vec![1, 2, 3]);
        let b = Response::new(vec![2, 3, 4]);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_of_empty_responses_is_one() {
        assert_eq!(Response::default().jaccard(&Response::default()), 1.0);
        assert_eq!(Response::default().jaccard(&Response::new(vec![1])), 0.0);
    }
}
