//! The statistical model of one DRAM chip.

use crate::hash;

/// DRAM vendor, anonymized as in the paper's Tables 3 and 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    /// Vendor A (64 chips).
    A,
    /// Vendor B (40 chips).
    B,
    /// Vendor C (32 chips).
    C,
}

/// Supply-voltage class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VoltageClass {
    /// 1.50 V DDR3.
    Ddr3,
    /// 1.35 V DDR3L.
    Ddr3l,
}

/// One simulated DRAM chip: identity plus the seeds from which all of its
/// per-cell process variation is derived.
///
/// The model exposes the three latent quantities the PUF mechanisms need:
///
/// - [`ChipModel::codic_minority_cell`]: whether CODIC-sig amplifies a cell
///   to the minority value (the paper finds 0.01 %–0.22 % of cells do);
/// - [`ChipModel::latency_weakness`]: the cell's margin under reduced tRCD
///   (a standard-normal score; higher = more likely to fail);
/// - [`ChipModel::weak_bitline`]: whether the cell's bitline fails under
///   reduced tRP (PreLatPUF's design-correlated failure mechanism).
#[derive(Debug, Clone, PartialEq)]
pub struct ChipModel {
    /// Chip index within the population (0–135).
    pub id: u32,
    /// Manufacturer.
    pub vendor: Vendor,
    /// Device capacity in gigabits.
    pub capacity_gbit: u32,
    /// Data rate in MT/s.
    pub freq_mts: u32,
    /// Supply-voltage class.
    pub voltage: VoltageClass,
    seed: u64,
    minority_fraction: f64,
}

/// Bitlines per 8 KB segment (one per column of the open row slice).
pub const BITLINES_PER_SEGMENT: u64 = 8192;

impl ChipModel {
    /// Creates a chip model; `seed` individualizes all process variation.
    #[must_use]
    pub fn new(
        id: u32,
        vendor: Vendor,
        capacity_gbit: u32,
        freq_mts: u32,
        voltage: VoltageClass,
        seed: u64,
    ) -> Self {
        // Per-chip CODIC minority-cell fraction, log-uniform over the
        // paper's observed 0.01 %–0.22 % range (§6.1).
        let u = hash::to_unit(hash::combine(seed, 0xF0, 0, 0));
        let lo: f64 = 1.0e-4;
        let hi: f64 = 2.2e-3;
        let minority_fraction = lo * (hi / lo).powf(u);
        ChipModel {
            id,
            vendor,
            capacity_gbit,
            freq_mts,
            voltage,
            seed,
            minority_fraction,
        }
    }

    /// The chip's RNG seed (for derived experiment streams).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fraction of cells that amplify to the minority value under
    /// CODIC-sig (0.01 %–0.22 %).
    #[must_use]
    pub fn minority_fraction(&self) -> f64 {
        self.minority_fraction
    }

    /// Whether CODIC-sig amplifies `cell` (a global bit index) to the
    /// minority value. Stable across evaluations by construction.
    #[must_use]
    pub fn codic_minority_cell(&self, cell: u64) -> bool {
        hash::to_unit(hash::combine(self.seed, 0xC0D1, cell, 0)) < self.minority_fraction
    }

    /// Latent reduced-tRCD weakness score of a cell (standard normal;
    /// higher means the cell fails charge sharing earlier).
    #[must_use]
    pub fn latency_weakness(&self, cell: u64) -> f64 {
        hash::to_normal(hash::combine(self.seed, 0x77CD, cell, 1))
    }

    /// A seed identifying the chip's *design* (vendor + density + speed):
    /// chips of the same part share layout-determined properties.
    #[must_use]
    pub fn design_seed(&self) -> u64 {
        let vendor = match self.vendor {
            Vendor::A => 1u64,
            Vendor::B => 2,
            Vendor::C => 3,
        };
        hash::combine(
            0xD51_6000,
            vendor,
            u64::from(self.capacity_gbit),
            u64::from(self.freq_mts),
        )
    }

    /// Whether the bitline serving `cell` is weak under reduced tRP.
    /// Bitline weakness is *design-induced* (column-driver layout), so the
    /// same positions are weak in every segment of the chip **and** across
    /// chips of the same part — the correlation that destroys PreLatPUF's
    /// uniqueness (§6.1.1, Figure 5).
    #[must_use]
    pub fn weak_bitline(&self, cell: u64) -> bool {
        let bitline = cell % BITLINES_PER_SEGMENT;
        hash::to_unit(hash::combine(self.design_seed(), 0x93E, bitline, 2)) < 2.0e-3
    }

    /// Evaluation-noise scale for CODIC-sig responses: DDR3L parts are
    /// slightly more stable than DDR3 (the paper's Figure 5 shows better
    /// DDR3L results).
    #[must_use]
    pub fn codic_noise_floor(&self) -> f64 {
        match self.voltage {
            VoltageClass::Ddr3l => 3.0e-5,
            VoltageClass::Ddr3 => 1.0e-4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip(seed: u64) -> ChipModel {
        ChipModel::new(0, Vendor::A, 4, 1600, VoltageClass::Ddr3l, seed)
    }

    #[test]
    fn minority_fraction_is_in_paper_range() {
        for seed in 0..100 {
            let f = chip(seed).minority_fraction();
            assert!((1.0e-4..=2.2e-3).contains(&f), "fraction {f}");
        }
    }

    #[test]
    fn minority_cells_are_stable_and_sparse() {
        let c = chip(7);
        let cells: Vec<u64> = (0..200_000).filter(|&i| c.codic_minority_cell(i)).collect();
        let again: Vec<u64> = (0..200_000).filter(|&i| c.codic_minority_cell(i)).collect();
        assert_eq!(cells, again, "stable across queries");
        let frac = cells.len() as f64 / 200_000.0;
        assert!(frac < 5.0e-3, "fraction {frac}");
    }

    #[test]
    fn different_chips_have_different_minority_sets() {
        let a = chip(1);
        let b = chip(2);
        let set_a: Vec<u64> = (0..500_000).filter(|&i| a.codic_minority_cell(i)).collect();
        let set_b: Vec<u64> = (0..500_000).filter(|&i| b.codic_minority_cell(i)).collect();
        let common = set_a.iter().filter(|i| set_b.contains(i)).count();
        // Independent sparse sets barely intersect.
        assert!(common * 10 <= set_a.len().max(1), "common {common}");
    }

    #[test]
    fn weak_bitlines_repeat_across_segments() {
        let c = chip(3);
        let segment_bits = 8192 * 8;
        for cell in 0..BITLINES_PER_SEGMENT {
            assert_eq!(
                c.weak_bitline(cell),
                c.weak_bitline(cell + segment_bits),
                "bitline weakness must be segment-invariant"
            );
        }
    }

    #[test]
    fn latency_weakness_is_normal_scored() {
        let c = chip(9);
        let n = 50_000;
        let mean: f64 = (0..n).map(|i| c.latency_weakness(i)).sum::<f64>() / f64::from(n as u32);
        assert!(mean.abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ddr3l_is_quieter_than_ddr3() {
        let l = chip(1);
        let mut d3 = chip(1);
        d3.voltage = VoltageClass::Ddr3;
        assert!(l.codic_noise_floor() < d3.codic_noise_floor());
    }
}
