//! PUF evaluation-time model (paper Table 4).
//!
//! Evaluation time is dominated by reading the challenge segment through
//! the experimental memory-controller infrastructure. Each 64 B access is
//! a full closed-row cycle (reduced-timing tests cannot use the row
//! buffer) plus the host-side per-access overhead of a SoftMC-class FPGA
//! controller. The host overhead constant is calibrated so one 8 KB pass
//! costs 0.882 ms, which reproduces all of Table 4:
//!
//! | PUF | w/ filter | w/o filter |
//! |---|---|---|
//! | DRAM Latency PUF | 88.2 ms (100 passes) | — |
//! | PreLatPUF | 7.95 ms | 1.59 ms |
//! | CODIC-sig | 4.41 ms | 0.88 ms |

use codic_dram::TimingParams;

/// Calibrated SoftMC-class host overhead per 64 B access, in nanoseconds.
pub const HOST_OVERHEAD_NS: f64 = 6840.0;

/// Write-pass cost relative to a read pass (posted writes return earlier).
pub const WRITE_PASS_FACTOR: f64 = 0.8;

/// Number of filter passes for CODIC-sig / PreLatPUF (a conservative
/// 5-challenge majority; §6.1.1).
pub const LIGHT_FILTER_PASSES: u32 = 5;

/// Number of reads the DRAM Latency PUF filter requires.
pub const LATENCY_FILTER_READS: u32 = 100;

/// Time for one read pass over a segment of `bytes`, in milliseconds.
#[must_use]
pub fn read_pass_ms(bytes: u64, timing: &TimingParams) -> f64 {
    let lines = bytes.div_ceil(64) as f64;
    lines * (timing.row_cycle_ns() + HOST_OVERHEAD_NS) * 1e-6
}

/// Evaluation time of the CODIC-sig PUF in milliseconds. The CODIC
/// command itself is one row operation per segment row — negligible next
/// to the read-out pass.
#[must_use]
pub fn codic_sig_ms(bytes: u64, timing: &TimingParams, with_filter: bool) -> f64 {
    let passes = if with_filter { LIGHT_FILTER_PASSES } else { 1 };
    f64::from(passes) * read_pass_ms(bytes, timing)
}

/// Evaluation time of PreLatPUF in milliseconds: each pass writes known
/// data and reads back under reduced tRP.
#[must_use]
pub fn prelat_ms(bytes: u64, timing: &TimingParams, with_filter: bool) -> f64 {
    let passes = if with_filter { LIGHT_FILTER_PASSES } else { 1 };
    f64::from(passes) * (1.0 + WRITE_PASS_FACTOR) * read_pass_ms(bytes, timing)
}

/// Evaluation time of the DRAM Latency PUF in milliseconds: 100 filtered
/// read passes (the initial data write is amortized across them).
#[must_use]
pub fn latency_puf_ms(bytes: u64, timing: &TimingParams) -> f64 {
    f64::from(LATENCY_FILTER_READS) * read_pass_ms(bytes, timing)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEGMENT: u64 = 8192;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600_11()
    }

    #[test]
    fn one_pass_is_0_88_ms() {
        let ms = read_pass_ms(SEGMENT, &t());
        assert!((ms - 0.882).abs() < 0.01, "pass = {ms} ms");
    }

    #[test]
    fn table4_codic_sig() {
        assert!((codic_sig_ms(SEGMENT, &t(), false) - 0.88).abs() < 0.02);
        assert!((codic_sig_ms(SEGMENT, &t(), true) - 4.41).abs() < 0.05);
    }

    #[test]
    fn table4_prelat() {
        assert!((prelat_ms(SEGMENT, &t(), false) - 1.59).abs() < 0.03);
        assert!((prelat_ms(SEGMENT, &t(), true) - 7.95).abs() < 0.12);
    }

    #[test]
    fn table4_latency_puf() {
        assert!((latency_puf_ms(SEGMENT, &t()) - 88.2).abs() < 1.0);
    }

    #[test]
    fn table4_ratios_match_paper_claims() {
        let t = t();
        // CODIC-sig is 1.8× faster than PreLatPUF with and without filter.
        let r_filter = prelat_ms(SEGMENT, &t, true) / codic_sig_ms(SEGMENT, &t, true);
        let r_nofilter = prelat_ms(SEGMENT, &t, false) / codic_sig_ms(SEGMENT, &t, false);
        assert!((r_filter - 1.8).abs() < 0.05, "ratio = {r_filter}");
        assert!((r_nofilter - 1.8).abs() < 0.05);
        // 20×/100× faster than the DRAM Latency PUF (§6.1.2).
        let vs_latency_filter = latency_puf_ms(SEGMENT, &t) / codic_sig_ms(SEGMENT, &t, true);
        let vs_latency_nofilter = latency_puf_ms(SEGMENT, &t) / codic_sig_ms(SEGMENT, &t, false);
        assert!((vs_latency_filter - 20.0).abs() < 0.5);
        assert!((vs_latency_nofilter - 100.0).abs() < 1.0);
    }

    #[test]
    fn eval_time_scales_with_segment_size() {
        let t = t();
        let small = codic_sig_ms(SEGMENT, &t, false);
        let big = codic_sig_ms(4 * SEGMENT, &t, false);
        assert!((big / small - 4.0).abs() < 0.01);
    }
}
