//! Repeat filtering of noisy PUF responses (§6.1.1).

/// A k-of-n repeat filter: evaluate `reads` times, keep cells that respond
/// in more than `threshold` of them. The DRAM Latency PUF uses 90-of-100;
/// CODIC-sig and PreLatPUF need at most a light 5-challenge majority
/// filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepeatFilter {
    reads: u32,
    threshold: u32,
}

impl RepeatFilter {
    /// Creates a filter keeping cells that respond in **more than**
    /// `threshold` of `reads` evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `threshold >= reads` (the filter would keep nothing).
    #[must_use]
    pub fn new(reads: u32, threshold: u32) -> Self {
        assert!(threshold < reads, "threshold must be below the read count");
        RepeatFilter { reads, threshold }
    }

    /// Number of evaluations the filter requires.
    #[must_use]
    pub fn reads(&self) -> u32 {
        self.reads
    }

    /// Whether a cell responding `hits` times survives the filter.
    #[must_use]
    pub fn keeps(&self, hits: u32) -> bool {
        hits > self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_filter_keeps_only_high_repeaters() {
        let f = RepeatFilter::new(100, 90);
        assert!(f.keeps(91));
        assert!(f.keeps(100));
        assert!(!f.keeps(90));
        assert!(!f.keeps(10));
        assert_eq!(f.reads(), 100);
    }

    #[test]
    #[should_panic(expected = "threshold must be below")]
    fn degenerate_filter_is_rejected() {
        let _ = RepeatFilter::new(5, 5);
    }
}
