//! Deterministic per-cell hashing: the chip model's "process variation"
//! source. SplitMix64 gives high-quality 64-bit mixing with no state.

/// SplitMix64 mix of a 64-bit value.
#[must_use]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines a seed with up to three coordinates into one hash.
#[must_use]
pub fn combine(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    mix(seed ^ mix(a ^ mix(b ^ mix(c))))
}

/// Maps a hash to a uniform float in `[0, 1)`.
#[must_use]
pub fn to_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Maps a hash to a standard normal deviate via the Box–Muller transform
/// (full Gaussian tails — the latency-PUF weakness model selects cells
/// beyond 3σ, so bounded approximations are not acceptable).
#[must_use]
pub fn to_normal(h: u64) -> f64 {
    let u1 = to_unit(mix(h)).max(f64::MIN_POSITIVE);
    let u2 = to_unit(mix(h ^ 0xA5A5_5A5A_DEAD_BEEF));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_diffusing() {
        assert_eq!(mix(42), mix(42));
        assert_ne!(mix(42), mix(43));
        // Single-bit input changes flip about half the output bits.
        let d = (mix(42) ^ mix(42 ^ 1)).count_ones();
        assert!(d > 16 && d < 48, "diffusion {d}");
    }

    #[test]
    fn to_unit_is_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n).map(|i| to_unit(mix(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn to_normal_has_unit_variance() {
        let n = 50_000u64;
        let xs: Vec<f64> = (0..n).map(|i| to_normal(mix(i))).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn combine_depends_on_every_coordinate() {
        let base = combine(1, 2, 3, 4);
        assert_ne!(base, combine(9, 2, 3, 4));
        assert_ne!(base, combine(1, 9, 3, 4));
        assert_ne!(base, combine(1, 2, 9, 4));
        assert_ne!(base, combine(1, 2, 3, 9));
    }
}
