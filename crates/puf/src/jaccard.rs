//! The paper's Jaccard-index experiments (Figures 5 and 6).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::challenge::Challenge;
use crate::chip::{ChipModel, VoltageClass};
use crate::mechanisms::{Environment, PufMechanism};
use crate::population::Module;

/// Segments available per chip for the experiments (enough address space
/// for distinct-segment sampling).
const SEGMENTS_PER_CHIP: u64 = 64;

/// Results of one intra/inter distribution experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct JaccardDistributions {
    /// Jaccard indices of same-segment response pairs.
    pub intra: Vec<f64>,
    /// Jaccard indices of different-segment response pairs.
    pub inter: Vec<f64>,
}

impl JaccardDistributions {
    /// Mean of the intra distribution.
    #[must_use]
    pub fn intra_mean(&self) -> f64 {
        mean(&self.intra)
    }

    /// Mean of the inter distribution.
    #[must_use]
    pub fn inter_mean(&self) -> f64 {
        mean(&self.inter)
    }

    /// Histogram of a series over `[0, 1]` with `bins` buckets, as
    /// probabilities in percent (the paper's Figure 5 y-axis).
    #[must_use]
    pub fn histogram(series: &[f64], bins: usize) -> Vec<f64> {
        let mut h = vec![0.0; bins];
        for &v in series {
            let idx = ((v * bins as f64) as usize).min(bins - 1);
            h[idx] += 1.0;
        }
        let total = series.len().max(1) as f64;
        for b in &mut h {
            *b = 100.0 * *b / total;
        }
        h
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// One response pair to evaluate: the second element may use a different
/// chip, segment, or environment than the first.
struct PairSpec<'a> {
    chip_a: &'a ChipModel,
    chip_b: &'a ChipModel,
    seg_a: u64,
    seg_b: u64,
    env_a: Environment,
    env_b: Environment,
    nonce: u64,
}

/// Evaluates each pair's two responses in parallel and returns the Jaccard
/// indices in input order. Pair selection happens up front on one RNG
/// stream, so results are identical to the serial implementation and
/// independent of the worker-thread count.
fn evaluate_pairs(mechanism: &dyn PufMechanism, specs: Vec<PairSpec<'_>>) -> Vec<f64> {
    specs
        .into_par_iter()
        .map(|p| {
            let a = mechanism.evaluate(p.chip_a, &Challenge::segment(p.seg_a), &p.env_a, p.nonce);
            let b = mechanism.evaluate(
                p.chip_b,
                &Challenge::segment(p.seg_b),
                &p.env_b,
                p.nonce + 1,
            );
            a.jaccard(&b)
        })
        .collect()
}

/// Runs the Figure 5 experiment for one mechanism over the chips of the
/// given voltage class: `pairs` random same-segment pairs (intra) and
/// `pairs` random different-segment pairs (inter). Response evaluation —
/// the hot part — is spread across rayon worker threads.
pub fn distributions(
    population: &[Module],
    voltage: VoltageClass,
    mechanism: &dyn PufMechanism,
    env: &Environment,
    pairs: usize,
    seed: u64,
) -> JaccardDistributions {
    let chips: Vec<_> = population
        .iter()
        .flat_map(|m| m.chips.iter())
        .filter(|c| c.voltage == voltage)
        .collect();
    assert!(!chips.is_empty(), "no chips in the requested voltage class");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut nonce = 1u64;
    let mut intra_specs = Vec::with_capacity(pairs);
    for _ in 0..pairs {
        let chip = chips[rng.gen_range(0..chips.len())];
        let seg = rng.gen_range(0..SEGMENTS_PER_CHIP);
        intra_specs.push(PairSpec {
            chip_a: chip,
            chip_b: chip,
            seg_a: seg,
            seg_b: seg,
            env_a: *env,
            env_b: *env,
            nonce,
        });
        nonce += 2;
    }
    let mut inter_specs = Vec::with_capacity(pairs);
    for _ in 0..pairs {
        let chip_a = chips[rng.gen_range(0..chips.len())];
        let chip_b = chips[rng.gen_range(0..chips.len())];
        let seg_a = rng.gen_range(0..SEGMENTS_PER_CHIP);
        let seg_b = loop {
            let s = rng.gen_range(0..SEGMENTS_PER_CHIP);
            if s != seg_a || chip_a.id != chip_b.id {
                break s;
            }
        };
        inter_specs.push(PairSpec {
            chip_a,
            chip_b,
            seg_a,
            seg_b,
            env_a: *env,
            env_b: *env,
            nonce,
        });
        nonce += 2;
    }
    JaccardDistributions {
        intra: evaluate_pairs(mechanism, intra_specs),
        inter: evaluate_pairs(mechanism, inter_specs),
    }
}

/// Runs the Figure 6 experiment: intra-Jaccard indices where the second
/// evaluation happens at `30 °C + delta_t`. Pair evaluation runs in
/// parallel, with the same pair selection as the serial implementation.
pub fn intra_vs_temperature(
    population: &[Module],
    mechanism: &dyn PufMechanism,
    delta_t: f64,
    pairs: usize,
    seed: u64,
) -> Vec<f64> {
    let chips: Vec<_> = population.iter().flat_map(|m| m.chips.iter()).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let hot = Environment {
        temperature_c: 30.0 + delta_t,
        aging_hours: 0.0,
    };
    let base = Environment::nominal();
    let specs: Vec<PairSpec<'_>> = (0..pairs)
        .map(|k| {
            let chip = chips[rng.gen_range(0..chips.len())];
            let seg = rng.gen_range(0..SEGMENTS_PER_CHIP);
            PairSpec {
                chip_a: chip,
                chip_b: chip,
                seg_a: seg,
                seg_b: seg,
                env_a: base,
                env_b: hot,
                nonce: 1000 + 2 * k as u64,
            }
        })
        .collect();
    evaluate_pairs(mechanism, specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::{CodicSigPuf, LatencyPuf, PreLatPuf};
    use crate::population::paper_population;

    fn pop() -> Vec<Module> {
        paper_population(0xC0D1C)
    }

    #[test]
    fn codic_sig_shape_matches_figure_5() {
        let d = distributions(
            &pop(),
            VoltageClass::Ddr3l,
            &CodicSigPuf,
            &Environment::nominal(),
            60,
            1,
        );
        assert!(d.intra_mean() > 0.95, "intra = {}", d.intra_mean());
        assert!(d.inter_mean() < 0.05, "inter = {}", d.inter_mean());
    }

    #[test]
    fn prelat_has_good_intra_but_poor_inter() {
        let d = distributions(
            &pop(),
            VoltageClass::Ddr3l,
            &PreLatPuf,
            &Environment::nominal(),
            60,
            2,
        );
        assert!(d.intra_mean() > 0.9, "intra = {}", d.intra_mean());
        assert!(d.inter_mean() > 0.05, "inter = {}", d.inter_mean());
    }

    #[test]
    fn latency_puf_intra_is_dispersed() {
        let d = distributions(
            &pop(),
            VoltageClass::Ddr3,
            &LatencyPuf::default(),
            &Environment::nominal(),
            30,
            3,
        );
        assert!(d.intra_mean() > 0.4 && d.intra_mean() < 0.999);
        assert!(d.inter_mean() < 0.05);
    }

    #[test]
    fn temperature_hurts_latency_puf_most() {
        let p = pop();
        let codic = mean(&intra_vs_temperature(&p, &CodicSigPuf, 55.0, 25, 4));
        let latency = mean(&intra_vs_temperature(
            &p,
            &LatencyPuf::default(),
            55.0,
            10,
            5,
        ));
        let prelat = mean(&intra_vs_temperature(&p, &PreLatPuf, 55.0, 25, 6));
        assert!(codic > 0.9, "codic = {codic}");
        assert!(prelat > 0.95, "prelat = {prelat}");
        assert!(
            latency < codic - 0.2,
            "latency = {latency} vs codic = {codic}"
        );
    }

    #[test]
    fn histogram_is_normalized() {
        let h = JaccardDistributions::histogram(&[0.0, 0.5, 0.999, 1.0], 10);
        assert_eq!(h.len(), 10);
        assert!((h.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!(h[9] >= 50.0); // 0.999 and 1.0 land in the last bin
    }
}
