//! DRAM PUF framework reproducing the CODIC paper's §5.1/§6.1 evaluation:
//! a simulated population of 136 DDR3/DDR3L chips (Table 12), the
//! CODIC-sig PUF, and the two state-of-the-art baselines it is compared
//! against — the DRAM Latency PUF (Kim et al., HPCA 2018) and PreLatPUF
//! (Talukder et al., IEEE Access 2019).
//!
//! The paper measures real chips on SoftMC; we substitute a statistical
//! chip model whose per-cell behaviour is drawn deterministically from the
//! chip seed (so every experiment is reproducible) and calibrated to the
//! failure statistics the paper reports:
//!
//! - **CODIC-sig**: 0.01 %–0.22 % of cells amplify to the minority value;
//!   responses repeat for 99.7 %+ of challenges and barely move with
//!   temperature.
//! - **DRAM Latency PUF**: reduced-tRCD failures with per-read noise
//!   (hence the 100-read filter) and strong temperature sensitivity.
//! - **PreLatPUF**: reduced-tRP failures correlated along bitlines, making
//!   responses extremely stable but poorly unique across segments.
//!
//! # Example
//!
//! ```
//! use codic_puf::population::paper_population;
//! use codic_puf::mechanisms::{CodicSigPuf, Environment, PufMechanism};
//! use codic_puf::challenge::Challenge;
//!
//! let population = paper_population(0xC0D1C);
//! let chip = &population[0].chips[0];
//! let puf = CodicSigPuf::default();
//! let challenge = Challenge::new(0, 8192);
//! let a = puf.evaluate(chip, &challenge, &Environment::nominal(), 1);
//! let b = puf.evaluate(chip, &challenge, &Environment::nominal(), 2);
//! assert!(a.jaccard(&b) > 0.95, "CODIC-sig responses are stable");
//! ```

pub mod auth;
pub mod bitstream;
pub mod challenge;
pub mod chip;
pub mod eval_time;
pub mod filter;
pub mod hash;
pub mod jaccard;
pub mod mechanisms;
pub mod population;
pub mod trng;

pub use challenge::{Challenge, Response};
pub use chip::{ChipModel, Vendor, VoltageClass};
pub use mechanisms::{CodicSigPuf, Environment, LatencyPuf, PreLatPuf, PufMechanism};
pub use population::{paper_population, Module};
